// Extension bench (paper footnote 7): "Simulating uniform random injection
// traffic yields similar behaviour of Nue" — cross-checks the all-to-all
// results of Figs. 1/10 under uniform random, adversarial (tornado /
// bit-complement) and hotspot traffic, with packet latency statistics.
//
//   --switches/--links/--terminals   fabric configuration
//   --messages N                     uniform/hotspot message count
#include <iostream>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "sim/traffic.hpp"
#include "topology/misc_topologies.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  RandomSpec spec;
  spec.switches = static_cast<std::uint32_t>(
      flags.get_int("switches", 40, "switches"));
  spec.links = static_cast<std::uint32_t>(
      flags.get_int("links", 120, "switch-to-switch links"));
  spec.terminals_per_switch = static_cast<std::uint32_t>(
      flags.get_int("terminals", 4, "terminals per switch"));
  const auto count = static_cast<std::size_t>(
      flags.get_int("messages", 4000, "messages for random/hotspot"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  Rng rng(2024);
  Network net = make_random(spec, rng);
  const auto dests = net.terminals();

  struct Engine {
    std::string name;
    RoutingResult rr;
  };
  std::vector<Engine> engines;
  {
    NueOptions o1;
    o1.num_vls = 1;
    engines.push_back({"nue-1", route_nue(net, dests, o1)});
    NueOptions o4;
    o4.num_vls = 4;
    engines.push_back({"nue-4", route_nue(net, dests, o4)});
    engines.push_back({"dfsssp", route_dfsssp(net, dests, {.max_vls = 8})});
    engines.push_back({"up*/down*", route_updown(net, dests)});
  }

  struct Workload {
    std::string name;
    std::vector<Message> msgs;
  };
  std::vector<Workload> workloads;
  workloads.push_back(
      {"all-to-all", alltoall_shift_messages(net, 2048, 16)});
  {
    Rng trng(7);
    workloads.push_back(
        {"uniform", uniform_random_messages(net, count, 2048, trng)});
  }
  workloads.push_back(
      {"tornado", pattern_messages(net, TrafficPattern::kTornado, 2048, 8)});
  workloads.push_back(
      {"bit-compl",
       pattern_messages(net, TrafficPattern::kBitComplement, 2048, 8)});
  {
    Rng trng(9);
    workloads.push_back(
        {"hotspot-10%",
         hotspot_messages(net, count, 2048, 0.10, 0, trng)});
  }

  Table table({"workload", "routing", "throughput", "avg latency",
               "p99 latency"});
  for (const auto& w : workloads) {
    for (const auto& e : engines) {
      NUE_CHECK(validate_routing(net, e.rr).ok());
      const auto res = simulate(net, e.rr, w.msgs, SimConfig{});
      NUE_CHECK_MSG(res.completed, w.name << "/" << e.name);
      table.row() << w.name << e.name << res.normalized_throughput
                  << res.avg_packet_latency << res.p99_packet_latency;
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  std::cout << "\n(footnote 7: the routing ordering under uniform traffic "
               "should match the\n all-to-all ordering used in the "
               "figures)\n";
  return 0;
}
