// Simulation-scale harness (docs/SIMULATION.md): the discrete-event
// engine against the legacy cycle engine on fabrics up to the 47^3 torus
// (103,823 switches — the Tsubame-class acceptance point of
// docs/SCALING.md), emitting BENCH_sim.json.
//
// Two workloads per run:
//   scenario       a timed multi-phase scenario (bursts, drifting hotspot,
//                  background uniform load) driven through
//                  simulate_scenario — the event engine only; the cycle
//                  engine has no notion of injection times or barriers,
//                  and at 10^5 switches it pays for every idle cycle of
//                  the schedule anyway. Per-phase spans land in the JSON.
//   alltoall-flat  the head-to-head: an identical flat message set run on
//                  both engines. The cycle leg gets --cycle-budget-s of
//                  wall clock (recorded as status "wall-limit" when it
//                  expires); at full scale it scans ~3M virtual queues
//                  per simulated cycle and cannot finish, while the event
//                  engine completes the same workload outright. When both
//                  complete (smoke), delivered totals must match exactly.
//
// Destinations are the same evenly spaced terminal sample bench_scale
// routes (routing all 10^5 terminals is a separate wall, not this
// bench's); traffic destinations are confined to the routed pool, sources
// draw from all alive terminals.
//
//   --smoke            tiny fabric (tier-1 stage; finishes in seconds)
//   --scenario SPEC    override the scenario (parse_scenario grammar)
//   --dests N          destination sample (0 = auto: all in smoke, 16 full)
//   --pivots N         Brandes pivots for escape roots (default 64)
//   --vls K            virtual lanes (default 4)
//   --threads N        routing worker threads (default 1)
//   --messages N       head-to-head message count (0 = mode default)
//   --bytes B          message payload bytes (0 = mode default)
//   --cycle-budget-s S wall budget for the cycle leg (default 60)
//   --skip-cycle       skip the cycle-engine leg
//   --seed S           traffic seed (default 2016)
//   --json FILE        records (default BENCH_sim.json; '' = skip)
#include <cstdio>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "sim/scenario.hpp"
#include "telemetry/cli.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace nue;

/// Same spacing discipline as bench_scale: deterministic, evenly spaced
/// over the terminals so repeated runs route identical tables.
std::vector<NodeId> sample_dests(const Network& net, std::size_t want) {
  const auto terms = net.terminals();
  if (want == 0 || want >= terms.size()) return terms;
  std::vector<NodeId> out;
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    out.push_back(terms[i * terms.size() / want]);
  }
  return out;
}

struct SimRecord {
  std::string engine;    // "event" | "cycle"
  std::string workload;  // "scenario" | "alltoall-flat"
  std::string topology;
  std::uint64_t switches = 0;
  std::uint64_t terminals = 0;
  std::uint64_t channels = 0;
  std::uint64_t dests = 0;
  std::uint32_t vls = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::string status;  // completed | deadlocked | wall-limit | cycle-limit
  double wall_ms = 0.0;
  std::uint64_t cycles = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t queue_peak = 0;
  double events_per_sec = 0.0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bytes = 0;
  std::optional<double> peak_rss_mb;
  std::vector<PhaseSpan> spans;
};

const char* status_of(const SimResult& r) {
  if (r.completed) return "completed";
  if (r.deadlocked) return "deadlocked";
  if (r.hit_wall_budget) return "wall-limit";
  return "cycle-limit";
}

const char* status_of(SimRunStatus s) {
  switch (s) {
    case SimRunStatus::kCompleted: return "completed";
    case SimRunStatus::kDeadlocked: return "deadlocked";
    case SimRunStatus::kWallLimit: return "wall-limit";
    case SimRunStatus::kCycleLimit: return "cycle-limit";
  }
  return "cycle-limit";
}

void fill_from_sim(SimRecord& rec, const SimResult& res, double wall_ms) {
  rec.wall_ms = wall_ms;
  rec.cycles = res.cycles;
  rec.events_processed = res.events_processed;
  rec.queue_peak = res.queue_peak;
  rec.events_per_sec =
      wall_ms > 0.0 ? res.events_processed / (wall_ms / 1e3) : 0.0;
  rec.delivered_packets = res.delivered_packets;
  rec.delivered_bytes = res.delivered_bytes;
  rec.peak_rss_mb = peak_rss_mb();
}

void write_json(const std::string& path, const std::vector<SimRecord>& recs) {
  std::ofstream os(path);
  os << "{\n  \"schema_version\": 1,\n  \"tool\": \"bench_sim_scale\",\n";
  if (const auto rss = peak_rss_mb()) {
    os << "  \"peak_rss_mb\": " << *rss << ",\n";
  }
  std::uint64_t total_events = 0;
  for (const auto& r : recs) total_events += r.events_processed;
  os << "  \"total_events\": " << total_events << ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << "    {\"engine\": \"" << r.engine << "\", \"workload\": \""
       << r.workload << "\", \"topology\": \"" << r.topology
       << "\", \"switches\": " << r.switches
       << ", \"terminals\": " << r.terminals
       << ", \"channels\": " << r.channels << ", \"dests\": " << r.dests
       << ", \"vls\": " << r.vls << ", \"messages\": " << r.messages
       << ", \"bytes\": " << r.bytes << ", \"status\": \"" << r.status
       << "\", \"wall_ms\": " << r.wall_ms << ", \"cycles\": " << r.cycles
       << ", \"events_processed\": " << r.events_processed
       << ", \"queue_peak\": " << r.queue_peak
       << ", \"events_per_sec\": " << r.events_per_sec
       << ", \"delivered_packets\": " << r.delivered_packets
       << ", \"delivered_bytes\": " << r.delivered_bytes;
    if (r.peak_rss_mb) os << ", \"peak_rss_mb\": " << *r.peak_rss_mb;
    os << ", \"spans\": [";
    for (std::size_t s = 0; s < r.spans.size(); ++s) {
      const auto& sp = r.spans[s];
      if (s) os << ", ";
      os << "{\"label\": \"" << sp.label << "\", \"start_cycle\": "
         << sp.start_cycle << ", \"end_cycle\": " << sp.end_cycle
         << ", \"messages\": " << sp.messages << ", \"bytes\": " << sp.bytes
         << "}";
    }
    os << "]}" << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using nue::bench::run_routing;
  Flags flags(argc, argv);
  const bool smoke = flags.get_bool(
      "smoke", false, "tiny fabric only (the tier-1 smoke stage)");
  const std::string scenario_flag = flags.get_string(
      "scenario", "", "scenario spec (parse_scenario grammar; '' = default)");
  const auto want_dests = static_cast<std::size_t>(flags.get_int(
      "dests", 0, "destination sample (0 = auto: all in smoke, 16 full)"));
  const auto pivots = static_cast<std::size_t>(flags.get_int(
      "pivots", 64, "Brandes pivots for escape roots (0 = exact)"));
  const auto vls =
      static_cast<std::uint32_t>(flags.get_int("vls", 4, "virtual lanes"));
  const auto threads = static_cast<std::uint32_t>(
      flags.get_int("threads", 1, "routing worker threads"));
  const auto want_messages = static_cast<std::size_t>(flags.get_int(
      "messages", 0, "head-to-head message count (0 = mode default)"));
  const auto want_bytes = static_cast<std::uint32_t>(flags.get_int(
      "bytes", 0, "message payload bytes (0 = mode default)"));
  const double cycle_budget_s = flags.get_double(
      "cycle-budget-s", 60.0, "wall budget for the cycle-engine leg");
  const bool skip_cycle =
      flags.get_bool("skip-cycle", false, "skip the cycle-engine leg");
  const auto seed = static_cast<std::uint64_t>(
      flags.get_int("seed", 2016, "traffic seed"));
  const std::string json_path = flags.get_string(
      "json", "BENCH_sim.json", "records JSON ('' = skip)");
  telemetry::Cli telem;
  telem.register_flags(flags);
  if (!flags.finish()) return 1;

  // Fabric: the tier-1 smoke torus, or the >= 10^5-switch acceptance torus.
  const std::uint32_t dim = smoke ? 6 : 47;
  TorusSpec spec{{dim, dim, dim}, 1, 1};
  const std::string topology = std::to_string(dim) + "x" + std::to_string(dim)
                               + "x" + std::to_string(dim);
  const Network net = make_torus(spec);
  const auto dests =
      sample_dests(net, want_dests != 0 ? want_dests : (smoke ? 0 : 16));
  std::cerr << "torus " << topology << ": routing " << dests.size() << " of "
            << net.terminals().size() << " terminals\n";
  const auto run = run_routing("nue", [&] {
    NueOptions opt;
    opt.num_vls = vls;
    opt.num_threads = threads;
    opt.betweenness_pivots = pivots;
    return route_nue(net, dests, opt);
  });
  if (!run.rr) {
    std::cerr << "routing failed: " << run.note << "\n";
    return 2;
  }
  std::cerr << "routed in " << run.seconds << "s\n";

  const std::string scenario_spec =
      !scenario_flag.empty() ? scenario_flag
      : smoke ? "burst:30:8:512:50;uniform:100:512:200;alltoall:512:4"
              : "burst:200:64:4096:500;"
                "hotspot:10000:2048:80:100000:5;"
                "uniform:10000:2048:100000";
  const std::size_t flat_count =
      want_messages != 0 ? want_messages : (smoke ? 200 : 20000);
  const std::uint32_t flat_bytes =
      want_bytes != 0 ? want_bytes : (smoke ? 512 : 2048);

  SimRecord base;
  base.topology = topology;
  base.switches = static_cast<std::uint64_t>(dim) * dim * dim;
  base.terminals = net.num_alive_terminals();
  base.channels = net.num_alive_channels();
  base.dests = dests.size();
  base.vls = vls;

  std::vector<SimRecord> records;
  Table table({"engine", "workload", "messages", "status", "wall [s]",
               "Mev/s", "cycles"});
  const auto report = [&](const SimRecord& rec) {
    records.push_back(rec);
    char wall[32], evs[32];
    std::snprintf(wall, sizeof(wall), "%.2f", rec.wall_ms / 1e3);
    std::snprintf(evs, sizeof(evs), "%.2f", rec.events_per_sec / 1e6);
    table.row() << rec.engine << rec.workload << rec.messages << rec.status
                << wall << evs << rec.cycles;
    std::cerr << rec.engine << "/" << rec.workload << ": " << rec.status
              << " in " << wall << "s (" << rec.events_processed
              << " events)\n";
  };

  SimConfig cfg;
  Rng rng(seed);

  {  // The timed multi-phase scenario — event engine only (see header).
    const Scenario sc = parse_scenario(net, scenario_spec, rng, dests);
    SimRecord rec = base;
    rec.engine = "event";
    rec.workload = "scenario";
    rec.messages = sc.total_messages();
    rec.bytes = sc.total_bytes();
    Timer t;
    const ScenarioResult res = simulate_scenario(net, *run.rr, sc, cfg);
    rec.status = status_of(res.status);
    fill_from_sim(rec, res.sim, t.seconds() * 1e3);
    rec.spans = res.phases;
    report(rec);
  }

  // The head-to-head: one flat message set, both engines.
  const ScenarioPhase flat_phase =
      uniform_arrivals_phase(net, flat_count, flat_bytes, 1, rng, dests);
  std::vector<Message> flat;
  flat.reserve(flat_phase.messages.size());
  std::uint64_t flat_total_bytes = 0;
  for (const auto& tm : flat_phase.messages) {
    flat.push_back(tm.msg);
    flat_total_bytes += tm.msg.bytes;
  }

  SimRecord ev_rec = base;
  {
    SimRecord& rec = ev_rec;
    rec.engine = "event";
    rec.workload = "alltoall-flat";
    rec.messages = flat.size();
    rec.bytes = flat_total_bytes;
    Timer t;
    const SimResult res = simulate(net, *run.rr, flat, cfg);
    rec.status = status_of(res);
    fill_from_sim(rec, res, t.seconds() * 1e3);
    report(rec);
  }

  bool mismatch = false;
  if (!skip_cycle) {
    SimConfig ccfg = cfg;
    ccfg.max_wall_ms = cycle_budget_s * 1e3;
    SimRecord rec = base;
    rec.engine = "cycle";
    rec.workload = "alltoall-flat";
    rec.messages = flat.size();
    rec.bytes = flat_total_bytes;
    Timer t;
    const SimResult res = simulate_cycle(net, *run.rr, flat, ccfg);
    rec.status = status_of(res);
    fill_from_sim(rec, res, t.seconds() * 1e3);
    report(rec);
    if (res.completed &&
        (res.delivered_bytes != records[1].delivered_bytes ||
         res.delivered_packets != records[1].delivered_packets)) {
      std::cerr << "ENGINE DIVERGENCE: cycle delivered "
                << res.delivered_bytes << "B vs event "
                << records[1].delivered_bytes << "B\n";
      mismatch = true;
    }
  }

  table.print();
  if (!json_path.empty()) write_json(json_path, records);
  if (telem.wanted()) {
    telem.finish("bench_sim_scale",
                 {{"smoke", smoke ? "1" : "0"},
                  {"dests", std::to_string(dests.size())},
                  {"vls", std::to_string(vls)},
                  {"messages", std::to_string(flat_count)},
                  {"scenario", scenario_spec}});
  }
  // Acceptance gate: every event-engine run must complete, and when the
  // cycle leg completes too the delivered totals must agree exactly. A
  // cycle leg stopped by its wall budget is the expected full-scale
  // outcome, not a failure.
  if (mismatch) return 2;
  for (const auto& r : records) {
    if (r.engine == "event" && r.status != "completed") return 2;
  }
  return 0;
}
