// Micro-benchmark: Fibonacci heap vs 4-ary heap on the decrease-key-heavy
// workload of Algorithm 1 (the paper mandates O(1) decrease-key for its
// complexity bound; this quantifies the constant-factor tradeoff).
#include <benchmark/benchmark.h>

#include "heap/dary_heap.hpp"
#include "heap/fibonacci_heap.hpp"
#include "util/rng.hpp"

namespace {

using nue::DaryHeap;
using nue::FibonacciHeap;
using nue::Rng;

/// Dijkstra-like access pattern: insert once, decrease several times,
/// extract all in key order.
template <typename Heap>
void run_workload(Heap& heap, std::size_t n, std::size_t decreases,
                  Rng& rng) {
  for (std::uint32_t id = 0; id < n; ++id) {
    heap.insert(id, 1e9 + static_cast<double>(rng.next_below(1u << 30)));
  }
  for (std::size_t i = 0; i < decreases; ++i) {
    const auto id = static_cast<std::uint32_t>(rng.next_below(n));
    if (heap.contains(id)) {
      heap.decrease_key(id, heap.key(id) * rng.next_double());
    }
  }
  while (!heap.empty()) benchmark::DoNotOptimize(heap.extract_min());
}

template <typename Heap>
void BM_HeapDijkstraPattern(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t decreases = 4 * n;  // dense-graph relaxation ratio
  for (auto _ : state) {
    Heap heap(n);
    Rng rng(42);
    run_workload(heap, n, decreases, rng);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n + decreases));
}

BENCHMARK_TEMPLATE(BM_HeapDijkstraPattern, FibonacciHeap<double>)
    ->Arg(1 << 10)
    ->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_HeapDijkstraPattern, DaryHeap<double>)
    ->Arg(1 << 10)
    ->Arg(1 << 14);

template <typename Heap>
void BM_HeapDecreaseKeyOnly(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Heap heap(n);
  Rng rng(7);
  for (std::uint32_t id = 0; id < n; ++id) {
    heap.insert(id, 1e12 + static_cast<double>(id));
  }
  double shrink = 0.999;
  for (auto _ : state) {
    const auto id = static_cast<std::uint32_t>(rng.next_below(n));
    heap.decrease_key(id, heap.key(id) * shrink);
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK_TEMPLATE(BM_HeapDecreaseKeyOnly, FibonacciHeap<double>)
    ->Arg(1 << 14);
BENCHMARK_TEMPLATE(BM_HeapDecreaseKeyOnly, DaryHeap<double>)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
