// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <functional>
#include <iostream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rss.hpp"
#include "util/timer.hpp"

namespace nue::bench {

/// Aggregated telemetry spans of one engine run (e.g. nue.partition,
/// nue.layer, validate.routing) — the per-phase breakdown the BENCH_*.json
/// records carry next to the end-to-end wall time.
struct PhaseTiming {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
};

struct RoutingRun {
  std::string name;
  std::optional<RoutingResult> rr;  // empty = engine inapplicable
  std::string note;                 // failure reason / VL demand info
  double seconds = 0.0;
  std::uint32_t vls = 0;            // VLs used for deadlock freedom
  std::vector<PhaseTiming> phases;  // span aggregates of this run
};

/// Run a routing engine, catching RoutingFailure into an "inapplicable"
/// outcome (the blank bars / missing dots of the paper's figures).
/// Telemetry is enabled for the duration of the run so the engine's phase
/// spans land in `phases` (delta-aggregated: concurrent bench state is
/// not clobbered, earlier spans are not double-counted).
inline RoutingRun run_routing(const std::string& name,
                              const std::function<RoutingResult()>& fn) {
  RoutingRun run;
  run.name = name;
  const telemetry::EnabledScope telem(true);
  const std::size_t mark = telemetry::Tracer::instance().collect();
  Timer t;
  try {
    run.rr.emplace(fn());
    run.seconds = t.seconds();
    run.vls = run.rr->num_vls();
  } catch (const RoutingFailure& e) {
    run.seconds = t.seconds();
    run.note = e.what();
  }
  for (const auto& [span_name, agg] :
       telemetry::Tracer::instance().aggregate_since(mark)) {
    run.phases.push_back(
        {span_name, agg.count, static_cast<double>(agg.total_ns) / 1e6});
  }
  return run;
}

/// JSON array of a run's phase aggregates, for the BENCH_*.json writers.
inline void write_phases_json(std::ostream& os,
                              const std::vector<PhaseTiming>& phases) {
  os << "[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i) os << ", ";
    os << "{\"name\": \"" << phases[i].name << "\", \"count\": "
       << phases[i].count << ", \"total_ms\": " << phases[i].total_ms << "}";
  }
  os << "]";
}

/// Validate + simulate an all-to-all exchange; returns normalized
/// throughput (fraction of terminal line rate) or a failure marker.
inline std::string throughput_cell(const Network& net, const RoutingRun& run,
                                   std::uint32_t message_bytes,
                                   std::uint32_t shift_samples,
                                   double* value_out = nullptr) {
  if (!run.rr) return "n/a";
  const auto rep = validate_routing(net, *run.rr);
  if (!rep.ok()) return "INVALID(" + rep.detail + ")";
  SimConfig cfg;
  const auto msgs = alltoall_shift_messages(net, message_bytes, shift_samples);
  const auto res = simulate(net, *run.rr, msgs, cfg);
  if (res.deadlocked) return "DEADLOCK";
  if (!res.completed) return "TIMEOUT";
  if (value_out) *value_out = res.normalized_throughput;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", res.normalized_throughput);
  return buf;
}

}  // namespace nue::bench
