// Shared helpers for the figure/table reproduction harnesses.
#pragma once

#include <functional>
#include <iostream>
#include <optional>
#include <string>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "util/timer.hpp"

namespace nue::bench {

struct RoutingRun {
  std::string name;
  std::optional<RoutingResult> rr;  // empty = engine inapplicable
  std::string note;                 // failure reason / VL demand info
  double seconds = 0.0;
  std::uint32_t vls = 0;            // VLs used for deadlock freedom
};

/// Run a routing engine, catching RoutingFailure into an "inapplicable"
/// outcome (the blank bars / missing dots of the paper's figures).
inline RoutingRun run_routing(const std::string& name,
                              const std::function<RoutingResult()>& fn) {
  RoutingRun run;
  run.name = name;
  Timer t;
  try {
    run.rr.emplace(fn());
    run.seconds = t.seconds();
    run.vls = run.rr->num_vls();
  } catch (const RoutingFailure& e) {
    run.seconds = t.seconds();
    run.note = e.what();
  }
  return run;
}

/// Validate + simulate an all-to-all exchange; returns normalized
/// throughput (fraction of terminal line rate) or a failure marker.
inline std::string throughput_cell(const Network& net, const RoutingRun& run,
                                   std::uint32_t message_bytes,
                                   std::uint32_t shift_samples,
                                   double* value_out = nullptr) {
  if (!run.rr) return "n/a";
  const auto rep = validate_routing(net, *run.rr);
  if (!rep.ok()) return "INVALID(" + rep.detail + ")";
  SimConfig cfg;
  const auto msgs = alltoall_shift_messages(net, message_bytes, shift_samples);
  const auto res = simulate(net, *run.rr, msgs, cfg);
  if (res.deadlocked) return "DEADLOCK";
  if (!res.completed) return "TIMEOUT";
  if (value_out) *value_out = res.normalized_throughput;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", res.normalized_throughput);
  return buf;
}

}  // namespace nue::bench
