// Ablation study of Nue's design choices (the decisions Sections 4.3,
// 4.5, 4.6.2 and 4.6.3 argue for):
//   - escape-root selection: betweenness-central vs arbitrary,
//   - destination partitioning: multilevel k-way vs random vs clustered,
//   - local backtracking on impasses: on vs off,
//   - island shortcuts: on vs off.
// Metrics per variant (averaged over seeded random topologies): escape
// fallback rate, max/avg edge forwarding index, avg path length.
//
//   --topos N  (default 5)   --vls K (default 2)
#include <iostream>

#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "topology/misc_topologies.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto topos =
      static_cast<std::size_t>(flags.get_int("topos", 5, "topologies"));
  const auto vls = static_cast<std::uint32_t>(
      flags.get_int("vls", 2, "virtual lanes for every variant"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  struct Variant {
    std::string name;
    NueOptions opt;
  };
  std::vector<Variant> variants;
  {
    NueOptions base;
    base.num_vls = vls;
    Variant v{"baseline (paper config)", base};
    variants.push_back(v);
    v = {"root: arbitrary", base};
    v.opt.central_root = false;
    variants.push_back(v);
    v = {"partition: random", base};
    v.opt.partition = PartitionStrategy::kRandom;
    variants.push_back(v);
    v = {"partition: clustered", base};
    v.opt.partition = PartitionStrategy::kClustered;
    variants.push_back(v);
    v = {"backtracking: off", base};
    v.opt.backtracking = false;
    variants.push_back(v);
    v = {"shortcuts: off", base};
    v.opt.shortcuts = false;
    variants.push_back(v);
    v = {"restrictions: fresh per step", base};
    v.opt.sticky_restrictions = false;
    variants.push_back(v);
  }

  std::vector<Stats> fallback(variants.size()), gmax(variants.size()),
      gavg(variants.size()), plen(variants.size());
  std::size_t invalid = 0;
  for (std::size_t t = 0; t < topos; ++t) {
    Rng rng(500 + t);
    RandomSpec spec{60, 180, 6};
    Network net = make_random(spec, rng);
    const auto dests = net.terminals();
    for (std::size_t v = 0; v < variants.size(); ++v) {
      NueOptions opt = variants[v].opt;
      opt.seed = 9000 + t;
      NueStats stats;
      const auto rr = route_nue(net, dests, opt, &stats);
      if (!validate_routing(net, rr).ok()) {
        ++invalid;
        continue;
      }
      const auto g =
          summarize_forwarding_index(net, edge_forwarding_index(net, rr));
      const auto pl = path_length_stats(net, rr);
      fallback[v].add(100.0 * static_cast<double>(stats.fallbacks) /
                      static_cast<double>(dests.size()));
      gmax[v].add(g.max);
      gavg[v].add(g.avg);
      plen[v].add(pl.avg);
    }
    std::cerr << "topology " << (t + 1) << "/" << topos << " done\r";
  }
  std::cerr << "\n";

  std::cout << "Nue ablations (" << topos << " random topologies, k = "
            << vls << ")\n\n";
  Table table({"variant", "fallback %", "G_max", "G_avg", "avg path"});
  for (std::size_t v = 0; v < variants.size(); ++v) {
    table.row() << variants[v].name << fallback[v].mean() << gmax[v].mean()
                << gavg[v].mean() << plen[v].mean();
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  if (invalid) {
    std::cout << "\nWARNING: " << invalid << " invalid routings\n";
    return 1;
  }
  std::cout << "\n(every variant stays deadlock-free; the paper's choices "
               "should win on fallback rate and balance)\n";
  return 0;
}
