// Figure 11 reproduction: routing runtime and applicability on 3D tori of
// growing size (paper: 2x2x2 up to 10x10x10, 4 terminals per switch, 1%
// link failures, 8-VL cap).
//
// Expected shape (paper): Torus-2QoS fastest (~9x faster than Nue);
// Nue faster than DFSSSP; LASH slowest and, like DFSSSP, eventually
// inapplicable (VL demand > 8) — missing table entries; Torus-2QoS fails
// whenever the injected faults break a ring twice; Nue is applicable on
// 100% of the fabrics.
//
//   --max-switches N  largest torus (switch count) to run (default 343 =
//                     7x7x7; paper goes to 1000 = 10x10x10)
//   --fault-pct P     link failure percentage (default 1.0)
//   --threads LIST    comma-separated worker-thread counts to sweep
//                     (default "1"; e.g. 1,2,8 reports parallel speedups)
//   --csv FILE
//   --json FILE       per-(topology, engine, threads) wall-time records
//                     (default BENCH_runtime.json)
#include <cmath>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/validate.hpp"
#include "telemetry/cli.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

struct JsonRecord {
  std::string topology;
  std::string engine;
  std::uint32_t threads;
  double wall_ms;
  bool applicable;
  // Fault injection can fall short of the request (inject_link_failures
  // skips bridges and gives up after a bounded number of attempts); the
  // records carry the achieved count so the fault rate is never mislabeled.
  std::size_t faults_requested;
  std::size_t faults_achieved;
  std::vector<nue::bench::PhaseTiming> phases;  // telemetry span aggregates
  // Process VmHWM right after the run: the high-water mark is monotone
  // over the sweep, so the per-record value shows which fabric size first
  // pushed the footprint up (nullopt = unavailable on this platform; the
  // JSON key is omitted rather than written as a fake 0).
  std::optional<double> peak_rss_mb = nue::peak_rss_mb();
};

std::vector<std::uint32_t> parse_thread_list(const std::string& s) {
  std::vector<std::uint32_t> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }
  if (out.empty()) out.push_back(1);
  return out;
}

void write_json(const std::string& path, const std::vector<JsonRecord>& recs) {
  std::ofstream os(path);
  os << "[\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << "  {\"topology\": \"" << r.topology << "\", \"engine\": \""
       << r.engine << "\", \"threads\": " << r.threads
       << ", \"wall_ms\": " << r.wall_ms
       << ", \"applicable\": " << (r.applicable ? "true" : "false")
       << ", \"faults_requested\": " << r.faults_requested
       << ", \"faults_achieved\": " << r.faults_achieved;
    if (r.peak_rss_mb) os << ", \"peak_rss_mb\": " << *r.peak_rss_mb;
    os << ", \"phases\": ";
    nue::bench::write_phases_json(os, r.phases);
    os << "}" << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  using namespace nue::bench;
  Flags flags(argc, argv);
  const auto max_switches = static_cast<std::uint32_t>(flags.get_int(
      "max-switches", 343, "largest torus size in switches (paper: 1000)"));
  const double fault_pct =
      flags.get_double("fault-pct", 1.0, "percentage of failed links");
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 11, "fault seed"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  const auto thread_list = parse_thread_list(flags.get_string(
      "threads", "1", "comma-separated worker-thread counts to sweep"));
  const std::string json_path = flags.get_string(
      "json", "BENCH_runtime.json",
      "per-(topology, engine, threads) wall-time JSON ('' = skip)");
  telemetry::Cli telem;
  telem.register_flags(flags);
  if (!flags.finish()) return 1;

  // The paper's dimension sequence: 2x2x2, 2x2x3, 2x3x3, 3x3x3, ...
  std::vector<std::vector<std::uint32_t>> sizes;
  for (std::uint32_t base = 2; base <= 9; ++base) {
    sizes.push_back({base, base, base});
    sizes.push_back({base, base, base + 1});
    sizes.push_back({base, base + 1, base + 1});
  }
  sizes.push_back({10, 10, 10});  // the paper's 25th and largest torus

  Table table({"torus", "terminals", "faults", "torus-2qos [s]", "lash [s]",
               "dfsssp [s]", "nue-8 [s]"});
  std::vector<JsonRecord> records;
  for (const auto& dims : sizes) {
    const std::uint32_t nsw = dims[0] * dims[1] * dims[2];
    if (nsw > max_switches) break;
    TorusSpec spec{dims, 4, 1};
    Network net = make_torus(spec);
    Rng rng(seed + nsw);
    const auto faults_requested = static_cast<std::size_t>(
        std::ceil(fault_pct / 100.0 * 3.0 * nsw));
    const auto faults = inject_link_failures(net, faults_requested, rng);
    if (faults < faults_requested) {
      std::cerr << "warning: only " << faults << "/" << faults_requested
                << " link failures injectable on " << dims[0] << "x"
                << dims[1] << "x" << dims[2] << "\n";
    }
    const auto dests = net.terminals();

    auto cell = [&](const RoutingRun& run) -> std::string {
      if (!run.rr) return "fail";
      // Validate (cheap relative to routing) but report pure routing time,
      // matching the paper's measurement.
      const auto rep = validate_routing(net, *run.rr);
      if (!rep.ok()) return "INVALID";
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3f", run.seconds);
      return buf;
    };

    const std::string label = std::to_string(dims[0]) + "x" +
                              std::to_string(dims[1]) + "x" +
                              std::to_string(dims[2]);

    // Torus-2QoS has no parallel phase: one serial run per fabric.
    const auto qos = run_routing(
        "qos", [&] { return route_torus_qos(net, spec, dests); });
    records.push_back({label, "torus-2qos", 1, qos.seconds * 1e3,
                       qos.rr.has_value(), faults_requested, faults,
                       qos.phases});

    // The threaded engines sweep every requested worker count; the table
    // shows the first entry (default 1 = the legacy serial measurement).
    RoutingRun lash, dfsssp, nue;
    for (std::size_t ti = 0; ti < thread_list.size(); ++ti) {
      const std::uint32_t t = thread_list[ti];
      const auto lash_t = run_routing("lash", [&] {
        return route_lash(net, dests, {.max_vls = 8, .num_threads = t});
      });
      const auto dfsssp_t = run_routing("dfsssp", [&] {
        return route_dfsssp(net, dests, {.max_vls = 8, .num_threads = t});
      });
      const auto nue_t = run_routing("nue", [&] {
        NueOptions opt;
        opt.num_vls = 8;
        opt.num_threads = t;
        return route_nue(net, dests, opt);
      });
      records.push_back({label, "lash", t, lash_t.seconds * 1e3,
                         lash_t.rr.has_value(), faults_requested, faults,
                         lash_t.phases});
      records.push_back({label, "dfsssp", t, dfsssp_t.seconds * 1e3,
                         dfsssp_t.rr.has_value(), faults_requested, faults,
                         dfsssp_t.phases});
      records.push_back({label, "nue", t, nue_t.seconds * 1e3,
                         nue_t.rr.has_value(), faults_requested, faults,
                         nue_t.phases});
      if (ti == 0) {
        lash = lash_t;
        dfsssp = dfsssp_t;
        nue = nue_t;
      } else if (nue_t.rr) {
        std::cerr << label << " nue threads=" << t << ": "
                  << nue_t.seconds * 1e3 << " ms ("
                  << (nue.seconds / nue_t.seconds) << "x vs threads="
                  << thread_list[0] << ")\n";
      }
    }

    table.row() << label << dests.size() << faults << cell(qos) << cell(lash)
                << cell(dfsssp) << cell(nue);
    std::cerr << label << " done\n";
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  if (!json_path.empty()) write_json(json_path, records);
  if (telem.wanted()) {
    telem.finish("bench_fig11_runtime",
                 {{"max_switches", std::to_string(max_switches)},
                  {"fault_pct", std::to_string(fault_pct)},
                  {"seed", std::to_string(seed)}});
  }
  std::cout << "\n('fail' = engine inapplicable: VL demand above 8 for "
               "LASH/DFSSSP, broken ring for Torus-2QoS —\n the paper's "
               "missing dots. Nue must never fail.)\n";
  return 0;
}
