// Extension bench: oblivious Nue vs Duato-style adaptive routing with
// escape channels (§4.2's origin of the escape-path idea). InfiniBand
// cannot route adaptively — which is exactly why Nue exists — but the
// comparison quantifies the gap a destination-based oblivious routing
// gives up, per topology and VL budget.
#include <iostream>

#include "nue/nue_routing.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto shifts = static_cast<std::uint32_t>(
      flags.get_int("shift-samples", 16, "all-to-all shift phases (0=all)"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  struct Topo {
    std::string name;
    Network net;
  };
  std::vector<Topo> topos;
  {
    TorusSpec spec{{4, 4, 3}, 2, 1};
    topos.push_back({"4x4x3 torus", make_torus(spec)});
  }
  {
    Rng rng(77);
    RandomSpec spec{40, 120, 3};
    topos.push_back({"random 40sw", make_random(spec, rng)});
  }
  {
    HyperXSpec spec;
    spec.shape = {4, 4};
    spec.terminals_per_switch = 3;
    topos.push_back({"hyperx 4x4", make_hyperx(spec)});
  }

  Table table({"topology", "scheme", "VLs", "throughput", "avg latency"});
  for (const auto& topo : topos) {
    const Network& net = topo.net;
    const auto dests = net.terminals();
    const auto msgs = alltoall_shift_messages(net, 2048, shifts);
    const auto escape = route_updown(net, dests);
    NUE_CHECK(validate_routing(net, escape).ok());
    for (std::uint32_t k : {2u, 4u}) {
      {
        NueOptions opt;
        opt.num_vls = k;
        const auto rr = route_nue(net, dests, opt);
        const auto res = simulate(net, rr, msgs, SimConfig{});
        table.row() << topo.name << "nue (oblivious)" << k
                    << res.normalized_throughput << res.avg_packet_latency;
      }
      {
        // Same VL budget: k-1 adaptive lanes + 1 escape lane.
        const auto res = simulate_adaptive(net, escape, k - 1, msgs,
                                           SimConfig{});
        table.row() << topo.name << "adaptive+escape" << k
                    << res.normalized_throughput << res.avg_packet_latency;
      }
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  std::cout << "\n(same total VL budget per pair of rows; the adaptive "
               "scheme needs hardware\n InfiniBand does not have — the gap "
               "is the price of destination-based tables)\n";
  return 0;
}
