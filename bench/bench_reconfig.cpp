// Live-reconfiguration bench (docs/RESILIENCE.md): replay a pure
// link-failure event stream (10% of the switch-to-switch links, the
// fail-in-place regime of [7]) over Fig. 11's 3D tori through the
// resilience manager, and compare the manager's per-event repair cost
// against a full Nue recompute of the same degraded fabric.
//
// Reported per torus: hitless/drained split, median and p99 repair
// latency, the median full-recompute latency, and the median per-event
// speedup of the incrementally repaired (hitless) events — the headline
// number: incremental repair is expected >= 5x faster than recomputing.
//
// Storm mode (--storm N > 0) instead replays a sustained fault/repair
// storm — N events per topology, drawn with a repair-heavy restore
// fraction so the fabric keeps churning indefinitely — over a Fig. 11
// tori subset plus a Dragonfly, twice per topology: once with the wave
// scheduler enabled (the shipping default) and once with it disabled
// (the drained-recompute baseline). Reported per topology: gate-failure
// drains on both sides (the headline: zero with waves, nonzero without),
// wave-chain counts and the observed staleness bound (longest chain, in
// epochs), repair-latency p50/p99, the sustained event rate, and whether
// a final resync() landed byte-identical to an offline recompute of the
// end-state fabric. Storm mode pins vls=2/max_vls=4 — the budget regime
// where dependency-heavy tables make the union gate fail regularly;
// larger budgets make most transitions trivially compatible and the
// comparison meaningless.
//
//   --max-switches N  largest torus to run (default 125 = 5x5x5)
//   --fault-pct P     percentage of links to fail (default 10.0)
//   --vls K           virtual lanes for the repair engine (default 4)
//   --terminals T     terminals per switch (default 2)
//   --threads N       routing worker threads (default 1)
//   --seed S          fault-trace seed (default 31)
//   --storm N         storm mode: N fault/repair events per topology
//   --restore F       storm restore fraction (default 0.5)
//   --csv FILE        CSV output path ('' = skip)
//   --json FILE       per-topology records (default BENCH_reconfig.json)
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "resilience/resilience.hpp"
#include "routing/dump.hpp"
#include "routing/validate.hpp"
#include "service/json.hpp"
#include "service/service.hpp"
#include "telemetry/cli.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/faults.hpp"
#include "topology/generate.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(q * (v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

struct TopoRecord {
  std::string torus;
  std::size_t events = 0;
  std::size_t noops = 0;
  std::size_t hitless = 0;
  std::size_t drained = 0;
  double median_incremental_ms = 0.0;
  double p99_repair_ms = 0.0;
  double median_full_ms = 0.0;
  double speedup_median = 0.0;  // median over hitless events of full/repair
  std::vector<nue::bench::PhaseTiming> phases;  // replay span aggregates
};

void write_json(const std::string& path, const std::vector<TopoRecord>& recs,
                double overall) {
  std::ofstream os(path);
  os << "{\n  \"overall_speedup_median\": " << overall;
  if (const auto rss = nue::peak_rss_mb()) {
    os << ",\n  \"peak_rss_mb\": " << *rss;
  }
  os << ",\n  \"topologies\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << "    {\"torus\": \"" << r.torus << "\", \"events\": " << r.events
       << ", \"noops\": " << r.noops << ", \"hitless\": " << r.hitless
       << ", \"drained\": " << r.drained
       << ", \"median_incremental_ms\": " << r.median_incremental_ms
       << ", \"p99_repair_ms\": " << r.p99_repair_ms
       << ", \"median_full_ms\": " << r.median_full_ms
       << ", \"speedup_median\": " << r.speedup_median
       << ", \"phases\": ";
    nue::bench::write_phases_json(os, r.phases);
    os << "}" << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

// --- storm mode -------------------------------------------------------------

struct StormRecord {
  std::string topo;
  std::size_t events = 0;
  std::size_t transitions = 0;
  std::size_t noops = 0;
  std::size_t hitless = 0;
  std::size_t drains = 0;           // gate-failure drains, waves enabled
  std::size_t wave_chains = 0;      // gate failures the scheduler staged
  std::size_t wave_commits = 0;     // epochs those chains committed
  std::size_t max_chain_epochs = 0; // observed staleness bound (epochs)
  std::size_t baseline_drains = 0;  // same trace, wave scheduler disabled
  double p50_repair_ms = 0.0;
  double p99_repair_ms = 0.0;
  double events_per_sec = 0.0;
  bool resync_matches_offline = false;
  // Daemon-side live plane: the same trace replayed through
  // ManagerService::handle with the journal armed and metrics scrapes
  // interleaved — the request-latency SLO and journal throughput a
  // resident nue_managerd would report for this storm.
  double svc_p50_request_us = 0.0;
  double svc_p99_request_us = 0.0;
  double journal_entries_per_sec = 0.0;
};

std::vector<std::pair<std::uint64_t, std::uint64_t>> request_us_buckets() {
  for (const auto& h :
       nue::telemetry::Registry::instance().histogram_snapshot()) {
    if (h.name == "service.request_us") return h.buckets;
  }
  return {};
}

/// Replay the trace through the full service path (dispatcher, commit
/// hooks, journal, scrapes) and fold the daemon-side SLOs into `rec`.
/// The registry is process-global, so latencies are taken as the bucket
/// delta across this run (the bench may storm several topologies).
void measure_service_path(const std::string& topo,
                          const nue::FaultTrace& trace,
                          const nue::resilience::RepairPolicy& policy,
                          StormRecord& rec) {
  using nue::service::Json;
  const nue::telemetry::EnabledScope telem_on(true);
  const auto before = request_us_buckets();
  nue::service::ManagerService svc;
  svc.load("storm", topo, policy);
  const std::uint64_t journal_before = svc.journal().total();

  nue::Timer wall;
  std::size_t applied = 0;
  for (const nue::FaultEvent& e : trace.events) {
    Json req = Json::object();
    req.set("op", "event");
    req.set("fabric", "storm");
    req.set("kind", nue::fault_event_name(e.kind));
    req.set("id", e.id);
    NUE_CHECK(svc.handle(req).boolean("ok"));
    if (++applied % 16 == 0) {
      NUE_CHECK(svc.handle(Json::parse(R"({"op":"metrics"})")).boolean("ok"));
      NUE_CHECK(svc.handle(Json::parse(R"({"op":"journal"})")).boolean("ok"));
    }
  }
  const double secs = wall.millis() / 1000.0;

  // Non-empty buckets only, sorted by edge; counts never shrink, so the
  // before-set of edges is a subset of the after-set.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> delta;
  std::size_t bi = 0;
  for (const auto& [le, n] : request_us_buckets()) {
    std::uint64_t prev = 0;
    if (bi < before.size() && before[bi].first == le) {
      prev = before[bi].second;
      ++bi;
    }
    delta.emplace_back(le, n - prev);
  }
  rec.svc_p50_request_us = nue::telemetry::quantile_from_buckets(delta, 0.5);
  rec.svc_p99_request_us = nue::telemetry::quantile_from_buckets(delta, 0.99);
  const std::uint64_t journaled = svc.journal().total() - journal_before;
  rec.journal_entries_per_sec = secs > 0 ? journaled / secs : 0.0;
}

StormRecord run_storm(const std::string& topo, std::size_t events,
                      std::uint64_t seed, double restore,
                      std::uint32_t threads) {
  using namespace nue;
  Network net = generate_topology(topo).net;
  const FaultTrace trace = draw_fault_trace(net, topo, seed, events, restore);
  if (trace.events.size() < events) {
    std::cerr << "warning: only " << trace.events.size() << "/" << events
              << " events drawable on " << topo << "\n";
  }

  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kNue;
  policy.vls = 2;
  policy.max_vls = 4;
  policy.seed = seed;
  policy.num_threads = threads;
  policy.log_max_records = 256;

  StormRecord rec;
  rec.topo = topo;
  std::vector<double> repair_ms;
  resilience::ResilienceManager mgr(net, policy);
  Timer wall;
  for (const FaultEvent& e : trace.events) {
    const TransitionRecord tr = mgr.apply(e);
    ++rec.events;
    if (tr.committed_step == "noop") {
      ++rec.noops;
      continue;
    }
    ++rec.transitions;
    repair_ms.push_back(tr.repair_ms);
    if (tr.hitless) ++rec.hitless;
    if (tr.drained) ++rec.drains;
    if (tr.wave_count > 0) {
      ++rec.wave_chains;
      rec.wave_commits += tr.wave_count;
      rec.max_chain_epochs =
          std::max<std::size_t>(rec.max_chain_epochs, tr.wave_count);
    }
  }
  const double secs = wall.millis() / 1000.0;
  rec.events_per_sec = secs > 0 ? rec.events / secs : 0.0;
  rec.p50_repair_ms = quantile(repair_ms, 0.5);
  rec.p99_repair_ms = quantile(repair_ms, 0.99);

  // Convergence anchor: after the storm, one resync() must land exactly
  // where an offline recompute of the end-state fabric lands — waves may
  // only change HOW the manager got there, never where it is.
  mgr.resync();
  Network offline = generate_topology(topo).net;
  for (const FaultEvent& e : trace.events) apply_fault_event(offline, e);
  resilience::ResilienceManager fresh(std::move(offline), policy);
  std::ostringstream live_dump, fresh_dump;
  write_forwarding_tables(live_dump, mgr.net(), *mgr.table());
  write_forwarding_tables(fresh_dump, fresh.net(), *fresh.table());
  rec.resync_matches_offline = live_dump.str() == fresh_dump.str();

  // The baseline: identical trace, wave scheduler off — every chain the
  // run above staged is forced through the drained-recompute fallback.
  resilience::RepairPolicy no_waves = policy;
  no_waves.enable_waves = false;
  resilience::ResilienceManager base(std::move(net), no_waves);
  for (const FaultEvent& e : trace.events) {
    if (base.apply(e).drained) ++rec.baseline_drains;
  }

  measure_service_path(topo, trace, policy, rec);
  return rec;
}

void write_storm_json(const std::string& path,
                      const std::vector<StormRecord>& recs) {
  std::ofstream os(path);
  os << "{\n";
  if (const auto rss = nue::peak_rss_mb()) {
    os << "  \"peak_rss_mb\": " << *rss << ",\n";
  }
  os << "  \"storm\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << "    {\"topo\": \"" << r.topo << "\", \"events\": " << r.events
       << ", \"transitions\": " << r.transitions << ", \"noops\": " << r.noops
       << ", \"hitless\": " << r.hitless << ", \"drains\": " << r.drains
       << ", \"wave_chains\": " << r.wave_chains
       << ", \"wave_commits\": " << r.wave_commits
       << ", \"max_chain_epochs\": " << r.max_chain_epochs
       << ", \"baseline_drains\": " << r.baseline_drains
       << ", \"p50_repair_ms\": " << r.p50_repair_ms
       << ", \"p99_repair_ms\": " << r.p99_repair_ms
       << ", \"events_per_sec\": " << r.events_per_sec
       << ", \"svc_p50_request_us\": " << r.svc_p50_request_us
       << ", \"svc_p99_request_us\": " << r.svc_p99_request_us
       << ", \"journal_entries_per_sec\": " << r.journal_entries_per_sec
       << ", \"resync_matches_offline\": "
       << (r.resync_matches_offline ? "true" : "false") << "}"
       << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto max_switches = static_cast<std::uint32_t>(flags.get_int(
      "max-switches", 125, "largest torus size in switches"));
  const double fault_pct =
      flags.get_double("fault-pct", 10.0, "percentage of failed links");
  const auto vls =
      static_cast<std::uint32_t>(flags.get_int("vls", 4, "virtual lanes"));
  const auto terminals = static_cast<std::uint32_t>(
      flags.get_int("terminals", 2, "terminals per switch"));
  const auto threads = static_cast<std::uint32_t>(
      flags.get_int("threads", 1, "routing worker threads"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 31, "fault seed"));
  const auto storm_events = static_cast<std::size_t>(flags.get_int(
      "storm", 0, "storm mode: fault/repair events per topology (0 = off)"));
  const double restore =
      flags.get_double("restore", 0.5, "storm restore fraction");
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  const std::string json_path = flags.get_string(
      "json", "BENCH_reconfig.json", "per-topology JSON ('' = skip)");
  telemetry::Cli telem;
  telem.register_flags(flags);
  if (!flags.finish()) return 1;

  if (storm_events > 0) {
    // Fig. 11 tori subset plus a 36-switch Dragonfly(4,2,2,9) — the
    // topology family where global links concentrate dependencies and
    // gate failures are routine.
    const std::vector<std::string> topos = {"torus:3x3x3:1", "torus:4x4x4:1",
                                            "dragonfly:4:2:2:9"};
    Table storm_table({"topology", "events", "hitless", "drains",
                       "waves (chains/epochs)", "max chain", "base drains",
                       "p50 [ms]", "p99 [ms]", "ev/s", "svc p50/p99 [us]",
                       "jrnl/s", "resync=="});
    std::vector<StormRecord> storms;
    bool all_zero_drain = true, all_resync = true;
    for (std::size_t i = 0; i < topos.size(); ++i) {
      StormRecord r =
          run_storm(topos[i], storm_events, seed + i, restore, threads);
      std::ostringstream waves, svc_us;
      waves << r.wave_chains << "/" << r.wave_commits;
      svc_us << r.svc_p50_request_us << "/" << r.svc_p99_request_us;
      storm_table.row() << r.topo << r.events << r.hitless << r.drains
                        << waves.str() << r.max_chain_epochs
                        << r.baseline_drains << r.p50_repair_ms
                        << r.p99_repair_ms << r.events_per_sec
                        << svc_us.str() << r.journal_entries_per_sec
                        << (r.resync_matches_offline ? "yes" : "NO");
      all_zero_drain = all_zero_drain && r.drains == 0;
      all_resync = all_resync && r.resync_matches_offline;
      storms.push_back(std::move(r));
    }
    storm_table.print(std::cout);
    std::cout << (all_zero_drain
                      ? "zero gate-failure drains with waves enabled\n"
                      : "DRAINS OCCURRED with waves enabled (see table)\n");
    if (!csv.empty()) storm_table.write_csv(csv);
    if (!json_path.empty()) write_storm_json(json_path, storms);
    if (telem.wanted()) {
      telem.finish("bench_reconfig",
                   {{"storm", std::to_string(storm_events)},
                    {"restore", std::to_string(restore)},
                    {"seed", std::to_string(seed)},
                    {"threads", std::to_string(threads)}});
    }
    return all_resync ? 0 : 1;
  }

  std::vector<std::vector<std::uint32_t>> sizes = {
      {3, 3, 3}, {4, 4, 4}, {5, 5, 5}, {6, 6, 6}, {7, 7, 7}};

  Table table({"torus", "events", "hitless", "drained", "incr med [ms]",
               "p99 [ms]", "full med [ms]", "speedup"});
  std::vector<TopoRecord> records;
  std::vector<double> all_speedups;
  for (const auto& dims : sizes) {
    const std::uint32_t nsw = dims[0] * dims[1] * dims[2];
    if (nsw > max_switches) break;
    TorusSpec spec{dims, terminals, 1};
    Network net = make_torus(spec);
    std::ostringstream gen;
    gen << "torus:" << dims[0] << "x" << dims[1] << "x" << dims[2] << ":"
        << terminals;

    // A torus has 3*nsw duplex switch-to-switch links; fail fault_pct% of
    // them, downs only (restore_fraction 0 = the fail-in-place regime).
    const auto want = static_cast<std::size_t>(
        std::ceil(fault_pct / 100.0 * 3.0 * nsw));
    const FaultTrace trace =
        draw_fault_trace(net, gen.str(), seed + nsw, want, 0.0);
    if (trace.events.size() < want) {
      std::cerr << "warning: only " << trace.events.size() << "/" << want
                << " failures drawable on " << gen.str() << "\n";
    }

    resilience::RepairPolicy policy;
    policy.engine = resilience::Engine::kNue;
    policy.vls = vls;
    policy.max_vls = std::max(vls, 8u);
    policy.seed = seed;
    policy.num_threads = threads;
    resilience::ResilienceManager mgr(std::move(net), policy);

    NueOptions full_opt;
    full_opt.num_vls = vls;
    full_opt.seed = seed;
    full_opt.num_threads = threads;

    TopoRecord rec;
    rec.torus = gen.str();
    // Per-phase attribution of the replay loop (resilience.event, ladder
    // rungs, validate.*) via telemetry span deltas.
    const telemetry::EnabledScope telem_on(true);
    const std::size_t mark = telemetry::Tracer::instance().collect();
    std::vector<double> incremental_ms, repair_ms, full_ms, speedups;
    for (const FaultEvent& e : trace.events) {
      const TransitionRecord tr = mgr.apply(e);
      ++rec.events;
      if (tr.committed_step == "noop") {
        ++rec.noops;
        continue;
      }
      repair_ms.push_back(tr.repair_ms);
      // Reference cost: a from-scratch recompute of the same degraded
      // fabric plus the full-table validation the ladder runs before any
      // commit — exactly what the drained path pays. repair_ms on the
      // incremental side likewise includes its (subset) validation and
      // the union-CDG gate, so the two sides measure the same
      // event-to-committed-table latency.
      Timer t;
      const RoutingResult fresh =
          route_nue(mgr.net(), mgr.net().terminals(), full_opt);
      NUE_CHECK(validate_routing(mgr.net(), fresh).ok());
      const double f_ms = t.millis();
      full_ms.push_back(f_ms);
      if (tr.hitless) {
        ++rec.hitless;
        incremental_ms.push_back(tr.repair_ms);
        speedups.push_back(f_ms / tr.repair_ms);
        all_speedups.push_back(f_ms / tr.repair_ms);
      } else if (tr.drained) {
        ++rec.drained;
      }
    }
    rec.median_incremental_ms = quantile(incremental_ms, 0.5);
    rec.p99_repair_ms = quantile(repair_ms, 0.99);
    rec.median_full_ms = quantile(full_ms, 0.5);
    rec.speedup_median = quantile(speedups, 0.5);
    for (const auto& [span_name, agg] :
         telemetry::Tracer::instance().aggregate_since(mark)) {
      rec.phases.push_back(
          {span_name, agg.count, static_cast<double>(agg.total_ns) / 1e6});
    }
    records.push_back(rec);
    table.row() << rec.torus << rec.events << rec.hitless << rec.drained
                << rec.median_incremental_ms << rec.p99_repair_ms
                << rec.median_full_ms << rec.speedup_median;
  }
  const double overall = quantile(all_speedups, 0.5);
  table.print(std::cout);
  std::cout << "overall median speedup (hitless incremental vs full "
               "recompute): "
            << overall << "x\n";
  if (!csv.empty()) table.write_csv(csv);
  if (!json_path.empty()) write_json(json_path, records, overall);
  if (telem.wanted()) {
    telem.finish("bench_reconfig", {{"fault_pct", std::to_string(fault_pct)},
                                    {"vls", std::to_string(vls)},
                                    {"seed", std::to_string(seed)},
                                    {"threads", std::to_string(threads)}});
  }
  return 0;
}
