// Live-reconfiguration bench (docs/RESILIENCE.md): replay a pure
// link-failure event stream (10% of the switch-to-switch links, the
// fail-in-place regime of [7]) over Fig. 11's 3D tori through the
// resilience manager, and compare the manager's per-event repair cost
// against a full Nue recompute of the same degraded fabric.
//
// Reported per torus: hitless/drained split, median and p99 repair
// latency, the median full-recompute latency, and the median per-event
// speedup of the incrementally repaired (hitless) events — the headline
// number: incremental repair is expected >= 5x faster than recomputing.
//
//   --max-switches N  largest torus to run (default 125 = 5x5x5)
//   --fault-pct P     percentage of links to fail (default 10.0)
//   --vls K           virtual lanes for the repair engine (default 4)
//   --terminals T     terminals per switch (default 2)
//   --threads N       routing worker threads (default 1)
//   --seed S          fault-trace seed (default 31)
//   --csv FILE        CSV output path ('' = skip)
//   --json FILE       per-topology records (default BENCH_reconfig.json)
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "resilience/resilience.hpp"
#include "routing/validate.hpp"
#include "telemetry/cli.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto i = static_cast<std::size_t>(q * (v.size() - 1) + 0.5);
  return v[std::min(i, v.size() - 1)];
}

struct TopoRecord {
  std::string torus;
  std::size_t events = 0;
  std::size_t noops = 0;
  std::size_t hitless = 0;
  std::size_t drained = 0;
  double median_incremental_ms = 0.0;
  double p99_repair_ms = 0.0;
  double median_full_ms = 0.0;
  double speedup_median = 0.0;  // median over hitless events of full/repair
  std::vector<nue::bench::PhaseTiming> phases;  // replay span aggregates
};

void write_json(const std::string& path, const std::vector<TopoRecord>& recs,
                double overall) {
  std::ofstream os(path);
  os << "{\n  \"overall_speedup_median\": " << overall;
  if (const auto rss = nue::peak_rss_mb()) {
    os << ",\n  \"peak_rss_mb\": " << *rss;
  }
  os << ",\n  \"topologies\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << "    {\"torus\": \"" << r.torus << "\", \"events\": " << r.events
       << ", \"noops\": " << r.noops << ", \"hitless\": " << r.hitless
       << ", \"drained\": " << r.drained
       << ", \"median_incremental_ms\": " << r.median_incremental_ms
       << ", \"p99_repair_ms\": " << r.p99_repair_ms
       << ", \"median_full_ms\": " << r.median_full_ms
       << ", \"speedup_median\": " << r.speedup_median
       << ", \"phases\": ";
    nue::bench::write_phases_json(os, r.phases);
    os << "}" << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto max_switches = static_cast<std::uint32_t>(flags.get_int(
      "max-switches", 125, "largest torus size in switches"));
  const double fault_pct =
      flags.get_double("fault-pct", 10.0, "percentage of failed links");
  const auto vls =
      static_cast<std::uint32_t>(flags.get_int("vls", 4, "virtual lanes"));
  const auto terminals = static_cast<std::uint32_t>(
      flags.get_int("terminals", 2, "terminals per switch"));
  const auto threads = static_cast<std::uint32_t>(
      flags.get_int("threads", 1, "routing worker threads"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 31, "fault seed"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  const std::string json_path = flags.get_string(
      "json", "BENCH_reconfig.json", "per-topology JSON ('' = skip)");
  telemetry::Cli telem;
  telem.register_flags(flags);
  if (!flags.finish()) return 1;

  std::vector<std::vector<std::uint32_t>> sizes = {
      {3, 3, 3}, {4, 4, 4}, {5, 5, 5}, {6, 6, 6}, {7, 7, 7}};

  Table table({"torus", "events", "hitless", "drained", "incr med [ms]",
               "p99 [ms]", "full med [ms]", "speedup"});
  std::vector<TopoRecord> records;
  std::vector<double> all_speedups;
  for (const auto& dims : sizes) {
    const std::uint32_t nsw = dims[0] * dims[1] * dims[2];
    if (nsw > max_switches) break;
    TorusSpec spec{dims, terminals, 1};
    Network net = make_torus(spec);
    std::ostringstream gen;
    gen << "torus:" << dims[0] << "x" << dims[1] << "x" << dims[2] << ":"
        << terminals;

    // A torus has 3*nsw duplex switch-to-switch links; fail fault_pct% of
    // them, downs only (restore_fraction 0 = the fail-in-place regime).
    const auto want = static_cast<std::size_t>(
        std::ceil(fault_pct / 100.0 * 3.0 * nsw));
    const FaultTrace trace =
        draw_fault_trace(net, gen.str(), seed + nsw, want, 0.0);
    if (trace.events.size() < want) {
      std::cerr << "warning: only " << trace.events.size() << "/" << want
                << " failures drawable on " << gen.str() << "\n";
    }

    resilience::RepairPolicy policy;
    policy.engine = resilience::Engine::kNue;
    policy.vls = vls;
    policy.max_vls = std::max(vls, 8u);
    policy.seed = seed;
    policy.num_threads = threads;
    resilience::ResilienceManager mgr(std::move(net), policy);

    NueOptions full_opt;
    full_opt.num_vls = vls;
    full_opt.seed = seed;
    full_opt.num_threads = threads;

    TopoRecord rec;
    rec.torus = gen.str();
    // Per-phase attribution of the replay loop (resilience.event, ladder
    // rungs, validate.*) via telemetry span deltas.
    const telemetry::EnabledScope telem_on(true);
    const std::size_t mark = telemetry::Tracer::instance().collect();
    std::vector<double> incremental_ms, repair_ms, full_ms, speedups;
    for (const FaultEvent& e : trace.events) {
      const TransitionRecord tr = mgr.apply(e);
      ++rec.events;
      if (tr.committed_step == "noop") {
        ++rec.noops;
        continue;
      }
      repair_ms.push_back(tr.repair_ms);
      // Reference cost: a from-scratch recompute of the same degraded
      // fabric plus the full-table validation the ladder runs before any
      // commit — exactly what the drained path pays. repair_ms on the
      // incremental side likewise includes its (subset) validation and
      // the union-CDG gate, so the two sides measure the same
      // event-to-committed-table latency.
      Timer t;
      const RoutingResult fresh =
          route_nue(mgr.net(), mgr.net().terminals(), full_opt);
      NUE_CHECK(validate_routing(mgr.net(), fresh).ok());
      const double f_ms = t.millis();
      full_ms.push_back(f_ms);
      if (tr.hitless) {
        ++rec.hitless;
        incremental_ms.push_back(tr.repair_ms);
        speedups.push_back(f_ms / tr.repair_ms);
        all_speedups.push_back(f_ms / tr.repair_ms);
      } else if (tr.drained) {
        ++rec.drained;
      }
    }
    rec.median_incremental_ms = quantile(incremental_ms, 0.5);
    rec.p99_repair_ms = quantile(repair_ms, 0.99);
    rec.median_full_ms = quantile(full_ms, 0.5);
    rec.speedup_median = quantile(speedups, 0.5);
    for (const auto& [span_name, agg] :
         telemetry::Tracer::instance().aggregate_since(mark)) {
      rec.phases.push_back(
          {span_name, agg.count, static_cast<double>(agg.total_ns) / 1e6});
    }
    records.push_back(rec);
    table.row() << rec.torus << rec.events << rec.hitless << rec.drained
                << rec.median_incremental_ms << rec.p99_repair_ms
                << rec.median_full_ms << rec.speedup_median;
  }
  const double overall = quantile(all_speedups, 0.5);
  table.print(std::cout);
  std::cout << "overall median speedup (hitless incremental vs full "
               "recompute): "
            << overall << "x\n";
  if (!csv.empty()) table.write_csv(csv);
  if (!json_path.empty()) write_json(json_path, records, overall);
  if (telem.wanted()) {
    telem.finish("bench_reconfig", {{"fault_pct", std::to_string(fault_pct)},
                                    {"vls", std::to_string(vls)},
                                    {"seed", std::to_string(seed)},
                                    {"threads", std::to_string(threads)}});
  }
  return 0;
}
