// Micro-benchmarks of the routing engines themselves (google-benchmark):
// per-engine wall time on a fixed mid-size irregular fabric, plus the
// ω-memoization effectiveness counters of Nue's cycle search (§4.6.1) —
// the fraction of dependency checks resolved in O(1).
#include <benchmark/benchmark.h>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/updown.hpp"
#include "topology/misc_topologies.hpp"
#include "util/rng.hpp"

namespace {

using namespace nue;

Network bench_network() {
  Rng rng(321);
  RandomSpec spec{64, 200, 4};
  return make_random(spec, rng);
}

void BM_RouteUpDown(benchmark::State& state) {
  const Network net = bench_network();
  const auto dests = net.terminals();
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_updown(net, dests));
  }
}
BENCHMARK(BM_RouteUpDown)->Unit(benchmark::kMillisecond);

void BM_RouteDfsssp(benchmark::State& state) {
  const Network net = bench_network();
  const auto dests = net.terminals();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        route_dfsssp(net, dests, {.max_vls = 16, .allow_exceed = true}));
  }
}
BENCHMARK(BM_RouteDfsssp)->Unit(benchmark::kMillisecond);

void BM_RouteLash(benchmark::State& state) {
  const Network net = bench_network();
  const auto dests = net.terminals();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        route_lash(net, dests, {.max_vls = 16, .allow_exceed = true}));
  }
}
BENCHMARK(BM_RouteLash)->Unit(benchmark::kMillisecond);

void BM_RouteNue(benchmark::State& state) {
  const Network net = bench_network();
  const auto dests = net.terminals();
  NueOptions opt;
  opt.num_vls = static_cast<std::uint32_t>(state.range(0));
  opt.num_threads = static_cast<std::uint32_t>(state.range(1));
  NueStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_nue(net, dests, opt, &stats));
  }
  // ω effectiveness: how many dependency decisions avoided a graph search.
  const double total = static_cast<double>(
      stats.fast_accepts + stats.cycle_searches + 1);
  state.counters["o1_decision_frac"] =
      static_cast<double>(stats.fast_accepts) / total;
  state.counters["dfs_searches"] =
      static_cast<double>(stats.cycle_searches);
  state.counters["dfs_steps"] =
      static_cast<double>(stats.cycle_search_steps);
}
BENCHMARK(BM_RouteNue)
    ->Args({1, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({4, 4})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

// Scratch-reuse case: a low-diameter Kautz fabric is the worst topology
// for the old full-size per-destination scratch fills — each search step
// touches only a small fraction of the channel array, so the O(1)
// generation-stamped reset in LayerRouter::reset_scratch() dominates the
// step-setup saving. Serial run to isolate the effect from threading.
void BM_RouteNueKautzScratch(benchmark::State& state) {
  KautzSpec spec;
  spec.d = 4;
  spec.k = 2;
  spec.terminals_per_switch = 4;
  const Network net = make_kautz(spec);
  const auto dests = net.terminals();
  NueOptions opt;
  opt.num_vls = static_cast<std::uint32_t>(state.range(0));
  opt.num_threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(route_nue(net, dests, opt));
  }
}
BENCHMARK(BM_RouteNueKautzScratch)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
