// Figure 1 reproduction: 4x4x3 3D torus, 4 terminals per switch, one
// failed switch (47 switches, 188 terminals), QDR-class links, at most
// 4 VLs available.
//   Fig. 1a — simulated all-to-all throughput per routing algorithm,
//   Fig. 1b — virtual lanes required for deadlock freedom.
//
// Expected shape (paper): Torus-2QoS fast within the limit; Up*/Down* and
// LASH slow; DFSSSP in between but needing more VLs than available (hence
// inapplicable); Nue applicable at every k=1..4 with competitive
// throughput that grows with k.
//
//   --shift-samples N   simulate N of the 187 shift phases (0 = all)
//   --message-bytes B   message size (paper: 2048)
//   --csv FILE          mirror rows to CSV
#include <iostream>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  using namespace nue::bench;
  Flags flags(argc, argv);
  const auto shifts = static_cast<std::uint32_t>(flags.get_int(
      "shift-samples", 0, "all-to-all shift phases to simulate (0 = all)"));
  const auto msg_bytes = static_cast<std::uint32_t>(
      flags.get_int("message-bytes", 2048, "message size in bytes"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 2016, "fault seed"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;
  constexpr std::uint32_t kVlLimit = 4;

  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  Rng rng(seed);
  if (inject_switch_failures(net, 1, rng) != 1) {
    std::cerr << "failed to inject the switch failure\n";
    return 1;
  }
  std::cout << "Fig. 1 network: " << net.num_alive_switches()
            << " switches, " << net.num_alive_terminals()
            << " terminals, 1 failed switch, VL limit " << kVlLimit << "\n\n";
  const auto dests = net.terminals();

  std::vector<RoutingRun> runs;
  runs.push_back(run_routing(
      "torus-2qos", [&] { return route_torus_qos(net, spec, dests); }));
  runs.push_back(
      run_routing("up*/down*", [&] { return route_updown(net, dests); }));
  {
    LashStats st;
    runs.push_back(run_routing("lash", [&] {
      return route_lash(net, dests, {.max_vls = 64, .allow_exceed = true},
                        &st);
    }));
    if (runs.back().rr) runs.back().vls = st.vls_needed;
  }
  {
    DfssspStats st;
    runs.push_back(run_routing("dfsssp", [&] {
      return route_dfsssp(net, dests, {.max_vls = 64, .allow_exceed = true},
                          &st);
    }));
    if (runs.back().rr) runs.back().vls = st.vls_needed;
  }
  for (std::uint32_t k = 1; k <= kVlLimit; ++k) {
    runs.push_back(run_routing("nue " + std::to_string(k) + " VL", [&] {
      NueOptions opt;
      opt.num_vls = k;
      return route_nue(net, dests, opt);
    }));
  }

  Table table({"routing", "VLs needed", "within 4-VL limit",
               "normalized throughput", "routing time [s]"});
  for (const auto& run : runs) {
    const std::string cell =
        throughput_cell(net, run, msg_bytes, shifts);
    table.row() << run.name
                << (run.rr ? std::to_string(run.vls) : std::string("-"))
                << (run.rr && run.vls <= kVlLimit ? "yes" : "NO")
                << cell << run.seconds;
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  std::cout << "\n(throughput = mean fraction of terminal line rate during "
               "the exchange;\n paper shape: torus-2qos high, nue rising "
               "with k toward it, up*/down*+lash low,\n dfsssp decent but "
               "over the VL limit)\n";
  return 0;
}
