// Figure 10 reproduction: simulated all-to-all throughput on the five
// standard and two real-world topologies of Table 1, for every applicable
// OpenSM-style routing plus Nue with 1..8 VLs.
//
// Expected shape (paper): Nue's throughput rises with the VL count and
// plateaus around k≈5; Nue is competitive with the best per-topology
// routing (83.5%..121.4%), occasionally beating DFSSSP; fat-tree/LASH/
// Up*/Down* trail on most topologies.
//
//   --shift-samples N    sampled shift phases (default 8; paper: all)
//   --message-bytes B    message size (paper: 2048)
//   --topo NAME          run a single topology (random|torus|fattree|
//                        kautz|dragonfly|cascade|tsubame)
//   --max-vls K          Nue VL sweep upper bound (default 8)
//   --csv FILE
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/fattree_routing.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  using namespace nue::bench;
  Flags flags(argc, argv);
  const auto shifts = static_cast<std::uint32_t>(flags.get_int(
      "shift-samples", 8, "all-to-all shift phases (0 = all; paper: all)"));
  const auto msg_bytes = static_cast<std::uint32_t>(
      flags.get_int("message-bytes", 2048, "message size in bytes"));
  const auto max_vls = static_cast<std::uint32_t>(
      flags.get_int("max-vls", 8, "Nue VL sweep upper bound"));
  const std::string only = flags.get_string("topo", "", "single topology");
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  struct Topo {
    std::string name;
    Network net;
    const TorusSpec* torus = nullptr;     // set if torus routing applies
    const FatTreeSpec* fattree = nullptr; // set if fat-tree routing applies
  };
  // Owned specs for the topology-aware engines.
  static TorusSpec torus_spec{{6, 5, 5}, 7, 4};
  static FatTreeSpec ft_spec{10, 3, 11, 0};

  std::vector<Topo> topos;
  auto want = [&](const std::string& n) { return only.empty() || only == n; };
  if (want("random")) {
    Rng rng(1000);
    RandomSpec spec;
    topos.push_back({"random", make_random(spec, rng)});
  }
  if (want("torus")) {
    topos.push_back({"6x5x5 torus", make_torus(torus_spec)});
    topos.back().torus = &torus_spec;
  }
  if (want("fattree")) {
    topos.push_back({"10-ary 3-tree", make_kary_ntree(ft_spec)});
    topos.back().fattree = &ft_spec;
  }
  if (want("kautz")) {
    KautzSpec spec;
    topos.push_back({"kautz", make_kautz(spec)});
  }
  if (want("dragonfly")) {
    DragonflySpec spec;
    topos.push_back({"dragonfly", make_dragonfly(spec)});
  }
  if (want("cascade")) {
    CascadeSpec spec;
    topos.push_back({"cascade", make_cascade(spec)});
  }
  if (want("tsubame")) {
    ClosSpec spec;
    topos.push_back({"tsubame2.5", make_tsubame25_like(spec)});
  }

  Table table({"topology", "routing", "VLs", "normalized throughput",
               "routing time [s]"});
  for (auto& topo : topos) {
    const Network& net = topo.net;
    const auto dests = net.terminals();
    std::cerr << "== " << topo.name << " (" << net.num_alive_terminals()
              << " terminals)\n";

    std::vector<RoutingRun> runs;
    runs.push_back(
        run_routing("up*/down*", [&] { return route_updown(net, dests); }));
    {
      DfssspStats st;
      runs.push_back(run_routing("dfsssp", [&] {
        return route_dfsssp(net, dests, {.max_vls = 8}, &st);
      }));
      if (runs.back().rr) runs.back().vls = st.vls_needed;
    }
    {
      LashStats st;
      runs.push_back(run_routing("lash", [&] {
        return route_lash(net, dests, {.max_vls = 8}, &st);
      }));
      if (runs.back().rr) runs.back().vls = st.vls_needed;
    }
    if (topo.torus) {
      runs.push_back(run_routing("torus-2qos", [&] {
        return route_torus_qos(net, *topo.torus, dests);
      }));
    }
    if (topo.fattree) {
      runs.push_back(run_routing("fat-tree", [&] {
        return route_fattree(net, *topo.fattree, dests);
      }));
    }
    for (std::uint32_t k = 1; k <= max_vls; ++k) {
      runs.push_back(run_routing("nue " + std::to_string(k), [&] {
        NueOptions opt;
        opt.num_vls = k;
        return route_nue(net, dests, opt);
      }));
    }

    for (const auto& run : runs) {
      Timer t;
      const std::string cell = throughput_cell(net, run, msg_bytes, shifts);
      table.row() << topo.name << run.name
                  << (run.rr ? std::to_string(run.vls) : std::string("-"))
                  << (run.rr ? cell : "inapplicable: " + run.note)
                  << run.seconds;
      std::cerr << "   " << run.name << " -> " << cell << " (route "
                << run.seconds << "s, sim " << t.seconds() << "s)\n";
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  return 0;
}
