// Table 1 reproduction: the topology configurations used for the Fig. 10
// throughput simulations, printed from the actual generators so the counts
// can be compared against the paper (switches / terminals / switch-to-
// switch channels / redundancy).
#include <iostream>

#include "graph/algorithms.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

std::size_t switch_links(const nue::Network& net) {
  std::size_t n = 0;
  for (nue::ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (net.channel_alive(c) && net.is_switch(net.src(c)) &&
        net.is_switch(net.dst(c))) {
      ++n;
    }
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  Table table({"topology", "switches", "terminals", "channels", "r",
               "paper (sw/term/ch)", "connected"});
  auto add = [&](const std::string& name, const Network& net, std::uint32_t r,
                 const std::string& paper) {
    table.row() << name << net.num_alive_switches()
                << net.num_alive_terminals() << switch_links(net) << r
                << paper << (is_connected(net) ? "yes" : "NO");
  };

  {
    Rng rng(1000);
    RandomSpec spec;
    add("random", make_random(spec, rng), 1, "125/1000/1000");
  }
  {
    TorusSpec spec{{6, 5, 5}, 7, 4};
    add("6x5x5 3D-torus", make_torus(spec), 4, "150/1050/1800");
  }
  {
    FatTreeSpec spec{10, 3, 11, 0};
    add("10-ary 3-tree", make_kary_ntree(spec), 1, "300/1100/2000");
  }
  {
    KautzSpec spec;
    add("kautz (d=5,k=3)", make_kautz(spec), 2, "150/1050/1500");
  }
  {
    DragonflySpec spec;
    add("dragonfly (12,6,6,15)", make_dragonfly(spec), 1, "180/1080/1515");
  }
  {
    CascadeSpec spec;
    add("cascade (2 groups)", make_cascade(spec), 1, "192/1536/3072");
  }
  {
    ClosSpec spec;
    add("tsubame2.5-like", make_tsubame25_like(spec), 1, "243/1407/3384");
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  std::cout << "\n(Kautz: the paper labels the row d=7,k=3 but its own "
               "switch count matches K(5,3);\n tsubame: folded-Clos "
               "approximation, see DESIGN.md)\n";
  return 0;
}
