// Scale sweep (docs/SCALING.md): wall time, peak RSS and per-phase span
// breakdown of Nue routing on tori and fat-trees from 10^3 to >= 10^5
// switches, with a million-switch torus gated behind --max-switches.
//
// Routing every terminal at 10^5+ switches is an O(dests x CDG) wall, so
// the sweep routes a deterministic evenly-spaced sample of the terminals
// (--dests; the full set whenever it is smaller) and selects escape roots
// with the pivot-sampled Brandes estimator (--pivots) — a single-core run
// covers the default sweep in minutes while still exercising every phase
// (partition, convex hull, escape tree, per-destination Dijkstra,
// balancing) at full fabric size.
//
//   --smoke           tiny fabrics (the tier-1 stage; finishes in seconds)
//   --max-switches N  largest fabric to run (default 150000; raise to
//                     1000000 to add the million-switch torus)
//   --dests N         destination sample size (default 0 = auto tier by
//                     fabric size: 64 -> 8 as switches grow; N >= the
//                     terminal count routes all of them)
//   --pivots N        Brandes pivots for escape roots (default 64;
//                     0 = exact Brandes — intractable at 10^5 switches)
//   --vls K           virtual lanes (default 4)
//   --threads N       routing worker threads (default 1, the CI machine)
//   --no-validate     skip the validation oracle (pure routing time only)
//   --json FILE       records (default BENCH_scale.json; '' = skip)
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "telemetry/cli.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using nue::Network;

struct ScaleCase {
  std::string family;            // "torus" | "fattree"
  std::string label;             // e.g. "47x47x47", "24-ary-4-tree"
  std::uint64_t switches;        // for the --max-switches gate
  std::function<Network()> build;
};

ScaleCase torus_case(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  const std::string label = std::to_string(x) + "x" + std::to_string(y) +
                            "x" + std::to_string(z);
  return {"torus", label,
          static_cast<std::uint64_t>(x) * y * z,
          [=] {
            nue::TorusSpec spec{{x, y, z}, 1, 1};
            return make_torus(spec);
          }};
}

ScaleCase fattree_case(std::uint32_t k, std::uint32_t n) {
  const std::string label =
      std::to_string(k) + "-ary-" + std::to_string(n) + "-tree";
  std::uint64_t per_stage = 1;
  for (std::uint32_t i = 1; i < n; ++i) per_stage *= k;
  return {"fattree", label, per_stage * n,
          [=] {
            nue::FatTreeSpec spec{k, n, 1, 0};
            return make_kary_ntree(spec);
          }};
}

/// Default destination budget per fabric size. Nue's per-destination cost
/// grows with the restrictions accumulated by the layer's earlier
/// destinations (omega and the blocked-edge marks are layer-lived,
/// §4.6.1), so the budget shrinks as fabrics grow to keep a single-core
/// sweep in minutes; every reduction is logged, never silent.
std::size_t dest_budget(std::uint64_t switches) {
  if (switches <= 2000) return 64;
  if (switches <= 20000) return 32;
  if (switches <= 150000) return 16;
  return 8;
}

/// Deterministic destination sample: evenly spaced over the terminals in
/// ascending id order (the same spacing discipline as the Brandes pivots,
/// so repeated runs and different machines route identical tables).
std::vector<nue::NodeId> sample_dests(const Network& net, std::size_t want) {
  const auto terms = net.terminals();
  if (want == 0 || want >= terms.size()) return terms;
  std::vector<nue::NodeId> out;
  out.reserve(want);
  for (std::size_t i = 0; i < want; ++i) {
    out.push_back(terms[i * terms.size() / want]);
  }
  return out;
}

struct ScaleRecord {
  std::string family;
  std::string topology;
  std::uint64_t switches = 0;
  std::uint64_t terminals = 0;
  std::uint64_t channels = 0;
  std::uint64_t dests = 0;
  std::uint32_t vls = 0;
  std::uint32_t threads = 0;
  std::uint64_t pivots = 0;
  double build_ms = 0.0;
  double wall_ms = 0.0;
  bool valid = false;
  // VmHWM right after the run (monotone over the sweep, so the per-record
  // value shows which fabric first raised the footprint; nullopt =
  // unavailable, and the JSON key is omitted rather than written as 0).
  std::optional<double> peak_rss_mb;
  std::vector<nue::bench::PhaseTiming> phases;
};

void write_json(const std::string& path,
                const std::vector<ScaleRecord>& recs) {
  std::ofstream os(path);
  os << "{\n  \"schema_version\": 1,\n  \"tool\": \"bench_scale\",\n";
  if (const auto rss = nue::peak_rss_mb()) {
    os << "  \"peak_rss_mb\": " << *rss << ",\n";
  }
  os << "  \"records\": [\n";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const auto& r = recs[i];
    os << "    {\"family\": \"" << r.family << "\", \"topology\": \""
       << r.topology << "\", \"switches\": " << r.switches
       << ", \"terminals\": " << r.terminals
       << ", \"channels\": " << r.channels << ", \"dests\": " << r.dests
       << ", \"vls\": " << r.vls << ", \"threads\": " << r.threads
       << ", \"pivots\": " << r.pivots << ", \"build_ms\": " << r.build_ms
       << ", \"wall_ms\": " << r.wall_ms
       << ", \"valid\": " << (r.valid ? "true" : "false");
    if (r.peak_rss_mb) os << ", \"peak_rss_mb\": " << *r.peak_rss_mb;
    os << ", \"phases\": ";
    nue::bench::write_phases_json(os, r.phases);
    os << "}" << (i + 1 < recs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nue;
  using namespace nue::bench;
  Flags flags(argc, argv);
  const bool smoke = flags.get_bool(
      "smoke", false, "tiny fabrics only (the tier-1 smoke stage)");
  const auto max_switches = static_cast<std::uint64_t>(flags.get_int(
      "max-switches", 150000,
      "largest fabric (switches); 1000000 adds the million-switch torus"));
  const auto min_switches = static_cast<std::uint64_t>(flags.get_int(
      "min-switches", 0, "skip fabrics smaller than this (resume big end)"));
  const auto want_dests = static_cast<std::size_t>(flags.get_int(
      "dests", 0,
      "destination sample size (0 = auto tier by fabric size; a value "
      ">= the terminal count routes all of them)"));
  const auto pivots = static_cast<std::size_t>(flags.get_int(
      "pivots", 64, "Brandes pivots for escape roots (0 = exact)"));
  const auto vls = static_cast<std::uint32_t>(
      flags.get_int("vls", 4, "virtual lanes"));
  const auto threads = static_cast<std::uint32_t>(
      flags.get_int("threads", 1, "routing worker threads"));
  const bool no_validate = flags.get_bool(
      "no-validate", false, "skip the validation oracle");
  const std::string json_path = flags.get_string(
      "json", "BENCH_scale.json", "records JSON ('' = skip)");
  telemetry::Cli telem;
  telem.register_flags(flags);
  if (!flags.finish()) return 1;

  // 10^3 -> 10^5 per family; the fat-tree tops out lower because its CDG
  // is denser (every extra port multiplies the per-channel fan-out), so
  // the >= 10^5 acceptance point is carried by the 47^3 torus.
  std::vector<ScaleCase> cases;
  if (smoke) {
    cases.push_back(torus_case(6, 6, 6));     // 216
    cases.push_back(fattree_case(8, 3));      // 192
  } else {
    cases.push_back(torus_case(10, 10, 10));  // 1,000
    cases.push_back(fattree_case(18, 3));     // 972
    cases.push_back(torus_case(22, 22, 22));  // 10,648
    cases.push_back(fattree_case(15, 4));     // 13,500
    cases.push_back(fattree_case(24, 4));     // 55,296
    cases.push_back(torus_case(47, 47, 47));  // 103,823
    cases.push_back(torus_case(100, 100, 100));  // 1,000,000 (gated)
  }

  Table table({"family", "topology", "switches", "channels", "dests",
               "wall [s]", "peak RSS [MB]", "valid"});
  std::vector<ScaleRecord> records;
  for (const auto& c : cases) {
    if (c.switches > max_switches || c.switches < min_switches) continue;
    Timer build_timer;
    const Network net = c.build();
    const double build_ms = build_timer.seconds() * 1e3;
    const std::size_t want =
        want_dests != 0 ? want_dests : dest_budget(c.switches);
    const auto dests = sample_dests(net, want);
    if (dests.size() < net.terminals().size()) {
      std::cerr << c.family << " " << c.label << ": routing "
                << dests.size() << " of " << net.terminals().size()
                << " terminals (evenly spaced sample)\n";
    }

    const auto run = run_routing("nue", [&] {
      NueOptions opt;
      opt.num_vls = vls;
      opt.num_threads = threads;
      opt.betweenness_pivots = pivots;
      return route_nue(net, dests, opt);
    });

    ScaleRecord rec;
    rec.family = c.family;
    rec.topology = c.label;
    rec.switches = c.switches;
    rec.terminals = net.num_alive_terminals();
    rec.channels = net.num_alive_channels();
    rec.dests = dests.size();
    rec.vls = vls;
    rec.threads = threads;
    rec.pivots = pivots;
    rec.build_ms = build_ms;
    rec.wall_ms = run.seconds * 1e3;
    rec.phases = run.phases;
    if (run.rr) {
      if (no_validate) {
        rec.valid = true;  // trusted; the smoke/CI stage always validates
      } else {
        rec.valid = validate_routing(net, *run.rr).ok();
      }
    }
    rec.peak_rss_mb = peak_rss_mb();
    records.push_back(rec);

    char wall[32], rss[32];
    std::snprintf(wall, sizeof(wall), "%.2f", run.seconds);
    if (rec.peak_rss_mb) {
      std::snprintf(rss, sizeof(rss), "%.1f", *rec.peak_rss_mb);
    } else {
      std::snprintf(rss, sizeof(rss), "n/a");
    }
    table.row() << rec.family << rec.topology << rec.switches
                << rec.channels << rec.dests << wall << rss
                << (rec.valid ? "yes" : "NO");
    std::cerr << c.family << " " << c.label << " done (" << wall << "s)\n";
    if (!run.rr) {
      std::cerr << "  routing failed: " << run.note << "\n";
    }
  }
  table.print();
  if (!json_path.empty()) write_json(json_path, records);
  if (telem.wanted()) {
    telem.finish("bench_scale",
                 {{"smoke", smoke ? "1" : "0"},
                  {"max_switches", std::to_string(max_switches)},
                  {"dests", std::to_string(want_dests)},
                  {"pivots", std::to_string(pivots)},
                  {"vls", std::to_string(vls)},
                  {"threads", std::to_string(threads)}});
  }
  // The acceptance gate: every attempted fabric must route and validate.
  for (const auto& r : records) {
    if (!r.valid) return 2;
  }
  return 0;
}
