// Extension bench — the fail-in-place context [7] the paper is motivated
// by: degrade a torus link by link and track, per routing engine, (a)
// applicability, (b) all-to-all throughput on the degraded fabric, and
// (c) for Nue, the incremental-reroute cost vs a full recompute.
//
//   --dims AxBxC (default 4x4x3)  --events N (default 10)  --seed S
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "nue/nue_routing.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  using namespace nue::bench;
  Flags flags(argc, argv);
  const std::string dims_str =
      flags.get_string("dims", "4x4x3", "torus dimensions");
  const auto events = static_cast<std::uint32_t>(
      flags.get_int("events", 10, "link-failure events"));
  const auto seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 21, "fault seed"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  TorusSpec spec;
  {
    std::istringstream is(dims_str);
    std::string d;
    while (std::getline(is, d, 'x')) {
      spec.dims.push_back(static_cast<std::uint32_t>(std::stoul(d)));
    }
  }
  spec.terminals_per_switch = 2;
  Network net = make_torus(spec);
  Rng rng(seed);

  NueOptions opt;
  opt.num_vls = 2;
  auto nue_tables = route_nue(net, net.terminals(), opt);

  Table table({"dead links", "torus-2qos", "nue tput", "nue util_max",
               "nue fallbacks", "reroute [s]", "full [s]"});
  double reroute_seconds = 0.0;
  std::size_t dead_links = 0;  // achieved count, not the event counter
  for (std::uint32_t event = 0; event <= events; ++event) {
    const auto msgs = alltoall_shift_messages(net, 2048, 16);
    std::string qos_cell = "fail";
    try {
      const auto qos = route_torus_qos(net, spec, net.terminals());
      if (validate_routing(net, qos).ok()) {
        const auto res = simulate(net, qos, msgs, SimConfig{});
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", res.normalized_throughput);
        qos_cell = buf;
      }
    } catch (const RoutingFailure&) {
    }

    NueStats nstats;
    Timer t_full;
    const auto fresh = route_nue(net, net.terminals(), opt, &nstats);
    const double full_s = t_full.seconds();
    NUE_CHECK(validate_routing(net, fresh).ok());
    const auto res = simulate(net, fresh, msgs, SimConfig{});
    table.row() << dead_links << qos_cell
                << res.normalized_throughput << res.max_link_utilization
                << static_cast<std::uint64_t>(nstats.fallbacks)
                << reroute_seconds << full_s;
    if (event < events) {
      const std::size_t injected = inject_link_failures(net, 1, rng);
      if (injected == 0) {
        std::cerr << "no further link failure injectable after "
                  << dead_links << " dead links\n";
        break;
      }
      dead_links += injected;
      Timer t_inc;
      RerouteStats rs;
      nue_tables = reroute_nue(net, nue_tables, opt, &rs);
      reroute_seconds = t_inc.seconds();
      NUE_CHECK(validate_routing(net, nue_tables).ok());
    }
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  std::cout << "\n(the torus-2qos column goes to 'fail' once some ring is "
               "broken twice;\n Nue degrades gracefully and reroutes "
               "incrementally)\n";
  return 0;
}
