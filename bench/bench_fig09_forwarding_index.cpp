// Figure 9 + Section 5.1 reproduction: edge-forwarding-index statistics
// over seeded random topologies (paper: 1,000 topologies of 125 switches,
// 1,000 terminals, 1,000 switch-to-switch channels).
//
// Reported per routing: Γ_min, Γ_avg ± Γ_SD, Γ_max (averaged over
// topologies, inter-switch channels only), plus the §5.1 text metrics:
// average/worst maximum path length and Nue's escape-path fallback rate.
//
// Expected shape (paper): Nue(k>=4) ≈ DFSSSP, both clearly better than
// LASH; Nue's Γ_max grows as k shrinks; fallback rate ~1% at k=1 and
// ~0 at k=8.
//
//   --topos N      number of random topologies (default 20; paper 1000)
//   --switches S --links L --terminals T   topology configuration
//   --csv FILE
#include <iostream>

#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/validate.hpp"
#include "topology/misc_topologies.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nue;
  Flags flags(argc, argv);
  const auto topos = static_cast<std::size_t>(
      flags.get_int("topos", 10, "number of random topologies (paper: 1000)"));
  RandomSpec spec;
  spec.switches = static_cast<std::uint32_t>(
      flags.get_int("switches", 125, "switches per topology"));
  spec.links = static_cast<std::uint32_t>(
      flags.get_int("links", 1000, "switch-to-switch channels"));
  spec.terminals_per_switch = static_cast<std::uint32_t>(
      flags.get_int("terminals", 8, "terminals per switch"));
  const std::string csv = flags.get_string("csv", "", "CSV output path");
  if (!flags.finish()) return 1;

  struct Agg {
    Stats min, avg, sd, max, maxpath;
    Stats fallback_pct;  // Nue only
    std::size_t invalid = 0;
  };
  // Row order: nue k=1..8, lash, dfsssp.
  std::vector<std::string> names;
  for (int k = 1; k <= 8; ++k) names.push_back("nue " + std::to_string(k));
  names.push_back("lash");
  names.push_back("dfsssp");
  std::vector<Agg> agg(names.size());
  Stats lash_vls, dfsssp_vls;

  for (std::size_t t = 0; t < topos; ++t) {
    Rng rng(1000 + t);
    Network net = make_random(spec, rng);
    const auto dests = net.terminals();
    auto record = [&](std::size_t row, const RoutingResult& rr,
                      double fallback_pct = -1.0) {
      const auto rep = validate_routing(net, rr);
      if (!rep.ok()) {
        ++agg[row].invalid;
        return;
      }
      const auto g =
          summarize_forwarding_index(net, edge_forwarding_index(net, rr));
      agg[row].min.add(g.min);
      agg[row].avg.add(g.avg);
      agg[row].sd.add(g.sd);
      agg[row].max.add(g.max);
      agg[row].maxpath.add(static_cast<double>(rep.max_path_length));
      if (fallback_pct >= 0) agg[row].fallback_pct.add(fallback_pct);
    };

    for (std::uint32_t k = 1; k <= 8; ++k) {
      NueOptions opt;
      opt.num_vls = k;
      opt.seed = 77 + t;
      NueStats stats;
      const auto rr = route_nue(net, dests, opt, &stats);
      record(k - 1, rr,
             100.0 * static_cast<double>(stats.fallbacks) /
                 static_cast<double>(dests.size()));
    }
    {
      LashStats st;
      const auto rr =
          route_lash(net, dests, {.max_vls = 16, .allow_exceed = true}, &st);
      lash_vls.add(st.vls_needed);
      record(8, rr);
    }
    {
      DfssspStats st;
      const auto rr = route_dfsssp(
          net, dests, {.max_vls = 16, .allow_exceed = true}, &st);
      dfsssp_vls.add(st.vls_needed);
      record(9, rr);
    }
    std::cerr << "topology " << (t + 1) << "/" << topos << " done\r";
  }
  std::cerr << "\n";

  std::cout << "Fig. 9 — edge forwarding index over " << topos
            << " random topologies (" << spec.switches << " sw, "
            << spec.links << " ch, " << spec.terminals_per_switch
            << " term/sw)\n\n";
  Table table({"routing", "G_min", "G_avg", "G_SD", "G_max", "max path",
               "fallback %", "invalid"});
  for (std::size_t r = 0; r < names.size(); ++r) {
    table.row() << names[r] << agg[r].min.mean() << agg[r].avg.mean()
                << agg[r].sd.mean() << agg[r].max.mean()
                << agg[r].maxpath.mean()
                << (agg[r].fallback_pct.count()
                        ? std::to_string(agg[r].fallback_pct.mean())
                        : std::string("-"))
                << static_cast<std::uint64_t>(agg[r].invalid);
  }
  table.print();
  if (!csv.empty()) table.write_csv(csv);
  std::cout << "\nVL demand of the layered routings on these topologies: "
            << "LASH avg " << lash_vls.mean() << " (max " << lash_vls.max()
            << "), DFSSSP avg " << dfsssp_vls.mean() << " (max "
            << dfsssp_vls.max() << ")\n"
            << "(paper: LASH 2-4, DFSSSP 4-5; Nue max path worst case 7-10 "
               "vs 6 for the shortest-path routings)\n";
  return 0;
}
