#include "resilience/waves.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "routing/validate.hpp"
#include "telemetry/telemetry.hpp"

namespace nue::resilience {

namespace {

/// Dependency edge in the shared (channel, VL) vertex space of a table
/// pair: vertex = channel * stride + slot, stride = max VL budget + 1,
/// slot stride-1 the overflow vertex for out-of-range lanes (same
/// aliasing argument as induced_cdg). Committed tables are validated
/// vl_in_range, so the overflow slot never fires here in practice — it
/// only keeps a hypothetically broken lane from hiding behind a legal
/// dependency.
using Edge = std::pair<std::uint32_t, std::uint32_t>;

struct DepExtractor {
  const Network& net;
  std::uint32_t stride;

  std::uint32_t slot(std::uint8_t vl) const {
    return vl < stride - 1 ? vl : stride - 1;
  }

  /// Dependencies of one forwarding column: column-derived in O(nodes)
  /// for VL schemes where the lane at a node is source-independent
  /// (kPerDest, kPerHop — mirrors union_cdg_acyclic's accumulator), exact
  /// stale-tolerant per-source walks for kPerSource. Sorted and
  /// deduplicated so the incremental admission checks stay proportional
  /// to the real delta.
  std::vector<Edge> column(const RoutingResult& rr, std::uint32_t di) const {
    std::vector<Edge> edges;
    const NodeId d = rr.destinations()[di];
    if (rr.vl_mode() == VlMode::kPerSource) {
      for (NodeId s : net.terminals()) {
        if (s == d || !net.node_alive(s)) continue;
        NodeId at = s;
        std::size_t hops = 0;
        auto prev = static_cast<std::uint32_t>(-1);
        while (at != d && hops++ <= net.num_nodes()) {
          const ChannelId c = rr.next(at, di);
          if (c == kInvalidChannel || net.src(c) != at ||
              !net.channel_alive(c)) {
            break;  // stale prefix: emitted dependencies stay
          }
          const std::uint32_t cur = c * stride + slot(rr.vl(at, s, di));
          if (prev != static_cast<std::uint32_t>(-1)) {
            edges.emplace_back(prev, cur);
          }
          prev = cur;
          at = net.dst(c);
        }
      }
    } else {
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        if (v == d || !net.node_alive(v)) continue;
        const ChannelId c = rr.next(v, di);
        if (c == kInvalidChannel || net.src(c) != v ||
            !net.channel_alive(c)) {
          continue;  // hole/stale entry: no resource requested here
        }
        const NodeId u = net.dst(c);
        if (u == d || !net.node_alive(u)) continue;
        const ChannelId c2 = rr.next(u, di);
        if (c2 == kInvalidChannel || net.src(c2) != u ||
            !net.channel_alive(c2)) {
          continue;
        }
        edges.emplace_back(c * stride + slot(rr.vl(v, v, di)),
                           c2 * stride + slot(rr.vl(u, u, di)));
      }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
  }
};

/// Forwarding columns equal over the alive fabric. Entries at dead nodes
/// are ignored: no packet can be there to request a resource, and the
/// splice/reroute producers legitimately leave holes where the old table
/// kept stale entries.
bool columns_equal(const Network& net, const RoutingResult& a,
                   std::uint32_t adi, const RoutingResult& b,
                   std::uint32_t bdi, NodeId d) {
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (v == d || !net.node_alive(v)) continue;
    if (a.next(v, adi) != b.next(v, bdi)) return false;
  }
  switch (a.vl_mode()) {
    case VlMode::kPerDest:
      return a.vl(d, d, adi) == b.vl(d, d, bdi);
    case VlMode::kPerSource:
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        if (v == d || !net.node_alive(v)) continue;
        if (a.vl(d, v, adi) != b.vl(d, v, bdi)) return false;
      }
      return true;
    case VlMode::kPerHop:
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        if (v == d || !net.node_alive(v)) continue;
        if (a.vl(v, d, adi) != b.vl(v, d, bdi)) return false;
      }
      return true;
  }
  return true;
}

/// Incrementally growable dependency graph with a maintained topological
/// order: a candidate edge set whose edges all run forward in the current
/// order is admitted without a recheck; otherwise one Kahn pass decides
/// (and a rejected candidate pays a second pass to restore the order).
struct TopoGraph {
  explicit TopoGraph(std::size_t n) : adj(n), pos(n, 0) {}

  void add_edges(const std::vector<Edge>& es) {
    for (const Edge& e : es) adj[e.first].push_back(e.second);
  }

  /// Kahn's algorithm; refills pos. False iff the graph has a cycle.
  bool recompute_topo() {
    const std::size_t n = adj.size();
    std::vector<std::uint32_t> indeg(n, 0);
    for (const auto& out : adj) {
      for (std::uint32_t w : out) ++indeg[w];
    }
    std::vector<std::uint32_t> queue;
    queue.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v) {
      if (indeg[v] == 0) queue.push_back(v);
    }
    std::size_t head = 0;
    std::uint32_t done = 0;
    while (head < queue.size()) {
      const std::uint32_t v = queue[head++];
      pos[v] = done++;
      for (std::uint32_t w : adj[v]) {
        if (--indeg[w] == 0) queue.push_back(w);
      }
    }
    return done == n;
  }

  /// Admit es iff the graph stays acyclic; on rejection the graph (and
  /// the topological order) are left as before.
  bool try_add(const std::vector<Edge>& es) {
    bool forward = true;
    for (const Edge& e : es) {
      if (pos[e.first] >= pos[e.second]) {
        forward = false;
        break;
      }
    }
    add_edges(es);
    if (forward) return true;  // the existing order certifies acyclicity
    if (recompute_topo()) return true;
    for (auto it = es.rbegin(); it != es.rend(); ++it) {
      adj[it->first].pop_back();
    }
    recompute_topo();  // pos is partial after a failed pass; restore it
    return false;
  }

  std::vector<std::vector<std::uint32_t>> adj;
  std::vector<std::uint32_t> pos;
};

}  // namespace

WavePlan schedule_waves(const Network& net, const RoutingResult& old_rr,
                        const RoutingResult& new_rr, std::size_t max_waves) {
  TELEM_SPAN("resilience.wave_schedule");
  WavePlan plan;
  if (old_rr.vl_mode() != new_rr.vl_mode()) {
    plan.failure = "vl-mode mismatch between old and new table";
    return plan;
  }
  if (max_waves == 0) {
    plan.failure = "wave budget is zero";
    return plan;
  }
  const std::uint32_t stride =
      std::max(old_rr.num_vls(), new_rr.num_vls()) + 1;
  const DepExtractor ex{net, stride};

  // Classify every column: shared (byte-equal over the alive fabric, its
  // dependencies are immutable background), changed (migrates in some
  // wave), or dropped (only the old table routes it — its dependencies
  // retire with the first wave, exactly when the epoch that dropped the
  // column starts draining its predecessor).
  struct Delta {
    NodeId d = 0;
    bool affected = false;  // broken by the fault or newly joined
    std::vector<Edge> e_old, e_new;
  };
  std::vector<Delta> deltas;
  std::vector<Edge> base_edges;
  std::vector<Edge> dropped_edges;

  std::vector<std::uint8_t> broken(net.num_nodes(), 0);
  for (NodeId d : affected_destinations(net, old_rr)) broken[d] = 1;

  for (std::size_t di = 0; di < new_rr.destinations().size(); ++di) {
    const NodeId d = new_rr.destinations()[di];
    const auto di32 = static_cast<std::uint32_t>(di);
    const std::uint32_t old_di = old_rr.dest_index(d);
    if (old_di == RoutingResult::kNoDest) {
      Delta dl;
      dl.d = d;
      dl.affected = true;
      dl.e_new = ex.column(new_rr, di32);
      deltas.push_back(std::move(dl));
      continue;
    }
    if (columns_equal(net, old_rr, old_di, new_rr, di32, d)) {
      const std::vector<Edge> es = ex.column(new_rr, di32);
      base_edges.insert(base_edges.end(), es.begin(), es.end());
      continue;
    }
    Delta dl;
    dl.d = d;
    dl.affected = broken[d] != 0;
    dl.e_old = ex.column(old_rr, old_di);
    dl.e_new = ex.column(new_rr, di32);
    deltas.push_back(std::move(dl));
  }
  std::size_t dropped = 0;
  for (std::size_t di = 0; di < old_rr.destinations().size(); ++di) {
    const NodeId d = old_rr.destinations()[di];
    if (new_rr.is_destination(d)) continue;
    ++dropped;
    const std::vector<Edge> es =
        ex.column(old_rr, static_cast<std::uint32_t>(di));
    dropped_edges.insert(dropped_edges.end(), es.begin(), es.end());
  }
  plan.changed_dests = deltas.size() + dropped;
  if (deltas.empty()) {
    plan.failure = "no changed columns to migrate";
    return plan;
  }

  // Migration order: fault-affected and joined columns first (they are
  // the ones serving stale/absent routes until their wave lands — front
  // placement minimizes the staleness bound), then by node id. Stable and
  // input-deterministic, so the schedule is too.
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const Delta& a, const Delta& b) {
                     if (a.affected != b.affected) return a.affected;
                     return a.d < b.d;
                   });

  const std::size_t num_vertices = net.num_channels() * stride;
  std::vector<std::uint8_t> migrated(deltas.size(), 0);
  std::size_t remaining = deltas.size();
  while (remaining > 0) {
    if (plan.waves.size() >= max_waves) {
      std::ostringstream os;
      os << "wave budget exhausted: " << remaining
         << " columns unscheduled after " << plan.waves.size() << " waves";
      plan.failure = os.str();
      plan.waves.clear();
      return plan;
    }
    // Rebuild the intermediate state's dependency graph: shared columns,
    // the old dependencies of everything not yet migrated (including this
    // wave's own candidates — old and new coexist while the wave's epoch
    // drains its predecessor), the new dependencies of everything already
    // migrated, and — first wave only — the dropped columns still held by
    // in-flight traffic of the pre-transition epoch.
    TopoGraph g(num_vertices);
    g.add_edges(base_edges);
    if (plan.waves.empty()) g.add_edges(dropped_edges);
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      g.add_edges(migrated[i] ? deltas[i].e_new : deltas[i].e_old);
    }
    if (!g.recompute_topo()) {
      // The base state mirrors an already-committed (or by-construction
      // acyclic) table, so this is unreachable unless a producer broke
      // its contract; report, never crash the repair path.
      plan.failure = "intermediate dependency graph cyclic before the wave";
      plan.waves.clear();
      return plan;
    }
    std::vector<NodeId> wave;
    bool wave_affected = false;
    for (std::size_t i = 0; i < deltas.size(); ++i) {
      if (migrated[i]) continue;
      if (!g.try_add(deltas[i].e_new)) continue;
      migrated[i] = 1;
      --remaining;
      wave.push_back(deltas[i].d);
      wave_affected = wave_affected || deltas[i].affected;
    }
    if (wave.empty()) {
      std::ostringstream os;
      os << "stuck: none of the " << remaining
         << " remaining columns admissible in wave "
         << plan.waves.size() + 1;
      plan.failure = os.str();
      plan.waves.clear();
      return plan;
    }
    std::sort(wave.begin(), wave.end());
    plan.waves.push_back(std::move(wave));
    if (wave_affected) plan.max_affected_wave = plan.waves.size();
  }
  return plan;
}

RoutingResult shift_vls(const Network& net, const RoutingResult& rr,
                        std::uint32_t shift) {
  RoutingResult out(net.num_nodes(), rr.destinations(),
                    shift + rr.num_vls(), rr.vl_mode());
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    const auto di32 = static_cast<std::uint32_t>(di);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      out.set_next(v, di32, rr.next(v, di32));
    }
    switch (rr.vl_mode()) {
      case VlMode::kPerDest:
        out.set_dest_vl(di32,
                        static_cast<std::uint8_t>(rr.vl(d, d, di32) + shift));
        break;
      case VlMode::kPerSource:
        for (NodeId v = 0; v < net.num_nodes(); ++v) {
          out.set_source_vl(
              v, di32, static_cast<std::uint8_t>(rr.vl(d, v, di32) + shift));
        }
        break;
      case VlMode::kPerHop:
        for (NodeId v = 0; v < net.num_nodes(); ++v) {
          out.set_hop_vl(
              v, di32, static_cast<std::uint8_t>(rr.vl(v, d, di32) + shift));
        }
        break;
    }
  }
  return out;
}

RoutingResult blend_tables(const Network& net, const RoutingResult& old_rr,
                           const RoutingResult& new_rr,
                           const std::vector<std::uint8_t>& take_new) {
  const std::uint32_t vls = std::max(old_rr.num_vls(), new_rr.num_vls());
  RoutingResult rr(net.num_nodes(), new_rr.destinations(), vls,
                   new_rr.vl_mode());
  for (std::size_t di = 0; di < new_rr.destinations().size(); ++di) {
    const NodeId d = new_rr.destinations()[di];
    const auto di32 = static_cast<std::uint32_t>(di);
    const std::uint32_t old_di = old_rr.dest_index(d);
    const bool use_new = take_new[di] != 0;
    if (!use_new && old_di == RoutingResult::kNoDest) {
      continue;  // joined, not yet migrated: the column stays holes
    }
    const RoutingResult& src = use_new ? new_rr : old_rr;
    const std::uint32_t sdi = use_new ? di32 : old_di;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      rr.set_next(v, di32, src.next(v, sdi));
    }
    switch (rr.vl_mode()) {
      case VlMode::kPerDest:
        rr.set_dest_vl(di32, src.vl(d, d, sdi));
        break;
      case VlMode::kPerSource:
        for (NodeId v = 0; v < net.num_nodes(); ++v) {
          rr.set_source_vl(v, di32, src.vl(d, v, sdi));
        }
        break;
      case VlMode::kPerHop:
        for (NodeId v = 0; v < net.num_nodes(); ++v) {
          rr.set_hop_vl(v, di32, src.vl(v, d, sdi));
        }
        break;
    }
  }
  return rr;
}

}  // namespace nue::resilience
