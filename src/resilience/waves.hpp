// Wave scheduler for zero-drain reconfiguration (UPR compatibility,
// arXiv:2006.02332). When the union CDG of the active and the candidate
// routing function is cyclic, the two cannot coexist in the fabric — the
// resilience manager used to drain. But the cycle is a property of the
// WHOLE pair: migrating the changed destination columns a few at a time
// can keep every intermediate union acyclic even though the end-to-end
// union is not, because a column's old dependencies leave the fabric as
// soon as the epoch that replaced it has drained its predecessor
// (progressive drain — the same two-adjacent-epochs coexistence model the
// per-event gate already assumes).
//
// schedule_waves() partitions the changed columns into an ordered
// sequence of migration waves by greedy coloring of the per-destination
// dependency deltas: it maintains the dependency graph of the current
// intermediate state and admits a destination into the open wave only if
// adding its new column's dependencies keeps the graph acyclic (checked
// against a maintained topological order — candidates whose edges all go
// forward are admitted in O(|edges|), others pay one Kahn pass). After a
// wave commits, the old dependencies of its members are retired. A
// bounded wave count (RepairPolicy::max_waves) and a stuck wave (no
// admissible destination) are the only failure modes, both reported as a
// distinct verdict so the caller's drained fallback is never silent.
//
// Intermediate tables (blend_tables) may carry broken or stale old
// columns — destinations hit by the fault that are scheduled into a later
// wave keep serving their pre-fault column until their wave lands. That
// bounded staleness window (WavePlan::max_affected_wave) is exactly the
// exposure the pre-existing hitless path already had between the event
// and its single swap; intermediates are therefore gated on pairwise
// union acyclicity only, and full validation applies to the final epoch.
//
// When per-column waves are stuck (a full-recompute candidate can change
// every column, and wave 1 must then beat the entire old dependency
// graph) the manager escapes through a VL-shift chain (shift_vls): the
// candidate committed on the unused upper lanes has no (channel, VL)
// vertex in common with the old epoch, so both unions of the 2-epoch
// chain old -> shifted -> candidate are acyclic by construction. It only
// needs lane headroom: old_vls + candidate_vls <= RepairPolicy::max_vls.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue::resilience {

struct WavePlan {
  /// Destination columns to migrate, wave by wave, each wave sorted by
  /// node id. Every changed destination appears in exactly one wave.
  std::vector<std::vector<NodeId>> waves;
  /// Columns that differ between the two tables (joined and dropped
  /// destinations included).
  std::size_t changed_dests = 0;
  /// 1-based index of the wave that migrates the last fault-affected
  /// (broken or joined) column — the staleness bound: no stale column
  /// outlives this many epochs.
  std::size_t max_affected_wave = 0;
  /// Empty when a schedule exists; otherwise why not ("wave budget
  /// exhausted...", "stuck...", "vl-mode mismatch...").
  std::string failure;

  bool ok() const { return failure.empty(); }
};

/// Compute a migration-wave schedule taking `old_rr` (the active, already
/// committed table) to `new_rr` (a validated candidate) such that the
/// union CDG of every adjacent pair of intermediate tables is acyclic.
/// Precondition relaxations are reported via WavePlan::failure, never
/// thrown: the two tables must share a VL mode. A schedule with a single
/// wave cannot exist when the direct union gate failed (it IS the direct
/// union), so callers should expect >= 2 waves from a useful plan.
WavePlan schedule_waves(const Network& net, const RoutingResult& old_rr,
                        const RoutingResult& new_rr, std::size_t max_waves);

/// Materialize the intermediate table with the columns in `take_new`
/// (indexed by new_rr destination index, 1 = migrated) copied from
/// new_rr and every other column carried over verbatim from old_rr.
/// Destinations only new_rr routes (joined with a restored switch) stay
/// holes until their wave migrates them; destinations only old_rr routes
/// (dropped with a failed switch) are absent from every intermediate.
/// The result's VL budget is max(old, new) so both tables' lanes stay
/// in range.
RoutingResult blend_tables(const Network& net, const RoutingResult& old_rr,
                           const RoutingResult& new_rr,
                           const std::vector<std::uint8_t>& take_new);

/// Copy of `rr` with every lane assignment moved up by `shift` and the
/// VL budget widened to shift + rr.num_vls(): routes are untouched, but
/// the table occupies only lanes [shift, shift + num_vls). Against any
/// table confined to lanes [0, shift) the union CDG is vertex-disjoint,
/// hence acyclic — the guarantee behind the VL-shift migration chain.
RoutingResult shift_vls(const Network& net, const RoutingResult& rr,
                        std::uint32_t shift);

}  // namespace nue::resilience
