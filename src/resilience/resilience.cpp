#include "resilience/resilience.hpp"

#include <sstream>
#include <string_view>

#include "nue/nue_routing.hpp"
#include "resilience/waves.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/sssp_engine.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace nue::resilience {

namespace {

/// Stable span label per ladder rung (span names must outlive the scope,
/// so they are mapped to literals rather than composed at runtime).
const char* rung_span_name(const char* rung) {
  const std::string_view r(rung);
  if (r == "incremental") return "resilience.rung.incremental";
  if (r == "full-recompute") return "resilience.rung.full_recompute";
  if (r == "more-vls") return "resilience.rung.more_vls";
  if (r == "nue-fallback") return "resilience.rung.nue_fallback";
  return "resilience.rung";
}

/// Mirror a transition record onto the telemetry registry (the structured
/// ReconfigLog stays the source of truth for --reconfig-json). The gate
/// counters are touched with 0 on every record so they exist — as zeros —
/// in the run report of a storm that never drained; the tier-1 storm
/// smoke asserts exactly that via validate_json.py --zero.
void publish_transition(const TransitionRecord& rec) {
  if (!telemetry::enabled()) return;
  telemetry::counter("resilience.transitions").add_always(1);
  if (rec.hitless) telemetry::counter("resilience.hitless").add_always(1);
  telemetry::counter("resilience.drains").add_always(rec.drained ? 1 : 0);
  telemetry::counter("resilience.waves")
      .add_always(rec.wave_count > 0 ? 1 : 0);
  telemetry::counter("resilience.zero_drain_saves")
      .add_always(rec.wave_count > 0 && rec.wave_index == rec.wave_count
                      ? 1
                      : 0);
  telemetry::histogram("resilience.repair_us")
      .record_always(static_cast<std::uint64_t>(rec.repair_ms * 1000.0));
}

}  // namespace

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kNue: return "nue";
    case Engine::kDfsssp: return "dfsssp";
    case Engine::kLash: return "lash";
    case Engine::kUpDown: return "updown";
  }
  return "?";
}

std::optional<Engine> engine_from_name(const std::string& s) {
  for (Engine e :
       {Engine::kNue, Engine::kDfsssp, Engine::kLash, Engine::kUpDown}) {
    if (s == engine_name(e)) return e;
  }
  return std::nullopt;
}

ResilienceManager::ResilienceManager(Network net, RepairPolicy policy)
    : net_(std::move(net)), policy_(policy) {
  NUE_CHECK_MSG(policy_.vls >= 1, "resilience: need at least one VL");
  NUE_CHECK_MSG(policy_.max_vls >= policy_.vls,
                "resilience: max_vls below the base VL budget");
  log_.set_max_records(policy_.log_max_records);
  TELEM_SPAN("resilience.initial");
  Timer timer;
  TransitionRecord rec;
  rec.event = "initial";
  rec.total_dests = net_.terminals().size();
  rec.affected_dests = rec.total_dests;
  Candidate cand = run_ladder(nullptr, /*incremental=*/false, rec.verdicts);
  rec.committed_step = cand.step;
  rec.repair_ms = timer.millis();
  commit(std::move(*cand.rr), rec);
}

std::shared_ptr<const RoutingResult> ResilienceManager::table() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return table_;
}

std::uint64_t ResilienceManager::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

TransitionRecord ResilienceManager::apply(const FaultEvent& e) {
  TELEM_SPAN("resilience.event");
  apply_fault_event(net_, e);
  Timer timer;
  TransitionRecord rec;
  rec.event = e.label();
  const std::shared_ptr<const RoutingResult> old = table();

  // Table diff: broken/dropped columns plus destinations that joined the
  // fabric with a restored switch.
  std::size_t joined = 0;
  for (NodeId t : net_.terminals()) {
    if (!old->is_destination(t)) ++joined;
  }
  rec.affected_dests = affected_destinations(net_, *old).size() + joined;
  rec.total_dests = net_.terminals().size();
  if (rec.affected_dests == 0) {
    // Every column still routes over alive elements (e.g. a restored link
    // no route was using): the active epoch stays valid as-is.
    rec.committed_step = "noop";
    rec.epoch = epoch();
    rec.repair_ms = timer.millis();
    log_.add(rec);
    publish_transition(rec);
    return rec;
  }

  Candidate cand = run_ladder(old.get(), /*incremental=*/true, rec.verdicts);
  return gate_and_commit(old, std::move(cand), std::move(rec), timer);
}

TransitionRecord ResilienceManager::resync() {
  TELEM_SPAN("resilience.resync");
  Timer timer;
  TransitionRecord rec;
  rec.event = "resync";
  rec.total_dests = net_.terminals().size();
  rec.affected_dests = rec.total_dests;
  const std::shared_ptr<const RoutingResult> old = table();
  Candidate cand = run_ladder(old.get(), /*incremental=*/false, rec.verdicts);
  return gate_and_commit(old, std::move(cand), std::move(rec), timer);
}

TransitionRecord ResilienceManager::gate_and_commit(
    const std::shared_ptr<const RoutingResult>& old, Candidate cand,
    TransitionRecord rec, Timer& timer) {
  rec.union_gate_checked = true;
  Timer gate_timer;
  const bool gate_ok = union_cdg_acyclic(net_, *old, *cand.rr);
  const double gate_ms = gate_timer.millis();
  if (gate_ok) {
    rec.hitless = true;
    std::ostringstream os;
    os << "union-gate: acyclic, hitless swap [" << gate_ms << "ms]";
    rec.verdicts.push_back(os.str());
    rec.committed_step = cand.step;
    rec.repair_ms = timer.millis();
    commit(std::move(*cand.rr), rec);
    return rec;
  }
  if (policy_.enable_waves) {
    // Old and new dependencies together would close a cycle, but the
    // cycle is a property of the whole pair: try to stage the changed
    // columns into migration waves whose every intermediate union stays
    // acyclic (waves.hpp) — a chain of hitless swaps instead of a drain.
    TELEM_SPAN("resilience.wave_chain");
    Timer plan_timer;
    const WavePlan plan =
        schedule_waves(net_, *old, *cand.rr, policy_.max_waves);
    if (plan.ok()) {
      rec.hitless = true;
      rec.wave_count = static_cast<std::uint32_t>(plan.waves.size());
      rec.wave_index = rec.wave_count;
      std::ostringstream os;
      os << "union-gate: cycle, wave schedule: " << plan.waves.size()
         << " waves over " << plan.changed_dests
         << " changed columns (staleness bound " << plan.max_affected_wave
         << ") [" << plan_timer.millis() << "ms]";
      rec.verdicts.push_back(os.str());
      std::vector<std::uint8_t> take_new(cand.rr->destinations().size(), 0);
      for (std::size_t w = 0; w + 1 < plan.waves.size(); ++w) {
        for (NodeId d : plan.waves[w]) {
          take_new[cand.rr->dest_index(d)] = 1;
        }
        TransitionRecord wrec;
        wrec.event = rec.event;
        wrec.total_dests = rec.total_dests;
        wrec.affected_dests = plan.waves[w].size();
        wrec.committed_step = "wave";
        wrec.union_gate_checked = true;
        wrec.hitless = true;
        wrec.wave_index = static_cast<std::uint32_t>(w + 1);
        wrec.wave_count = rec.wave_count;
        std::ostringstream wos;
        wos << "wave " << w + 1 << "/" << plan.waves.size() << ": migrated "
            << plan.waves[w].size()
            << " columns, union acyclic by schedule";
        wrec.verdicts.push_back(wos.str());
        wrec.repair_ms = timer.millis();
        commit(blend_tables(net_, *old, *cand.rr, take_new), wrec);
      }
      // The chain's last epoch commits the candidate itself (not a
      // blend), so the wave path and the direct-gate path install
      // byte-identical final tables.
      rec.committed_step = cand.step;
      rec.repair_ms = timer.millis();
      commit(std::move(*cand.rr), rec);
      return rec;
    }
    rec.verdicts.push_back("wave-scheduler: " + plan.failure);
    // Per-column waves are stuck — typical when the committed rung is a
    // full recompute and nearly every column changed, so wave 1 has to
    // beat the entire old dependency graph. Escape through lane
    // headroom: the candidate shifted into the unused upper lanes shares
    // no (channel, VL) vertex with the old epoch, so both unions of the
    // 2-epoch chain old -> shifted -> candidate are acyclic by
    // construction (union_cdg_acyclic's vertex space is max(old, new)
    // lanes wide). This is what keeps sustained storms drain-free even
    // when the greedy scheduler cannot stage the pair.
    const std::uint32_t shift = old->num_vls();
    if (shift + cand.rr->num_vls() <= policy_.max_vls) {
      rec.hitless = true;
      rec.wave_count = 2;
      rec.wave_index = 2;
      std::ostringstream os;
      os << "vl-shift chain: 2 epochs through lanes [" << shift << ", "
         << shift + cand.rr->num_vls() << ")";
      rec.verdicts.push_back(os.str());
      TransitionRecord wrec;
      wrec.event = rec.event;
      wrec.total_dests = rec.total_dests;
      wrec.affected_dests = rec.total_dests;  // every column changes lanes
      wrec.committed_step = "wave";
      wrec.union_gate_checked = true;
      wrec.hitless = true;
      wrec.wave_index = 1;
      wrec.wave_count = 2;
      wrec.verdicts.push_back(
          "wave 1/2: vl-shifted candidate, union vertex-disjoint");
      wrec.repair_ms = timer.millis();
      commit(shift_vls(net_, *cand.rr, shift), wrec);
      rec.committed_step = cand.step;
      rec.repair_ms = timer.millis();
      commit(std::move(*cand.rr), rec);
      return rec;
    }
    std::ostringstream nos;
    nos << "vl-shift: no lane headroom (" << shift << " + "
        << cand.rr->num_vls() << " > " << policy_.max_vls << ")";
    rec.verdicts.push_back(nos.str());
  }
  // No wave schedule (or waves disabled): the two routing functions must
  // never coexist in the fabric — drain, then install a fresh full
  // recompute (Theorem 1 applies to it alone).
  rec.drained = true;
  rec.verdicts.push_back("union-gate: cycle, drained full recompute");
  if (cand.step == "incremental") {
    cand = run_ladder(old.get(), /*incremental=*/false, rec.verdicts);
  }
  rec.committed_step = cand.step;
  rec.repair_ms = timer.millis();
  commit(std::move(*cand.rr), rec);
  return rec;
}

std::vector<TransitionRecord> ResilienceManager::replay(
    const FaultTrace& trace) {
  std::vector<TransitionRecord> records;
  records.reserve(trace.events.size());
  for (const FaultEvent& e : trace.events) records.push_back(apply(e));
  return records;
}

ResilienceManager::Candidate ResilienceManager::run_ladder(
    const RoutingResult* old, bool incremental,
    std::vector<std::string>& verdicts) {
  struct Rung {
    const char* name;
    std::function<RoutingResult()> produce;
  };
  std::vector<Rung> rungs;
  std::string incremental_note;
  // Set by the reroute path below: its candidate only needs the affected
  // columns re-walked (incremental_error); every other producer goes
  // through the full validate_routing.
  bool subset_validation = false;
  if (incremental && old != nullptr) {
    rungs.push_back({"incremental", [&]() -> RoutingResult {
                       bool joined = false;
                       for (NodeId t : net_.terminals()) {
                         if (!old->is_destination(t)) {
                           joined = true;
                           break;
                         }
                       }
                       if (policy_.engine == Engine::kNue &&
                           old->vl_mode() == VlMode::kPerDest && !joined) {
                         NueOptions opt;
                         opt.num_vls = old->num_vls();
                         opt.seed = policy_.seed;
                         opt.num_threads = policy_.num_threads;
                         opt.escape_root_hints = escape_roots_;
                         RerouteStats rrs;
                         NueStats nst;
                         RoutingResult rr =
                             reroute_nue(net_, *old, opt, &rrs, &nst);
                         remember_roots(nst.roots);
                         subset_validation = true;
                         std::ostringstream os;
                         os << " (kept " << rrs.dests_kept << ", rerouted "
                            << rrs.dests_rerouted << " of which patched "
                            << rrs.dests_patched << ", demoted "
                            << rrs.dests_demoted << ", stale marks skipped "
                            << rrs.stale_marks_skipped << ")";
                         incremental_note = os.str();
                         return rr;
                       }
                       return splice_incremental(*old);
                     }});
  }
  rungs.push_back({"full-recompute", [&] {
                     return run_engine_full(policy_.engine, policy_.vls);
                   }});
  if (policy_.max_vls > policy_.vls) {
    rungs.push_back({"more-vls", [&] {
                       return run_engine_full(policy_.engine,
                                              policy_.max_vls);
                     }});
  }
  if (policy_.engine != Engine::kNue) {
    rungs.push_back({"nue-fallback", [&] {
                       return run_engine_full(Engine::kNue, policy_.vls);
                     }});
  }

  for (std::size_t i = 0; i < rungs.size(); ++i) {
    const bool last = i + 1 == rungs.size();
    TELEM_SPAN(rung_span_name(rungs[i].name));
    telemetry::counter("resilience.ladder_rung").add(1);
    Timer t;
    std::optional<RoutingResult> rr;
    try {
      rr.emplace(rungs[i].produce());
    } catch (const RoutingFailure& ex) {
      verdicts.push_back(std::string(rungs[i].name) +
                         ": engine declined: " + ex.what());
      continue;
    }
    const double ms = t.millis();
    const std::string err = (i == 0 && subset_validation)
                                ? incremental_error(*rr, *old)
                                : candidate_error(*rr);
    if (!err.empty()) {
      verdicts.push_back(std::string(rungs[i].name) + ": invalid table: " +
                         err);
      continue;
    }
    if (!last && policy_.step_budget_ms > 0.0 && ms > policy_.step_budget_ms) {
      std::ostringstream os;
      os << rungs[i].name << ": over budget (" << ms << "ms > "
         << policy_.step_budget_ms << "ms)";
      verdicts.push_back(os.str());
      continue;
    }
    std::ostringstream okv;
    okv << rungs[i].name << ": ok"
        << (i == 0 && incremental ? incremental_note : "") << " ["
        << ms << "ms + validate " << t.millis() - ms << "ms]";
    verdicts.push_back(okv.str());
    return {std::move(rr), rungs[i].name};
  }
  NUE_CHECK_MSG(false,
                "repair ladder exhausted without a valid table (Nue's "
                "contract should make this unreachable)");
  return {};
}

RoutingResult ResilienceManager::run_engine_full(Engine e,
                                                 std::uint32_t vls) {
  const auto dests = net_.terminals();
  switch (e) {
    case Engine::kNue: {
      NueOptions opt;
      opt.num_vls = vls;
      opt.seed = policy_.seed;
      opt.num_threads = policy_.num_threads;
      NueStats nst;
      RoutingResult rr = route_nue(net_, dests, opt, &nst);
      remember_roots(nst.roots);
      return rr;
    }
    case Engine::kDfsssp: {
      DfssspOptions opt;
      opt.max_vls = vls;
      opt.num_threads = policy_.num_threads;
      return route_dfsssp(net_, dests, opt);
    }
    case Engine::kLash: {
      LashOptions opt;
      opt.max_vls = vls;
      opt.num_threads = policy_.num_threads;
      return route_lash(net_, dests, opt);
    }
    case Engine::kUpDown:
      return route_updown(net_, dests);
  }
  NUE_CHECK_MSG(false, "unknown repair engine");
  return route_updown(net_, dests);
}

RoutingResult ResilienceManager::splice_incremental(const RoutingResult& old) {
  const auto dests = net_.terminals();
  RoutingResult rr(net_.num_nodes(), dests, old.num_vls(), old.vl_mode());
  std::vector<std::uint8_t> broken(net_.num_nodes(), 0);
  for (NodeId d : affected_destinations(net_, old)) broken[d] = 1;
  const std::vector<double> uniform(net_.num_channels(), 1.0);
  for (std::size_t i = 0; i < dests.size(); ++i) {
    const NodeId d = dests[i];
    const auto di = static_cast<std::uint32_t>(i);
    const std::uint32_t old_di = old.dest_index(d);
    const bool has_old = old_di != RoutingResult::kNoDest;
    // VL assignments are inherited wherever the old table has them (new
    // destinations start on layer 0); whether the guess holds on the
    // repaired paths is the validator's and the union gate's call.
    switch (old.vl_mode()) {
      case VlMode::kPerDest:
        rr.set_dest_vl(di, has_old ? old.vl(d, d, old_di) : 0);
        break;
      case VlMode::kPerSource:
        for (NodeId v = 0; v < net_.num_nodes(); ++v) {
          rr.set_source_vl(v, di, has_old ? old.vl(d, v, old_di) : 0);
        }
        break;
      case VlMode::kPerHop:
        for (NodeId v = 0; v < net_.num_nodes(); ++v) {
          rr.set_hop_vl(v, di, has_old ? old.vl(v, d, old_di) : 0);
        }
        break;
    }
    if (has_old && !broken[d]) {
      for (NodeId v = 0; v < net_.num_nodes(); ++v) {
        if (v == d || !net_.node_alive(v)) continue;
        rr.set_next(v, di, old.next(v, old_di));
      }
    } else {
      const DestTree tree = dest_tree(net_, d, uniform);
      for (NodeId v = 0; v < net_.num_nodes(); ++v) {
        if (v == d || !net_.node_alive(v)) continue;
        rr.set_next(v, di, tree.next[v]);
      }
    }
  }
  return rr;
}

std::string ResilienceManager::candidate_error(const RoutingResult& rr) const {
  for (NodeId t : net_.terminals()) {
    if (!rr.is_destination(t)) {
      std::ostringstream os;
      os << "alive terminal " << t << " is not a destination";
      return os.str();
    }
  }
  const ValidationReport rep = validate_routing(net_, rr);
  if (!rep.ok()) {
    return rep.detail.empty() ? std::string("validation failed") : rep.detail;
  }
  return "";
}

std::string ResilienceManager::incremental_error(
    const RoutingResult& rr, const RoutingResult& old) const {
  for (NodeId t : net_.terminals()) {
    if (!rr.is_destination(t)) {
      std::ostringstream os;
      os << "alive terminal " << t << " is not a destination";
      return os.str();
    }
  }
  std::vector<NodeId> dests;
  for (NodeId d : affected_destinations(net_, old)) {
    if (net_.node_alive(d)) dests.push_back(d);  // dead dests were dropped
  }
  const ValidationReport rep = validate_columns(net_, rr, dests);
  if (!rep.ok()) {
    return rep.detail.empty() ? std::string("validation failed") : rep.detail;
  }
  return "";
}

void ResilienceManager::remember_roots(const std::vector<NodeId>& roots) {
  if (escape_roots_.size() < roots.size()) {
    escape_roots_.resize(roots.size(), kInvalidNode);
  }
  for (std::size_t l = 0; l < roots.size(); ++l) {
    if (roots[l] != kInvalidNode) escape_roots_[l] = roots[l];
  }
}

void ResilienceManager::commit(RoutingResult rr, TransitionRecord& rec) {
  auto fresh = std::make_shared<const RoutingResult>(std::move(rr));
  std::shared_ptr<const RoutingResult> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    old = table_;
    table_ = fresh;
    rec.epoch = ++epoch_;
  }
  log_.add(rec);
  publish_transition(rec);
  if (hook_) hook_(net_, old.get(), *fresh, rec);
}

}  // namespace nue::resilience
