// Live resilience manager: keeps a validated, deadlock-free routing
// function up while the fabric degrades and heals underneath it
// (docs/RESILIENCE.md).
//
// The manager consumes a stream of runtime fault/repair events (link down,
// switch down, link restore, switch restore — topology/faults.hpp). On
// each event it
//
//   1. extracts the table diff: only destinations whose forwarding column
//      touches a dead element (affected_destinations) — or that joined the
//      fabric with a restored switch — need new routes; everything else is
//      spliced verbatim into a double-buffered successor table,
//   2. climbs a bounded repair ladder until a candidate passes the full
//      validation oracle (reachability, no revisits, VL sanity, CDG
//      acyclicity, and coverage of every alive terminal):
//        incremental -> full recompute -> same engine with more VLs ->
//        Nue fallback (which, per the paper's Lemma 3, cannot fail for any
//        k >= 1 on a connected fabric),
//      each rung under an optional wall-clock budget,
//   3. runs the transition-safety gate before the atomic epoch swap: the
//      union CDG of the old and new tables must be acyclic (UPR
//      compatibility), because in-flight packets hold resources per the
//      old table while new injections follow the new one. When the direct
//      gate fails, the wave scheduler (waves.hpp) tries to partition the
//      changed columns into migration waves whose intermediate tables
//      keep every adjacent union acyclic — the transition then commits as
//      a multi-epoch chain of hitless swaps instead of draining. Only
//      when no schedule exists does the manager fall back to a drained
//      full recompute — correct by Theorem 1 because old and new traffic
//      never coexist — recorded with the scheduler's verdict, never
//      silently skipped.
//
// Every transition's verdicts land in a metrics::ReconfigLog
// (src/metrics/reconfig_log.hpp); bench_reconfig and `nue_route
// --fault-trace` serialize it as BENCH_reconfig.json.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "metrics/reconfig_log.hpp"
#include "routing/routing.hpp"
#include "topology/faults.hpp"
#include "util/timer.hpp"

namespace nue::resilience {

/// Engines able to route an arbitrary degraded fabric (the topology-bound
/// schemes — Torus-2QoS, fat-tree d-mod-k — cannot serve as live repair
/// engines; MinHop is excluded because it never promises deadlock
/// freedom, so no committed epoch could pass the oracle).
enum class Engine : std::uint8_t { kNue, kDfsssp, kLash, kUpDown };

const char* engine_name(Engine e);
std::optional<Engine> engine_from_name(const std::string& s);

struct RepairPolicy {
  Engine engine = Engine::kNue;
  std::uint32_t vls = 4;      // base VL budget for every rung but more-vls
  std::uint32_t max_vls = 8;  // the more-vls rung's escalated budget
  /// Wall-clock budget per ladder rung in milliseconds; a rung that
  /// finishes over budget is discarded and the ladder descends. 0 (the
  /// default) disables the budgets — deterministic CI runs want that. The
  /// final rung is exempt: a table must always be produced.
  double step_budget_ms = 0.0;
  std::uint64_t seed = 1;     // forwarded to Nue
  /// Worker threads for the routing engines (0 = process default).
  std::uint32_t num_threads = 1;
  /// Attempt a migration-wave schedule (waves.hpp) when the direct union
  /// gate fails, before falling back to the drained recompute. Off turns
  /// every gate failure back into a drain (the pre-wave behavior; the
  /// bench's baseline mode).
  bool enable_waves = true;
  /// Upper bound on the epochs of one wave chain; a schedule that needs
  /// more drains instead (bounded staleness: a fault-affected column is
  /// stale for at most max_waves epochs).
  std::size_t max_waves = 8;
  /// Retained ReconfigLog window (0 = unbounded, the one-shot CLI
  /// default). A resident manager processing an unbounded event stream
  /// must cap this or the verdict trail grows monotonically; summary
  /// counts stay exact across eviction (metrics/reconfig_log.hpp).
  std::size_t log_max_records = 0;
};

/// Thread-safety contract (the fabric-manager daemon's shard model,
/// docs/SERVICE.md): table() and epoch() are safe to call concurrently
/// with apply() and with each other — readers keep routing on their
/// snapshot while apply() swaps in the successor epoch. apply()/replay()
/// mutate the fabric and must be externally serialized (one event
/// applier per manager, e.g. the shard's event mutex); net() and log()
/// are only stable between apply() calls and follow the same rule.
/// A single manager instance is built to survive unbounded event
/// streams: every per-event structure is either reset per apply() or
/// explicitly bounded (escape_roots_ by the VL budget, the verdict log
/// by RepairPolicy::log_max_records, the fabric's adjacency pool by its
/// compaction bound) — test_resilience_churn.cpp holds it to that.
class ResilienceManager {
 public:
  /// Takes ownership of the fabric and routes the initial table through
  /// the ladder's full-recompute rungs (epoch 1). Throws RoutingFailure
  /// only if even the Nue fallback cannot route (i.e. never on a
  /// connected fabric).
  ResilienceManager(Network net, RepairPolicy policy);

  const Network& net() const { return net_; }
  const RepairPolicy& policy() const { return policy_; }

  /// Snapshot of the active routing table. The shared_ptr is the double
  /// buffer: readers keep routing on their snapshot while apply() swaps
  /// in the successor epoch.
  std::shared_ptr<const RoutingResult> table() const;
  std::uint64_t epoch() const;

  /// Every transition's verdict trail, in order (epoch 1 = initial table).
  const ReconfigLog& log() const { return log_; }

  /// Observer invoked after every commit with (fabric, previous table or
  /// nullptr, committed table, record) — the fuzzer's reconfiguration
  /// oracle re-validates each epoch and re-checks the union gate through
  /// this hook.
  using CommitHook = std::function<void(
      const Network&, const RoutingResult*, const RoutingResult&,
      const TransitionRecord&)>;
  void set_commit_hook(CommitHook hook) { hook_ = std::move(hook); }

  /// Apply one runtime event: mutate the fabric, repair, gate, swap.
  /// Throws std::logic_error on an event that is illegal on the current
  /// fabric (apply_fault_event's contract) — the fabric is unchanged in
  /// that case. A transition whose direct gate fails but that the wave
  /// scheduler can stage commits several epochs (each through the same
  /// atomic swap, each logged); the returned record is the chain's final
  /// one (wave_index == wave_count > 0 identifies it).
  TransitionRecord apply(const FaultEvent& e);

  /// Recompute the table from scratch on the current fabric and commit it
  /// through the same gate -> waves -> drain tail as apply() (event
  /// "resync", every column counted affected). Deterministic engines make
  /// the committed table byte-identical to a fresh manager built on an
  /// identically mutated fabric — the convergence anchor for long churn
  /// streams (bench_reconfig's storm mode ends with one).
  TransitionRecord resync();

  /// Apply a whole trace (events only; the caller instantiated the
  /// fabric from trace.generate before constructing the manager).
  std::vector<TransitionRecord> replay(const FaultTrace& trace);

 private:
  struct Candidate {
    std::optional<RoutingResult> rr;
    std::string step;  // ladder rung name that produced it
  };

  /// Climb the ladder; `incremental` enables rung 1 (event repairs only —
  /// the initial table and drained recomputes start at rung 2).
  Candidate run_ladder(const RoutingResult* old, bool incremental,
                       std::vector<std::string>& verdicts);
  RoutingResult run_engine_full(Engine e, std::uint32_t vls);
  RoutingResult splice_incremental(const RoutingResult& old);
  /// validate_routing + alive-terminal coverage; returns "" when valid,
  /// else the failure detail for the verdict trail.
  std::string candidate_error(const RoutingResult& rr) const;
  /// Validation for candidates from the Nue reroute path: only the
  /// columns the event actually touched (affected_destinations of the old
  /// table) are walked — the kept columns were validated verbatim at
  /// their own commit and re-checked for liveness by the reroute's intact
  /// classification, and table-wide CDG acyclicity is covered by the
  /// union gate (the new dependency set is a subset of the old+new union;
  /// a gate failure drains into a fully validated recompute). This keeps
  /// per-event validation proportional to the damage, not the fabric.
  std::string incremental_error(const RoutingResult& rr,
                                const RoutingResult& old) const;
  void commit(RoutingResult rr, TransitionRecord& record);
  /// The shared transition tail of apply()/resync(): union gate, wave
  /// scheduling on gate failure, drained-recompute fallback, commit(s).
  /// `rec` carries the ladder verdicts in; the chain's final record comes
  /// back. `timer` spans the whole event for per-record repair_ms.
  TransitionRecord gate_and_commit(
      const std::shared_ptr<const RoutingResult>& old, Candidate cand,
      TransitionRecord rec, Timer& timer);
  /// Fold a run's layer-indexed escape roots into escape_roots_ (entries
  /// of kInvalidNode mean "layer untouched" and keep the remembered root).
  void remember_roots(const std::vector<NodeId>& roots);

  Network net_;
  RepairPolicy policy_;
  ReconfigLog log_;
  CommitHook hook_;
  mutable std::mutex mutex_;          // guards table_/epoch_ swap + reads
  std::shared_ptr<const RoutingResult> table_;
  std::uint64_t epoch_ = 0;
  /// Escape root per virtual layer of the last Nue run, fed back to
  /// reroute_nue as hints: the previous tree's root is the candidate most
  /// likely to admit a hitless (union-acyclic) repair on the first try.
  std::vector<NodeId> escape_roots_;
};

}  // namespace nue::resilience
