// Standard synthetic traffic patterns (Dally & Towles ch. 3) on the
// terminal index space [0, T): complements the all-to-all shift exchange
// used for the paper's figures, and backs the NoC example and the
// footnote-7 uniform-injection cross-check.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "sim/flit_sim.hpp"
#include "util/rng.hpp"

namespace nue {

enum class TrafficPattern : std::uint8_t {
  kBitComplement,  // i -> ~i          (worst-case bisection load)
  kTranspose,      // (hi,lo) -> (lo,hi) on the index's bit halves
  kTornado,        // i -> i + ceil(T/2) - 1 (adversarial for rings/tori)
  kNeighbor,       // i -> i + 1       (best case, nearest neighbor)
  kReverse,        // i -> bit-reversed i
};

/// Achieved-vs-requested accounting for pattern_messages: the bit-defined
/// patterns (complement/transpose/reverse) only cover a power-of-two index
/// space, so on other terminal counts some targets land out of range and
/// the message is dropped; self-targets (pattern fixed points) are dropped
/// everywhere. Same convention as the inject_* fault helpers — callers see
/// the real injected load instead of a silent shortfall.
struct PatternStats {
  std::size_t requested = 0;       // repetitions * terminal count
  std::size_t generated = 0;       // messages actually returned
  std::size_t dropped_out_of_range = 0;  // target >= T (non-pow2 only)
  std::size_t dropped_self = 0;          // pattern fixed points
};

/// One message of `message_bytes` per terminal, destination given by the
/// pattern (self-messages are dropped). Index-space patterns use the
/// position of a terminal within net.terminals(). `stats`, when non-null,
/// receives the achieved-vs-requested breakdown.
std::vector<Message> pattern_messages(const Network& net,
                                      TrafficPattern pattern,
                                      std::uint32_t message_bytes,
                                      std::uint32_t repetitions = 1,
                                      PatternStats* stats = nullptr);

/// Hotspot traffic: exactly `count` messages, uniform-random source, of
/// which a fraction `hot_fraction` targets one hot terminal (index
/// hot_index) and the rest a uniform-random destination. Self-pairs are
/// redrawn (never silently skipped), so the injected load always matches
/// the requested count.
std::vector<Message> hotspot_messages(const Network& net, std::size_t count,
                                      std::uint32_t message_bytes,
                                      double hot_fraction,
                                      std::size_t hot_index, Rng& rng);

}  // namespace nue
