// Standard synthetic traffic patterns (Dally & Towles ch. 3) on the
// terminal index space [0, T): complements the all-to-all shift exchange
// used for the paper's figures, and backs the NoC example and the
// footnote-7 uniform-injection cross-check.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "sim/flit_sim.hpp"
#include "util/rng.hpp"

namespace nue {

enum class TrafficPattern : std::uint8_t {
  kBitComplement,  // i -> ~i          (worst-case bisection load)
  kTranspose,      // (hi,lo) -> (lo,hi) on the index's bit halves
  kTornado,        // i -> i + T/2 - 1 (adversarial for rings/tori)
  kNeighbor,       // i -> i + 1       (best case, nearest neighbor)
  kReverse,        // i -> bit-reversed i
};

/// One message of `message_bytes` per terminal, destination given by the
/// pattern (self-messages are dropped). Index-space patterns use the
/// position of a terminal within net.terminals().
std::vector<Message> pattern_messages(const Network& net,
                                      TrafficPattern pattern,
                                      std::uint32_t message_bytes,
                                      std::uint32_t repetitions = 1);

/// Hotspot traffic: `count` uniform-random messages, of which a fraction
/// `hot_fraction` is redirected to one hot terminal (index hot_index).
std::vector<Message> hotspot_messages(const Network& net, std::size_t count,
                                      std::uint32_t message_bytes,
                                      double hot_fraction,
                                      std::size_t hot_index, Rng& rng);

}  // namespace nue
