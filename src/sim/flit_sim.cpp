// The cycle-based engine: the original scan-every-active-channel-every-
// cycle implementation, kept as the differential baseline for the
// discrete-event engine in event_sim.cpp (parity suite, fuzzer
// cross-check, bench_sim_scale head-to-head).
#include "sim/flit_sim.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace nue {

namespace {

constexpr std::uint32_t kTailBit = 0x80000000u;
constexpr std::uint32_t kNoLock = static_cast<std::uint32_t>(-1);

struct Packet {
  NodeId src;
  NodeId dst;
  std::uint32_t dest_idx;
  std::uint16_t flits;
  std::uint16_t delivered;
  std::uint32_t payload_bytes;
  std::uint64_t inject_cycle = 0;  // cycle the first flit left the NIC
};

/// One FIFO of flits: either the input buffer of (channel, VL) at the
/// channel's head node, or a terminal's NIC source (lazily expanded).
struct Queue {
  std::deque<std::uint32_t> flits;  // packet id | kTailBit on tail flits
  ChannelId req_out = kInvalidChannel;  // desired output of the head packet
  bool registered = false;              // present in req_out's candidates
  // Adaptive mode: the header's per-hop decision, honoured by the body
  // flits of the same packet (wormhole).
  std::uint32_t locked_pid = static_cast<std::uint32_t>(-1);
  ChannelId locked_out = kInvalidChannel;
  std::uint8_t locked_vl = 0;
};

class Simulator {
 public:
  Simulator(const Network& net, const RoutingResult& rr,
            const std::vector<Message>& messages, const SimConfig& cfg,
            std::uint32_t adaptive_vls = 0)
      : net_(net),
        rr_(rr),
        cfg_(cfg),
        adaptive_vls_(adaptive_vls),
        num_vls_(adaptive_vls > 0 ? adaptive_vls + 1 : rr.num_vls()) {
    const std::size_t nq =
        net.num_channels() * num_vls_ + net.num_nodes();
    queues_.resize(nq);
    candidates_.assign(net.num_channels(), {});
    rr_ptr_.assign(net.num_channels(), 0);
    vl_lock_.assign(net.num_channels() * num_vls_, kNoLock);
    occupancy_.assign(net.num_channels() * num_vls_, 0);
    input_used_stamp_.assign(net.num_channels() + net.num_nodes(), 0);
    active_.reserve(net.num_channels());
    active_flag_.assign(net.num_channels(), 0);

    // Build packets and NIC queues.
    nic_head_.assign(net.num_nodes(), 0);
    nic_emitted_.assign(net.num_nodes(), 0);
    nic_packets_.assign(net.num_nodes(), {});
    NUE_CHECK(cfg.mtu_bytes >= cfg.flit_bytes);
    for (const Message& m : messages) {
      NUE_CHECK(net.is_terminal(m.src) && net.node_alive(m.src));
      NUE_CHECK(rr.is_destination(m.dst));
      // MTU segmentation: each packet carries up to mtu_bytes of payload
      // plus one header flit.
      std::uint32_t remaining = std::max(m.bytes, 1u);
      while (remaining > 0) {
        const std::uint32_t chunk = std::min(remaining, cfg.mtu_bytes);
        remaining -= chunk;
        const std::uint32_t f =
            1 + (chunk + cfg.flit_bytes - 1) / cfg.flit_bytes;
        NUE_CHECK(f < 0x10000);
        packets_.push_back({m.src, m.dst, rr.dest_index(m.dst),
                            static_cast<std::uint16_t>(f), 0, chunk});
        nic_packets_[m.src].push_back(
            static_cast<std::uint32_t>(packets_.size() - 1));
      }
      total_bytes_ += m.bytes;
    }
    if (adaptive_vls_ == 0) {
      for (NodeId t = 0; t < net.num_nodes(); ++t) {
        if (!nic_packets_[t].empty()) refresh_nic(t);
      }
    } else {
      for (NodeId t = 0; t < net.num_nodes(); ++t) {
        if (nic_packets_[t].empty()) continue;
        const std::size_t qid = nic_qid(t);
        const std::uint32_t pid = nic_packets_[t][0];
        const bool tail = packets_[pid].flits == 1;
        queues_[qid].flits.push_back(pid | (tail ? kTailBit : 0));
        adaptive_register(qid);
      }
    }
  }

  SimResult run() {
    TELEM_SPAN("sim.run");
    SimResult res;
    std::uint64_t cycle = 0;
    std::uint64_t last_move_cycle = 0;
    const std::uint64_t total_packets = packets_.size();
    Timer wall;
    while (delivered_packets_ < total_packets) {
      ++cycle;
      if (cycle > cfg_.max_cycles) break;
      if (cfg_.max_wall_ms > 0 && (cycle & 0xFFF) == 0 &&
          wall.seconds() * 1e3 >= cfg_.max_wall_ms) {
        res.hit_wall_budget = true;
        break;
      }
      if (adaptive_vls_ > 0 ? step_adaptive(cycle) : step(cycle)) {
        last_move_cycle = cycle;
      } else if (cycle - last_move_cycle >= cfg_.deadlock_cycles) {
        res.deadlocked = true;
        if (std::getenv("NUE_SIM_DEBUG")) dump_stuck_state();
        break;
      }
    }
    res.cycles = cycle;
    res.completed = delivered_packets_ == total_packets;
    res.delivered_packets = delivered_packets_;
    res.delivered_bytes = delivered_bytes_;
    res.flit_hops = flit_hops_;
    if (!latencies_.empty()) {
      std::uint64_t total = 0, maxv = 0;
      for (const auto l : latencies_) {
        total += l;
        maxv = std::max(maxv, l);
      }
      res.avg_packet_latency =
          static_cast<double>(total) / static_cast<double>(latencies_.size());
      res.max_packet_latency = maxv;
      // Interpolating percentile (util/stats.hpp) so small-sample p99
      // agrees with the metrics pipeline instead of a floor index.
      std::vector<double> lat(latencies_.begin(), latencies_.end());
      res.p99_packet_latency = percentile(std::move(lat), 99.0);
    }
    if (cycle > 0 && !tx_count_.empty()) {
      std::uint64_t max_tx = 0, total_tx = 0;
      std::size_t links = 0;
      for (ChannelId c = 0; c < net_.num_channels(); ++c) {
        if (!net_.channel_alive(c) || net_.is_terminal(net_.src(c)) ||
            net_.is_terminal(net_.dst(c))) {
          continue;
        }
        max_tx = std::max(max_tx, tx_count_[c]);
        total_tx += tx_count_[c];
        ++links;
      }
      res.max_link_utilization =
          static_cast<double>(max_tx) / static_cast<double>(cycle);
      if (links > 0) {
        res.avg_link_utilization = static_cast<double>(total_tx) /
                                   static_cast<double>(links) /
                                   static_cast<double>(cycle);
      }
    }
    if (cycle > 0) {
      res.aggregate_flits_per_cycle =
          static_cast<double>(delivered_bytes_) / cfg_.flit_bytes /
          static_cast<double>(cycle);
      res.normalized_throughput =
          res.aggregate_flits_per_cycle /
          static_cast<double>(net_.num_alive_terminals());
    }
    return res;
  }

 private:
  std::size_t qid_of(ChannelId c, std::uint32_t vl) const {
    return static_cast<std::size_t>(c) * num_vls_ + vl;
  }
  std::size_t nic_qid(NodeId t) const {
    return net_.num_channels() * num_vls_ + t;
  }

  /// Input-port id used for the one-flit-per-input-per-cycle constraint.
  std::size_t input_port_of(std::size_t qid) const {
    return qid < net_.num_channels() * num_vls_
               ? qid / num_vls_
               : net_.num_channels() + (qid - net_.num_channels() * num_vls_);
  }

  /// Node at which the queue's head flit currently sits.
  NodeId node_of(std::size_t qid) const {
    return qid < net_.num_channels() * num_vls_
               ? net_.dst(static_cast<ChannelId>(qid / num_vls_))
               : static_cast<NodeId>(qid - net_.num_channels() * num_vls_);
  }

  /// Recompute a queue's requested output from its head flit and
  /// (re)register it with that output's candidate list.
  void refresh_queue(std::size_t qid) {
    Queue& q = queues_[qid];
    if (q.registered || q.flits.empty()) return;
    const std::uint32_t pid = q.flits.front() & ~kTailBit;
    const Packet& p = packets_[pid];
    const NodeId at = node_of(qid);
    const ChannelId out = rr_.next(at, p.dest_idx);
    NUE_DCHECK(out != kInvalidChannel);
    q.req_out = out;
    q.registered = true;
    if (!active_flag_[out]) {
      active_flag_[out] = 1;
      active_.push_back(out);
    }
    candidates_[out].push_back(static_cast<std::uint32_t>(qid));
  }

  /// NIC queues hold packet ids, not flits; materialize the head flit view.
  void refresh_nic(NodeId t) {
    const std::size_t qid = nic_qid(t);
    Queue& q = queues_[qid];
    if (q.registered) return;
    if (q.flits.empty() && nic_head_[t] < nic_packets_[t].size()) {
      // Expose the current packet as a virtual flit; emission counting
      // happens at move time via nic_emitted_.
      const std::uint32_t pid = nic_packets_[t][nic_head_[t]];
      const bool tail = nic_emitted_[t] + 1 == packets_[pid].flits;
      q.flits.push_back(pid | (tail ? kTailBit : 0));
    }
    refresh_queue(qid);
  }

  /// Advance one cycle; returns true if any flit moved.
  bool step(std::uint64_t cycle) {
    bool moved = false;
    arrivals_.clear();
    // Iterate active outputs; compact the list as queues drain.
    std::size_t w = 0;
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const ChannelId out = active_[i];
      auto& cand = candidates_[out];
      if (cand.empty()) {
        active_flag_[out] = 0;
        continue;  // drop from active list
      }
      active_[w++] = out;
      if (try_serve_output(out, cand, cycle)) moved = true;
    }
    active_.resize(w);
    // Commit arrivals (become visible next cycle).
    for (const auto& [qid, flit] : arrivals_) {
      queues_[qid].flits.push_back(flit);
      refresh_queue(qid);
    }
    return moved;
  }

  bool try_serve_output(ChannelId out, std::vector<std::uint32_t>& cand,
                        std::uint64_t cycle) {
    const std::size_t n = cand.size();
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t slot = (rr_ptr_[out] + k) % n;
      const std::size_t qid = cand[slot];
      Queue& q = queues_[qid];
      // A registered candidate can be stale only via this scan; queues are
      // unregistered exactly when their head flit is consumed.
      NUE_DCHECK(q.registered && !q.flits.empty());
      const std::uint32_t flit = q.flits.front();
      const std::uint32_t pid = flit & ~kTailBit;
      const Packet& p = packets_[pid];
      const NodeId at = node_of(qid);
      const std::uint32_t vl = rr_.vl(at, p.src, p.dest_idx);
      // One flit per input port per cycle.
      if (input_used_stamp_[input_port_of(qid)] == cycle) continue;
      const NodeId to = net_.dst(out);
      const bool eject = net_.is_terminal(to);
      const std::size_t down = qid_of(out, vl);
      if (!eject) {
        // Credit: space downstream for this VL?
        if (occupancy_[down] >= cfg_.buffer_flits) continue;
        // Wormhole lock: one packet at a time per (channel, VL).
        if (vl_lock_[down] != kNoLock && vl_lock_[down] != pid) continue;
      }
      // --- move the flit ---
      input_used_stamp_[input_port_of(qid)] = cycle;
      rr_ptr_[out] = (slot + 1) % n;
      count_tx(out);
      if (qid >= net_.num_channels() * num_vls_ &&
          nic_emitted_[net_.src(out)] == 0) {
        packets_[pid].inject_cycle = cycle;  // first flit leaves the NIC
      }
      current_cycle_ = cycle;
      pop_head(qid);
      ++flit_hops_;
      if (eject) {
        deliver(pid, flit & kTailBit);
      } else {
        vl_lock_[down] = (flit & kTailBit) ? kNoLock : pid;
        ++occupancy_[down];
        record_occupancy(occupancy_[down]);
        arrivals_.emplace_back(down, flit);
      }
      return true;
    }
    return false;
  }

  void pop_head(std::size_t qid) {
    Queue& q = queues_[qid];
    // Unregister from the candidate list of its current output.
    auto& cand = candidates_[q.req_out];
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (cand[i] == qid) {
        cand[i] = cand.back();
        cand.pop_back();
        break;
      }
    }
    q.registered = false;
    if (qid >= net_.num_channels() * num_vls_) {
      // NIC queue: account emission and refresh the virtual head flit.
      const NodeId t = static_cast<NodeId>(qid - net_.num_channels() * num_vls_);
      q.flits.pop_front();
      if (++nic_emitted_[t] == packets_[nic_packets_[t][nic_head_[t]]].flits) {
        ++nic_head_[t];
        nic_emitted_[t] = 0;
      }
      refresh_nic(t);
    } else {
      // In-network queue: free the credit.
      --occupancy_[qid];
      q.flits.pop_front();
      refresh_queue(qid);
    }
  }

  /// Per-flit buffer-depth sample (the distribution of VL queue depths at
  /// enqueue time); one relaxed load when telemetry is off.
  static void record_occupancy(std::uint32_t depth) {
    if (!telemetry::enabled()) return;
    static auto& hist = telemetry::histogram("flit_sim.vl_occupancy");
    hist.record_always(depth);
  }

  void count_tx(ChannelId c) {
    if (tx_count_.empty()) tx_count_.assign(net_.num_channels(), 0);
    ++tx_count_[c];
  }

  void deliver(std::uint32_t pid, bool tail) {
    Packet& p = packets_[pid];
    ++p.delivered;
    if (tail) {
      NUE_DCHECK(p.delivered == p.flits);
      ++delivered_packets_;
      delivered_bytes_ += p.payload_bytes;
      latencies_.push_back(current_cycle_ - p.inject_cycle + 1);
    }
  }

  const Network& net_;
  const RoutingResult& rr_;  // deterministic tables / adaptive escape routing
  SimConfig cfg_;
  std::uint32_t adaptive_vls_ = 0;  // 0 = deterministic mode
  std::uint32_t num_vls_;

  std::vector<Packet> packets_;
  std::vector<Queue> queues_;
  std::vector<std::vector<std::uint32_t>> candidates_;  // per output
  std::vector<std::uint32_t> rr_ptr_;
  std::vector<std::uint32_t> vl_lock_;      // per (channel, VL)
  std::vector<std::uint32_t> occupancy_;    // per (channel, VL)
  std::vector<std::uint64_t> input_used_stamp_;
  std::vector<ChannelId> active_;
  std::vector<std::uint8_t> active_flag_;
  std::vector<std::pair<std::size_t, std::uint32_t>> arrivals_;

  std::vector<std::vector<std::uint32_t>> nic_packets_;
  std::vector<std::size_t> nic_head_;
  std::vector<std::uint32_t> nic_emitted_;

  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::uint64_t current_cycle_ = 0;
  std::vector<std::uint64_t> latencies_;
  std::vector<std::uint64_t> tx_count_;  // flits sent per channel

  // --- adaptive mode ---------------------------------------------------------
  std::vector<std::uint64_t> out_used_stamp_;
  std::vector<std::vector<std::uint16_t>> hop_dist_;  // per dest_idx, lazy
  std::vector<std::size_t> adaptive_queues_;          // nonempty queues
  std::vector<std::uint8_t> adaptive_registered_;
  std::size_t adaptive_rr_ = 0;

  const std::vector<std::uint16_t>& hop_distances(std::uint32_t dest_idx) {
    if (hop_dist_.empty()) hop_dist_.resize(rr_.destinations().size());
    auto& d = hop_dist_[dest_idx];
    if (d.empty()) {
      // BFS from the destination over reversed (= duplex) channels.
      d.assign(net_.num_nodes(), 0xFFFF);
      std::vector<NodeId> frontier{rr_.destinations()[dest_idx]};
      d[frontier[0]] = 0;
      while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (NodeId v : frontier) {
          for (ChannelId c : net_.out(v)) {
            const NodeId w = net_.dst(c);
            if (d[w] == 0xFFFF) {
              d[w] = static_cast<std::uint16_t>(d[v] + 1);
              next.push_back(w);
            }
          }
        }
        frontier.swap(next);
      }
    }
    return d;
  }

  void adaptive_register(std::size_t qid) {
    if (adaptive_registered_.empty()) {
      adaptive_registered_.assign(queues_.size(), 0);
    }
    if (!adaptive_registered_[qid] && !queues_[qid].flits.empty()) {
      adaptive_registered_[qid] = 1;
      adaptive_queues_.push_back(qid);
    }
  }

  /// Header route choice at node `at`: any minimal output with credit on
  /// an adaptive VL; otherwise the escape routing on the escape VL; or
  /// nothing serviceable this cycle.
  bool choose_adaptive(std::size_t qid, NodeId at, const Packet& p,
                       std::uint8_t cur_vl, std::uint64_t cycle,
                       ChannelId* out, std::uint8_t* vl) {
    const std::uint8_t escape_vl = static_cast<std::uint8_t>(adaptive_vls_);
    const bool on_escape = cur_vl == escape_vl &&
                           qid < net_.num_channels() * num_vls_;
    const auto usable = [&](ChannelId c, std::uint8_t v) {
      if (out_used_stamp_[c] == cycle) return false;
      const NodeId to = net_.dst(c);
      if (net_.is_terminal(to)) return to == p.dst;
      const std::size_t down = qid_of(c, v);
      if (occupancy_[down] >= cfg_.buffer_flits) return false;
      const std::uint32_t pid =
          static_cast<std::uint32_t>(&p - packets_.data());
      return vl_lock_[down] == kNoLock || vl_lock_[down] == pid;
    };
    if (!on_escape) {
      const auto& dist = hop_distances(p.dest_idx);
      // Rotating preference over minimal outputs and adaptive VLs.
      const auto outs = net_.out(at);
      for (std::size_t k = 0; k < outs.size(); ++k) {
        const ChannelId c = outs[(adaptive_rr_ + k) % outs.size()];
        const NodeId to = net_.dst(c);
        if (net_.is_terminal(to) ? to != p.dst
                                 : dist[to] + 1 != dist[at]) {
          continue;  // non-minimal
        }
        for (std::uint8_t v = 0; v < adaptive_vls_; ++v) {
          if (usable(c, v)) {
            *out = c;
            *vl = v;
            ++adaptive_rr_;
            return true;
          }
        }
      }
    }
    // Escape (or already escaped): deterministic deadlock-free routing.
    const ChannelId c = rr_.next(at, p.dest_idx);
    if (c != kInvalidChannel && usable(c, escape_vl)) {
      *out = c;
      *vl = escape_vl;
      return true;
    }
    return false;
  }

  bool step_adaptive(std::uint64_t cycle) {
    bool moved = false;
    arrivals_.clear();
    if (out_used_stamp_.empty()) {
      out_used_stamp_.assign(net_.num_channels(), 0);
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < adaptive_queues_.size(); ++i) {
      const std::size_t qid = adaptive_queues_[i];
      Queue& q = queues_[qid];
      if (q.flits.empty()) {
        adaptive_registered_[qid] = 0;
        continue;
      }
      adaptive_queues_[w++] = qid;
      if (input_used_stamp_[input_port_of(qid)] == cycle) continue;
      const std::uint32_t flit = q.flits.front();
      const std::uint32_t pid = flit & ~kTailBit;
      const Packet& p = packets_[pid];
      const NodeId at = node_of(qid);
      ChannelId out;
      std::uint8_t vl;
      if (q.locked_pid == pid) {
        out = q.locked_out;
        vl = q.locked_vl;
        // Re-validate resources for this body flit.
        const NodeId to = net_.dst(out);
        if (out_used_stamp_[out] == cycle) continue;
        if (!net_.is_terminal(to)) {
          const std::size_t down = qid_of(out, vl);
          if (occupancy_[down] >= cfg_.buffer_flits) continue;
          if (vl_lock_[down] != kNoLock && vl_lock_[down] != pid) continue;
        }
      } else {
        const std::uint8_t cur_vl =
            qid < net_.num_channels() * num_vls_
                ? static_cast<std::uint8_t>(qid % num_vls_)
                : 0;
        if (!choose_adaptive(qid, at, p, cur_vl, cycle, &out, &vl)) continue;
        q.locked_pid = pid;
        q.locked_out = out;
        q.locked_vl = vl;
      }
      // Move the flit.
      input_used_stamp_[input_port_of(qid)] = cycle;
      out_used_stamp_[out] = cycle;
      count_tx(out);
      if (qid >= net_.num_channels() * num_vls_ &&
          nic_emitted_[net_.src(out)] == 0) {
        packets_[pid].inject_cycle = cycle;
      }
      current_cycle_ = cycle;
      adaptive_pop_head(qid);
      // The per-queue route decision lives until this packet's tail has
      // passed — body flits must follow the header even when the queue
      // drains and refills in between.
      if (flit & kTailBit) q.locked_pid = static_cast<std::uint32_t>(-1);
      ++flit_hops_;
      const NodeId to = net_.dst(out);
      if (net_.is_terminal(to)) {
        deliver(pid, flit & kTailBit);
      } else {
        const std::size_t down = qid_of(out, vl);
        vl_lock_[down] = (flit & kTailBit) ? kNoLock : pid;
        ++occupancy_[down];
        record_occupancy(occupancy_[down]);
        arrivals_.emplace_back(down, flit);
      }
      moved = true;
    }
    adaptive_queues_.resize(w);
    for (const auto& [qid, flit] : arrivals_) {
      queues_[qid].flits.push_back(flit);
      adaptive_register(qid);
    }
    return moved;
  }

  /// Diagnostic dump of every stuck flit (enabled via NUE_SIM_DEBUG).
  void dump_stuck_state() const {
    std::fprintf(stderr, "=== deadlock dump ===\n");
    for (std::size_t qid = 0; qid < queues_.size(); ++qid) {
      const Queue& q = queues_[qid];
      if (q.flits.empty()) continue;
      if (qid < net_.num_channels() * num_vls_) {
        const auto c = static_cast<ChannelId>(qid / num_vls_);
        std::fprintf(stderr, "queue ch %u->%u vl%zu:", net_.src(c),
                     net_.dst(c), qid % num_vls_);
      } else {
        std::fprintf(stderr, "NIC node %zu:",
                     qid - net_.num_channels() * num_vls_);
      }
      for (const auto f : q.flits) {
        const auto pid = f & ~kTailBit;
        std::fprintf(stderr, " p%u%s(dst %u)", pid,
                     (f & kTailBit) ? "T" : "", packets_[pid].dst);
      }
      std::fprintf(stderr, "  locked_pid=%d out=%d vl=%d\n",
                   static_cast<int>(q.locked_pid),
                   static_cast<int>(q.locked_out),
                   static_cast<int>(q.locked_vl));
    }
    for (std::size_t c = 0; c < net_.num_channels(); ++c) {
      for (std::size_t v = 0; v < num_vls_; ++v) {
        const std::size_t down = c * num_vls_ + v;
        if (vl_lock_[down] != kNoLock) {
          std::fprintf(stderr, "lock ch %u->%u vl%zu held by p%u occ=%u\n",
                       net_.src(static_cast<ChannelId>(c)),
                       net_.dst(static_cast<ChannelId>(c)), v,
                       vl_lock_[down], occupancy_[down]);
        }
      }
    }
  }

  /// pop_head() counterpart that skips the deterministic candidate lists.
  void adaptive_pop_head(std::size_t qid) {
    Queue& q = queues_[qid];
    if (qid >= net_.num_channels() * num_vls_) {
      const NodeId t =
          static_cast<NodeId>(qid - net_.num_channels() * num_vls_);
      q.flits.pop_front();
      if (++nic_emitted_[t] == packets_[nic_packets_[t][nic_head_[t]]].flits) {
        ++nic_head_[t];
        nic_emitted_[t] = 0;
      }
      // Refresh the virtual head flit of the NIC queue.
      if (q.flits.empty() && nic_head_[t] < nic_packets_[t].size()) {
        const std::uint32_t pid = nic_packets_[t][nic_head_[t]];
        const bool tail = nic_emitted_[t] + 1 == packets_[pid].flits;
        q.flits.push_back(pid | (tail ? kTailBit : 0));
      }
    } else {
      --occupancy_[qid];
      q.flits.pop_front();
    }
  }
};

}  // namespace

SimResult simulate_cycle(const Network& net, const RoutingResult& rr,
                         const std::vector<Message>& messages,
                         const SimConfig& cfg) {
  Simulator sim(net, rr, messages, cfg);
  return sim.run();
}

SimResult simulate_adaptive_cycle(const Network& net,
                                  const RoutingResult& escape,
                                  std::uint32_t adaptive_vls,
                                  const std::vector<Message>& messages,
                                  const SimConfig& cfg) {
  NUE_CHECK(adaptive_vls >= 1);
  NUE_CHECK_MSG(escape.num_vls() == 1,
                "escape routing must be a single-VL deadlock-free routing");
  Simulator sim(net, escape, messages, cfg, adaptive_vls);
  return sim.run();
}

}  // namespace nue
