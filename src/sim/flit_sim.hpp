// Flit-level simulation of a lossless, credit-flow-controlled network
// (the reproduction's stand-in for the paper's ibsim + OMNeT++ toolchain).
//
// Model: input-queued switches with one FIFO per (inbound channel, VL),
// credit-based backpressure (a flit moves only when the downstream buffer
// for its VL has space), per-output-VL wormhole packet locks (packets never
// interleave flits within one VL of a link, but different VLs interleave —
// virtual channel flow control), one flit per channel per cycle in each
// direction, and round-robin arbitration per output. Routing and VL
// selection come straight from a RoutingResult's forwarding tables, so a
// cyclic channel dependency really deadlocks the simulation — the deadlock
// watchdog turns that into a reported outcome instead of a hang.
//
// Two engines implement this model (docs/SIMULATION.md):
//
//   * simulate()/simulate_adaptive() — the discrete-event engine
//     (src/sim/event_sim.hpp): a time-keyed event queue with per-router
//     handlers that only run when a flit, credit, or injection event
//     arrives. Deadlock is detected *instantly* in event terms (packets
//     outstanding but no movement event schedulable — SimConfig's
//     deadlock_cycles watchdog is not needed), and idle stretches of the
//     timeline cost nothing, which is what opens 100x larger fabrics and
//     workload horizons (ROADMAP item 4).
//
//   * simulate_cycle()/simulate_adaptive_cycle() — the original
//     scan-every-active-channel-every-cycle engine, kept as the
//     differential baseline: the parity suite (tests/test_sim_parity.cpp)
//     and the fuzzer's oracle cross-check event-engine verdicts against
//     it, and bench_sim_scale reports the head-to-head wall times.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "util/rng.hpp"

namespace nue {

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t bytes = 2048;
};

struct SimConfig {
  std::uint32_t buffer_flits = 8;   // per (channel, VL) input buffer depth
  std::uint32_t flit_bytes = 64;
  /// Messages larger than this are segmented into multiple packets, each
  /// with its own header flit (InfiniBand MTU-style segmentation).
  std::uint32_t mtu_bytes = 2048;
  std::uint64_t max_cycles = 50'000'000;
  /// Cycle engine only: abort as deadlocked after this many cycles without
  /// any flit movement. The event engine needs no watchdog — it reports
  /// deadlock the moment no movement event remains schedulable.
  std::uint32_t deadlock_cycles = 50'000;
  /// Abort (completed = false, hit_wall_budget = true) once the simulation
  /// has consumed this much wall-clock time (0 = unlimited). Checked
  /// periodically by both engines; bench_sim_scale uses it to bound the
  /// cycle-engine leg of the head-to-head comparison.
  double max_wall_ms = 0.0;
};

struct SimResult {
  bool completed = false;
  bool deadlocked = false;
  /// The wall-clock budget (SimConfig::max_wall_ms) expired first.
  bool hit_wall_budget = false;
  std::uint64_t cycles = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t flit_hops = 0;
  /// Events processed by the discrete-event engine (0 for the cycle
  /// engine) and the peak size of its pending-event set.
  std::uint64_t events_processed = 0;
  std::uint64_t queue_peak = 0;
  /// delivered payload per cycle, in units of one channel's capacity.
  double aggregate_flits_per_cycle = 0.0;
  /// aggregate divided by terminal count: mean fraction of terminal line
  /// rate achieved — the figure-of-merit used for Figs. 1a and 10.
  double normalized_throughput = 0.0;
  /// Packet network latency (first flit leaves the NIC -> tail delivered),
  /// in cycles, over delivered packets.
  double avg_packet_latency = 0.0;
  std::uint64_t max_packet_latency = 0;
  double p99_packet_latency = 0.0;
  /// Link utilization over inter-switch channels (flits sent / cycles):
  /// the hottest channel and the mean — the dynamic counterpart of the
  /// edge forwarding index.
  double max_link_utilization = 0.0;
  double avg_link_utilization = 0.0;
};

/// Run the given per-terminal message sequences to completion. Each
/// terminal injects its messages in order at line rate (saturation).
/// Discrete-event engine (see event_sim.hpp for the incremental API).
SimResult simulate(const Network& net, const RoutingResult& rr,
                   const std::vector<Message>& messages,
                   const SimConfig& cfg);

/// Duato-protocol adaptive routing (the concept Nue's escape paths adapt
/// to oblivious routing, §4.2): packet headers may take ANY minimal output
/// on the adaptive virtual lanes [0, adaptive_vls); when every minimal
/// adaptive option is blocked, the packet drops to a dedicated escape lane
/// (VL = adaptive_vls) and follows the deadlock-free `escape` routing
/// (e.g. Up*/Down*) for the rest of its journey — the conservative
/// stay-on-escape variant, which is deadlock-free whenever the escape
/// routing's CDG is acyclic. Body flits always follow their header's
/// per-hop decision (wormhole). Discrete-event engine.
SimResult simulate_adaptive(const Network& net, const RoutingResult& escape,
                            std::uint32_t adaptive_vls,
                            const std::vector<Message>& messages,
                            const SimConfig& cfg);

/// The original cycle-based engine (every active channel scanned every
/// cycle): the differential baseline for the parity suite, the fuzzer's
/// engine cross-check, and bench_sim_scale's head-to-head leg.
SimResult simulate_cycle(const Network& net, const RoutingResult& rr,
                         const std::vector<Message>& messages,
                         const SimConfig& cfg);
SimResult simulate_adaptive_cycle(const Network& net,
                                  const RoutingResult& escape,
                                  std::uint32_t adaptive_vls,
                                  const std::vector<Message>& messages,
                                  const SimConfig& cfg);

/// All-to-all exchange with varying shift distances (the paper's traffic
/// pattern): in sub-phase s, terminal i sends `message_bytes` to terminal
/// (i + s) mod T. `shift_samples` > 0 simulates only that many evenly
/// spaced shifts (scaled-down default for the bench harnesses; 0 = all).
std::vector<Message> alltoall_shift_messages(const Network& net,
                                             std::uint32_t message_bytes,
                                             std::uint32_t shift_samples = 0);

/// Uniform random traffic: `count` messages between random terminal pairs.
std::vector<Message> uniform_random_messages(const Network& net,
                                             std::size_t count,
                                             std::uint32_t message_bytes,
                                             Rng& rng);

}  // namespace nue
