// Workload scenarios for the discrete-event simulator: timed arrivals,
// multi-phase collectives with barriers, and trace-driven replay — the
// scenario space the cycle engine could not open (it pays for every idle
// cycle, so a bursty trace with long gaps or a barrier-synchronised
// collective on a quiet fabric was off the table).
//
// A Scenario is an ordered list of phases. A phase carries messages with
// injection times relative to the phase's start. A phase marked
// `barrier` waits for the fabric to drain (every prior packet delivered)
// before its clock starts — exactly an MPI-style barrier between
// collective steps. Non-barrier phases share their predecessor's start
// time, overlaying traffic (e.g. background uniform load underneath a
// burst train).
//
// Generators cover the standard adversarial shapes (Dally & Towles ch. 3
// plus collective schedules): Poisson-ish uniform arrivals, synchronised
// bursts, a hotspot whose location drifts over time, ring and tree
// allreduce schedules, and the paper's shift-pattern all-to-all split
// into barriered sub-phases. `parse_scenario` gives the CLI grammar used
// by bench_sim_scale; traces round-trip through save/load for replay.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/event_sim.hpp"
#include "sim/flit_sim.hpp"
#include "util/rng.hpp"

namespace nue {

struct TimedMessage {
  Message msg;
  std::uint64_t time = 0;  // injection cycle, relative to phase start
};

struct ScenarioPhase {
  std::string label;
  /// Wait for all previously injected traffic to drain before this
  /// phase's clock starts (collective barrier). Non-barrier phases start
  /// together with their predecessor.
  bool barrier = true;
  std::vector<TimedMessage> messages;
};

struct Scenario {
  std::vector<ScenarioPhase> phases;

  std::size_t total_messages() const;
  std::uint64_t total_bytes() const;
};

/// Wall-clock and simulated-time extent of one phase, for the bench
/// JSON's phase spans. Phases between two barriers share an end cycle
/// (their traffic drains together).
struct PhaseSpan {
  std::string label;
  std::uint64_t start_cycle = 0;
  std::uint64_t end_cycle = 0;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

struct ScenarioResult {
  SimResult sim;  // aggregate over the whole scenario
  SimRunStatus status = SimRunStatus::kCompleted;
  std::vector<PhaseSpan> phases;
};

/// Drive a scenario through the event engine (adaptive_vls as in
/// simulate_adaptive; 0 = deterministic). Stops early on deadlock or a
/// cycle/wall limit; spans of phases already injected still report.
ScenarioResult simulate_scenario(const Network& net, const RoutingResult& rr,
                                 const Scenario& sc, const SimConfig& cfg,
                                 std::uint32_t adaptive_vls = 0);

// --- generators -------------------------------------------------------------
// All generators draw sources from the alive terminals; destinations come
// from `dest_pool` when non-empty (the routed-destination sample on
// fabrics too large to route in full), otherwise from all terminals.

/// `count` messages at uniform-random times in [0, duration), random
/// terminal pairs (self-pairs redrawn).
ScenarioPhase uniform_arrivals_phase(const Network& net, std::size_t count,
                                     std::uint32_t message_bytes,
                                     std::uint64_t duration, Rng& rng,
                                     const std::vector<NodeId>& dest_pool = {});

/// `bursts` synchronised bursts, `gap` cycles apart; each burst injects
/// `per_burst` random-pair messages at the same instant (adversarial
/// incast-style contention).
ScenarioPhase burst_arrivals_phase(const Network& net, std::size_t bursts,
                                   std::size_t per_burst,
                                   std::uint32_t message_bytes,
                                   std::uint64_t gap, Rng& rng,
                                   const std::vector<NodeId>& dest_pool = {});

/// Hotspot whose location drifts: `count` messages over [0, duration), a
/// fraction `hot_fraction` aimed at the current hot terminal, which walks
/// through `steps` evenly spaced positions of the destination pool over
/// the duration.
ScenarioPhase hotspot_drift_phase(const Network& net, std::size_t count,
                                  std::uint32_t message_bytes,
                                  double hot_fraction, std::uint64_t duration,
                                  std::size_t steps, Rng& rng,
                                  const std::vector<NodeId>& dest_pool = {});

/// Ring allreduce on the terminal ordering: reduce-scatter then allgather,
/// 2(T-1) barriered neighbor-exchange steps of bytes/T each (the
/// bandwidth-optimal schedule).
Scenario allreduce_ring_scenario(const Network& net, std::uint64_t bytes);

/// Tree allreduce: ceil(log2 T) pairwise reduce steps up, then the mirror
/// broadcast steps down, all barriered.
Scenario allreduce_tree_scenario(const Network& net, std::uint64_t bytes);

/// The paper's shift-pattern all-to-all as barriered sub-phases: one
/// phase per shift distance (shift_samples as in alltoall_shift_messages).
Scenario alltoall_phased_scenario(const Network& net,
                                  std::uint32_t message_bytes,
                                  std::uint32_t shift_samples = 0);

// --- trace replay -----------------------------------------------------------

/// Plain-text trace format ("# nue-trace v1"): `phase <barrier> <label>`
/// and `msg <src> <dst> <bytes> <time>` lines. Round-trips scenarios for
/// replay; throws std::logic_error on malformed input.
void write_trace(std::ostream& os, const Scenario& sc);
Scenario read_trace(std::istream& is);
void save_trace_file(const std::string& path, const Scenario& sc);
Scenario load_trace_file(const std::string& path);

/// CLI grammar (bench_sim_scale --scenario): semicolon-separated
/// directives, each appending phases —
///   uniform:COUNT:BYTES:DURATION
///   burst:BURSTS:PER_BURST:BYTES:GAP
///   hotspot:COUNT:BYTES:HOT_PERCENT:DURATION:STEPS
///   alltoall:BYTES:SHIFTS
///   allreduce-ring:BYTES
///   allreduce-tree:BYTES
///   trace:PATH
/// Throws std::logic_error on a malformed spec.
Scenario parse_scenario(const Network& net, const std::string& spec, Rng& rng,
                        const std::vector<NodeId>& dest_pool = {});

}  // namespace nue
