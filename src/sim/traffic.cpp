#include "sim/traffic.hpp"

#include <bit>

#include "util/error.hpp"

namespace nue {

namespace {

/// Number of bits needed to index T terminals.
std::uint32_t index_bits(std::size_t t) {
  std::uint32_t b = 0;
  while ((1ull << b) < t) ++b;
  return b;
}

std::size_t pattern_target(TrafficPattern p, std::size_t i, std::size_t t) {
  const std::uint32_t bits = index_bits(t);
  switch (p) {
    case TrafficPattern::kBitComplement:
      return (~i) & ((1ull << bits) - 1);
    case TrafficPattern::kTranspose: {
      const std::uint32_t half = bits / 2;
      const std::size_t lo = i & ((1ull << half) - 1);
      const std::size_t hi = i >> half;
      return (lo << (bits - half)) | hi;
    }
    case TrafficPattern::kTornado:
      return (i + t / 2 - (t > 2 ? 1 : 0)) % t;
    case TrafficPattern::kNeighbor:
      return (i + 1) % t;
    case TrafficPattern::kReverse: {
      std::size_t r = 0;
      for (std::uint32_t b = 0; b < bits; ++b) {
        r = (r << 1) | ((i >> b) & 1);
      }
      return r;
    }
  }
  NUE_CHECK(false);
  return 0;
}

}  // namespace

std::vector<Message> pattern_messages(const Network& net,
                                      TrafficPattern pattern,
                                      std::uint32_t message_bytes,
                                      std::uint32_t repetitions) {
  const auto terminals = net.terminals();
  const std::size_t t = terminals.size();
  NUE_CHECK(t >= 2);
  std::vector<Message> msgs;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    for (std::size_t i = 0; i < t; ++i) {
      const std::size_t target = pattern_target(pattern, i, t);
      if (target >= t || target == i) continue;  // out of range / self
      msgs.push_back({terminals[i], terminals[target], message_bytes});
    }
  }
  return msgs;
}

std::vector<Message> hotspot_messages(const Network& net, std::size_t count,
                                      std::uint32_t message_bytes,
                                      double hot_fraction,
                                      std::size_t hot_index, Rng& rng) {
  const auto terminals = net.terminals();
  NUE_CHECK(terminals.size() >= 2);
  NUE_CHECK(hot_index < terminals.size());
  NUE_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  std::vector<Message> msgs;
  msgs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId s = terminals[rng.next_below(terminals.size())];
    NodeId d;
    if (rng.next_bool(hot_fraction)) {
      d = terminals[hot_index];
    } else {
      d = terminals[rng.next_below(terminals.size())];
    }
    if (d == s) continue;
    msgs.push_back({s, d, message_bytes});
  }
  return msgs;
}

}  // namespace nue
