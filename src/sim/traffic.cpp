#include "sim/traffic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nue {

namespace {

/// Number of bits needed to index T terminals.
std::uint32_t index_bits(std::size_t t) {
  std::uint32_t b = 0;
  while ((1ull << b) < t) ++b;
  return b;
}

std::size_t pattern_target(TrafficPattern p, std::size_t i, std::size_t t) {
  const std::uint32_t bits = index_bits(t);
  switch (p) {
    case TrafficPattern::kBitComplement:
      return (~i) & ((1ull << bits) - 1);
    case TrafficPattern::kTranspose: {
      const std::uint32_t half = bits / 2;
      const std::size_t lo = i & ((1ull << half) - 1);
      const std::size_t hi = i >> half;
      return (lo << (bits - half)) | hi;
    }
    case TrafficPattern::kTornado:
      // Standard tornado: offset ceil(T/2) - 1, the near-half-way shift
      // that is adversarial for rings/tori. Integer form (T+1)/2 - 1 is
      // exact for both parities; the old T/2 - 1 collapsed odd T toward
      // neighbor traffic (e.g. T=5 gave offset 1 instead of 2).
      return (i + (t + 1) / 2 - 1) % t;
    case TrafficPattern::kNeighbor:
      return (i + 1) % t;
    case TrafficPattern::kReverse: {
      std::size_t r = 0;
      for (std::uint32_t b = 0; b < bits; ++b) {
        r = (r << 1) | ((i >> b) & 1);
      }
      return r;
    }
  }
  NUE_CHECK(false);
  return 0;
}

}  // namespace

std::vector<Message> pattern_messages(const Network& net,
                                      TrafficPattern pattern,
                                      std::uint32_t message_bytes,
                                      std::uint32_t repetitions,
                                      PatternStats* stats) {
  const auto terminals = net.terminals();
  const std::size_t t = terminals.size();
  NUE_CHECK(t >= 2);
  PatternStats st;
  st.requested = static_cast<std::size_t>(repetitions) * t;
  std::vector<Message> msgs;
  for (std::uint32_t rep = 0; rep < repetitions; ++rep) {
    for (std::size_t i = 0; i < t; ++i) {
      const std::size_t target = pattern_target(pattern, i, t);
      if (target >= t) {
        ++st.dropped_out_of_range;
        continue;
      }
      if (target == i) {
        ++st.dropped_self;
        continue;
      }
      msgs.push_back({terminals[i], terminals[target], message_bytes});
    }
  }
  st.generated = msgs.size();
  if (stats != nullptr) *stats = st;
  return msgs;
}

std::vector<Message> hotspot_messages(const Network& net, std::size_t count,
                                      std::uint32_t message_bytes,
                                      double hot_fraction,
                                      std::size_t hot_index, Rng& rng) {
  const auto terminals = net.terminals();
  NUE_CHECK(terminals.size() >= 2);
  NUE_CHECK(hot_index < terminals.size());
  NUE_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  std::vector<Message> msgs;
  msgs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    NodeId s = terminals[rng.next_below(terminals.size())];
    NodeId d;
    if (rng.next_bool(hot_fraction)) {
      // The destination is fixed by definition; redraw the source when it
      // collides so the hot terminal really receives `hot_fraction` of the
      // requested load (skipping the draw undercounted it).
      d = terminals[hot_index];
      while (s == d) s = terminals[rng.next_below(terminals.size())];
    } else {
      d = terminals[rng.next_below(terminals.size())];
      while (d == s) d = terminals[rng.next_below(terminals.size())];
    }
    msgs.push_back({s, d, message_bytes});
  }
  return msgs;
}

std::vector<Message> alltoall_shift_messages(const Network& net,
                                             std::uint32_t message_bytes,
                                             std::uint32_t shift_samples) {
  const auto terminals = net.terminals();
  const std::uint32_t t = static_cast<std::uint32_t>(terminals.size());
  NUE_CHECK(t >= 2);
  std::vector<Message> msgs;
  const std::uint32_t num_shifts =
      shift_samples == 0 ? t - 1 : std::min(shift_samples, t - 1);
  // Evenly spaced shift distances across [1, t-1].
  for (std::uint32_t k = 0; k < num_shifts; ++k) {
    const std::uint32_t s =
        1 + static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(k) * (t - 1)) / num_shifts);
    for (std::uint32_t i = 0; i < t; ++i) {
      msgs.push_back({terminals[i], terminals[(i + s) % t], message_bytes});
    }
  }
  return msgs;
}

std::vector<Message> uniform_random_messages(const Network& net,
                                             std::size_t count,
                                             std::uint32_t message_bytes,
                                             Rng& rng) {
  const auto terminals = net.terminals();
  NUE_CHECK(terminals.size() >= 2);
  std::vector<Message> msgs;
  msgs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId s = terminals[rng.next_below(terminals.size())];
    NodeId d = s;
    while (d == s) d = terminals[rng.next_below(terminals.size())];
    msgs.push_back({s, d, message_bytes});
  }
  return msgs;
}

}  // namespace nue
