// The discrete-event engine. Same hardware model as the cycle engine in
// flit_sim.cpp — read that file first; every rule here (credits, VL
// locks, one flit per channel and per input port per cycle, round-robin
// arbitration, MTU segmentation, NIC virtual head flits) is a direct
// port — but driven by a time-keyed event queue instead of a
// scan-everything-every-cycle loop.
//
// Actors and events:
//
//   * Deterministic mode: the actor is an *output channel*. A work event
//     runs its round-robin arbitration once (at most one flit moves per
//     output per cycle). Adaptive mode: the actor is a *queue* (the
//     per-hop route decision is per-queue state).
//   * A moved flit schedules its arrival at t+1 (arrivals become visible
//     next cycle, exactly like the cycle engine's end-of-cycle commit).
//   * An actor blocked on a (channel, VL) buffer — credit exhausted or a
//     foreign wormhole lock — subscribes to that buffer and sleeps. The
//     credit release (pop) and the lock release (tail enqueue) wake the
//     subscribers at t+1. Conservative extra wakes are harmless; a
//     *missed* wake would surface as a false deadlock, so every blocking
//     test below pairs with the wake at the matching state change.
//   * An actor blocked only by a same-cycle stamp (input port or output
//     already used at t) retries at t+1 unconditionally — the stamp
//     itself proves another flit moved at t, so these retries cannot
//     accumulate without global progress.
//
// Deadlock detection is therefore immediate and exact: packets are
// outstanding but the event queue drained — every remaining flit sleeps
// on a subscription that can never fire (the cyclic wait of a real
// credit deadlock). No idle-cycle watchdog, no 50k-cycle wait.
//
// One deliberate timing difference from the cycle engine: a credit freed
// at cycle t is reusable at t (later in the same scan) there, but at t+1
// here. Verdicts and delivered totals are unaffected (the parity suite
// checks both); per-run cycle counts may differ by small constants.
#include "sim/event_sim.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace nue {

namespace {

constexpr std::uint32_t kTailBit = 0x80000000u;
constexpr std::uint32_t kNoLock = static_cast<std::uint32_t>(-1);

struct Packet {
  NodeId src;
  NodeId dst;
  std::uint32_t dest_idx;
  std::uint16_t flits;
  std::uint16_t delivered;
  std::uint32_t payload_bytes;
  std::uint64_t inject_cycle = 0;  // cycle the first flit left the NIC
};

/// Small FIFO of flit words with an amortized-O(1) pop that avoids
/// std::deque's per-block allocations (queues hold at most buffer_flits).
class FlitFifo {
 public:
  bool empty() const { return head_ == buf_.size(); }
  std::size_t size() const { return buf_.size() - head_; }
  std::uint32_t front() const { return buf_[head_]; }
  void push_back(std::uint32_t f) { buf_.push_back(f); }
  void pop_front() {
    ++head_;
    if (head_ == buf_.size()) {
      buf_.clear();
      head_ = 0;
    } else if (head_ >= 64 && head_ * 2 >= buf_.size()) {
      buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

 private:
  std::vector<std::uint32_t> buf_;
  std::size_t head_ = 0;
};

/// Per-queue state, allocated sparsely (hash map keyed by queue id) so an
/// idle (channel, VL) on a 100k-switch fabric costs nothing. For
/// in-network queues the entry doubles as the downstream-resource view of
/// that (channel, VL): `occupancy` is the credit count (flits present or
/// in flight to this buffer), `lock` the wormhole owner, and `waiters`
/// the actors to wake when either changes.
struct QState {
  FlitFifo flits;  // packet id | kTailBit on tail flits
  std::uint32_t occupancy = 0;
  std::uint32_t lock = kNoLock;
  ChannelId req_out = kInvalidChannel;  // deterministic: registered output
  bool registered = false;
  // Adaptive mode: the header's per-hop decision, honoured by body flits.
  std::uint32_t locked_pid = kNoLock;
  ChannelId locked_out = kInvalidChannel;
  std::uint8_t locked_vl = 0;
  std::uint64_t sched_time = 0;  // adaptive work-event dedup stamp
  std::vector<std::uint64_t> waiters;
};

/// Per-output arbitration state (deterministic mode).
struct OutState {
  std::vector<std::uint64_t> cand;  // queue ids requesting this output
  std::uint32_t rr_ptr = 0;
  std::uint64_t sched_time = 0;  // work-event dedup stamp
};

/// Everything scheduled for one timestamp. Processing order within a
/// bucket is injections, then arrivals, then work — so traffic activated
/// and flits landed at t are arbitrated at t, while anything a work event
/// produces lands at t+1.
struct Bucket {
  std::vector<NodeId> injects;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> arrivals;
  std::vector<std::uint64_t> works;

  bool empty() const {
    return injects.empty() && arrivals.empty() && works.empty();
  }
  std::size_t size() const {
    return injects.size() + arrivals.size() + works.size();
  }
  void clear() {
    injects.clear();
    arrivals.clear();
    works.clear();
  }
};

}  // namespace

struct EventSimulator::Impl {
  Impl(const Network& net, const RoutingResult& rr, const SimConfig& cfg,
       std::uint32_t adaptive_vls)
      : net_(net),
        rr_(rr),
        cfg_(cfg),
        adaptive_vls_(adaptive_vls),
        num_vls_(adaptive_vls > 0 ? adaptive_vls + 1 : rr.num_vls()),
        nic_base_(static_cast<std::uint64_t>(net.num_channels()) * num_vls_) {
    NUE_CHECK(cfg.mtu_bytes >= cfg.flit_bytes);
    if (adaptive_vls_ > 0) {
      NUE_CHECK_MSG(rr.num_vls() == 1,
                    "escape routing must be a single-VL deadlock-free routing");
      out_used_stamp_.assign(net.num_channels(), 0);
    }
    input_used_stamp_.assign(net.num_channels() + net.num_nodes(), 0);
    nic_packets_.assign(net.num_nodes(), {});
    nic_pending_.assign(net.num_nodes(), {});
    nic_head_.assign(net.num_nodes(), 0);
    nic_emitted_.assign(net.num_nodes(), 0);
    nic_inject_sched_.assign(net.num_nodes(), 0);
  }

  // --- identity helpers (same id layout as the cycle engine) ---------------
  std::uint64_t qid_of(ChannelId c, std::uint32_t vl) const {
    return static_cast<std::uint64_t>(c) * num_vls_ + vl;
  }
  std::uint64_t nic_qid(NodeId t) const { return nic_base_ + t; }
  bool is_nic(std::uint64_t qid) const { return qid >= nic_base_; }

  std::size_t input_port_of(std::uint64_t qid) const {
    return !is_nic(qid)
               ? static_cast<std::size_t>(qid / num_vls_)
               : net_.num_channels() + static_cast<std::size_t>(qid - nic_base_);
  }
  NodeId node_of(std::uint64_t qid) const {
    return !is_nic(qid) ? net_.dst(static_cast<ChannelId>(qid / num_vls_))
                        : static_cast<NodeId>(qid - nic_base_);
  }

  QState& qs(std::uint64_t key) { return qs_[key]; }

  // --- event queue ----------------------------------------------------------
  Bucket& bucket_at(std::uint64_t t) {
    if (t == now_) return cur_;
    if (t == now_ + 1) return next_;
    return far_[t];
  }

  void note_scheduled() {
    ++pending_events_;
    queue_peak_ = std::max(queue_peak_, pending_events_);
  }

  void schedule_arrival(std::uint64_t qid, std::uint32_t flit,
                        std::uint64_t t) {
    bucket_at(t).arrivals.emplace_back(qid, flit);
    note_scheduled();
  }

  void schedule_inject(NodeId src, std::uint64_t t) {
    if (nic_inject_sched_[src] == t) return;  // batch injects coalesce
    nic_inject_sched_[src] = t;
    bucket_at(t).injects.push_back(src);
    note_scheduled();
  }

  /// Schedule the actor (deterministic: output channel, adaptive: queue)
  /// to arbitrate at time t, deduplicated via its sched_time stamp.
  /// Stamps are monotone because every schedule lands at now or now+1 and
  /// now-schedules (injections/arrivals) are processed before
  /// now+1-schedules (work fallout) within a bucket.
  void schedule_work(std::uint64_t actor, std::uint64_t t) {
    std::uint64_t& stamp = adaptive_vls_ > 0
                               ? qs(actor).sched_time
                               : outs_[static_cast<ChannelId>(actor)].sched_time;
    if (stamp >= t) return;
    stamp = t;
    bucket_at(t).works.push_back(actor);
    note_scheduled();
  }

  /// Subscribe `actor` to wake when `down`'s credit or lock state changes.
  void subscribe(QState& down, std::uint64_t actor) {
    auto& w = down.waiters;
    if (std::find(w.begin(), w.end(), actor) == w.end()) w.push_back(actor);
  }

  void wake_waiters(std::uint64_t down_key, std::uint64_t t) {
    QState& d = qs(down_key);
    for (const std::uint64_t actor : d.waiters) schedule_work(actor, t);
    d.waiters.clear();
  }

  // --- NIC ------------------------------------------------------------------
  /// Expose the NIC's current packet as a virtual head flit (emission
  /// counting happens at move time via nic_emitted_).
  void fill_nic_head(NodeId t) {
    QState& q = qs(nic_qid(t));
    if (q.flits.empty() && nic_head_[t] < nic_packets_[t].size()) {
      const std::uint32_t pid = nic_packets_[t][nic_head_[t]];
      const bool tail = nic_emitted_[t] + 1 == packets_[pid].flits;
      q.flits.push_back(pid | (tail ? kTailBit : 0));
    }
  }

  /// Injection event: activate every pending message with when <= t at
  /// this terminal (keeping injection order) and start the NIC emitting.
  void process_inject(NodeId src, std::uint64_t t) {
    auto& pending = nic_pending_[src];
    auto mid = std::stable_partition(
        pending.begin(), pending.end(),
        [t](const std::pair<std::uint64_t, std::uint32_t>& e) {
          return e.first <= t;
        });
    for (auto it = pending.begin(); it != mid; ++it) {
      nic_packets_[src].push_back(it->second);
    }
    pending.erase(pending.begin(), mid);
    fill_nic_head(src);
    const std::uint64_t qid = nic_qid(src);
    if (qs(qid).flits.empty()) return;
    if (adaptive_vls_ > 0) {
      schedule_work(qid, t);
    } else {
      refresh_queue(qid, t);
    }
  }

  // --- deterministic mode ---------------------------------------------------
  /// Recompute a queue's requested output from its head flit, register it
  /// with that output's candidate list, and schedule the output.
  void refresh_queue(std::uint64_t qid, std::uint64_t wake_t) {
    QState& q = qs(qid);
    if (q.registered || q.flits.empty()) return;
    const std::uint32_t pid = q.flits.front() & ~kTailBit;
    const Packet& p = packets_[pid];
    const ChannelId out = rr_.next(node_of(qid), p.dest_idx);
    NUE_DCHECK(out != kInvalidChannel);
    q.req_out = out;
    q.registered = true;
    outs_[out].cand.push_back(qid);
    schedule_work(out, wake_t);
  }

  void refresh_nic(NodeId t, std::uint64_t wake_t) {
    if (qs(nic_qid(t)).registered) return;
    fill_nic_head(t);
    refresh_queue(nic_qid(t), wake_t);
  }

  /// Consume a queue's head flit: unregister, pop, release the credit
  /// (waking writers blocked on it), and re-register for the next flit.
  void pop_head(std::uint64_t qid, std::uint64_t t) {
    QState& q = qs(qid);
    auto& cand = outs_[q.req_out].cand;
    for (std::size_t i = 0; i < cand.size(); ++i) {
      if (cand[i] == qid) {
        cand[i] = cand.back();
        cand.pop_back();
        break;
      }
    }
    q.registered = false;
    if (is_nic(qid)) {
      const NodeId t_ = static_cast<NodeId>(qid - nic_base_);
      q.flits.pop_front();
      if (++nic_emitted_[t_] == packets_[nic_packets_[t_][nic_head_[t_]]].flits) {
        ++nic_head_[t_];
        nic_emitted_[t_] = 0;
      }
      refresh_nic(t_, t + 1);
    } else {
      --q.occupancy;
      q.flits.pop_front();
      wake_waiters(qid, t + 1);  // credit freed
      refresh_queue(qid, t + 1);
    }
  }

  /// One round-robin arbitration pass for an output channel: move at most
  /// one flit, subscribe every credit/lock-blocked candidate, retry at
  /// t+1 when only same-cycle stamps were in the way.
  void serve_output(ChannelId out, std::uint64_t t) {
    OutState& os = outs_[out];
    auto& cand = os.cand;
    if (cand.empty()) return;
    const std::size_t n = cand.size();
    bool transient = false;
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t slot = (os.rr_ptr + k) % n;
      const std::uint64_t qid = cand[slot];
      QState& q = qs(qid);
      NUE_DCHECK(q.registered && !q.flits.empty());
      const std::uint32_t flit = q.flits.front();
      const std::uint32_t pid = flit & ~kTailBit;
      const Packet& p = packets_[pid];
      const std::uint32_t vl = rr_.vl(node_of(qid), p.src, p.dest_idx);
      if (input_used_stamp_[input_port_of(qid)] == t) {
        transient = true;  // another VL of this port moved at t
        continue;
      }
      const NodeId to = net_.dst(out);
      const bool eject = net_.is_terminal(to);
      const std::uint64_t down = qid_of(out, vl);
      if (!eject) {
        QState& d = qs(down);
        if (d.occupancy >= cfg_.buffer_flits ||
            (d.lock != kNoLock && d.lock != pid)) {
          subscribe(d, out);
          continue;
        }
      }
      // --- move the flit ---
      input_used_stamp_[input_port_of(qid)] = t;
      os.rr_ptr = static_cast<std::uint32_t>((slot + 1) % n);
      count_tx(out);
      if (is_nic(qid) && nic_emitted_[net_.src(out)] == 0) {
        packets_[pid].inject_cycle = t;  // first flit leaves the NIC
      }
      last_move_ = t;
      pop_head(qid, t);
      ++flit_hops_;
      if (eject) {
        deliver(pid, (flit & kTailBit) != 0, t);
      } else {
        QState& d = qs(down);
        const bool unlock = (flit & kTailBit) != 0;
        d.lock = unlock ? kNoLock : pid;
        ++d.occupancy;
        record_occupancy(d.occupancy);
        if (unlock) wake_waiters(down, t + 1);  // lock released
        schedule_arrival(down, flit, t + 1);
      }
      if (!cand.empty()) schedule_work(out, t + 1);
      return;
    }
    if (transient) schedule_work(out, t + 1);
  }

  // --- adaptive mode --------------------------------------------------------
  const std::vector<std::uint16_t>& hop_distances(std::uint32_t dest_idx) {
    if (hop_dist_.empty()) hop_dist_.resize(rr_.destinations().size());
    auto& d = hop_dist_[dest_idx];
    if (d.empty()) {
      // BFS from the destination over reversed (= duplex) channels.
      d.assign(net_.num_nodes(), 0xFFFF);
      std::vector<NodeId> frontier{rr_.destinations()[dest_idx]};
      d[frontier[0]] = 0;
      while (!frontier.empty()) {
        std::vector<NodeId> next;
        for (NodeId v : frontier) {
          for (ChannelId c : net_.out(v)) {
            const NodeId w = net_.dst(c);
            if (d[w] == 0xFFFF) {
              d[w] = static_cast<std::uint16_t>(d[v] + 1);
              next.push_back(w);
            }
          }
        }
        frontier.swap(next);
      }
    }
    return d;
  }

  /// Header route choice (same preference order as the cycle engine).
  /// Every blocked option leaves either a subscription (credit/lock) or a
  /// transient flag (same-cycle stamp) behind, so a false return always
  /// comes with a guaranteed future wake or retry — except when even the
  /// escape routing has no usable table entry, which the drained event
  /// queue then correctly reports as deadlock.
  bool choose_adaptive(std::uint64_t qid, NodeId at, const Packet& p,
                       std::uint8_t cur_vl, std::uint64_t t, ChannelId* out,
                       std::uint8_t* vl, bool* transient) {
    const std::uint8_t escape_vl = static_cast<std::uint8_t>(adaptive_vls_);
    const bool on_escape = cur_vl == escape_vl && !is_nic(qid);
    const std::uint32_t pid =
        static_cast<std::uint32_t>(&p - packets_.data());
    const auto usable = [&](ChannelId c, std::uint8_t v) {
      if (out_used_stamp_[c] == t) {
        *transient = true;
        return false;
      }
      const NodeId to = net_.dst(c);
      if (net_.is_terminal(to)) return to == p.dst;
      QState& d = qs(qid_of(c, v));
      if (d.occupancy >= cfg_.buffer_flits ||
          (d.lock != kNoLock && d.lock != pid)) {
        subscribe(d, qid);
        return false;
      }
      return true;
    };
    if (!on_escape) {
      const auto& dist = hop_distances(p.dest_idx);
      // Rotating preference over minimal outputs and adaptive VLs.
      const auto outs = net_.out(at);
      for (std::size_t k = 0; k < outs.size(); ++k) {
        const ChannelId c = outs[(adaptive_rr_ + k) % outs.size()];
        const NodeId to = net_.dst(c);
        if (net_.is_terminal(to) ? to != p.dst : dist[to] + 1 != dist[at]) {
          continue;  // non-minimal
        }
        for (std::uint8_t v = 0; v < adaptive_vls_; ++v) {
          if (usable(c, v)) {
            *out = c;
            *vl = v;
            ++adaptive_rr_;
            return true;
          }
        }
      }
    }
    // Escape (or already escaped): deterministic deadlock-free routing.
    const ChannelId c = rr_.next(at, p.dest_idx);
    if (c != kInvalidChannel && usable(c, escape_vl)) {
      *out = c;
      *vl = escape_vl;
      return true;
    }
    return false;
  }

  /// pop_head() counterpart without the deterministic candidate lists.
  void adaptive_pop(std::uint64_t qid, std::uint64_t t) {
    QState& q = qs(qid);
    if (is_nic(qid)) {
      const NodeId t_ = static_cast<NodeId>(qid - nic_base_);
      q.flits.pop_front();
      if (++nic_emitted_[t_] == packets_[nic_packets_[t_][nic_head_[t_]]].flits) {
        ++nic_head_[t_];
        nic_emitted_[t_] = 0;
      }
      fill_nic_head(t_);
    } else {
      --q.occupancy;
      q.flits.pop_front();
      wake_waiters(qid, t + 1);  // credit freed
    }
  }

  /// Adaptive work event: one queue tries to move its head flit.
  void serve_queue(std::uint64_t qid, std::uint64_t t) {
    QState& q = qs(qid);
    if (q.flits.empty()) return;
    if (input_used_stamp_[input_port_of(qid)] == t) {
      schedule_work(qid, t + 1);
      return;
    }
    const std::uint32_t flit = q.flits.front();
    const std::uint32_t pid = flit & ~kTailBit;
    const Packet& p = packets_[pid];
    const NodeId at = node_of(qid);
    ChannelId out;
    std::uint8_t vl;
    if (q.locked_pid == pid) {
      out = q.locked_out;
      vl = q.locked_vl;
      // Re-validate resources for this body flit.
      if (out_used_stamp_[out] == t) {
        schedule_work(qid, t + 1);
        return;
      }
      const NodeId to = net_.dst(out);
      if (!net_.is_terminal(to)) {
        QState& d = qs(qid_of(out, vl));
        if (d.occupancy >= cfg_.buffer_flits ||
            (d.lock != kNoLock && d.lock != pid)) {
          subscribe(d, qid);
          return;
        }
      }
    } else {
      const std::uint8_t cur_vl =
          !is_nic(qid) ? static_cast<std::uint8_t>(qid % num_vls_) : 0;
      bool transient = false;
      if (!choose_adaptive(qid, at, p, cur_vl, t, &out, &vl, &transient)) {
        if (transient) schedule_work(qid, t + 1);
        return;  // otherwise: subscriptions (or true dead-end) hold the wake
      }
      q.locked_pid = pid;
      q.locked_out = out;
      q.locked_vl = vl;
    }
    // --- move the flit ---
    input_used_stamp_[input_port_of(qid)] = t;
    out_used_stamp_[out] = t;
    count_tx(out);
    if (is_nic(qid) && nic_emitted_[net_.src(out)] == 0) {
      packets_[pid].inject_cycle = t;
    }
    last_move_ = t;
    adaptive_pop(qid, t);
    // The per-queue route decision lives until this packet's tail has
    // passed — body flits must follow the header even when the queue
    // drains and refills in between.
    if (flit & kTailBit) q.locked_pid = kNoLock;
    ++flit_hops_;
    const NodeId to = net_.dst(out);
    if (net_.is_terminal(to)) {
      deliver(pid, (flit & kTailBit) != 0, t);
    } else {
      QState& d = qs(qid_of(out, vl));
      const bool unlock = (flit & kTailBit) != 0;
      d.lock = unlock ? kNoLock : pid;
      ++d.occupancy;
      record_occupancy(d.occupancy);
      if (unlock) wake_waiters(qid_of(out, vl), t + 1);
      schedule_arrival(qid_of(out, vl), flit, t + 1);
    }
    if (!q.flits.empty()) schedule_work(qid, t + 1);
  }

  // --- shared move bookkeeping ----------------------------------------------
  static void record_occupancy(std::uint32_t depth) {
    if (!telemetry::enabled()) return;
    static auto& hist = telemetry::histogram("flit_sim.vl_occupancy");
    hist.record_always(depth);
  }

  void count_tx(ChannelId c) {
    if (tx_count_.empty()) tx_count_.assign(net_.num_channels(), 0);
    ++tx_count_[c];
  }

  void deliver(std::uint32_t pid, bool tail, std::uint64_t t) {
    Packet& p = packets_[pid];
    ++p.delivered;
    if (tail) {
      NUE_DCHECK(p.delivered == p.flits);
      ++delivered_packets_;
      delivered_bytes_ += p.payload_bytes;
      latencies_.push_back(t - p.inject_cycle + 1);
    }
  }

  // --- driver ---------------------------------------------------------------
  void inject(const Message& m, std::uint64_t when) {
    NUE_CHECK(net_.is_terminal(m.src) && net_.node_alive(m.src));
    NUE_CHECK(rr_.is_destination(m.dst));
    const std::uint64_t t = std::max<std::uint64_t>(when, now_ + 1);
    // MTU segmentation: each packet carries up to mtu_bytes of payload
    // plus one header flit.
    std::uint32_t remaining = std::max(m.bytes, 1u);
    while (remaining > 0) {
      const std::uint32_t chunk = std::min(remaining, cfg_.mtu_bytes);
      remaining -= chunk;
      const std::uint32_t f = 1 + (chunk + cfg_.flit_bytes - 1) / cfg_.flit_bytes;
      NUE_CHECK(f < 0x10000);
      packets_.push_back({m.src, m.dst, rr_.dest_index(m.dst),
                          static_cast<std::uint16_t>(f), 0, chunk});
      nic_pending_[m.src].emplace_back(
          t, static_cast<std::uint32_t>(packets_.size() - 1));
    }
    total_bytes_ += m.bytes;
    schedule_inject(m.src, t);
  }

  /// Advance now_ to the next non-empty bucket; false when none remains.
  bool advance_bucket() {
    if (!next_.empty()) {
      ++now_;
      std::swap(cur_, next_);
      next_.clear();
    } else if (!far_.empty()) {
      auto it = far_.begin();
      now_ = it->first;
      cur_ = std::move(it->second);
      far_.erase(it);
    } else {
      return false;
    }
    if (!far_.empty() && far_.begin()->first == now_ + 1) {
      next_ = std::move(far_.begin()->second);
      far_.erase(far_.begin());
    }
    return true;
  }

  SimRunStatus run() {
    TELEM_SPAN("sim.run");
    Timer wall;
    const std::uint64_t events_at_start = events_processed_;
    SimRunStatus status;
    for (;;) {
      if (delivered_packets_ == packets_.size()) {
        status = SimRunStatus::kCompleted;
        break;
      }
      if (!advance_bucket()) {
        // Packets outstanding, event queue drained: every remaining flit
        // waits on a subscription that can never fire. Deadlock, now.
        deadlocked_ = true;
        status = SimRunStatus::kDeadlocked;
        break;
      }
      if (now_ > cfg_.max_cycles) {
        status = SimRunStatus::kCycleLimit;
        break;
      }
      if (cfg_.max_wall_ms > 0 && wall.seconds() * 1e3 >= cfg_.max_wall_ms) {
        hit_wall_budget_ = true;
        status = SimRunStatus::kWallLimit;
        break;
      }
      // Index loops: injection/arrival handlers may append same-time work.
      for (std::size_t i = 0; i < cur_.injects.size(); ++i) {
        process_inject(cur_.injects[i], now_);
      }
      for (std::size_t i = 0; i < cur_.arrivals.size(); ++i) {
        const auto [qid, flit] = cur_.arrivals[i];
        qs(qid).flits.push_back(flit);
        if (adaptive_vls_ > 0) {
          schedule_work(qid, now_);
        } else {
          refresh_queue(qid, now_);
        }
      }
      for (std::size_t i = 0; i < cur_.works.size(); ++i) {
        if (adaptive_vls_ > 0) {
          serve_queue(cur_.works[i], now_);
        } else {
          serve_output(static_cast<ChannelId>(cur_.works[i]), now_);
        }
      }
      const std::size_t n = cur_.size();
      events_processed_ += n;
      pending_events_ -= n;
      cur_.clear();
    }
    if (telemetry::enabled()) {
      telemetry::counter("sim.events_processed")
          .add(events_processed_ - events_at_start);
      telemetry::counter("sim.queue_peak").add(queue_peak_ - queue_peak_counted_);
      queue_peak_counted_ = queue_peak_;
    }
    return status;
  }

  SimResult result() const {
    SimResult res;
    res.completed = delivered_packets_ == packets_.size();
    res.deadlocked = deadlocked_;
    res.hit_wall_budget = hit_wall_budget_;
    res.cycles = res.completed ? last_move_ : now_;
    res.delivered_packets = delivered_packets_;
    res.delivered_bytes = delivered_bytes_;
    res.flit_hops = flit_hops_;
    res.events_processed = events_processed_;
    res.queue_peak = queue_peak_;
    if (!latencies_.empty()) {
      std::uint64_t total = 0, maxv = 0;
      for (const auto l : latencies_) {
        total += l;
        maxv = std::max(maxv, l);
      }
      res.avg_packet_latency =
          static_cast<double>(total) / static_cast<double>(latencies_.size());
      res.max_packet_latency = maxv;
      std::vector<double> lat(latencies_.begin(), latencies_.end());
      res.p99_packet_latency = percentile(std::move(lat), 99.0);
    }
    const std::uint64_t cycles = res.cycles;
    if (cycles > 0 && !tx_count_.empty()) {
      std::uint64_t max_tx = 0, total_tx = 0;
      std::size_t links = 0;
      for (ChannelId c = 0; c < net_.num_channels(); ++c) {
        if (!net_.channel_alive(c) || net_.is_terminal(net_.src(c)) ||
            net_.is_terminal(net_.dst(c))) {
          continue;
        }
        max_tx = std::max(max_tx, tx_count_[c]);
        total_tx += tx_count_[c];
        ++links;
      }
      res.max_link_utilization =
          static_cast<double>(max_tx) / static_cast<double>(cycles);
      if (links > 0) {
        res.avg_link_utilization = static_cast<double>(total_tx) /
                                   static_cast<double>(links) /
                                   static_cast<double>(cycles);
      }
    }
    if (cycles > 0) {
      res.aggregate_flits_per_cycle =
          static_cast<double>(delivered_bytes_) / cfg_.flit_bytes /
          static_cast<double>(cycles);
      res.normalized_throughput =
          res.aggregate_flits_per_cycle /
          static_cast<double>(net_.num_alive_terminals());
    }
    return res;
  }

  const Network& net_;
  const RoutingResult& rr_;  // deterministic tables / adaptive escape routing
  SimConfig cfg_;
  std::uint32_t adaptive_vls_ = 0;  // 0 = deterministic mode
  std::uint32_t num_vls_;
  std::uint64_t nic_base_;

  std::vector<Packet> packets_;
  std::unordered_map<std::uint64_t, QState> qs_;
  std::unordered_map<ChannelId, OutState> outs_;
  std::vector<std::uint64_t> input_used_stamp_;
  std::vector<std::uint64_t> out_used_stamp_;  // adaptive only
  std::vector<std::vector<std::uint16_t>> hop_dist_;  // per dest_idx, lazy
  std::size_t adaptive_rr_ = 0;

  std::vector<std::vector<std::uint32_t>> nic_packets_;
  /// (activation time, packet id) not yet handed to the NIC.
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> nic_pending_;
  std::vector<std::size_t> nic_head_;
  std::vector<std::uint32_t> nic_emitted_;
  std::vector<std::uint64_t> nic_inject_sched_;

  // Timeline: bucket at now_, bucket at now_+1, sparse map beyond.
  std::uint64_t now_ = 0;
  Bucket cur_;
  Bucket next_;
  std::map<std::uint64_t, Bucket> far_;

  std::uint64_t events_processed_ = 0;
  std::uint64_t pending_events_ = 0;
  std::uint64_t queue_peak_ = 0;
  std::uint64_t queue_peak_counted_ = 0;
  std::uint64_t last_move_ = 0;
  bool deadlocked_ = false;
  bool hit_wall_budget_ = false;

  std::uint64_t delivered_packets_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t flit_hops_ = 0;
  std::vector<std::uint64_t> latencies_;
  std::vector<std::uint64_t> tx_count_;  // flits sent per channel
};

EventSimulator::EventSimulator(const Network& net, const RoutingResult& rr,
                               const SimConfig& cfg, std::uint32_t adaptive_vls)
    : impl_(std::make_unique<Impl>(net, rr, cfg, adaptive_vls)) {}

EventSimulator::~EventSimulator() = default;

void EventSimulator::inject(const Message& m, std::uint64_t when) {
  impl_->inject(m, when);
}

void EventSimulator::inject(const std::vector<Message>& msgs,
                            std::uint64_t when) {
  for (const Message& m : msgs) impl_->inject(m, when);
}

SimRunStatus EventSimulator::run() { return impl_->run(); }

std::uint64_t EventSimulator::now() const { return impl_->now_; }
std::uint64_t EventSimulator::events_processed() const {
  return impl_->events_processed_;
}
std::uint64_t EventSimulator::delivered_packets() const {
  return impl_->delivered_packets_;
}
std::uint64_t EventSimulator::delivered_bytes() const {
  return impl_->delivered_bytes_;
}

SimResult EventSimulator::result() const { return impl_->result(); }

SimResult simulate(const Network& net, const RoutingResult& rr,
                   const std::vector<Message>& messages, const SimConfig& cfg) {
  EventSimulator sim(net, rr, cfg);
  sim.inject(messages, 1);
  sim.run();
  return sim.result();
}

SimResult simulate_adaptive(const Network& net, const RoutingResult& escape,
                            std::uint32_t adaptive_vls,
                            const std::vector<Message>& messages,
                            const SimConfig& cfg) {
  NUE_CHECK(adaptive_vls >= 1);
  NUE_CHECK_MSG(escape.num_vls() == 1,
                "escape routing must be a single-VL deadlock-free routing");
  EventSimulator sim(net, escape, cfg, adaptive_vls);
  sim.inject(messages, 1);
  sim.run();
  return sim.result();
}

}  // namespace nue
