#include "sim/scenario.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "util/error.hpp"

namespace nue {

namespace {

[[noreturn]] void bad_scenario(const std::string& what) {
  throw std::logic_error("scenario: " + what);
}

/// Random source/destination pair with self-pairs redrawn (never skipped,
/// same contract as the traffic generators). A single-entry destination
/// pool redraws the source instead, so the loop always terminates.
std::pair<NodeId, NodeId> random_pair(const std::vector<NodeId>& sources,
                                      const std::vector<NodeId>& dests,
                                      Rng& rng) {
  NodeId s = sources[rng.next_below(sources.size())];
  NodeId d = dests[rng.next_below(dests.size())];
  while (d == s) {
    if (dests.size() > 1) {
      d = dests[rng.next_below(dests.size())];
    } else {
      s = sources[rng.next_below(sources.size())];
    }
  }
  return {s, d};
}

std::vector<NodeId> resolve_pool(const Network& net,
                                 const std::vector<NodeId>& dest_pool) {
  if (!dest_pool.empty()) return dest_pool;
  const auto t = net.terminals();
  return {t.begin(), t.end()};
}

}  // namespace

std::size_t Scenario::total_messages() const {
  std::size_t n = 0;
  for (const auto& ph : phases) n += ph.messages.size();
  return n;
}

std::uint64_t Scenario::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& ph : phases) {
    for (const auto& tm : ph.messages) b += tm.msg.bytes;
  }
  return b;
}

ScenarioResult simulate_scenario(const Network& net, const RoutingResult& rr,
                                 const Scenario& sc, const SimConfig& cfg,
                                 std::uint32_t adaptive_vls) {
  EventSimulator sim(net, rr, cfg, adaptive_vls);
  ScenarioResult out;
  out.phases.reserve(sc.phases.size());
  std::vector<std::size_t> open;  // injected phases awaiting their barrier
  std::uint64_t base = 1;
  bool stopped = false;
  const auto drain = [&]() {
    out.status = sim.run();
    for (const std::size_t idx : open) out.phases[idx].end_cycle = sim.now();
    open.clear();
    if (out.status != SimRunStatus::kCompleted) stopped = true;
  };
  for (const ScenarioPhase& ph : sc.phases) {
    if (ph.barrier && !open.empty()) {
      drain();
      if (stopped) break;
      base = sim.now() + 1;
    }
    PhaseSpan span;
    span.label = ph.label;
    span.start_cycle = base;
    for (const TimedMessage& tm : ph.messages) {
      sim.inject(tm.msg, base + tm.time);
      ++span.messages;
      span.bytes += tm.msg.bytes;
    }
    open.push_back(out.phases.size());
    out.phases.push_back(std::move(span));
  }
  if (!stopped && !open.empty()) drain();
  out.sim = sim.result();
  return out;
}

ScenarioPhase uniform_arrivals_phase(const Network& net, std::size_t count,
                                     std::uint32_t message_bytes,
                                     std::uint64_t duration, Rng& rng,
                                     const std::vector<NodeId>& dest_pool) {
  const auto terminals = net.terminals();
  NUE_CHECK(terminals.size() >= 2);
  const std::vector<NodeId> sources(terminals.begin(), terminals.end());
  const std::vector<NodeId> dests = resolve_pool(net, dest_pool);
  ScenarioPhase ph;
  ph.label = "uniform";
  ph.messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto [s, d] = random_pair(sources, dests, rng);
    ph.messages.push_back(
        {{s, d, message_bytes}, duration > 0 ? rng.next_below(duration) : 0});
  }
  return ph;
}

ScenarioPhase burst_arrivals_phase(const Network& net, std::size_t bursts,
                                   std::size_t per_burst,
                                   std::uint32_t message_bytes,
                                   std::uint64_t gap, Rng& rng,
                                   const std::vector<NodeId>& dest_pool) {
  const auto terminals = net.terminals();
  NUE_CHECK(terminals.size() >= 2);
  const std::vector<NodeId> sources(terminals.begin(), terminals.end());
  const std::vector<NodeId> dests = resolve_pool(net, dest_pool);
  ScenarioPhase ph;
  ph.label = "burst";
  ph.messages.reserve(bursts * per_burst);
  for (std::size_t b = 0; b < bursts; ++b) {
    const std::uint64_t at = b * gap;
    for (std::size_t i = 0; i < per_burst; ++i) {
      const auto [s, d] = random_pair(sources, dests, rng);
      ph.messages.push_back({{s, d, message_bytes}, at});
    }
  }
  return ph;
}

ScenarioPhase hotspot_drift_phase(const Network& net, std::size_t count,
                                  std::uint32_t message_bytes,
                                  double hot_fraction, std::uint64_t duration,
                                  std::size_t steps, Rng& rng,
                                  const std::vector<NodeId>& dest_pool) {
  const auto terminals = net.terminals();
  NUE_CHECK(terminals.size() >= 2);
  NUE_CHECK(hot_fraction >= 0.0 && hot_fraction <= 1.0);
  const std::vector<NodeId> sources(terminals.begin(), terminals.end());
  const std::vector<NodeId> dests = resolve_pool(net, dest_pool);
  const std::size_t nsteps = std::max<std::size_t>(steps, 1);
  ScenarioPhase ph;
  ph.label = "hotspot-drift";
  ph.messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Deterministic even spread over the duration; the hot terminal walks
    // through `steps` evenly spaced pool positions as time advances.
    const std::uint64_t at = count > 0 ? (i * duration) / count : 0;
    const std::size_t step = count > 0 ? (i * nsteps) / count : 0;
    const NodeId hot = dests[(step * dests.size()) / nsteps];
    NodeId s = sources[rng.next_below(sources.size())];
    NodeId d;
    if (rng.next_bool(hot_fraction)) {
      d = hot;
      while (s == d) s = sources[rng.next_below(sources.size())];
    } else {
      d = dests[rng.next_below(dests.size())];
      while (d == s) {
        if (dests.size() > 1) {
          d = dests[rng.next_below(dests.size())];
        } else {
          s = sources[rng.next_below(sources.size())];
        }
      }
    }
    ph.messages.push_back({{s, d, message_bytes}, at});
  }
  return ph;
}

Scenario allreduce_ring_scenario(const Network& net, std::uint64_t bytes) {
  const auto terminals = net.terminals();
  const std::size_t t = terminals.size();
  NUE_CHECK(t >= 2);
  // Bandwidth-optimal ring: reduce-scatter then allgather, each T-1
  // neighbor-exchange steps of one bytes/T chunk.
  const auto chunk = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max<std::uint64_t>(bytes / t, 1),
                              0xFFFFFFFFu));
  Scenario sc;
  for (int half = 0; half < 2; ++half) {
    for (std::size_t s = 0; s + 1 < t; ++s) {
      ScenarioPhase ph;
      ph.label = (half == 0 ? "reduce-scatter " : "allgather ") +
                 std::to_string(s);
      ph.messages.reserve(t);
      for (std::size_t i = 0; i < t; ++i) {
        ph.messages.push_back({{terminals[i], terminals[(i + 1) % t], chunk}, 0});
      }
      sc.phases.push_back(std::move(ph));
    }
  }
  return sc;
}

Scenario allreduce_tree_scenario(const Network& net, std::uint64_t bytes) {
  const auto terminals = net.terminals();
  const std::size_t t = terminals.size();
  NUE_CHECK(t >= 2);
  const auto sz = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(std::max<std::uint64_t>(bytes, 1), 0xFFFFFFFFu));
  std::size_t levels = 0;
  while ((std::size_t{1} << levels) < t) ++levels;
  Scenario sc;
  // Reduce up: at level k, odd multiples of 2^k send to their even
  // partner 2^k below; broadcast down mirrors it.
  for (std::size_t k = 0; k < levels; ++k) {
    ScenarioPhase ph;
    ph.label = "reduce " + std::to_string(k);
    const std::size_t stride = std::size_t{1} << (k + 1);
    for (std::size_t i = (std::size_t{1} << k); i < t; i += stride) {
      ph.messages.push_back({{terminals[i], terminals[i - (std::size_t{1} << k)], sz}, 0});
    }
    if (!ph.messages.empty()) sc.phases.push_back(std::move(ph));
  }
  for (std::size_t k = levels; k-- > 0;) {
    ScenarioPhase ph;
    ph.label = "broadcast " + std::to_string(k);
    const std::size_t stride = std::size_t{1} << (k + 1);
    for (std::size_t i = 0; i + (std::size_t{1} << k) < t; i += stride) {
      ph.messages.push_back({{terminals[i], terminals[i + (std::size_t{1} << k)], sz}, 0});
    }
    if (!ph.messages.empty()) sc.phases.push_back(std::move(ph));
  }
  return sc;
}

Scenario alltoall_phased_scenario(const Network& net,
                                  std::uint32_t message_bytes,
                                  std::uint32_t shift_samples) {
  const auto terminals = net.terminals();
  const auto t = static_cast<std::uint32_t>(terminals.size());
  NUE_CHECK(t >= 2);
  const std::uint32_t num_shifts =
      shift_samples == 0 ? t - 1 : std::min(shift_samples, t - 1);
  Scenario sc;
  for (std::uint32_t k = 0; k < num_shifts; ++k) {
    const std::uint32_t s =
        1 + static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(k) * (t - 1)) / num_shifts);
    ScenarioPhase ph;
    ph.label = "shift " + std::to_string(s);
    ph.messages.reserve(t);
    for (std::uint32_t i = 0; i < t; ++i) {
      ph.messages.push_back(
          {{terminals[i], terminals[(i + s) % t], message_bytes}, 0});
    }
    sc.phases.push_back(std::move(ph));
  }
  return sc;
}

// --- trace replay -----------------------------------------------------------

void write_trace(std::ostream& os, const Scenario& sc) {
  os << "# nue-trace v1\n";
  for (const auto& ph : sc.phases) {
    os << "phase " << (ph.barrier ? 1 : 0) << ' ' << ph.label << '\n';
    for (const auto& tm : ph.messages) {
      os << "msg " << tm.msg.src << ' ' << tm.msg.dst << ' ' << tm.msg.bytes
         << ' ' << tm.time << '\n';
    }
  }
}

Scenario read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != "# nue-trace v1") {
    bad_scenario("trace missing '# nue-trace v1' header");
  }
  Scenario sc;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string tok;
    ss >> tok;
    if (tok == "phase") {
      int barrier = 0;
      if (!(ss >> barrier)) {
        bad_scenario("trace line " + std::to_string(lineno) + ": bad phase");
      }
      ScenarioPhase ph;
      ph.barrier = barrier != 0;
      std::getline(ss, ph.label);
      if (!ph.label.empty() && ph.label[0] == ' ') ph.label.erase(0, 1);
      sc.phases.push_back(std::move(ph));
    } else if (tok == "msg") {
      if (sc.phases.empty()) {
        bad_scenario("trace line " + std::to_string(lineno) +
                     ": msg before any phase");
      }
      TimedMessage tm;
      if (!(ss >> tm.msg.src >> tm.msg.dst >> tm.msg.bytes >> tm.time)) {
        bad_scenario("trace line " + std::to_string(lineno) + ": bad msg");
      }
      sc.phases.back().messages.push_back(tm);
    } else {
      bad_scenario("trace line " + std::to_string(lineno) +
                   ": unknown record '" + tok + "'");
    }
  }
  return sc;
}

void save_trace_file(const std::string& path, const Scenario& sc) {
  std::ofstream os(path);
  if (!os) bad_scenario("cannot write trace file " + path);
  write_trace(os, sc);
}

Scenario load_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) bad_scenario("cannot read trace file " + path);
  return read_trace(is);
}

// --- CLI grammar ------------------------------------------------------------

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::uint64_t parse_u64(const std::string& s, const std::string& directive) {
  try {
    std::size_t pos = 0;
    const std::uint64_t v = std::stoull(s, &pos);
    if (pos != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    bad_scenario("bad number '" + s + "' in directive '" + directive + "'");
  }
}

void expect_args(const std::vector<std::string>& parts, std::size_t n,
                 const std::string& directive) {
  if (parts.size() != n + 1) {
    bad_scenario("directive '" + directive + "' wants " + std::to_string(n) +
                 " arguments");
  }
}

}  // namespace

Scenario parse_scenario(const Network& net, const std::string& spec, Rng& rng,
                        const std::vector<NodeId>& dest_pool) {
  Scenario sc;
  for (const std::string& directive : split(spec, ';')) {
    if (directive.empty()) continue;
    const auto parts = split(directive, ':');
    const std::string& kind = parts[0];
    if (kind == "uniform") {
      expect_args(parts, 3, directive);
      sc.phases.push_back(uniform_arrivals_phase(
          net, parse_u64(parts[1], directive),
          static_cast<std::uint32_t>(parse_u64(parts[2], directive)),
          parse_u64(parts[3], directive), rng, dest_pool));
    } else if (kind == "burst") {
      expect_args(parts, 4, directive);
      sc.phases.push_back(burst_arrivals_phase(
          net, parse_u64(parts[1], directive), parse_u64(parts[2], directive),
          static_cast<std::uint32_t>(parse_u64(parts[3], directive)),
          parse_u64(parts[4], directive), rng, dest_pool));
    } else if (kind == "hotspot") {
      expect_args(parts, 5, directive);
      sc.phases.push_back(hotspot_drift_phase(
          net, parse_u64(parts[1], directive),
          static_cast<std::uint32_t>(parse_u64(parts[2], directive)),
          static_cast<double>(parse_u64(parts[3], directive)) / 100.0,
          parse_u64(parts[4], directive), parse_u64(parts[5], directive), rng,
          dest_pool));
    } else if (kind == "alltoall") {
      expect_args(parts, 2, directive);
      Scenario a = alltoall_phased_scenario(
          net, static_cast<std::uint32_t>(parse_u64(parts[1], directive)),
          static_cast<std::uint32_t>(parse_u64(parts[2], directive)));
      for (auto& ph : a.phases) sc.phases.push_back(std::move(ph));
    } else if (kind == "allreduce-ring") {
      expect_args(parts, 1, directive);
      Scenario a = allreduce_ring_scenario(net, parse_u64(parts[1], directive));
      for (auto& ph : a.phases) sc.phases.push_back(std::move(ph));
    } else if (kind == "allreduce-tree") {
      expect_args(parts, 1, directive);
      Scenario a = allreduce_tree_scenario(net, parse_u64(parts[1], directive));
      for (auto& ph : a.phases) sc.phases.push_back(std::move(ph));
    } else if (kind == "trace") {
      expect_args(parts, 1, directive);
      Scenario a = load_trace_file(parts[1]);
      for (auto& ph : a.phases) sc.phases.push_back(std::move(ph));
    } else {
      bad_scenario("unknown directive '" + kind + "'");
    }
  }
  if (sc.phases.empty()) bad_scenario("empty scenario spec '" + spec + "'");
  return sc;
}

}  // namespace nue
