// Discrete-event flit simulator (the netsim idiom: a time-keyed event
// queue with per-router handlers that only run when a flit, credit, or
// injection event arrives). Same hardware model as the cycle engine in
// flit_sim.cpp — input-queued switches, credit flow control, per-VL
// wormhole locks, one flit per channel per cycle — but cost scales with
// *events* (flit movements and wake-ups), not fabric-size x cycles:
//
//   * A blocked queue costs nothing until the resource it waits on
//     changes: every failed arbitration subscribes the actor to the
//     (channel, VL) buffers that blocked it, and the credit release /
//     lock release wakes exactly the subscribers.
//   * Idle stretches of the timeline are skipped entirely (the clock
//     jumps to the next scheduled event), so sparse traffic on a
//     100k-switch fabric or a long trace horizon is cheap.
//   * Deadlock is detected the instant it happens, in event terms:
//     packets are outstanding but no movement event is scheduled and no
//     subscription can ever fire again (the event queue drained). No
//     idle-cycle watchdog, no 50k-cycle wait.
//
// The incremental API (inject at arbitrary future times, run to
// quiescence, inject more) is what the scenario subsystem
// (sim/scenario.hpp) builds barriers, bursts, and collective phases on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/flit_sim.hpp"

namespace nue {

enum class SimRunStatus : std::uint8_t {
  kCompleted,   // every injected packet delivered
  kDeadlocked,  // packets outstanding, event queue drained
  kCycleLimit,  // simulated time exceeded SimConfig::max_cycles
  kWallLimit,   // wall clock exceeded SimConfig::max_wall_ms
};

class EventSimulator {
 public:
  /// adaptive_vls = 0 selects deterministic table routing; > 0 selects
  /// Duato-style adaptive routing with `rr` as the single-VL escape
  /// routing (see simulate_adaptive).
  EventSimulator(const Network& net, const RoutingResult& rr,
                 const SimConfig& cfg, std::uint32_t adaptive_vls = 0);
  ~EventSimulator();
  EventSimulator(const EventSimulator&) = delete;
  EventSimulator& operator=(const EventSimulator&) = delete;

  /// Schedule a message's packets for injection at absolute cycle `when`
  /// (>= 1; times at or before now() are clamped to now() + 1). Messages
  /// injected at the same terminal keep their injection order.
  void inject(const Message& m, std::uint64_t when = 1);
  void inject(const std::vector<Message>& msgs, std::uint64_t when = 1);

  /// Process events until every injected packet is delivered, deadlock,
  /// or a limit fires. Callable repeatedly: inject more traffic after a
  /// completed run and call run() again (the clock keeps advancing).
  SimRunStatus run();

  std::uint64_t now() const;
  std::uint64_t events_processed() const;
  std::uint64_t delivered_packets() const;
  std::uint64_t delivered_bytes() const;

  /// Aggregate statistics snapshot (same schema as the cycle engine).
  SimResult result() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nue
