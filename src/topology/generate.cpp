#include "topology/generate.hpp"

#include <cstdlib>
#include <sstream>
#include <vector>

#include "topology/misc_topologies.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace nue {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) out.push_back(item);
  return out;
}

std::uint32_t to_u32(const std::string& s, const char* what) {
  NUE_CHECK_MSG(!s.empty(), "missing " << what);
  return static_cast<std::uint32_t>(std::strtoul(s.c_str(), nullptr, 10));
}

}  // namespace

GeneratedTopology generate_topology(const std::string& spec) {
  GeneratedTopology g;
  const auto parts = split(spec, ':');
  NUE_CHECK_MSG(!parts.empty(), "empty generator spec");
  const std::string& kind = parts[0];
  auto arg = [&](std::size_t i, std::uint32_t def) {
    return parts.size() > i ? to_u32(parts[i], "generate argument") : def;
  };
  if (kind == "torus") {
    NUE_CHECK_MSG(parts.size() >= 2, "torus needs dims, e.g. torus:4x4x3");
    TorusSpec t;
    for (const auto& d : split(parts[1], 'x')) {
      t.dims.push_back(to_u32(d, "torus dimension"));
    }
    t.terminals_per_switch = arg(2, 1);
    t.redundancy = arg(3, 1);
    g.net = make_torus(t);
    g.torus = t;
  } else if (kind == "random") {
    RandomSpec r;
    r.switches = arg(1, 125);
    r.links = arg(2, 1000);
    r.terminals_per_switch = arg(3, 8);
    Rng rng(arg(4, 1));
    g.net = make_random(r, rng);
  } else if (kind == "fattree") {
    FatTreeSpec f;
    f.k = arg(1, 4);
    f.n = arg(2, 3);
    f.terminals_per_leaf = arg(3, f.k);
    g.net = make_kary_ntree(f);
    g.fattree = f;
  } else if (kind == "kautz") {
    KautzSpec k;
    k.d = arg(1, 5);
    k.k = arg(2, 3);
    k.terminals_per_switch = arg(3, 7);
    k.redundancy = arg(4, 2);
    g.net = make_kautz(k);
  } else if (kind == "dragonfly") {
    DragonflySpec d;
    d.a = arg(1, 12);
    d.p = arg(2, 6);
    d.h = arg(3, 6);
    d.g = arg(4, 15);
    g.net = make_dragonfly(d);
  } else if (kind == "hyperx") {
    HyperXSpec h;
    h.shape.clear();
    NUE_CHECK_MSG(parts.size() >= 2, "hyperx needs a shape, e.g. hyperx:4x4");
    for (const auto& d : split(parts[1], 'x')) {
      h.shape.push_back(to_u32(d, "hyperx dimension"));
    }
    h.terminals_per_switch = arg(2, 2);
    g.net = make_hyperx(h);
  } else if (kind == "hypercube") {
    g.net = make_hypercube(arg(1, 4), arg(2, 1));
  } else if (kind == "cascade") {
    CascadeSpec c;
    g.net = make_cascade(c);
  } else if (kind == "tsubame") {
    ClosSpec c;
    g.net = make_tsubame25_like(c);
  } else {
    NUE_CHECK_MSG(false, "unknown topology kind '" << kind << "'");
  }
  return g;
}

}  // namespace nue
