// Plain-text fabric description format (a minimal stand-in for
// `ibnetdiscover` output), so real or hand-written topologies can be fed
// to the routing engines without recompiling:
//
//   # comment
//   switch   <name>
//   terminal <name>            (exactly one link, to a switch)
//   link     <name> <name> [multiplicity]
//
// Nodes must be declared before they are linked. Multiplicity adds
// parallel duplex links (multigraph). write_fabric() emits the same
// format with generated names (s<i> / t<i>), round-trip stable.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/network.hpp"

namespace nue {

/// Parse a fabric description. Throws std::logic_error with a line number
/// on malformed input.
Network read_fabric(std::istream& is);

/// Emit `net` (alive nodes/links only) in the fabric format.
void write_fabric(std::ostream& os, const Network& net);

Network load_fabric_file(const std::string& path);
void save_fabric_file(const std::string& path, const Network& net);

}  // namespace nue
