#include "topology/fabric_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace nue {

Network read_fabric(std::istream& is) {
  Network net;
  std::map<std::string, NodeId> names;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string kind;
    if (!(ls >> kind)) continue;  // blank line
    if (kind == "switch" || kind == "terminal") {
      std::string name;
      NUE_CHECK_MSG(static_cast<bool>(ls >> name),
                    "line " << lineno << ": missing node name");
      NUE_CHECK_MSG(!names.count(name),
                    "line " << lineno << ": duplicate node '" << name << "'");
      names[name] =
          kind == "switch" ? net.add_switch() : net.add_terminal();
    } else if (kind == "link") {
      std::string a, b;
      NUE_CHECK_MSG(static_cast<bool>(ls >> a >> b),
                    "line " << lineno << ": link needs two node names");
      std::size_t mult = 1;
      ls >> mult;
      NUE_CHECK_MSG(names.count(a),
                    "line " << lineno << ": unknown node '" << a << "'");
      NUE_CHECK_MSG(names.count(b),
                    "line " << lineno << ": unknown node '" << b << "'");
      NUE_CHECK_MSG(mult >= 1, "line " << lineno << ": zero multiplicity");
      for (std::size_t i = 0; i < mult; ++i) {
        net.add_link(names[a], names[b]);
      }
    } else {
      NUE_CHECK_MSG(false,
                    "line " << lineno << ": unknown keyword '" << kind << "'");
    }
  }
  for (NodeId t : net.terminals()) {
    NUE_CHECK_MSG(net.degree(t) == 1,
                  "terminal node " << t << " must have exactly one link");
    NUE_CHECK_MSG(net.is_switch(net.dst(net.out(t)[0])),
                  "terminal node " << t << " must attach to a switch");
  }
  return net;
}

void write_fabric(std::ostream& os, const Network& net) {
  os << "# " << net.num_alive_switches() << " switches, "
     << net.num_alive_terminals() << " terminals, "
     << net.num_alive_channels() / 2 << " duplex links\n";
  std::vector<std::string> name(net.num_nodes());
  std::size_t nsw = 0, nterm = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) continue;
    if (net.is_switch(v)) {
      name[v] = "s" + std::to_string(nsw++);
      os << "switch " << name[v] << "\n";
    } else {
      name[v] = "t" + std::to_string(nterm++);
    }
  }
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_alive(v) && net.is_terminal(v)) {
      os << "terminal " << name[v] << "\n";
    }
  }
  // Coalesce parallel links into a multiplicity count.
  std::map<std::pair<NodeId, NodeId>, std::size_t> mult;
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (!net.channel_alive(c)) continue;
    const NodeId a = std::min(net.src(c), net.dst(c));
    const NodeId b = std::max(net.src(c), net.dst(c));
    ++mult[{a, b}];
  }
  for (const auto& [key, m] : mult) {
    os << "link " << name[key.first] << " " << name[key.second];
    if (m > 1) os << " " << m;
    os << "\n";
  }
}

Network load_fabric_file(const std::string& path) {
  std::ifstream f(path);
  NUE_CHECK_MSG(f.good(), "cannot open fabric file " << path);
  return read_fabric(f);
}

void save_fabric_file(const std::string& path, const Network& net) {
  std::ofstream f(path);
  NUE_CHECK_MSG(f.good(), "cannot write fabric file " << path);
  write_fabric(f, net);
}

}  // namespace nue
