// k-dimensional torus/mesh generator with per-switch terminals and
// switch-to-switch link redundancy (Table 1's `r`).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"

namespace nue {

/// Geometry of a generated torus; needed by the topology-aware
/// Torus-2QoS-like routing (coordinates and ring structure).
struct TorusSpec {
  std::vector<std::uint32_t> dims;   // e.g. {4,4,3}
  std::uint32_t terminals_per_switch = 0;
  std::uint32_t redundancy = 1;

  /// switch node id of grid coordinate (row-major over dims).
  NodeId switch_at(const std::vector<std::uint32_t>& coord) const {
    NodeId id = 0;
    for (std::size_t i = 0; i < dims.size(); ++i) {
      id = id * dims[i] + coord[i];
    }
    return id;
  }

  std::vector<std::uint32_t> coord_of(NodeId sw) const {
    std::vector<std::uint32_t> c(dims.size());
    for (std::size_t i = dims.size(); i-- > 0;) {
      c[i] = sw % dims[i];
      sw /= dims[i];
    }
    return c;
  }

  std::uint32_t num_switches() const {
    std::uint32_t n = 1;
    for (auto d : dims) n *= d;
    return n;
  }
};

/// Build a torus. Switches get ids [0, prod(dims)), then terminals.
/// Rings of size 2 get a single link (not two parallel ones); size-1
/// dimensions get none. Redundancy r replicates every switch link r times.
Network make_torus(TorusSpec& spec);

}  // namespace nue
