// Colon-separated topology generator specs ("torus:4x4x3:4",
// "random:125:1000:8", "fattree:4:3", ...) resolved into a built fabric.
// This is the one grammar every front end shares: nue_route's --generate
// flag, fault traces (FaultTrace::generate re-instantiates the fabric a
// trace was drawn on), and the fabric-manager daemon's `load` op
// (docs/SERVICE.md) all parse their specs here, so a spec recorded by
// one tool always means the same fabric to the others.
#pragma once

#include <optional>
#include <string>

#include "graph/network.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"

namespace nue {

/// A generated fabric plus the geometry the topology-aware engines need
/// (torus-qos wants the ring structure, fat-tree d-mod-k the level
/// layout); empty for the geometry-free generators.
struct GeneratedTopology {
  Network net;
  std::optional<TorusSpec> torus;
  std::optional<FatTreeSpec> fattree;
};

/// Build the fabric a generator spec describes. Grammar (arguments after
/// the kind are optional and default sensibly):
///
///   torus:AxBx...[:terminals[:redundancy]]
///   random:switches:links:terminals_per_switch[:seed]
///   fattree:k[:n[:terminals_per_leaf]]
///   kautz:d:k[:terminals[:redundancy]]
///   dragonfly:a:p:h:g
///   hyperx:AxB...[:terminals]
///   hypercube:dim[:terminals]
///   cascade | tsubame
///
/// Throws std::logic_error (NUE_CHECK) on an unknown kind or malformed
/// arguments. Deterministic: the same spec always yields the same
/// fabric, which is what lets the daemon's tables be diffed against a
/// one-shot nue_route run.
GeneratedTopology generate_topology(const std::string& spec);

}  // namespace nue
