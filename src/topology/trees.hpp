// Tree-shaped topologies: k-ary n-trees (fat trees) and the folded-Clos
// approximation of Tsubame2.5's second InfiniBand rail.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"

namespace nue {

/// Structure of a generated k-ary n-tree, needed by fat-tree routing.
struct FatTreeSpec {
  std::uint32_t k = 0;                  // arity
  std::uint32_t n = 0;                  // levels
  std::uint32_t terminals_per_leaf = 0;
  // switch ids by level: level 0 = root stage ... level n-1 = leaf stage.
  // Each stage holds k^(n-1) switches; switch (l, w) has id
  // l * k^(n-1) + w where w encodes the (n-1)-digit base-k address.
  std::uint32_t switches_per_level = 0;

  NodeId switch_id(std::uint32_t level, std::uint32_t w) const {
    return level * switches_per_level + w;
  }
  std::uint32_t level_of(NodeId sw) const { return sw / switches_per_level; }
  std::uint32_t addr_of(NodeId sw) const { return sw % switches_per_level; }
};

/// Standard k-ary n-tree: n stages of k^(n-1) switches. Stage l switch w
/// links down to the k stage-(l+1) switches agreeing with w on all address
/// digits except digit l. Terminals attach to leaf-stage switches
/// (`terminals_per_leaf` each; the paper's 10-ary 3-tree uses 11).
Network make_kary_ntree(FatTreeSpec& spec);

/// Generic folded-Clos with arbitrary stage widths and uplink counts:
/// stage_sizes = switches per stage (index 0 = leaf), uplinks[i] = number
/// of up-links from each stage-i switch to stage i+1 (wired round-robin).
/// Used for the Tsubame2.5-like rail.
struct ClosSpec {
  std::vector<std::uint32_t> stage_sizes;
  std::vector<std::uint32_t> uplinks;  // size = stage_sizes.size() - 1
  std::uint32_t num_terminals = 0;     // attached round-robin to stage 0
  // Filled by the generator:
  std::vector<std::uint32_t> stage_first_id;
};

Network make_folded_clos(ClosSpec& spec);

/// Tsubame2.5 second-rail approximation (Table 1: 243 switches,
/// 1,407 terminals, ~3,384 switch-to-switch channels) as a 3-stage Clos
/// of 36-port-class switches: 144 edge (12 up), 63 mid (~26 up), 36 core.
Network make_tsubame25_like(ClosSpec& spec);

}  // namespace nue
