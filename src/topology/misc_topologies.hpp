// Remaining generators: Kautz graph, Dragonfly, Cascade-like 2-group
// network, and seeded random multigraphs (Section 5.1's 1,000 topologies).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "util/rng.hpp"

namespace nue {

/// Kautz digraph K(d, k) turned into an undirected switch fabric:
/// vertices are strings s_0..s_k over an alphabet of d+1 symbols with
/// s_i != s_{i+1} — (d+1)*d^(k-1) switches... we use the arc-derived
/// variant that matches Table 1's counts: N = d^k + d^(k-1) switches and
/// d*N arcs deduplicated into duplex links, each replicated `redundancy`
/// times. Table 1's "Kautz (d=7,k=3)" row has 150 switches and 750 base
/// links, which corresponds to K(5,3) in this construction (the paper's
/// parameter label does not match its own switch count; we match the
/// counts).
struct KautzSpec {
  std::uint32_t d = 5;
  std::uint32_t k = 3;
  std::uint32_t terminals_per_switch = 7;
  std::uint32_t redundancy = 2;
};
Network make_kautz(const KautzSpec& spec);

/// Standard Dragonfly(a, p, h, g): g groups of a switches, p terminals per
/// switch, h global ports per switch; intra-group all-to-all; q parallel
/// global links per group pair with q = floor(a*h / (g-1)), matching
/// Table 1's 1,515 channels for (a=12, p=6, h=6, g=15).
struct DragonflySpec {
  std::uint32_t a = 12, p = 6, h = 6, g = 15;
};
Network make_dragonfly(const DragonflySpec& spec);

/// Cray-Cascade-like network with two electrical groups. Each group is a
/// 6-chassis x 16-router Aries group: all-to-all within a chassis (green),
/// 3 parallel links between same-position routers of different chassis
/// (black), and 192 global (blue) links between the groups, 2 per router,
/// matching the paper's configuration (Table 1: 192 switches, 1,536
/// terminals, 3,072 channels).
struct CascadeSpec {
  std::uint32_t groups = 2;
  std::uint32_t chassis_per_group = 6;
  std::uint32_t routers_per_chassis = 16;
  std::uint32_t black_redundancy = 3;
  std::uint32_t global_per_router = 2;
  std::uint32_t terminals_per_switch = 8;
};
Network make_cascade(const CascadeSpec& spec);

/// HyperX / flattened-butterfly family: an L-dimensional lattice with
/// all-to-all links inside every axis-aligned line (a torus generalizes
/// rings; HyperX generalizes cliques). shape = switches per dimension;
/// shape = {2,2,...,2} yields the binary hypercube. Covers the NoC-style
/// topologies the paper's conclusion targets.
struct HyperXSpec {
  std::vector<std::uint32_t> shape = {4, 4};
  std::uint32_t terminals_per_switch = 2;
  std::uint32_t redundancy = 1;
};
Network make_hyperx(const HyperXSpec& spec);

/// n-dimensional binary hypercube (HyperX with shape 2^n).
Network make_hypercube(std::uint32_t dims, std::uint32_t terminals_per_switch);

/// Seeded random switch fabric: `switches` switches connected by a random
/// spanning tree plus random extra links up to `links` total (parallel
/// links allowed, self loops not), then `terminals_per_switch` terminals
/// each. Always connected by construction.
struct RandomSpec {
  std::uint32_t switches = 125;
  std::uint32_t links = 1000;
  std::uint32_t terminals_per_switch = 8;
};
Network make_random(const RandomSpec& spec, Rng& rng);

}  // namespace nue
