#include "topology/torus.hpp"

#include "util/error.hpp"

namespace nue {

Network make_torus(TorusSpec& spec) {
  NUE_CHECK(!spec.dims.empty());
  NUE_CHECK(spec.redundancy >= 1);
  Network net;
  const std::uint32_t nsw = spec.num_switches();
  for (std::uint32_t i = 0; i < nsw; ++i) net.add_switch();

  // Switch-to-switch links: +1 neighbor in every dimension (wrap-around).
  std::vector<std::uint32_t> coord(spec.dims.size(), 0);
  for (NodeId sw = 0; sw < nsw; ++sw) {
    const auto c = spec.coord_of(sw);
    for (std::size_t d = 0; d < spec.dims.size(); ++d) {
      if (spec.dims[d] < 2) continue;
      // Ring of size 2: only the node with coordinate 0 adds the link,
      // and the wrap link would duplicate it, so skip the wrap.
      if (spec.dims[d] == 2 && c[d] == 1) continue;
      auto nb = c;
      nb[d] = (c[d] + 1) % spec.dims[d];
      const NodeId other = spec.switch_at(nb);
      for (std::uint32_t rep = 0; rep < spec.redundancy; ++rep) {
        net.add_link(sw, other);
      }
    }
  }

  for (NodeId sw = 0; sw < nsw; ++sw) {
    for (std::uint32_t t = 0; t < spec.terminals_per_switch; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, sw);
    }
  }
  return net;
}

}  // namespace nue
