#include "topology/faults.hpp"

#include <vector>

#include "graph/algorithms.hpp"
#include "util/error.hpp"

namespace nue {

namespace {

/// True if removing the given duplex link keeps the alive fabric connected.
bool link_removal_safe(const Network& net, ChannelId c) {
  Network copy = net;
  copy.remove_link(c);
  return is_connected(copy);
}

bool switch_removal_safe(const Network& net, NodeId sw) {
  Network copy = net;
  std::vector<NodeId> orphans;
  for (ChannelId c : copy.out(sw)) {
    const NodeId nb = copy.dst(c);
    if (copy.is_terminal(nb)) orphans.push_back(nb);
  }
  copy.remove_node(sw);
  for (NodeId t : orphans) copy.remove_node(t);
  return copy.num_alive_nodes() > 0 && is_connected(copy);
}

}  // namespace

std::size_t inject_link_failures(Network& net, std::size_t count, Rng& rng) {
  std::size_t removed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (count + 1);
  while (removed < count && attempts < max_attempts) {
    ++attempts;
    // Draw an alive switch-to-switch link (even channel of the pair).
    const auto c =
        static_cast<ChannelId>(rng.next_below(net.num_channels()) & ~1ull);
    if (!net.channel_alive(c)) continue;
    if (net.is_terminal(net.src(c)) || net.is_terminal(net.dst(c))) continue;
    if (!link_removal_safe(net, c)) continue;
    net.remove_link(c);
    ++removed;
  }
  return removed;
}

std::size_t inject_switch_failures(Network& net, std::size_t count,
                                   Rng& rng) {
  std::size_t removed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (count + 1);
  while (removed < count && attempts < max_attempts) {
    ++attempts;
    const auto v = static_cast<NodeId>(rng.next_below(net.num_nodes()));
    if (!net.node_alive(v) || net.is_terminal(v)) continue;
    if (!switch_removal_safe(net, v)) continue;
    std::vector<NodeId> orphans;
    for (ChannelId c : net.out(v)) {
      const NodeId nb = net.dst(c);
      if (net.is_terminal(nb)) orphans.push_back(nb);
    }
    net.remove_node(v);
    for (NodeId t : orphans) net.remove_node(t);
    ++removed;
  }
  return removed;
}

}  // namespace nue
