#include "topology/faults.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "graph/algorithms.hpp"
#include "util/error.hpp"

namespace nue {

namespace {

/// True if removing the given duplex link keeps the alive fabric connected.
bool link_removal_safe(const Network& net, ChannelId c) {
  Network copy = net;
  copy.remove_link(c);
  return is_connected(copy);
}

bool switch_removal_safe(const Network& net, NodeId sw) {
  Network copy = net;
  std::vector<NodeId> orphans;
  for (ChannelId c : copy.out(sw)) {
    const NodeId nb = copy.dst(c);
    if (copy.is_terminal(nb)) orphans.push_back(nb);
  }
  copy.remove_node(sw);
  for (NodeId t : orphans) copy.remove_node(t);
  return copy.num_alive_nodes() > 0 && is_connected(copy);
}

/// Dead switch orphans of sw on the live fabric (terminals whose access
/// link goes to sw), collected before the removal deletes the links.
std::vector<NodeId> switch_orphans(const Network& net, NodeId sw) {
  std::vector<NodeId> orphans;
  for (ChannelId c : net.out(sw)) {
    if (net.is_terminal(net.dst(c))) orphans.push_back(net.dst(c));
  }
  return orphans;
}

}  // namespace

std::size_t inject_link_failures(Network& net, std::size_t count, Rng& rng) {
  std::size_t removed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (count + 1);
  while (removed < count && attempts < max_attempts) {
    ++attempts;
    // Draw an alive switch-to-switch link (even channel of the pair).
    const auto c =
        static_cast<ChannelId>(rng.next_below(net.num_channels()) & ~1ull);
    if (!net.channel_alive(c)) continue;
    if (net.is_terminal(net.src(c)) || net.is_terminal(net.dst(c))) continue;
    if (!link_removal_safe(net, c)) continue;
    net.remove_link(c);
    ++removed;
  }
  return removed;
}

std::size_t inject_switch_failures(Network& net, std::size_t count,
                                   Rng& rng) {
  std::size_t removed = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (count + 1);
  while (removed < count && attempts < max_attempts) {
    ++attempts;
    const auto v = static_cast<NodeId>(rng.next_below(net.num_nodes()));
    if (!net.node_alive(v) || net.is_terminal(v)) continue;
    if (!switch_removal_safe(net, v)) continue;
    const auto orphans = switch_orphans(net, v);
    net.remove_node(v);
    for (NodeId t : orphans) net.remove_node(t);
    ++removed;
  }
  return removed;
}

void restore_link(Network& net, ChannelId c) {
  c &= ~1u;
  NUE_CHECK_MSG(c < net.num_channels(), "restore: channel " << c
                                                            << " out of range");
  NUE_CHECK_MSG(!net.channel_alive(c), "restore: link " << c << " is alive");
  NUE_CHECK_MSG(
      net.is_switch(net.src(c)) && net.is_switch(net.dst(c)),
      "restore: link " << c << " is a terminal access link (restore the "
                          "switch instead)");
  NUE_CHECK_MSG(net.node_alive(net.src(c)) && net.node_alive(net.dst(c)),
                "restore: link " << c << " has a dead endpoint");
  net.restore_link(c);
}

std::size_t restore_switch(Network& net, NodeId sw) {
  NUE_CHECK_MSG(sw < net.num_nodes(), "restore: node " << sw
                                                       << " out of range");
  NUE_CHECK_MSG(!net.node_alive(sw), "restore: switch " << sw << " is alive");
  NUE_CHECK_MSG(net.is_switch(sw), "restore: node " << sw << " is a terminal");
  net.restore_node(sw);
  std::size_t links = 0;
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (net.channel_alive(c)) continue;
    NodeId other = kInvalidNode;
    if (net.src(c) == sw) {
      other = net.dst(c);
    } else if (net.dst(c) == sw) {
      other = net.src(c);
    } else {
      continue;
    }
    if (net.is_terminal(other)) {
      // The switch's own terminal coming back online with its access link.
      if (!net.node_alive(other)) net.restore_node(other);
    } else if (!net.node_alive(other)) {
      continue;  // neighbor switch still down; its repair revives the link
    }
    net.restore_link(c);
    ++links;
  }
  return links;
}

const char* fault_event_name(FaultEventKind k) {
  switch (k) {
    case FaultEventKind::kLinkDown: return "link-down";
    case FaultEventKind::kSwitchDown: return "switch-down";
    case FaultEventKind::kLinkRestore: return "link-restore";
    case FaultEventKind::kSwitchRestore: return "switch-restore";
  }
  return "?";
}

std::string FaultEvent::label() const {
  std::ostringstream os;
  os << fault_event_name(kind) << " " << id;
  return os.str();
}

void apply_fault_event(Network& net, const FaultEvent& e) {
  switch (e.kind) {
    case FaultEventKind::kLinkDown: {
      const ChannelId c = e.id & ~1u;
      NUE_CHECK_MSG(c < net.num_channels() && net.channel_alive(c),
                    "event: link " << c << " not alive");
      NUE_CHECK_MSG(net.is_switch(net.src(c)) && net.is_switch(net.dst(c)),
                    "event: link " << c << " is a terminal access link");
      NUE_CHECK_MSG(link_removal_safe(net, c),
                    "event: removing link " << c << " disconnects the fabric");
      net.remove_link(c);
      break;
    }
    case FaultEventKind::kSwitchDown: {
      const NodeId v = e.id;
      NUE_CHECK_MSG(v < net.num_nodes() && net.node_alive(v),
                    "event: switch " << v << " not alive");
      NUE_CHECK_MSG(net.is_switch(v), "event: node " << v << " is a terminal");
      NUE_CHECK_MSG(net.num_alive_switches() > 1, "event: last switch");
      NUE_CHECK_MSG(switch_removal_safe(net, v),
                    "event: removing switch " << v
                                              << " disconnects the fabric");
      const auto orphans = switch_orphans(net, v);
      net.remove_node(v);
      for (NodeId t : orphans) net.remove_node(t);
      NUE_CHECK_MSG(net.num_alive_terminals() >= 2,
                    "event: switch " << v
                                     << " leaves fewer than 2 terminals");
      break;
    }
    case FaultEventKind::kLinkRestore:
      restore_link(net, e.id);
      break;
    case FaultEventKind::kSwitchRestore:
      restore_switch(net, e.id);
      break;
  }
}

void write_fault_trace(std::ostream& os, const FaultTrace& t) {
  os << "nue-fault-trace v1\n";
  os << "generate " << t.generate << "\n";
  os << "seed " << t.seed << "\n";
  for (const FaultEvent& e : t.events) {
    os << fault_event_name(e.kind) << " " << e.id << "\n";
  }
}

FaultTrace read_fault_trace(std::istream& is) {
  FaultTrace t;
  std::string line;
  NUE_CHECK_MSG(std::getline(is, line) && line == "nue-fault-trace v1",
                "not a fault trace (bad header)");
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "generate") {
      ss >> t.generate;
    } else if (key == "seed") {
      ss >> t.seed;
    } else {
      bool matched = false;
      for (FaultEventKind k :
           {FaultEventKind::kLinkDown, FaultEventKind::kSwitchDown,
            FaultEventKind::kLinkRestore, FaultEventKind::kSwitchRestore}) {
        if (key == fault_event_name(k)) {
          FaultEvent e;
          e.kind = k;
          NUE_CHECK_MSG(static_cast<bool>(ss >> e.id),
                        "fault trace: bad event line '" << line << "'");
          t.events.push_back(e);
          matched = true;
          break;
        }
      }
      NUE_CHECK_MSG(matched, "fault trace: unknown key '" << key << "'");
    }
  }
  NUE_CHECK_MSG(!t.generate.empty(), "fault trace: missing generate line");
  return t;
}

FaultTrace load_fault_trace_file(const std::string& path) {
  std::ifstream is(path);
  NUE_CHECK_MSG(is.good(), "cannot open fault trace '" << path << "'");
  return read_fault_trace(is);
}

void save_fault_trace_file(const std::string& path, const FaultTrace& t) {
  std::ofstream os(path);
  NUE_CHECK_MSG(os.good(), "cannot write fault trace '" << path << "'");
  write_fault_trace(os, t);
}

FaultTrace draw_fault_trace(const Network& net, const std::string& generate,
                            std::uint64_t seed, std::size_t count,
                            double restore_fraction) {
  FaultTrace t;
  t.generate = generate;
  t.seed = seed;
  Rng rng(seed);
  Network scratch = net;
  // Elements this trace has taken down and not yet restored — restores are
  // only drawn from here, so the trace stays legal under restore_switch's
  // revive-everything semantics.
  std::vector<ChannelId> down_links;
  std::vector<NodeId> down_switches;
  std::size_t attempts = 0;
  const std::size_t max_attempts = 50 * (count + 1);
  while (t.events.size() < count && attempts < max_attempts) {
    ++attempts;
    FaultEvent e;
    const bool want_restore =
        (!down_links.empty() || !down_switches.empty()) &&
        rng.next_bool(restore_fraction);
    if (want_restore) {
      const std::size_t pick =
          rng.next_below(down_links.size() + down_switches.size());
      if (pick < down_links.size()) {
        e.kind = FaultEventKind::kLinkRestore;
        e.id = down_links[pick];
        // A link whose endpoint switch is still down cannot come back yet.
        if (!scratch.node_alive(scratch.src(e.id)) ||
            !scratch.node_alive(scratch.dst(e.id))) {
          continue;
        }
        down_links[pick] = down_links.back();
        down_links.pop_back();
      } else {
        const std::size_t si = pick - down_links.size();
        e.kind = FaultEventKind::kSwitchRestore;
        e.id = down_switches[si];
        down_switches[si] = down_switches.back();
        down_switches.pop_back();
        // restore_switch revives the switch's failed links wholesale; drop
        // them from the down list so they are not restored twice.
        std::vector<ChannelId> still_down;
        for (ChannelId c : down_links) {
          if (scratch.src(c) != e.id && scratch.dst(c) != e.id) {
            still_down.push_back(c);
          }
        }
        down_links.swap(still_down);
      }
    } else if (rng.next_bool(0.2)) {
      const auto v = static_cast<NodeId>(rng.next_below(scratch.num_nodes()));
      if (!scratch.node_alive(v) || scratch.is_terminal(v)) continue;
      if (scratch.num_alive_switches() <= 2) continue;
      if (scratch.num_alive_terminals() < switch_orphans(scratch, v).size() + 2)
        continue;
      if (!switch_removal_safe(scratch, v)) continue;
      e.kind = FaultEventKind::kSwitchDown;
      e.id = v;
      down_switches.push_back(v);
    } else {
      const auto c = static_cast<ChannelId>(
          rng.next_below(scratch.num_channels()) & ~1ull);
      if (!scratch.channel_alive(c)) continue;
      if (scratch.is_terminal(scratch.src(c)) ||
          scratch.is_terminal(scratch.dst(c))) {
        continue;
      }
      if (!link_removal_safe(scratch, c)) continue;
      e.kind = FaultEventKind::kLinkDown;
      e.id = c;
      down_links.push_back(c);
    }
    apply_fault_event(scratch, e);
    t.events.push_back(e);
  }
  return t;
}

}  // namespace nue
