#include "topology/misc_topologies.hpp"

#include <map>
#include <set>

#include "util/error.hpp"

namespace nue {

namespace {

/// Kautz string <-> dense id encoding. Strings s_0..s_{k-1} over alphabet
/// {0..d} with s_i != s_{i+1}; each symbol after the first has d choices.
struct KautzCode {
  std::uint32_t d, k;

  std::uint32_t encode(const std::vector<std::uint32_t>& s) const {
    std::uint32_t id = s[0];
    for (std::uint32_t i = 1; i < k; ++i) {
      const std::uint32_t t = s[i] - (s[i] > s[i - 1] ? 1 : 0);
      id = id * d + t;
    }
    return id;
  }

  std::vector<std::uint32_t> decode(std::uint32_t id) const {
    std::vector<std::uint32_t> rel(k);
    for (std::uint32_t i = k; i-- > 1;) {
      rel[i] = id % d;
      id /= d;
    }
    rel[0] = id;
    std::vector<std::uint32_t> s(k);
    s[0] = rel[0];
    for (std::uint32_t i = 1; i < k; ++i) {
      s[i] = rel[i] + (rel[i] >= s[i - 1] ? 1 : 0);
    }
    return s;
  }

  std::uint32_t num_vertices() const {
    std::uint32_t n = d + 1;
    for (std::uint32_t i = 1; i < k; ++i) n *= d;
    return n;
  }
};

}  // namespace

Network make_kautz(const KautzSpec& spec) {
  NUE_CHECK(spec.d >= 2 && spec.k >= 2);
  const KautzCode code{spec.d, spec.k};
  const std::uint32_t n = code.num_vertices();
  Network net;
  for (std::uint32_t i = 0; i < n; ++i) net.add_switch();

  // Arc u=(s0..s_{k-1}) -> v=(s1..s_{k-1}, x), x != s_{k-1}.
  auto successors = [&](std::uint32_t u) {
    std::vector<std::uint32_t> succ;
    const auto s = code.decode(u);
    std::vector<std::uint32_t> t(s.begin() + 1, s.end());
    t.push_back(0);
    for (std::uint32_t x = 0; x <= spec.d; ++x) {
      if (x == s[spec.k - 1]) continue;
      t[spec.k - 1] = x;
      succ.push_back(code.encode(t));
    }
    return succ;
  };

  std::set<std::pair<std::uint32_t, std::uint32_t>> added;
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v : successors(u)) {
      if (v == u) continue;  // degenerate (cannot happen for k >= 2)
      const auto key = std::minmax(u, v);
      if (added.insert({key.first, key.second}).second) {
        for (std::uint32_t rep = 0; rep < spec.redundancy; ++rep) {
          net.add_link(u, v);
        }
      }
    }
  }

  for (std::uint32_t sw = 0; sw < n; ++sw) {
    for (std::uint32_t t = 0; t < spec.terminals_per_switch; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, sw);
    }
  }
  return net;
}

Network make_dragonfly(const DragonflySpec& spec) {
  NUE_CHECK(spec.g >= 2 && spec.a >= 2);
  Network net;
  const std::uint32_t nsw = spec.a * spec.g;
  for (std::uint32_t i = 0; i < nsw; ++i) net.add_switch();
  auto sw_id = [&](std::uint32_t group, std::uint32_t idx) {
    return group * spec.a + idx;
  };

  // Intra-group all-to-all.
  for (std::uint32_t g = 0; g < spec.g; ++g) {
    for (std::uint32_t i = 0; i < spec.a; ++i) {
      for (std::uint32_t j = i + 1; j < spec.a; ++j) {
        net.add_link(sw_id(g, i), sw_id(g, j));
      }
    }
  }

  // Global links: q parallel links per group pair, endpoints assigned
  // round-robin over each group's a*h global ports.
  const std::uint32_t q = (spec.a * spec.h) / (spec.g - 1);
  std::vector<std::uint32_t> port(spec.g, 0);  // next global port per group
  for (std::uint32_t g1 = 0; g1 < spec.g; ++g1) {
    for (std::uint32_t g2 = g1 + 1; g2 < spec.g; ++g2) {
      for (std::uint32_t l = 0; l < q; ++l) {
        const std::uint32_t i = (port[g1]++ / spec.h) % spec.a;
        const std::uint32_t j = (port[g2]++ / spec.h) % spec.a;
        net.add_link(sw_id(g1, i), sw_id(g2, j));
      }
    }
  }

  for (std::uint32_t sw = 0; sw < nsw; ++sw) {
    for (std::uint32_t t = 0; t < spec.p; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, sw);
    }
  }
  return net;
}

Network make_cascade(const CascadeSpec& spec) {
  Network net;
  const std::uint32_t per_group =
      spec.chassis_per_group * spec.routers_per_chassis;
  const std::uint32_t nsw = spec.groups * per_group;
  for (std::uint32_t i = 0; i < nsw; ++i) net.add_switch();
  auto sw_id = [&](std::uint32_t group, std::uint32_t chassis,
                   std::uint32_t pos) {
    return group * per_group + chassis * spec.routers_per_chassis + pos;
  };

  for (std::uint32_t g = 0; g < spec.groups; ++g) {
    // Green: all-to-all within a chassis.
    for (std::uint32_t c = 0; c < spec.chassis_per_group; ++c) {
      for (std::uint32_t i = 0; i < spec.routers_per_chassis; ++i) {
        for (std::uint32_t j = i + 1; j < spec.routers_per_chassis; ++j) {
          net.add_link(sw_id(g, c, i), sw_id(g, c, j));
        }
      }
    }
    // Black: same position, different chassis, with redundancy.
    for (std::uint32_t p = 0; p < spec.routers_per_chassis; ++p) {
      for (std::uint32_t c1 = 0; c1 < spec.chassis_per_group; ++c1) {
        for (std::uint32_t c2 = c1 + 1; c2 < spec.chassis_per_group; ++c2) {
          for (std::uint32_t r = 0; r < spec.black_redundancy; ++r) {
            net.add_link(sw_id(g, c1, p), sw_id(g, c2, p));
          }
        }
      }
    }
  }

  // Blue/global: `global_per_router` links from router i of group g to
  // router i of group g+1 (mod groups); for 2 groups this is 2 per pair.
  const std::uint32_t ring_links = spec.groups == 2 ? 1 : spec.groups;
  for (std::uint32_t g = 0; g < ring_links; ++g) {
    const std::uint32_t g2 = (g + 1) % spec.groups;
    for (std::uint32_t i = 0; i < per_group; ++i) {
      for (std::uint32_t r = 0; r < spec.global_per_router; ++r) {
        net.add_link(g * per_group + i, g2 * per_group + i);
      }
    }
  }

  for (std::uint32_t sw = 0; sw < nsw; ++sw) {
    for (std::uint32_t t = 0; t < spec.terminals_per_switch; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, sw);
    }
  }
  return net;
}

Network make_hyperx(const HyperXSpec& spec) {
  NUE_CHECK(!spec.shape.empty());
  NUE_CHECK(spec.redundancy >= 1);
  std::uint32_t nsw = 1;
  for (auto d : spec.shape) {
    NUE_CHECK(d >= 2);
    nsw *= d;
  }
  Network net;
  for (std::uint32_t i = 0; i < nsw; ++i) net.add_switch();
  // Mixed-radix coordinates, row-major like TorusSpec.
  auto coord_of = [&](NodeId sw) {
    std::vector<std::uint32_t> c(spec.shape.size());
    for (std::size_t i = spec.shape.size(); i-- > 0;) {
      c[i] = sw % spec.shape[i];
      sw /= spec.shape[i];
    }
    return c;
  };
  auto id_of = [&](const std::vector<std::uint32_t>& c) {
    NodeId id = 0;
    for (std::size_t i = 0; i < spec.shape.size(); ++i) {
      id = id * spec.shape[i] + c[i];
    }
    return id;
  };
  for (NodeId sw = 0; sw < nsw; ++sw) {
    const auto c = coord_of(sw);
    for (std::size_t dim = 0; dim < spec.shape.size(); ++dim) {
      // All-to-all within the line: add each pair once (toward larger
      // coordinates only).
      for (std::uint32_t other = c[dim] + 1; other < spec.shape[dim];
           ++other) {
        auto nb = c;
        nb[dim] = other;
        for (std::uint32_t r = 0; r < spec.redundancy; ++r) {
          net.add_link(sw, id_of(nb));
        }
      }
    }
  }
  for (NodeId sw = 0; sw < nsw; ++sw) {
    for (std::uint32_t t = 0; t < spec.terminals_per_switch; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, sw);
    }
  }
  return net;
}

Network make_hypercube(std::uint32_t dims,
                       std::uint32_t terminals_per_switch) {
  NUE_CHECK(dims >= 1);
  HyperXSpec spec;
  spec.shape.assign(dims, 2);
  spec.terminals_per_switch = terminals_per_switch;
  return make_hyperx(spec);
}

Network make_random(const RandomSpec& spec, Rng& rng) {
  NUE_CHECK(spec.switches >= 2);
  NUE_CHECK(spec.links + 1 >= spec.switches);
  Network net;
  for (std::uint32_t i = 0; i < spec.switches; ++i) net.add_switch();

  // Random spanning tree (random parent among already-wired switches of a
  // random permutation) guarantees connectivity.
  std::vector<NodeId> order(spec.switches);
  for (std::uint32_t i = 0; i < spec.switches; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::uint32_t i = 1; i < spec.switches; ++i) {
    const NodeId parent = order[rng.next_below(i)];
    net.add_link(order[i], parent);
  }
  // Remaining links uniform over distinct switch pairs (multigraph).
  for (std::uint32_t l = spec.switches - 1; l < spec.links; ++l) {
    NodeId u = 0, v = 0;
    do {
      u = static_cast<NodeId>(rng.next_below(spec.switches));
      v = static_cast<NodeId>(rng.next_below(spec.switches));
    } while (u == v);
    net.add_link(u, v);
  }

  for (std::uint32_t sw = 0; sw < spec.switches; ++sw) {
    for (std::uint32_t t = 0; t < spec.terminals_per_switch; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, sw);
    }
  }
  return net;
}

}  // namespace nue
