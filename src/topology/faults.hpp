// Fault injection for the fail-in-place experiments (Figs. 1 and 11):
// remove random switch-to-switch links or whole switches while keeping the
// fabric connected and every terminal attached.
#pragma once

#include <cstdint>

#include "graph/network.hpp"
#include "util/rng.hpp"

namespace nue {

/// Remove `count` switch-to-switch links chosen uniformly at random.
/// Links whose removal would disconnect the alive fabric are skipped and
/// redrawn (up to a bounded number of attempts). Returns the number of
/// links actually removed.
std::size_t inject_link_failures(Network& net, std::size_t count, Rng& rng);

/// Remove `count` random switches (with all their links, including the
/// terminals' access links — the terminals become orphans and are removed
/// too, matching a dead switch taking its nodes offline). Switches whose
/// removal would disconnect the remaining fabric are redrawn. Returns the
/// number of switches actually removed.
std::size_t inject_switch_failures(Network& net, std::size_t count, Rng& rng);

}  // namespace nue
