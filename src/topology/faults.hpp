// Fault injection for the fail-in-place experiments (Figs. 1 and 11):
// remove random switch-to-switch links or whole switches while keeping the
// fabric connected and every terminal attached — plus the runtime side of
// the same story: repair APIs (restore_link / restore_switch), a typed
// fault/repair event stream, and a replayable text trace format consumed
// by the live resilience manager (src/resilience, docs/RESILIENCE.md).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "util/rng.hpp"

namespace nue {

/// Remove `count` switch-to-switch links chosen uniformly at random.
/// Links whose removal would disconnect the alive fabric are skipped and
/// redrawn (up to a bounded number of attempts). Returns the number of
/// links actually removed.
std::size_t inject_link_failures(Network& net, std::size_t count, Rng& rng);

/// Remove `count` random switches (with all their links, including the
/// terminals' access links — the terminals become orphans and are removed
/// too, matching a dead switch taking its nodes offline). Switches whose
/// removal would disconnect the remaining fabric are redrawn. Returns the
/// number of switches actually removed.
std::size_t inject_switch_failures(Network& net, std::size_t count, Rng& rng);

// --- runtime repair ---------------------------------------------------------

/// Re-add one failed switch-to-switch link. Throws std::logic_error if the
/// pair is alive, is a terminal access link, or has a dead endpoint (a
/// link only comes back once both of its switches are up).
void restore_link(Network& net, ChannelId c);

/// Revive a dead switch: the node itself, every failed link from it to an
/// alive switch, and its orphaned terminals with their access links.
/// Links toward switches that are still dead stay down (they return when
/// that switch is restored). Note the deliberate simplification: a link
/// that was failed *individually* before the switch died is revived with
/// the switch — the trace event stream, not per-element bookkeeping, is
/// the source of truth for replay. Returns the number of duplex links
/// restored. Throws std::logic_error if `sw` is alive or not a switch.
std::size_t restore_switch(Network& net, NodeId sw);

// --- fault/repair event streams ---------------------------------------------

enum class FaultEventKind : std::uint8_t {
  kLinkDown,
  kSwitchDown,
  kLinkRestore,
  kSwitchRestore,
};

const char* fault_event_name(FaultEventKind k);

struct FaultEvent {
  FaultEventKind kind = FaultEventKind::kLinkDown;
  /// Even ChannelId of the duplex pair for link events, NodeId for switch
  /// events — always in the pristine fabric's id space (ids are stable
  /// across removal and restoration).
  std::uint32_t id = 0;

  std::string label() const;
};

/// Apply one event to the live fabric. Down events mirror the injection
/// discipline (switch-to-switch links only, dead switches take their
/// terminals along); restore events mirror restore_link/restore_switch.
/// Throws std::logic_error on an illegal event: dead/alive mismatch, a
/// terminal target, or a removal that would disconnect the alive fabric
/// or leave fewer than two terminals.
void apply_fault_event(Network& net, const FaultEvent& e);

/// A replayable runtime fault scenario: the generator spec that produced
/// the pristine fabric, the seed the events were drawn from (provenance),
/// and the ordered event sequence. Like the fuzzer's reproducers, the
/// trace alone replays the scenario byte-for-byte on any machine:
///
///   nue-fault-trace v1
///   generate <generator spec>
///   seed <u64>
///   link-down <even channel id>       (zero or more, in order)
///   switch-down <node id>
///   link-restore <even channel id>
///   switch-restore <node id>
struct FaultTrace {
  std::string generate;
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;
};

void write_fault_trace(std::ostream& os, const FaultTrace& t);
FaultTrace read_fault_trace(std::istream& is);
FaultTrace load_fault_trace_file(const std::string& path);
void save_fault_trace_file(const std::string& path, const FaultTrace& t);

/// Draw a random, always-legal event sequence of (up to) `count` events
/// against a scratch copy of `net`: each step restores a failed element
/// with probability `restore_fraction` (when one exists) and fails an
/// alive one otherwise, redrawing unsafe candidates with the same bounded
/// discipline as inject_*. Returns fewer events only when the fabric runs
/// out of legal moves. `net` itself is not modified.
FaultTrace draw_fault_trace(const Network& net, const std::string& generate,
                            std::uint64_t seed, std::size_t count,
                            double restore_fraction = 0.3);

}  // namespace nue
