#include "topology/trees.hpp"

#include "util/error.hpp"

namespace nue {

Network make_kary_ntree(FatTreeSpec& spec) {
  NUE_CHECK(spec.k >= 2 && spec.n >= 2);
  std::uint32_t per_level = 1;
  for (std::uint32_t i = 0; i + 1 < spec.n; ++i) per_level *= spec.k;
  spec.switches_per_level = per_level;

  Network net;
  for (std::uint32_t i = 0; i < spec.n * per_level; ++i) net.add_switch();

  // Stage l switch with address digits (a_0 ... a_{n-2}) links down to the
  // stage l+1 switches whose addresses agree on every digit except digit l.
  // Digit j of address w (base k): (w / k^j) % k with digit 0 most
  // significant is irrelevant — any fixed convention works; we use
  // digit j = (w / k^(n-2-j)) % k so terminals map naturally.
  auto digit_weight = [&](std::uint32_t j) {
    std::uint32_t p = 1;
    for (std::uint32_t i = 0; i < spec.n - 2 - j; ++i) p *= spec.k;
    return p;
  };

  for (std::uint32_t l = 0; l + 1 < spec.n; ++l) {
    const std::uint32_t wdig = digit_weight(l);
    for (std::uint32_t w = 0; w < per_level; ++w) {
      const std::uint32_t cur_digit = (w / wdig) % spec.k;
      for (std::uint32_t v = 0; v < spec.k; ++v) {
        const std::uint32_t w2 = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(w) +
            (static_cast<std::int64_t>(v) - cur_digit) * wdig);
        net.add_link(spec.switch_id(l, w), spec.switch_id(l + 1, w2));
      }
    }
  }

  const std::uint32_t leaf_level = spec.n - 1;
  for (std::uint32_t w = 0; w < per_level; ++w) {
    for (std::uint32_t t = 0; t < spec.terminals_per_leaf; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, spec.switch_id(leaf_level, w));
    }
  }
  return net;
}

Network make_folded_clos(ClosSpec& spec) {
  NUE_CHECK(spec.stage_sizes.size() >= 2);
  NUE_CHECK(spec.uplinks.size() == spec.stage_sizes.size() - 1);
  Network net;
  spec.stage_first_id.clear();
  for (std::uint32_t sz : spec.stage_sizes) {
    spec.stage_first_id.push_back(static_cast<std::uint32_t>(net.num_nodes()));
    for (std::uint32_t i = 0; i < sz; ++i) net.add_switch();
  }
  // Round-robin wiring: the j-th uplink of stage-s switch i goes to
  // upper-stage switch (i * uplinks + j) % upper_size. This spreads links
  // evenly and guarantees connectivity when uplinks >= 1.
  for (std::size_t s = 0; s + 1 < spec.stage_sizes.size(); ++s) {
    const std::uint32_t upper = spec.stage_sizes[s + 1];
    for (std::uint32_t i = 0; i < spec.stage_sizes[s]; ++i) {
      for (std::uint32_t j = 0; j < spec.uplinks[s]; ++j) {
        const std::uint32_t u =
            (i * spec.uplinks[s] + j) % upper;
        net.add_link(spec.stage_first_id[s] + i,
                     spec.stage_first_id[s + 1] + u);
      }
    }
  }
  for (std::uint32_t t = 0; t < spec.num_terminals; ++t) {
    const NodeId term = net.add_terminal();
    net.add_link(term, spec.stage_first_id[0] + t % spec.stage_sizes[0]);
  }
  return net;
}

Network make_tsubame25_like(ClosSpec& spec) {
  // 144 + 63 + 36 = 243 switches; 144*12 + 63*26 = 1728 + 1638 = 3366
  // switch-to-switch links (paper: 3,384); 1,407 terminals.
  spec.stage_sizes = {144, 63, 36};
  spec.uplinks = {12, 26};
  spec.num_terminals = 1407;
  return make_folded_clos(spec);
}

}  // namespace nue
