// Shared --trace-out / --metrics-out wiring for the CLI tools and bench
// harnesses: registering the flags enables telemetry iff either output is
// requested, and finish() writes the Chrome trace and/or run report.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "util/flags.hpp"

namespace nue::telemetry {

class Cli {
 public:
  /// Register both flags; call before Flags::finish().
  void register_flags(Flags& flags) {
    trace_out_ = flags.get_string(
        "trace-out", "",
        "write a Chrome trace-event JSON (open in Perfetto) to this file");
    metrics_out_ = flags.get_string(
        "metrics-out", "",
        "write the telemetry run-report JSON (counters + histograms + span "
        "summary) to this file");
    if (wanted()) set_enabled(true);
  }

  bool wanted() const {
    return !trace_out_.empty() || !metrics_out_.empty();
  }

  /// Write the requested outputs. `config` lands in the run report's
  /// config section; `extra` sections (raw JSON) are appended to it.
  void finish(const std::string& tool,
              const std::vector<std::pair<std::string, std::string>>& config,
              const std::vector<ExtraSection>& extra = {}) const {
    if (!trace_out_.empty()) {
      std::ofstream os(trace_out_);
      if (!os) {
        std::cerr << "cannot write --trace-out " << trace_out_ << "\n";
      } else {
        write_chrome_trace(os, tool);
      }
    }
    if (!metrics_out_.empty()) {
      std::ofstream os(metrics_out_);
      if (!os) {
        std::cerr << "cannot write --metrics-out " << metrics_out_ << "\n";
      } else {
        write_run_report(os, tool, config, extra);
      }
    }
  }

 private:
  std::string trace_out_;
  std::string metrics_out_;
};

}  // namespace nue::telemetry
