// Telemetry exporters (docs/OBSERVABILITY.md):
//
//   * write_chrome_trace — Chrome trace-event JSON ("X" complete events),
//     loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. One
//     track per telemetry thread id; timestamps in microseconds relative
//     to the first telemetry event of the process.
//   * write_run_report — machine-readable run report bundling the counter
//     registry, histogram snapshots, a spans-by-name summary (with the
//     ring-buffer drop count) and the caller's run configuration, plus
//     optional raw-JSON extra sections (e.g. the ReconfigLog).
//
// Both formats are validated against bundled JSON schemas
// (scripts/schemas/*.schema.json) by the tier-1 telemetry stage; bump
// kRunReportSchemaVersion when changing the report shape.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/rss.hpp"

namespace nue::telemetry {

inline constexpr int kRunReportSchemaVersion = 1;

namespace detail {

inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (char ch : s) {
    switch (ch) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          os << buf;
        } else {
          os << ch;
        }
    }
  }
  os << '"';
}

}  // namespace detail

/// Chrome trace-event JSON of every span collected so far. `process_name`
/// labels the (single) pid track.
inline void write_chrome_trace(std::ostream& os,
                               const std::string& process_name) {
  const auto spans = Tracer::instance().snapshot();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  os << "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"name\": ";
  detail::write_json_string(os, process_name);
  os << "}}";
  for (const Span& s : spans) {
    os << ",\n  {\"name\": ";
    detail::write_json_string(os, s.name);
    // Microsecond timestamps with sub-us fraction preserved; Perfetto
    // accepts fractional ts/dur.
    os << ", \"cat\": \"nue\", \"ph\": \"X\", \"ts\": "
       << static_cast<double>(s.start_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(s.dur_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << s.tid << ", \"args\": {\"depth\": "
       << s.depth << "}}";
  }
  os << "\n]}\n";
}

/// One "key": <raw json> section appended verbatim to the run report.
using ExtraSection = std::pair<std::string, std::string>;

namespace detail {

/// Prometheus metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted
/// registry names map dot (and any other separator) to '_', e.g.
/// `service.request_us` -> `service_request_us`.
inline std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (name.empty() || (name.front() >= '0' && name.front() <= '9')) {
    out += '_';
  }
  for (char ch : name) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    out += ok ? ch : '_';
  }
  return out;
}

}  // namespace detail

/// Prometheus text exposition (version 0.0.4) of the registry: counters
/// as `counter`, histograms in the standard cumulative form
/// (`_bucket{le="..."}` over the non-empty bit-width buckets plus
/// `+Inf`, `_sum`, `_count`). Served live by the daemon's
/// `metrics?format=prom` op and written at shutdown via `--prom-out`.
inline void write_prometheus_text(std::ostream& os) {
  for (const auto& [name, value] : Registry::instance().counter_snapshot()) {
    const std::string p = detail::prom_name(name);
    os << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& h : Registry::instance().histogram_snapshot()) {
    const std::string p = detail::prom_name(h.name);
    os << "# TYPE " << p << " histogram\n";
    std::uint64_t cumulative = 0;
    for (const auto& [le, n] : h.buckets) {
      cumulative += n;
      os << p << "_bucket{le=\"" << le << "\"} " << cumulative << "\n";
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    os << p << "_sum " << h.sum << "\n";
    os << p << "_count " << h.count << "\n";
  }
}

/// Machine-readable run report: config + counters + histograms + span
/// summary (+ extra raw-JSON sections). Counters and histograms are
/// whatever the registry currently holds; spans summarize everything
/// collected so far.
inline void write_run_report(
    std::ostream& os, const std::string& tool,
    const std::vector<std::pair<std::string, std::string>>& config,
    const std::vector<ExtraSection>& extra = {}) {
  auto& tracer = Tracer::instance();
  // Lifetime aggregate, not aggregate_since(0): in a resident daemon the
  // bounded central log evicts old spans, and the report must still show
  // process totals (the live `metrics` op and the shutdown flush agree).
  const auto by_name = tracer.aggregate_all();
  const std::uint64_t dropped = tracer.dropped();

  os << "{\n  \"schema_version\": " << kRunReportSchemaVersion
     << ",\n  \"tool\": ";
  detail::write_json_string(os, tool);
  os << ",\n  \"config\": {";
  for (std::size_t i = 0; i < config.size(); ++i) {
    if (i) os << ", ";
    detail::write_json_string(os, config[i].first);
    os << ": ";
    detail::write_json_string(os, config[i].second);
  }
  os << "},\n  \"counters\": {";
  {
    const auto counters = Registry::instance().counter_snapshot();
    for (std::size_t i = 0; i < counters.size(); ++i) {
      if (i) os << ", ";
      os << "\n    ";
      detail::write_json_string(os, counters[i].first);
      os << ": " << counters[i].second;
    }
    if (!counters.empty()) os << "\n  ";
  }
  os << "},\n  \"histograms\": {";
  {
    const auto hists = Registry::instance().histogram_snapshot();
    for (std::size_t i = 0; i < hists.size(); ++i) {
      if (i) os << ", ";
      os << "\n    ";
      detail::write_json_string(os, hists[i].name);
      os << ": {\"count\": " << hists[i].count << ", \"sum\": "
         << hists[i].sum << ", \"buckets\": [";
      for (std::size_t j = 0; j < hists[i].buckets.size(); ++j) {
        if (j) os << ", ";
        os << "{\"le\": " << hists[i].buckets[j].first
           << ", \"count\": " << hists[i].buckets[j].second << "}";
      }
      os << "]}";
    }
    if (!hists.empty()) os << "\n  ";
  }
  os << "},\n  \"spans\": {\n    \"dropped\": " << dropped
     << ",\n    \"by_name\": {";
  {
    bool first = true;
    for (const auto& [name, agg] : by_name) {
      if (!first) os << ", ";
      first = false;
      os << "\n      ";
      detail::write_json_string(os, name);
      os << ": {\"count\": " << agg.count
         << ", \"total_ms\": " << static_cast<double>(agg.total_ns) / 1e6
         << "}";
    }
    if (!first) os << "\n    ";
  }
  os << "}\n  }";
  // Omitted (not 0) when the kernel does not expose VmHWM — the schema
  // keeps the field optional so consumers read absence as "unavailable".
  if (const auto rss = peak_rss_mb()) {
    os << ",\n  \"peak_rss_mb\": " << *rss;
  }
  for (const auto& [key, raw_json] : extra) {
    os << ",\n  ";
    detail::write_json_string(os, key);
    os << ": " << raw_json;
  }
  os << "\n}\n";
}

}  // namespace nue::telemetry
