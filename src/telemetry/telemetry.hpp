// Routing telemetry core (docs/OBSERVABILITY.md): a low-overhead span
// tracer plus a typed counter/histogram registry shared by every engine,
// the thread pool, the resilience manager and the flit simulator.
//
// Design constraints:
//   * Zero effect on results: telemetry never influences control flow, so
//     routing tables are bit-identical with tracing on or off (asserted by
//     test_telemetry.cpp).
//   * Off by default, near-zero cost when off: every record site is gated
//     on one relaxed atomic load; `nue_route --trace-out/--metrics-out`
//     (and friends) flip it on. Defining NUE_TELEMETRY_DISABLED compiles
//     the span macro away entirely for paranoid baseline measurements.
//   * Thread-safe by construction: spans land in per-thread ring buffers
//     (one short uncontended lock per push, so the TSan tier-1 stage can
//     prove the merge race-free); counters are relaxed atomics. Buffers
//     outlive their threads — the collector keeps shared ownership — so
//     pool workers never invalidate a trace.
//   * Lossless accounting: a full ring buffer overwrites its oldest span
//     and counts every overwrite; exporters surface the count instead of
//     silently truncating (satellite contract of PR 4). Keeping the
//     *newest* spans is what makes the flight recorder's "recent spans"
//     bundle meaningful (docs/OBSERVABILITY.md, live plane).
//   * Live-readable: every snapshot (counters, histograms, span
//     aggregates) is safe to take while producers keep recording — the
//     daemon's `metrics` op samples mid-storm. A histogram snapshot
//     derives its count from the bucket array it just read, so a
//     concurrent record can only make a snapshot *slightly stale*, never
//     internally torn (count != sum of buckets).
//
// Everything is header-only and std-only so the header is usable from
// util-layer headers (thread_pool.hpp) without new link dependencies.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nue::telemetry {

// --- global switch ----------------------------------------------------------

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

/// RAII enable/restore, for scoped collection (bench phase attribution).
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : prev_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

// --- clock ------------------------------------------------------------------

/// Steady-clock nanoseconds since the first telemetry timestamp of the
/// process (small, monotone numbers; Chrome trace wants microseconds and
/// Perfetto normalizes to the earliest event anyway).
inline std::int64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

// --- counters & histograms --------------------------------------------------

/// Monotone event counter. Increments are relaxed atomics gated on
/// enabled(); reads are exact once the producing code has quiesced.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Unconditional add, for folding engine stats structs that were
  /// computed anyway (still invisible unless someone exports them).
  void add_always(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket power-of-two histogram for non-negative integer samples:
/// bucket i counts values whose bit width is i, i.e. [2^(i-1), 2^i).
/// Cheap enough for per-flit recording, exact count and sum on the side.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::uint64_t v) {
    if (!enabled()) return;
    record_always(v);
  }
  /// Unconditional record, for sites that already checked enabled() or
  /// fold data that was computed anyway.
  void record_always(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  /// Inclusive upper bound of bucket i: bucket 0 holds {0}, bucket i
  /// holds [2^(i-1), 2^i). Exported as the Prometheus-style `le` edge so
  /// consumers never re-derive the bit-width bucketing.
  static std::uint64_t upper_edge(std::size_t i) {
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }
  /// Inclusive lower bound of bucket i (quantile interpolation).
  static std::uint64_t lower_edge(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide metric registry. Lookup is a mutex-guarded map access —
/// callsites cache the reference in a function-local static, so the hot
/// path is one relaxed atomic. Names follow the dotted schema recorded in
/// docs/OBSERVABILITY.md (`nue.backtracks`, `sssp.heap_decrease_keys`, ...);
/// extend the schema there rather than inventing parallel spellings.
class Registry {
 public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = counters_[std::string(name)];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Histogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = histograms_[std::string(name)];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  /// Stable snapshot for the exporters (name-sorted by map order).
  std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
    return out;
  }

  struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Non-empty buckets as (inclusive upper edge, count) pairs —
    /// Histogram::upper_edge of the bucket index.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
  };

  /// Safe to take while producers record concurrently (the daemon's live
  /// `metrics` op): `count` is derived from the bucket loads themselves,
  /// so a snapshot is always internally consistent — a racing record()
  /// lands wholly in the next snapshot. `sum` is a separate relaxed load
  /// and may lag/lead by in-flight samples.
  std::vector<HistogramSnapshot> histogram_snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<HistogramSnapshot> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot s;
      s.name = name;
      s.sum = h->sum();
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t n = h->bucket(i);
        if (n == 0) continue;
        s.count += n;
        s.buckets.emplace_back(Histogram::upper_edge(i), n);
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [_, c] : counters_) c->reset();
    for (auto& [_, h] : histograms_) h->reset();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

/// Quantile estimate from (inclusive upper edge, count) bucket pairs —
/// the shape HistogramSnapshot::buckets and the run report's `le` arrays
/// carry. Linear interpolation inside the winning bucket; exact for
/// bucket 0 (the {0} bucket). Shared by `nue_routectl watch` and the
/// bench harnesses so nobody re-derives the bit-width bucketing.
inline double quantile_from_buckets(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& buckets,
    double q) {
  std::uint64_t total = 0;
  for (const auto& [le, n] : buckets) total += n;
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t before = 0;
  for (const auto& [le, n] : buckets) {
    if (n == 0) continue;
    const double last_in_bucket = static_cast<double>(before + n - 1);
    if (rank <= last_in_bucket) {
      if (le == 0) return 0.0;
      const double lo = static_cast<double>((le + 1) / 2);  // 2^(i-1)
      const double hi = static_cast<double>(le);
      const double frac =
          n == 1 ? 0.0
                 : (rank - static_cast<double>(before)) /
                       static_cast<double>(n - 1);
      return lo + frac * (hi - lo);
    }
    before += n;
  }
  return static_cast<double>(buckets.back().first);
}

// --- span tracer ------------------------------------------------------------

/// One closed span. `name` must be a string literal (or otherwise outlive
/// the tracer) — every TELEM_SPAN site satisfies this by construction.
struct Span {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;    // small sequential telemetry thread id
  std::uint32_t depth = 0;  // nesting depth within the thread at open time
};

/// Per-thread span sink: a bounded ring owned by one producer thread,
/// drained by the collector under the same short lock. Overflow
/// overwrites the oldest span and counts it (never silent) — the ring
/// always holds the newest spans, which is what the flight recorder
/// snapshots on a gate failure.
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity) {}

  std::uint32_t tid() const { return tid_; }

  /// Producer-side only: current nesting depth bookkeeping. Plain fields —
  /// the collector never reads them.
  std::uint32_t enter() { return depth_++; }
  void exit() { --depth_; }

  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
            std::uint32_t depth) {
    std::lock_guard<std::mutex> lk(mu_);
    if (spans_.size() < capacity_) {
      spans_.push_back(Span{name, start_ns, dur_ns, tid_, depth});
      return;
    }
    if (capacity_ == 0) {
      ++dropped_;
      return;
    }
    // Ring full: overwrite the oldest retained span (still counted as a
    // drop — the exporters' lossless-accounting contract is about never
    // hiding that spans were lost, not about which ones).
    spans_[start_] = Span{name, start_ns, dur_ns, tid_, depth};
    start_ = (start_ + 1) % spans_.size();
    ++dropped_;
  }

  /// Collector side: move the buffered spans out in record order, add
  /// drops to `dropped`.
  void drain_into(std::vector<Span>& out, std::uint64_t& dropped) {
    std::lock_guard<std::mutex> lk(mu_);
    out.insert(out.end(), spans_.begin() + static_cast<std::ptrdiff_t>(start_),
               spans_.end());
    out.insert(out.end(), spans_.begin(),
               spans_.begin() + static_cast<std::ptrdiff_t>(start_));
    spans_.clear();
    start_ = 0;
    dropped += dropped_;
    dropped_ = 0;
  }

  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lk(mu_);
    if (spans_.size() > capacity) {
      // Shrink by discarding oldest: rotate into record order first.
      std::rotate(spans_.begin(),
                  spans_.begin() + static_cast<std::ptrdiff_t>(start_),
                  spans_.end());
      start_ = 0;
      dropped_ += spans_.size() - capacity;
      spans_.erase(spans_.begin(),
                   spans_.begin() +
                       static_cast<std::ptrdiff_t>(spans_.size() - capacity));
    }
    capacity_ = capacity;
  }

 private:
  const std::uint32_t tid_;
  std::mutex mu_;
  std::size_t capacity_;
  std::vector<Span> spans_;
  std::size_t start_ = 0;  // ring head once spans_.size() == capacity_
  std::uint64_t dropped_ = 0;
  std::uint32_t depth_ = 0;  // producer-thread-private
};

/// Aggregate of closed spans by name (phase attribution for the benches).
struct SpanAggregate {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
};

/// Process-wide tracer: registry of thread buffers plus the central
/// collected-span log. collect() merges (losslessly, modulo counted
/// drops) and is safe to call while other threads keep recording — a
/// span recorded concurrently just lands in the next collect.
///
/// For resident processes (nue_managerd) the central log itself must be
/// bounded: set_collected_capacity(n) turns it into a ring whose evicted
/// spans fold into a persistent per-name aggregate before being dropped,
/// so aggregate_all() — what the run report and the live `metrics` op
/// export — stays exact for the life of the process while the retained
/// spans (recent_spans()) stay fresh for the flight recorder. Marks
/// returned by collect() are absolute collected-span indices, so
/// aggregate_since() deltas keep working across evictions as long as the
/// marked spans haven't been evicted yet (bench marks are consumed
/// immediately; the daemon doesn't use marks).
class Tracer {
 public:
  static constexpr std::size_t kDefaultBufferCapacity = 1 << 16;

  static Tracer& instance() {
    static Tracer tracer;
    return tracer;
  }

  /// The calling thread's buffer (created and registered on first use).
  ThreadBuffer& local() {
    thread_local ThreadBuffer* buf = nullptr;
    if (buf == nullptr) {
      std::lock_guard<std::mutex> lk(mu_);
      auto owned = std::make_shared<ThreadBuffer>(
          static_cast<std::uint32_t>(buffers_.size()), buffer_capacity_);
      buffers_.push_back(owned);
      buf = owned.get();
    }
    return *buf;
  }

  /// Drain every thread buffer into the central log; returns an absolute
  /// mark (total spans ever collected) usable with aggregate_since for
  /// delta aggregation.
  std::size_t collect() {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    return evicted_spans_ + collected_.size();
  }

  /// Sorted copy of everything collected so far (collect() first for
  /// freshness). Sort key (tid, start, -dur) gives parents before their
  /// children, which both exporters and the nesting test rely on.
  std::vector<Span> snapshot() {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    std::vector<Span> out = collected_;
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
      if (a.tid != b.tid) return a.tid < b.tid;
      if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
      return a.dur_ns > b.dur_ns;
    });
    return out;
  }

  /// Per-name aggregate of the spans collected after `mark` (an absolute
  /// mark from a prior collect()), for per-phase bench attribution. Spans
  /// already evicted from the bounded log are not included — callers that
  /// want process-lifetime totals use aggregate_all().
  std::map<std::string, SpanAggregate> aggregate_since(std::size_t mark) {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    std::map<std::string, SpanAggregate> out;
    const std::size_t start =
        mark <= evicted_spans_ ? 0 : mark - evicted_spans_;
    for (std::size_t i = std::min(start, collected_.size());
         i < collected_.size(); ++i) {
      auto& agg = out[collected_[i].name];
      ++agg.count;
      agg.total_ns += collected_[i].dur_ns;
    }
    return out;
  }

  /// Process-lifetime per-name aggregate: every span ever collected,
  /// including those evicted from the bounded central log. This is what
  /// the run report and the live `metrics` op export — scraping it
  /// mid-run and flushing it at shutdown agree on totals.
  std::map<std::string, SpanAggregate> aggregate_all() {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    std::map<std::string, SpanAggregate> out = evicted_by_name_;
    for (const Span& s : collected_) {
      auto& agg = out[s.name];
      ++agg.count;
      agg.total_ns += s.dur_ns;
    }
    return out;
  }

  /// The newest `n` retained spans, sorted by start time — the flight
  /// recorder's "what was running around the anomaly" bundle section.
  std::vector<Span> recent_spans(std::size_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    // The collected log is drain-ordered, not time-ordered (one segment
    // per thread per collect); take a generous tail, time-sort, trim.
    const std::size_t take = std::min(collected_.size(), n * 2);
    std::vector<Span> out(collected_.end() - static_cast<std::ptrdiff_t>(take),
                          collected_.end());
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
      if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
      return a.dur_ns > b.dur_ns;
    });
    if (out.size() > n) {
      out.erase(out.begin(), out.end() - static_cast<std::ptrdiff_t>(n));
    }
    return out;
  }

  std::uint64_t dropped() {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    return dropped_;
  }

  /// Shrink/grow every ring (tests exercise overflow with tiny rings).
  void set_buffer_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lk(mu_);
    buffer_capacity_ = capacity;
    for (auto& b : buffers_) b->set_capacity(capacity);
  }

  /// Bound the central collected log (0 = unbounded, the one-shot-tool
  /// default). Evicted spans fold into the persistent per-name aggregate
  /// first, so aggregate_all() stays exact. Resident daemons set this so
  /// an unbounded event stream can't grow the trace without bound.
  void set_collected_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lk(mu_);
    collected_capacity_ = capacity;
    evict_locked();
  }

  /// Clear the central log, evicted aggregates, and drop counts (buffers
  /// stay registered).
  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    collect_locked();
    collected_.clear();
    evicted_by_name_.clear();
    evicted_spans_ = 0;
    dropped_ = 0;
  }

 private:
  void collect_locked() {
    for (auto& b : buffers_) b->drain_into(collected_, dropped_);
    evict_locked();
  }

  void evict_locked() {
    if (collected_capacity_ == 0 ||
        collected_.size() <= collected_capacity_) {
      return;
    }
    const std::size_t excess = collected_.size() - collected_capacity_;
    for (std::size_t i = 0; i < excess; ++i) {
      auto& agg = evicted_by_name_[collected_[i].name];
      ++agg.count;
      agg.total_ns += collected_[i].dur_ns;
    }
    collected_.erase(collected_.begin(),
                     collected_.begin() + static_cast<std::ptrdiff_t>(excess));
    evicted_spans_ += excess;
  }

  std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<Span> collected_;
  std::map<std::string, SpanAggregate> evicted_by_name_;
  std::uint64_t evicted_spans_ = 0;  // spans folded out of the bounded log
  std::uint64_t dropped_ = 0;
  std::size_t buffer_capacity_ = kDefaultBufferCapacity;
  std::size_t collected_capacity_ = 0;  // 0 = unbounded
};

/// Reset every telemetry sink (tests and per-scenario fuzz isolation).
inline void reset_all() {
  Tracer::instance().reset();
  Registry::instance().reset();
}

/// RAII span: opens on construction when telemetry is enabled, records
/// into the thread-local ring on destruction. ~25 ns when enabled, one
/// relaxed load + branch when not.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (!enabled()) return;
    buf_ = &Tracer::instance().local();
    name_ = name;
    depth_ = buf_->enter();
    start_ns_ = now_ns();
  }
  ~SpanScope() {
    if (buf_ == nullptr) return;
    buf_->exit();
    buf_->push(name_, start_ns_, now_ns() - start_ns_, depth_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace nue::telemetry

#define NUE_TELEM_CONCAT_INNER(a, b) a##b
#define NUE_TELEM_CONCAT(a, b) NUE_TELEM_CONCAT_INNER(a, b)

/// RAII span over the enclosing scope; `name` must be a string literal.
#ifdef NUE_TELEMETRY_DISABLED
#define TELEM_SPAN(name) \
  do {                   \
  } while (0)
#else
#define TELEM_SPAN(name) \
  ::nue::telemetry::SpanScope NUE_TELEM_CONCAT(telem_span_, __LINE__)(name)
#endif
