// Routing telemetry core (docs/OBSERVABILITY.md): a low-overhead span
// tracer plus a typed counter/histogram registry shared by every engine,
// the thread pool, the resilience manager and the flit simulator.
//
// Design constraints:
//   * Zero effect on results: telemetry never influences control flow, so
//     routing tables are bit-identical with tracing on or off (asserted by
//     test_telemetry.cpp).
//   * Off by default, near-zero cost when off: every record site is gated
//     on one relaxed atomic load; `nue_route --trace-out/--metrics-out`
//     (and friends) flip it on. Defining NUE_TELEMETRY_DISABLED compiles
//     the span macro away entirely for paranoid baseline measurements.
//   * Thread-safe by construction: spans land in per-thread ring buffers
//     (one short uncontended lock per push, so the TSan tier-1 stage can
//     prove the merge race-free); counters are relaxed atomics. Buffers
//     outlive their threads — the collector keeps shared ownership — so
//     pool workers never invalidate a trace.
//   * Lossless accounting: a full ring buffer drops new spans but counts
//     every drop; exporters surface the count instead of silently
//     truncating (satellite contract of PR 4).
//
// Everything is header-only and std-only so the header is usable from
// util-layer headers (thread_pool.hpp) without new link dependencies.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace nue::telemetry {

// --- global switch ----------------------------------------------------------

inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

inline bool enabled() {
  return enabled_flag().load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

/// RAII enable/restore, for scoped collection (bench phase attribution).
class EnabledScope {
 public:
  explicit EnabledScope(bool on) : prev_(enabled()) { set_enabled(on); }
  ~EnabledScope() { set_enabled(prev_); }
  EnabledScope(const EnabledScope&) = delete;
  EnabledScope& operator=(const EnabledScope&) = delete;

 private:
  bool prev_;
};

// --- clock ------------------------------------------------------------------

/// Steady-clock nanoseconds since the first telemetry timestamp of the
/// process (small, monotone numbers; Chrome trace wants microseconds and
/// Perfetto normalizes to the earliest event anyway).
inline std::int64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

// --- counters & histograms --------------------------------------------------

/// Monotone event counter. Increments are relaxed atomics gated on
/// enabled(); reads are exact once the producing code has quiesced.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// Unconditional add, for folding engine stats structs that were
  /// computed anyway (still invisible unless someone exports them).
  void add_always(std::uint64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Fixed-bucket power-of-two histogram for non-negative integer samples:
/// bucket i counts values whose bit width is i, i.e. [2^(i-1), 2^i).
/// Cheap enough for per-flit recording, exact count and sum on the side.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(std::uint64_t v) {
    if (!enabled()) return;
    record_always(v);
  }
  /// Unconditional record, for sites that already checked enabled() or
  /// fold data that was computed anyway.
  void record_always(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  static std::size_t bucket_of(std::uint64_t v) {
    std::size_t b = 0;
    while (v != 0 && b + 1 < kBuckets) {
      v >>= 1;
      ++b;
    }
    return b;
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// Process-wide metric registry. Lookup is a mutex-guarded map access —
/// callsites cache the reference in a function-local static, so the hot
/// path is one relaxed atomic. Names follow the dotted schema recorded in
/// docs/OBSERVABILITY.md (`nue.backtracks`, `sssp.heap_decrease_keys`, ...);
/// extend the schema there rather than inventing parallel spellings.
class Registry {
 public:
  static Registry& instance() {
    static Registry reg;
    return reg;
  }

  Counter& counter(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = counters_[std::string(name)];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
  }

  Histogram& histogram(std::string_view name) {
    std::lock_guard<std::mutex> lk(mu_);
    auto& slot = histograms_[std::string(name)];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
  }

  /// Stable snapshot for the exporters (name-sorted by map order).
  std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<std::pair<std::string, std::uint64_t>> out;
    out.reserve(counters_.size());
    for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
    return out;
  }

  struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;  // (le, n)
  };

  std::vector<HistogramSnapshot> histogram_snapshot() const {
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<HistogramSnapshot> out;
    out.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot s;
      s.name = name;
      s.count = h->count();
      s.sum = h->sum();
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        const std::uint64_t n = h->bucket(i);
        if (n == 0) continue;
        s.buckets.emplace_back(i == 0 ? 1 : (std::uint64_t{1} << i), n);
      }
      out.push_back(std::move(s));
    }
    return out;
  }

  void reset() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [_, c] : counters_) c->reset();
    for (auto& [_, h] : histograms_) h->reset();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline Counter& counter(std::string_view name) {
  return Registry::instance().counter(name);
}

inline Histogram& histogram(std::string_view name) {
  return Registry::instance().histogram(name);
}

// --- span tracer ------------------------------------------------------------

/// One closed span. `name` must be a string literal (or otherwise outlive
/// the tracer) — every TELEM_SPAN site satisfies this by construction.
struct Span {
  const char* name = nullptr;
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;    // small sequential telemetry thread id
  std::uint32_t depth = 0;  // nesting depth within the thread at open time
};

/// Per-thread span sink: a bounded buffer owned by one producer thread,
/// drained by the collector under the same short lock. Overflow drops the
/// new span and counts it (never silent).
class ThreadBuffer {
 public:
  explicit ThreadBuffer(std::uint32_t tid, std::size_t capacity)
      : tid_(tid), capacity_(capacity) {}

  std::uint32_t tid() const { return tid_; }

  /// Producer-side only: current nesting depth bookkeeping. Plain fields —
  /// the collector never reads them.
  std::uint32_t enter() { return depth_++; }
  void exit() { --depth_; }

  void push(const char* name, std::int64_t start_ns, std::int64_t dur_ns,
            std::uint32_t depth) {
    std::lock_guard<std::mutex> lk(mu_);
    if (spans_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    spans_.push_back(Span{name, start_ns, dur_ns, tid_, depth});
  }

  /// Collector side: move the buffered spans out, add drops to `dropped`.
  void drain_into(std::vector<Span>& out, std::uint64_t& dropped) {
    std::lock_guard<std::mutex> lk(mu_);
    out.insert(out.end(), spans_.begin(), spans_.end());
    spans_.clear();
    dropped += dropped_;
    dropped_ = 0;
  }

  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lk(mu_);
    capacity_ = capacity;
  }

 private:
  const std::uint32_t tid_;
  std::mutex mu_;
  std::size_t capacity_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
  std::uint32_t depth_ = 0;  // producer-thread-private
};

/// Aggregate of closed spans by name (phase attribution for the benches).
struct SpanAggregate {
  std::uint64_t count = 0;
  std::int64_t total_ns = 0;
};

/// Process-wide tracer: registry of thread buffers plus the central
/// collected-span log. collect() merges (losslessly, modulo counted
/// drops) and is safe to call while other threads keep recording — a
/// span recorded concurrently just lands in the next collect.
class Tracer {
 public:
  static constexpr std::size_t kDefaultBufferCapacity = 1 << 16;

  static Tracer& instance() {
    static Tracer tracer;
    return tracer;
  }

  /// The calling thread's buffer (created and registered on first use).
  ThreadBuffer& local() {
    thread_local ThreadBuffer* buf = nullptr;
    if (buf == nullptr) {
      std::lock_guard<std::mutex> lk(mu_);
      auto owned = std::make_shared<ThreadBuffer>(
          static_cast<std::uint32_t>(buffers_.size()), buffer_capacity_);
      buffers_.push_back(owned);
      buf = owned.get();
    }
    return *buf;
  }

  /// Drain every thread buffer into the central log; returns the log size
  /// (a mark usable with spans_since for delta aggregation).
  std::size_t collect() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& b : buffers_) b->drain_into(collected_, dropped_);
    return collected_.size();
  }

  /// Sorted copy of everything collected so far (collect() first for
  /// freshness). Sort key (tid, start, -dur) gives parents before their
  /// children, which both exporters and the nesting test rely on.
  std::vector<Span> snapshot() {
    collect();
    std::lock_guard<std::mutex> lk(mu_);
    std::vector<Span> out = collected_;
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
      if (a.tid != b.tid) return a.tid < b.tid;
      if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
      return a.dur_ns > b.dur_ns;
    });
    return out;
  }

  /// Per-name aggregate of the spans collected after `mark` (from a prior
  /// collect()), for per-phase bench attribution.
  std::map<std::string, SpanAggregate> aggregate_since(std::size_t mark) {
    collect();
    std::lock_guard<std::mutex> lk(mu_);
    std::map<std::string, SpanAggregate> out;
    for (std::size_t i = std::min(mark, collected_.size());
         i < collected_.size(); ++i) {
      auto& agg = out[collected_[i].name];
      ++agg.count;
      agg.total_ns += collected_[i].dur_ns;
    }
    return out;
  }

  std::uint64_t dropped() {
    collect();
    std::lock_guard<std::mutex> lk(mu_);
    return dropped_;
  }

  /// Shrink/grow every ring (tests exercise overflow with tiny rings).
  void set_buffer_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lk(mu_);
    buffer_capacity_ = capacity;
    for (auto& b : buffers_) b->set_capacity(capacity);
  }

  /// Clear the central log and drop counts (buffers stay registered).
  void reset() {
    collect();
    std::lock_guard<std::mutex> lk(mu_);
    collected_.clear();
    dropped_ = 0;
  }

 private:
  std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<Span> collected_;
  std::uint64_t dropped_ = 0;
  std::size_t buffer_capacity_ = kDefaultBufferCapacity;
};

/// Reset every telemetry sink (tests and per-scenario fuzz isolation).
inline void reset_all() {
  Tracer::instance().reset();
  Registry::instance().reset();
}

/// RAII span: opens on construction when telemetry is enabled, records
/// into the thread-local ring on destruction. ~25 ns when enabled, one
/// relaxed load + branch when not.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (!enabled()) return;
    buf_ = &Tracer::instance().local();
    name_ = name;
    depth_ = buf_->enter();
    start_ns_ = now_ns();
  }
  ~SpanScope() {
    if (buf_ == nullptr) return;
    buf_->exit();
    buf_->push(name_, start_ns_, now_ns() - start_ns_, depth_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  ThreadBuffer* buf_ = nullptr;
  const char* name_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace nue::telemetry

#define NUE_TELEM_CONCAT_INNER(a, b) a##b
#define NUE_TELEM_CONCAT(a, b) NUE_TELEM_CONCAT_INNER(a, b)

/// RAII span over the enclosing scope; `name` must be a string literal.
#ifdef NUE_TELEMETRY_DISABLED
#define TELEM_SPAN(name) \
  do {                   \
  } while (0)
#else
#define TELEM_SPAN(name) \
  ::nue::telemetry::SpanScope NUE_TELEM_CONCAT(telem_span_, __LINE__)(name)
#endif
