// Greedy failure minimization and the replayable reproducer format.
//
// Reproducer files are plain text:
//
//   route_fuzz-repro v1
//   seed <u64>
//   generate <generator spec>
//   engine <name>
//   vls <k>
//   fail-links <requested>
//   fail-switches <requested>
//   mutation <name>
//   expect <violation kind>
//   remove switch <node id>      (zero or more, in shrink order)
//   remove link <channel id>
//   fabric
//   <write_fabric dump of the fully degraded network>
//
// Replay regenerates the fabric from the generator spec + seed (the ids
// the removal lists refer to only exist in that original id space) and
// uses the embedded dump purely as a cross-check that generator, fault
// injector, and minimizer still reproduce the same degraded network.
#include "fuzz/fuzz.hpp"

#include <fstream>
#include <sstream>

#include "topology/fabric_io.hpp"
#include "util/error.hpp"

namespace nue::fuzz {

namespace {

/// Re-run the scenario with one more removal; true iff it still fails
/// with the same violation kind. Unsafe removals (disconnection, last
/// terminals, dead ids) throw inside build_scenario and count as "no".
bool still_fails(const ScenarioSpec& spec, const std::vector<Removal>& removals,
                 const std::string& expect, const OracleConfig& cfg) {
  try {
    return violation_kind(run_scenario(spec, removals, cfg)) == expect;
  } catch (const std::exception&) {
    return false;
  }
}

std::string dump_fabric(const Network& net) {
  std::stringstream ss;
  write_fabric(ss, net);
  return ss.str();
}

}  // namespace

Reproducer minimize_scenario(const ScenarioSpec& spec,
                             const MinimizeConfig& cfg) {
  Reproducer r;
  r.spec = spec;
  {
    const OracleReport rep = run_scenario(spec, {}, cfg.oracle);
    NUE_CHECK_MSG(!rep.ok(), "minimize_scenario: '" << spec.label()
                                                    << "' does not fail");
    r.expect = violation_kind(rep);
  }
  // Greedy descent: sweep all candidate removals, keep any that preserves
  // the violation, and repeat until a full sweep makes no progress (or
  // the trial budget runs out). The candidate list is re-derived from the
  // current shrunken fabric each round.
  std::size_t trials = 0;
  bool progress = true;
  while (progress && trials < cfg.max_trials) {
    progress = false;
    ScenarioBuild cur = build_scenario(spec, r.removals);
    for (NodeId v = 0; v < cur.net.num_nodes() && trials < cfg.max_trials;
         ++v) {
      if (!cur.net.node_alive(v) || cur.net.is_terminal(v)) continue;
      auto cand = r.removals;
      cand.push_back({true, v});
      ++trials;
      if (still_fails(spec, cand, r.expect, cfg.oracle)) {
        r.removals = std::move(cand);
        cur = build_scenario(spec, r.removals);
        progress = true;
      }
    }
    for (ChannelId c = 0; c < cur.net.num_channels() && trials < cfg.max_trials;
         c += 2) {
      if (!cur.net.channel_alive(c)) continue;
      if (cur.net.is_terminal(cur.net.src(c)) ||
          cur.net.is_terminal(cur.net.dst(c))) {
        continue;
      }
      auto cand = r.removals;
      cand.push_back({false, c});
      ++trials;
      if (still_fails(spec, cand, r.expect, cfg.oracle)) {
        r.removals = std::move(cand);
        cur = build_scenario(spec, r.removals);
        progress = true;
      }
    }
  }
  r.fabric_dump = dump_fabric(build_scenario(spec, r.removals).net);
  return r;
}

void write_reproducer(std::ostream& os, const Reproducer& r) {
  os << "route_fuzz-repro v1\n";
  os << "seed " << r.spec.seed << "\n";
  os << "generate " << r.spec.generate << "\n";
  os << "engine " << engine_name(r.spec.engine) << "\n";
  os << "vls " << r.spec.vls << "\n";
  os << "fail-links " << r.spec.fail_links << "\n";
  os << "fail-switches " << r.spec.fail_switches << "\n";
  os << "mutation " << mutation_name(r.spec.mutation) << "\n";
  // Written only when set so pre-reconfig corpus files stay byte-stable.
  if (r.spec.reconfig_events > 0) {
    os << "reconfig-events " << r.spec.reconfig_events << "\n";
  }
  os << "expect " << r.expect << "\n";
  for (const Removal& rm : r.removals) {
    os << "remove " << (rm.is_switch ? "switch" : "link") << " " << rm.id
       << "\n";
  }
  os << "fabric\n";
  if (!r.fabric_dump.empty()) {
    os << r.fabric_dump;
  } else {
    write_fabric(os, build_scenario(r.spec, r.removals).net);
  }
}

Reproducer read_reproducer(std::istream& is) {
  Reproducer r;
  std::string line;
  NUE_CHECK_MSG(std::getline(is, line) && line == "route_fuzz-repro v1",
                "not a route_fuzz reproducer (bad header)");
  bool in_fabric = false;
  std::stringstream fabric;
  while (std::getline(is, line)) {
    if (in_fabric) {
      fabric << line << "\n";
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string key;
    ss >> key;
    if (key == "seed") {
      ss >> r.spec.seed;
    } else if (key == "generate") {
      ss >> r.spec.generate;
    } else if (key == "engine") {
      std::string name;
      ss >> name;
      const auto e = engine_from_name(name);
      NUE_CHECK_MSG(e.has_value(), "reproducer: unknown engine '" << name
                                                                  << "'");
      r.spec.engine = *e;
    } else if (key == "vls") {
      ss >> r.spec.vls;
    } else if (key == "fail-links") {
      ss >> r.spec.fail_links;
    } else if (key == "fail-switches") {
      ss >> r.spec.fail_switches;
    } else if (key == "mutation") {
      std::string name;
      ss >> name;
      const auto m = mutation_from_name(name);
      NUE_CHECK_MSG(m.has_value(), "reproducer: unknown mutation '" << name
                                                                    << "'");
      r.spec.mutation = *m;
    } else if (key == "reconfig-events") {
      ss >> r.spec.reconfig_events;
    } else if (key == "expect") {
      ss >> r.expect;
    } else if (key == "remove") {
      std::string what;
      Removal rm;
      ss >> what >> rm.id;
      NUE_CHECK_MSG(what == "switch" || what == "link",
                    "reproducer: bad removal '" << line << "'");
      rm.is_switch = what == "switch";
      r.removals.push_back(rm);
    } else if (key == "fabric") {
      in_fabric = true;
    } else {
      NUE_CHECK_MSG(false, "reproducer: unknown key '" << key << "'");
    }
  }
  r.fabric_dump = fabric.str();
  NUE_CHECK_MSG(!r.spec.generate.empty(), "reproducer: missing generate line");
  NUE_CHECK_MSG(!r.expect.empty(), "reproducer: missing expect line");
  return r;
}

Reproducer load_reproducer_file(const std::string& path) {
  std::ifstream is(path);
  NUE_CHECK_MSG(is.good(), "cannot open reproducer '" << path << "'");
  return read_reproducer(is);
}

void save_reproducer_file(const std::string& path, const Reproducer& r) {
  std::ofstream os(path);
  NUE_CHECK_MSG(os.good(), "cannot write reproducer '" << path << "'");
  write_reproducer(os, r);
}

ReplayResult replay(const Reproducer& r, const OracleConfig& cfg) {
  ReplayResult res;
  ScenarioBuild build;
  res.report = run_scenario(r.spec, r.removals, cfg, &build);
  if (!r.fabric_dump.empty()) {
    res.fabric_matches = dump_fabric(build.net) == r.fabric_dump;
  }
  res.reproduced = violation_kind(res.report) == r.expect;
  return res;
}

}  // namespace nue::fuzz
