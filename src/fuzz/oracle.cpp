// The invariant oracle: static validation, engine-promise checks
// (minimality, deadlock freedom), and the differential flit-sim check.
#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <sstream>

#include "graph/algorithms.hpp"
#include "sim/flit_sim.hpp"
#include "util/error.hpp"

namespace nue::fuzz {

namespace {

/// Engines whose tables must be hop-minimal. Fat-tree d-mod-k and the
/// Torus-2QoS dateline scheme are minimal only on pristine fabrics (fault
/// avoidance legitimately detours); Nue and Up*/Down* never promise
/// minimality (routing restrictions forbid some shortest paths).
bool promises_minimality(Engine e, bool degraded) {
  switch (e) {
    case Engine::kMinHop:
    case Engine::kDfsssp:
    case Engine::kLash:
      return true;
    case Engine::kFatTree:
    case Engine::kTorusQos:
      return !degraded;
    case Engine::kNue:
    case Engine::kUpDown:
      return false;
  }
  return false;
}

/// Every engine except the deliberately-unsafe MinHop control promises an
/// acyclic channel dependency graph.
bool promises_deadlock_freedom(Engine e) { return e != Engine::kMinHop; }

void add_violation(OracleReport& rep, const std::string& kind,
                   const std::string& detail) {
  rep.violations.push_back(kind + ": " + detail);
}

/// Count source->destination paths longer than the BFS lower bound.
/// Only called once the table is known connected and cycle-free, so
/// trace() cannot throw.
void check_minimality(const Network& net, const RoutingResult& rr,
                      OracleReport& rep) {
  rep.minimality_checked = true;
  const auto sources = net.terminals();
  for (NodeId d : rr.destinations()) {
    if (!net.node_alive(d)) continue;
    const auto dist = bfs_distances(net, d);
    for (NodeId s : sources) {
      if (s == d) continue;
      const auto path = rr.trace(net, s, d);
      if (path.size() > dist[s]) {
        if (rep.nonminimal_paths == 0) {
          std::stringstream ss;
          ss << "route " << s << " -> " << d << " takes " << path.size()
             << " hops, BFS lower bound is " << dist[s];
          add_violation(rep, "non-minimal-path", ss.str());
        }
        ++rep.nonminimal_paths;
      }
    }
  }
}

}  // namespace

std::string violation_kind(const OracleReport& rep) {
  if (rep.violations.empty()) return "";
  const std::string& v = rep.violations.front();
  const auto colon = v.find(':');
  return colon == std::string::npos ? v : v.substr(0, colon);
}

OracleReport check_scenario(const ScenarioSpec& spec,
                            const ScenarioBuild& build,
                            const EngineOutcome& engine,
                            const OracleConfig& cfg) {
  OracleReport rep;
  const Network& net = build.net;

  if (engine.crashed) {
    add_violation(rep, "engine-exception", engine.error);
    return rep;
  }
  if (!engine.rr.has_value()) {
    rep.applicable = false;
    rep.engine_error = engine.error;
    if (spec.engine == Engine::kNue) {
      // Nue's contract (paper Theorem 2 + §4.4): always applicable on a
      // connected fabric, for any VL count.
      add_violation(rep, "nue-routing-failure", engine.error);
    }
    return rep;
  }
  const RoutingResult& rr = *engine.rr;

  rep.validation = validate_routing(net, rr);
  if (!rep.validation.connected) {
    add_violation(rep, "unreachable", rep.validation.detail);
  }
  if (!rep.validation.cycle_free) {
    add_violation(rep, "path-revisits-node", rep.validation.detail);
  }
  if (!rep.validation.vl_in_range) {
    add_violation(rep, "vl-overflow",
                  "table assigns a VL >= num_vls (" +
                      std::to_string(rr.num_vls()) + ")");
  }
  // Torus-2QoS always takes its 2 dateline VLs, even under a 1-VL budget
  // request (the spec generator never asks it for fewer).
  const std::uint32_t budget =
      spec.engine == Engine::kTorusQos ? std::max(spec.vls, 2u) : spec.vls;
  if (rr.num_vls() > budget) {
    std::stringstream ss;
    ss << "table uses " << rr.num_vls() << " VLs, budget is " << budget;
    add_violation(rep, "vl-budget-exceeded", ss.str());
  }
  if (!rep.validation.deadlock_free &&
      promises_deadlock_freedom(spec.engine)) {
    add_violation(rep, "cdg-cycle", rep.validation.detail);
  }

  if (promises_minimality(spec.engine, build.degraded) &&
      rep.validation.connected && rep.validation.cycle_free) {
    check_minimality(net, rr, rep);
  }

  // Differential check: the static acyclicity verdict vs the hardware
  // model. Only the "statically safe but deadlocks anyway" direction is
  // an invariant — a cyclic CDG need not deadlock under one finite
  // traffic pattern. Skipped on tables the static checks already
  // rejected: the simulator indexes queues by (channel, VL) and follows
  // next() pointers, so holes or out-of-range VLs would be undefined
  // behaviour, not a verdict.
  if (cfg.max_sim_nodes > 0 && net.num_alive_nodes() <= cfg.max_sim_nodes &&
      net.num_alive_terminals() >= 2 && rep.validation.connected &&
      rep.validation.cycle_free && rep.validation.vl_in_range) {
    rep.sim_checked = true;
    SimConfig scfg;
    scfg.max_cycles = 5'000'000;
    scfg.deadlock_cycles = 10'000;
    const auto msgs = alltoall_shift_messages(net, 256, 4);
    const SimResult res = simulate(net, rr, msgs, scfg);
    rep.sim_deadlocked = res.deadlocked;
    rep.sim_completed = res.completed;
    if (rep.validation.deadlock_free && res.deadlocked) {
      add_violation(rep, "sim-deadlock",
                    "CDG is acyclic but the event-driven flit simulator "
                    "drained its event queue with packets outstanding at "
                    "cycle " +
                        std::to_string(res.cycles));
    }
    // Second differential axis: the same traffic through the cycle-based
    // engine. The two implementations share the hardware model but almost
    // no code, so verdict or delivery disagreement means one of them is
    // wrong — a free oracle for the event engine's wake discipline (a
    // missed wake-up shows up here as a false event-engine deadlock).
    if (cfg.cross_check_engines) {
      rep.engines_cross_checked = true;
      const SimResult base = simulate_cycle(net, rr, msgs, scfg);
      if (base.completed != res.completed ||
          base.deadlocked != res.deadlocked) {
        std::stringstream ss;
        ss << "event engine (completed=" << res.completed
           << ", deadlocked=" << res.deadlocked << ") vs cycle engine ("
           << "completed=" << base.completed
           << ", deadlocked=" << base.deadlocked << ")";
        add_violation(rep, "sim-engine-divergence", ss.str());
      } else if (base.completed &&
                 (base.delivered_bytes != res.delivered_bytes ||
                  base.delivered_packets != res.delivered_packets)) {
        std::stringstream ss;
        ss << "both engines completed but delivered " << res.delivered_bytes
           << " vs " << base.delivered_bytes << " bytes ("
           << res.delivered_packets << " vs " << base.delivered_packets
           << " packets)";
        add_violation(rep, "sim-engine-divergence", ss.str());
      }
    }
  }

  // Oracle self-test: a deliberately broken table that sails through every
  // check above means the oracle has a blind spot — report it as such.
  if (spec.mutation != Mutation::kNone && rep.violations.empty()) {
    add_violation(rep, "mutation-not-caught",
                  std::string("mutation '") + mutation_name(spec.mutation) +
                      "' produced no violation");
  }
  return rep;
}

OracleReport run_scenario(const ScenarioSpec& spec,
                          const std::vector<Removal>& removals,
                          const OracleConfig& cfg, ScenarioBuild* build_out) {
  if (spec.reconfig_events > 0) {
    return run_reconfig_scenario(spec, removals, cfg, build_out);
  }
  ScenarioBuild build = build_scenario(spec, removals);
  EngineOutcome engine = run_engine(spec, build);
  if (engine.rr.has_value()) apply_mutation(spec, build, *engine.rr);
  OracleReport rep = check_scenario(spec, build, engine, cfg);
  if (build_out != nullptr) *build_out = std::move(build);
  return rep;
}

}  // namespace nue::fuzz
