// Scenario construction: generator-spec parsing, deterministic fault
// injection, engine dispatch, deliberate mutations, and batch drawing.
#include "fuzz/fuzz.hpp"

#include <sstream>

#include "graph/algorithms.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/fattree_routing.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nue::fuzz {

namespace {

// Distinct salts so faults, mutation placement, and engine seeding draw
// from independent streams of the one scenario seed.
constexpr std::uint64_t kFaultSalt = 0xFA017C0DEULL;
constexpr std::uint64_t kMutationSalt = 0x5CA1AB1EULL;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) out.push_back(tok);
  return out;
}

std::uint32_t parse_u32(const std::string& s, const char* what) {
  NUE_CHECK_MSG(!s.empty(), "generator spec: empty " << what);
  for (char ch : s) {
    NUE_CHECK_MSG(ch >= '0' && ch <= '9',
                  "generator spec: bad " << what << " '" << s << "'");
  }
  return static_cast<std::uint32_t>(std::stoul(s));
}

std::vector<std::uint32_t> parse_u32_list(const std::string& s, char sep,
                                          const char* what) {
  std::vector<std::uint32_t> out;
  for (const auto& tok : split(s, sep)) out.push_back(parse_u32(tok, what));
  NUE_CHECK_MSG(!out.empty(), "generator spec: empty " << what << " list");
  return out;
}

/// Instantiate the generator spec string. Grammar (defaults in brackets):
///   torus:AxB[xC...][:tps[:red]]
///   fattree:k:n[:tpl]
///   clos:S0,S1,...:U0,U1,...:terminals
///   kautz:d:k[:tps[:red]]
///   dragonfly:a:p:h:g
///   hyperx:AxB[xC...][:tps[:red]]
///   random:switches:links:tps:seed
ScenarioBuild instantiate(const std::string& gen) {
  const auto parts = split(gen, ':');
  NUE_CHECK_MSG(!parts.empty(), "empty generator spec");
  const std::string& kind = parts[0];
  auto arg = [&](std::size_t i, std::uint32_t def) {
    return parts.size() > i ? parse_u32(parts[i], "argument") : def;
  };

  ScenarioBuild b;
  if (kind == "torus") {
    NUE_CHECK_MSG(parts.size() >= 2, "torus spec needs dimensions");
    TorusSpec spec;
    spec.dims = parse_u32_list(parts[1], 'x', "dimension");
    spec.terminals_per_switch = arg(2, 1);
    spec.redundancy = arg(3, 1);
    b.net = make_torus(spec);
    b.torus = spec;
  } else if (kind == "fattree") {
    NUE_CHECK_MSG(parts.size() >= 3, "fattree spec needs k and n");
    FatTreeSpec spec;
    spec.k = parse_u32(parts[1], "arity");
    spec.n = parse_u32(parts[2], "levels");
    spec.terminals_per_leaf = arg(3, 1);
    b.net = make_kary_ntree(spec);
    b.fattree = spec;
  } else if (kind == "clos") {
    NUE_CHECK_MSG(parts.size() >= 4, "clos spec needs stages:uplinks:terms");
    ClosSpec spec;
    spec.stage_sizes = parse_u32_list(parts[1], ',', "stage size");
    spec.uplinks = parse_u32_list(parts[2], ',', "uplink count");
    spec.num_terminals = parse_u32(parts[3], "terminal count");
    b.net = make_folded_clos(spec);
  } else if (kind == "kautz") {
    NUE_CHECK_MSG(parts.size() >= 3, "kautz spec needs d and k");
    KautzSpec spec;
    spec.d = parse_u32(parts[1], "degree");
    spec.k = parse_u32(parts[2], "diameter");
    spec.terminals_per_switch = arg(3, 1);
    spec.redundancy = arg(4, 1);
    b.net = make_kautz(spec);
  } else if (kind == "dragonfly") {
    NUE_CHECK_MSG(parts.size() >= 5, "dragonfly spec needs a:p:h:g");
    DragonflySpec spec;
    spec.a = parse_u32(parts[1], "a");
    spec.p = parse_u32(parts[2], "p");
    spec.h = parse_u32(parts[3], "h");
    spec.g = parse_u32(parts[4], "g");
    b.net = make_dragonfly(spec);
  } else if (kind == "hyperx") {
    NUE_CHECK_MSG(parts.size() >= 2, "hyperx spec needs a shape");
    HyperXSpec spec;
    spec.shape = parse_u32_list(parts[1], 'x', "shape");
    spec.terminals_per_switch = arg(2, 1);
    spec.redundancy = arg(3, 1);
    b.net = make_hyperx(spec);
  } else if (kind == "random") {
    NUE_CHECK_MSG(parts.size() >= 5,
                  "random spec needs switches:links:tps:seed");
    RandomSpec spec;
    spec.switches = parse_u32(parts[1], "switch count");
    spec.links = parse_u32(parts[2], "link count");
    spec.terminals_per_switch = parse_u32(parts[3], "terminals");
    Rng topo_rng(parse_u32(parts[4], "seed"));
    b.net = make_random(spec, topo_rng);
  } else {
    NUE_CHECK_MSG(false, "unknown generator kind '" << kind << "'");
  }
  // Every engine's contract assumes a connected fabric (a folded Clos
  // whose uplink count divides the spine count, say, splits into islands);
  // reject such specs here instead of crashing inside an engine.
  NUE_CHECK_MSG(is_connected(b.net),
                "generator spec '" << gen << "' yields a disconnected fabric");
  return b;
}

/// Apply one minimizer removal; throws on anything unsafe so trial
/// removals are rejected instead of producing degenerate fabrics.
void apply_removal(Network& net, const Removal& r) {
  if (r.is_switch) {
    const NodeId v = r.id;
    NUE_CHECK_MSG(v < net.num_nodes() && net.node_alive(v),
                  "removal: switch " << v << " not alive");
    NUE_CHECK_MSG(net.is_switch(v), "removal: node " << v << " not a switch");
    NUE_CHECK_MSG(net.num_alive_switches() > 1, "removal: last switch");
    std::vector<NodeId> orphans;
    for (ChannelId c : net.out(v)) {
      if (net.is_terminal(net.dst(c))) orphans.push_back(net.dst(c));
    }
    net.remove_node(v);
    for (NodeId t : orphans) net.remove_node(t);
  } else {
    const ChannelId c = r.id & ~1u;
    NUE_CHECK_MSG(c < net.num_channels() && net.channel_alive(c),
                  "removal: link " << c << " not alive");
    NUE_CHECK_MSG(net.is_switch(net.src(c)) && net.is_switch(net.dst(c)),
                  "removal: link " << c << " is a terminal access link");
    net.remove_link(c);
  }
  NUE_CHECK_MSG(net.num_alive_terminals() >= 2,
                "removal leaves fewer than 2 terminals");
  NUE_CHECK_MSG(is_connected(net), "removal disconnects the fabric");
}

}  // namespace

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::kNue: return "nue";
    case Engine::kUpDown: return "updown";
    case Engine::kMinHop: return "minhop";
    case Engine::kDfsssp: return "dfsssp";
    case Engine::kLash: return "lash";
    case Engine::kTorusQos: return "torus-qos";
    case Engine::kFatTree: return "fattree";
  }
  return "?";
}

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kVlOverflow: return "vl-overflow";
    case Mutation::kDropEntry: return "drop-entry";
  }
  return "?";
}

std::optional<Engine> engine_from_name(const std::string& s) {
  for (Engine e : {Engine::kNue, Engine::kUpDown, Engine::kMinHop,
                   Engine::kDfsssp, Engine::kLash, Engine::kTorusQos,
                   Engine::kFatTree}) {
    if (s == engine_name(e)) return e;
  }
  return std::nullopt;
}

std::optional<Mutation> mutation_from_name(const std::string& s) {
  for (Mutation m :
       {Mutation::kNone, Mutation::kVlOverflow, Mutation::kDropEntry}) {
    if (s == mutation_name(m)) return m;
  }
  return std::nullopt;
}

std::string ScenarioSpec::label() const {
  std::stringstream ss;
  ss << generate << " engine=" << engine_name(engine) << " vls=" << vls
     << " faults=" << fail_links << "L+" << fail_switches << "S"
     << " seed=" << seed;
  if (reconfig_events > 0) ss << " reconfig=" << reconfig_events;
  if (mutation != Mutation::kNone) ss << " mutation=" << mutation_name(mutation);
  return ss.str();
}

ScenarioBuild build_scenario(const ScenarioSpec& spec,
                             const std::vector<Removal>& removals) {
  ScenarioBuild b = instantiate(spec.generate);
  Rng fault_rng(spec.seed ^ kFaultSalt);
  // Switches first: a dead switch changes which links are left to draw.
  b.switch_faults = inject_switch_failures(b.net, spec.fail_switches,
                                           fault_rng);
  b.link_faults = inject_link_failures(b.net, spec.fail_links, fault_rng);
  for (const Removal& r : removals) apply_removal(b.net, r);
  b.degraded =
      b.switch_faults + b.link_faults + removals.size() > 0;
  return b;
}

EngineOutcome run_engine(const ScenarioSpec& spec, const ScenarioBuild& build) {
  EngineOutcome out;
  const auto dests = build.net.terminals();
  // Zahavi-style d-mod-k routing assumes the full k-ary n-tree wiring;
  // a degraded tree is outside its contract, not an engine bug.
  if (spec.engine == Engine::kFatTree && build.degraded) {
    out.error = "fat-tree routing requires a pristine k-ary n-tree";
    return out;
  }
  try {
    switch (spec.engine) {
      case Engine::kNue: {
        NueOptions opt;
        opt.num_vls = spec.vls;
        opt.seed = spec.seed;
        opt.num_threads = 1;  // scenarios parallelize across, not within
        out.rr = route_nue(build.net, dests, opt);
        break;
      }
      case Engine::kUpDown:
        out.rr = route_updown(build.net, dests);
        break;
      case Engine::kMinHop:
        out.rr = route_minhop(build.net, dests);
        break;
      case Engine::kDfsssp: {
        DfssspOptions opt;
        opt.max_vls = spec.vls;
        opt.num_threads = 1;
        out.rr = route_dfsssp(build.net, dests, opt);
        break;
      }
      case Engine::kLash: {
        LashOptions opt;
        opt.max_vls = spec.vls;
        opt.num_threads = 1;
        out.rr = route_lash(build.net, dests, opt);
        break;
      }
      case Engine::kTorusQos:
        NUE_CHECK_MSG(build.torus.has_value(),
                      "torus-qos scenario on a non-torus generator");
        out.rr = route_torus_qos(build.net, *build.torus, dests);
        break;
      case Engine::kFatTree:
        NUE_CHECK_MSG(build.fattree.has_value(),
                      "fattree scenario on a non-fattree generator");
        out.rr = route_fattree(build.net, *build.fattree, dests);
        break;
    }
  } catch (const RoutingFailure& e) {
    out.error = e.what();
  } catch (const std::exception& e) {
    out.error = e.what();
    out.crashed = true;
  }
  return out;
}

void apply_mutation(const ScenarioSpec& spec, const ScenarioBuild& build,
                    RoutingResult& rr) {
  if (spec.mutation == Mutation::kNone) return;
  const Network& net = build.net;
  Rng rng(spec.seed ^ kMutationSalt);
  const auto& dests = rr.destinations();
  NUE_CHECK_MSG(!dests.empty(), "mutation on a routing with no destinations");
  const auto di = static_cast<std::uint32_t>(rng.next_below(dests.size()));
  const NodeId d = dests[di];
  // A source terminal other than the destination: every oracle run walks
  // src -> d, so breakage placed on that walk is guaranteed visible.
  std::vector<NodeId> sources;
  for (NodeId t : net.terminals()) {
    if (t != d) sources.push_back(t);
  }
  NUE_CHECK_MSG(!sources.empty(), "mutation needs a second terminal");
  const NodeId s = sources[rng.next_below(sources.size())];
  const NodeId sw = net.terminal_switch(s);
  switch (spec.mutation) {
    case Mutation::kNone:
      break;
    case Mutation::kVlOverflow: {
      const auto bad = static_cast<std::uint8_t>(rr.num_vls() + 3);
      switch (rr.vl_mode()) {
        case VlMode::kPerDest:
          rr.set_dest_vl(di, bad);
          break;
        case VlMode::kPerSource:
          rr.set_source_vl(s, di, bad);
          break;
        case VlMode::kPerHop:
          rr.set_hop_vl(sw, di, bad);
          break;
      }
      break;
    }
    case Mutation::kDropEntry:
      // s's first switch hop toward d disappears: s can no longer reach d.
      rr.set_next(sw, di, kInvalidChannel);
      break;
  }
}

ScenarioSpec draw_scenario(std::uint64_t base_seed, std::uint64_t index) {
  Rng rng(base_seed ^ ((index + 1) * 0x9E3779B97F4A7C15ULL));
  ScenarioSpec s;
  s.seed = rng.next_u64();
  std::stringstream gen;
  bool is_torus = false, is_fattree = false;
  switch (rng.next_below(7)) {
    case 0: {  // torus, 2-3 dims
      is_torus = true;
      const auto nd = 2 + rng.next_below(2);
      gen << "torus:";
      for (std::uint64_t i = 0; i < nd; ++i) {
        gen << (i ? "x" : "") << 2 + rng.next_below(nd == 2 ? 3 : 2);
      }
      gen << ":" << 1 + rng.next_below(2);
      break;
    }
    case 1: {  // k-ary n-tree
      is_fattree = true;
      gen << "fattree:" << 2 + rng.next_below(2) << ":" << 2 + rng.next_below(2)
          << ":" << 1 + rng.next_below(2);
      break;
    }
    case 2: {  // 2-stage folded Clos; uplinks >= spines keeps the
               // round-robin wiring connected (complete bipartite core)
      const auto leaves = 4 + rng.next_below(5);
      const auto spines = 2 + rng.next_below(3);
      gen << "clos:" << leaves << "," << spines << ":"
          << spines + rng.next_below(2) << ":"
          << leaves * (1 + rng.next_below(2));
      break;
    }
    case 3:
      gen << "kautz:" << 2 + rng.next_below(2) << ":2:" << 1 + rng.next_below(2)
          << ":" << 1 + rng.next_below(2);
      break;
    case 4: {  // dragonfly with a*h >= g-1 so every group pair gets a link
      const auto a = 2 + rng.next_below(3);
      const auto h = 1 + rng.next_below(2);
      const auto g = 2 + rng.next_below(std::min<std::uint64_t>(a * h, 5));
      gen << "dragonfly:" << a << ":" << 1 + rng.next_below(2) << ":" << h
          << ":" << g;
      break;
    }
    case 5: {  // hyperx, 1-2 dims
      const auto nd = 1 + rng.next_below(2);
      gen << "hyperx:";
      for (std::uint64_t i = 0; i < nd; ++i) {
        gen << (i ? "x" : "") << (nd == 1 ? 3 + rng.next_below(4)
                                          : 2 + rng.next_below(3));
      }
      gen << ":" << 1 + rng.next_below(2);
      break;
    }
    default: {  // seeded random multigraph
      const auto sw = 6 + rng.next_below(20);
      gen << "random:" << sw << ":" << sw - 1 + rng.next_below(2 * sw) << ":"
          << 1 + rng.next_below(2) << ":" << rng.next_below(1'000'000);
      break;
    }
  }
  s.generate = gen.str();
  std::vector<Engine> engines = {Engine::kNue, Engine::kUpDown,
                                 Engine::kMinHop, Engine::kDfsssp,
                                 Engine::kLash};
  if (is_torus) engines.push_back(Engine::kTorusQos);
  if (is_fattree) engines.push_back(Engine::kFatTree);
  s.engine = engines[rng.next_below(engines.size())];
  const std::uint32_t vl_choices[] = {1, 2, 4, 8};
  s.vls = vl_choices[rng.next_below(4)];
  if (s.engine == Engine::kTorusQos && s.vls < 2) s.vls = 2;
  if (rng.next_bool(0.65)) {
    s.fail_links = rng.next_below(4);
    s.fail_switches = rng.next_bool(0.3) ? 1 : 0;
  }
  return s;
}

std::vector<ScenarioSpec> smoke_corpus(std::uint64_t base_seed) {
  struct TopoEntry {
    const char* gen;
    bool torus;
    bool fattree;
  };
  // One small instance per generator family; every fabric stays under the
  // differential-sim size bound so the simulator cross-check runs on the
  // entire corpus.
  const TopoEntry topos[] = {
      {"torus:3x3:2", true, false},
      {"fattree:2:3:2", false, true},
      {"clos:6,3:2:12", false, false},
      {"kautz:2:2:2:1", false, false},
      {"dragonfly:4:1:2:4", false, false},
      {"hyperx:3x3:1", false, false},
      {"random:10:20:2:5", false, false},
  };
  std::vector<ScenarioSpec> specs;
  for (const auto& topo : topos) {
    std::vector<Engine> engines = {Engine::kNue, Engine::kUpDown,
                                   Engine::kMinHop, Engine::kDfsssp,
                                   Engine::kLash};
    if (topo.torus) engines.push_back(Engine::kTorusQos);
    if (topo.fattree) engines.push_back(Engine::kFatTree);
    for (Engine e : engines) {
      const std::uint32_t vls_low = e == Engine::kTorusQos ? 2 : 1;
      for (std::uint32_t vls : {vls_low, 4u}) {
        for (std::size_t faults : {std::size_t{0}, std::size_t{2}}) {
          ScenarioSpec s;
          s.seed = base_seed + specs.size();
          s.generate = topo.gen;
          s.engine = e;
          s.vls = vls;
          s.fail_links = faults;
          specs.push_back(std::move(s));
        }
      }
    }
  }
  // Reconfiguration family: the live resilience manager driving a drawn
  // fault/repair trace. Appended last — corpus seeds are positional
  // (base_seed + index), so earlier entries must never shift.
  struct ReconfigEntry {
    const char* gen;
    Engine engine;
    std::uint32_t vls;
  };
  const ReconfigEntry reconfigs[] = {
      {"torus:3x3:2", Engine::kNue, 2},
      {"torus:3x3:2", Engine::kDfsssp, 4},
      {"random:10:20:2:5", Engine::kNue, 4},
      {"fattree:2:3:2", Engine::kUpDown, 1},
      {"hyperx:3x3:1", Engine::kLash, 4},
  };
  for (const auto& rc : reconfigs) {
    ScenarioSpec s;
    s.seed = base_seed + specs.size();
    s.generate = rc.gen;
    s.engine = rc.engine;
    s.vls = rc.vls;
    s.reconfig_events = 4;
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<ScenarioOutcome> run_batch(const std::vector<ScenarioSpec>& specs,
                                       const FuzzConfig& cfg) {
  std::vector<ScenarioOutcome> out(specs.size());
  parallel_for(resolve_threads(cfg.threads), specs.size(), [&](std::size_t i) {
    ScenarioBuild build;
    OracleReport rep = run_scenario(specs[i], {}, cfg.oracle, &build);
    out[i] = {specs[i], build.link_faults, build.switch_faults,
              std::move(rep)};
  });
  return out;
}

}  // namespace nue::fuzz
