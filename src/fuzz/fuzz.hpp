// Differential routing fuzzer and invariant oracle (see docs/FUZZING.md).
//
// A ScenarioSpec is a tiny, fully serializable description of one fuzz
// case: a topology generator spec string, a fault budget, a routing
// engine, a VL budget, and an optional deliberate table breakage
// (mutation) used to self-test the oracle. Everything a scenario does —
// topology construction, fault injection, engine options, the mutation —
// is a pure function of the spec, so a spec alone replays a failure
// bit-for-bit on any machine and at any thread count.
//
// The oracle checks every invariant the engines promise:
//   * reachability among alive terminals (validate_routing: connected,
//     no node revisited),
//   * VL sanity (vl_in_range, table VL count within the spec's budget),
//   * CDG acyclicity (Theorem 1) for every engine that promises
//     deadlock freedom (all except MinHop),
//   * per-hop minimality against a BFS lower bound where the engine
//     promises it (MinHop/DFSSSP/LASH always; fat-tree and Torus-2QoS on
//     pristine fabrics),
//   * differentially, on small instances: a routing whose CDG the static
//     validator calls acyclic must not deadlock the flit simulator.
//
// Failures shrink through a greedy minimizer into a Reproducer — the spec
// plus an ordered list of extra link/switch removals and an embedded
// fabric dump for cross-checking — replayable via replay() and the
// route_fuzz CLI.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "routing/validate.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"

namespace nue::fuzz {

enum class Engine : std::uint8_t {
  kNue,
  kUpDown,
  kMinHop,
  kDfsssp,
  kLash,
  kTorusQos,
  kFatTree,
};

/// Deliberate table breakage for oracle self-tests: both mutations are
/// constructed so a sound oracle MUST flag them (the broken entry is
/// always on a validated source->destination walk).
enum class Mutation : std::uint8_t { kNone, kVlOverflow, kDropEntry };

const char* engine_name(Engine e);
const char* mutation_name(Mutation m);
std::optional<Engine> engine_from_name(const std::string& s);
std::optional<Mutation> mutation_from_name(const std::string& s);

struct ScenarioSpec {
  std::uint64_t seed = 1;   // drives fault injection, Nue, and the mutation
  /// Topology generator spec, e.g. "torus:3x3:2" — see build_scenario.
  std::string generate;
  Engine engine = Engine::kNue;
  std::uint32_t vls = 1;          // VL budget handed to the engine
  std::size_t fail_links = 0;     // requested; achieved count is reported
  std::size_t fail_switches = 0;  // requested; achieved count is reported
  Mutation mutation = Mutation::kNone;
  /// > 0 selects the reconfiguration family: after building (and possibly
  /// degrading) the fabric, a fault/repair trace of this many events is
  /// drawn from the seed and driven through the live resilience manager;
  /// the oracle checks every committed epoch and swap instead of a single
  /// static table (see run_reconfig_scenario).
  std::size_t reconfig_events = 0;

  std::string label() const;
};

/// One extra element removed on top of the seeded fault injection (the
/// minimizer's shrink steps), in original network id space.
struct Removal {
  bool is_switch = false;
  std::uint32_t id = 0;  // NodeId for switches, even ChannelId for links
};

struct ScenarioBuild {
  Network net;
  std::optional<TorusSpec> torus;      // set for torus generators
  std::optional<FatTreeSpec> fattree;  // set for the fattree generator
  std::size_t link_faults = 0;         // achieved (can be < requested)
  std::size_t switch_faults = 0;       // achieved (can be < requested)
  bool degraded = false;               // any fault or removal applied
};

/// Deterministically instantiate the spec's topology, inject its faults
/// (Rng derived from spec.seed), then apply `removals` in order. Throws
/// std::logic_error on a malformed generator spec or on a removal that is
/// unsafe (dead element, terminal access link, disconnection, or fewer
/// than 2 terminals / 1 switch left) — the minimizer relies on that to
/// reject candidates.
ScenarioBuild build_scenario(const ScenarioSpec& spec,
                             const std::vector<Removal>& removals = {});

struct EngineOutcome {
  std::optional<RoutingResult> rr;
  std::string error;     // exception text when !rr
  bool crashed = false;  // threw something other than RoutingFailure
};

/// Run the spec's engine on the built fabric (all alive terminals as
/// destinations). RoutingFailure is reported as inapplicable, any other
/// exception as crashed; neither propagates.
EngineOutcome run_engine(const ScenarioSpec& spec, const ScenarioBuild& build);

/// Apply the spec's deliberate breakage to the tables (no-op for kNone).
void apply_mutation(const ScenarioSpec& spec, const ScenarioBuild& build,
                    RoutingResult& rr);

struct OracleConfig {
  /// Run the differential flit-sim check on fabrics up to this many nodes
  /// (0 disables it). The sim only runs when the static checks pass
  /// (connected, cycle-free, VLs in range), so it can never crash on a
  /// broken table — its one job is catching an acyclicity verdict the
  /// hardware model disagrees with.
  std::size_t max_sim_nodes = 72;
  /// When the flit-sim check runs, also replay the same traffic through
  /// the cycle-based engine and demand matching verdicts and (on
  /// completion) identical delivered totals — a differential oracle over
  /// the two simulator implementations themselves
  /// (sim-engine-divergence).
  bool cross_check_engines = true;
};

struct OracleReport {
  /// False when the engine declined the instance (RoutingFailure: VL
  /// demand above budget, broken ring, ...) — a legal outcome for every
  /// engine except Nue, whose paper contract is to never fail.
  bool applicable = true;
  std::string engine_error;
  ValidationReport validation;
  bool minimality_checked = false;
  std::size_t nonminimal_paths = 0;
  bool sim_checked = false;
  bool sim_deadlocked = false;
  bool sim_completed = false;
  bool engines_cross_checked = false;  // event vs cycle engine replay ran
  bool reconfig_checked = false;          // reconfiguration family ran
  std::size_t reconfig_transitions = 0;   // non-noop epoch swaps driven
  std::size_t reconfig_hitless = 0;
  std::size_t reconfig_drained = 0;
  std::size_t reconfig_waved = 0;         // wave chains (drains avoided)
  std::size_t reconfig_wave_commits = 0;  // epochs those chains committed
  /// "<kind>: detail" strings; empty = scenario passed every invariant.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Stable kind token of the first violation ("" if none). Kinds:
/// engine-exception, nue-routing-failure, unreachable, path-revisits-node,
/// vl-overflow, vl-budget-exceeded, cdg-cycle, non-minimal-path,
/// sim-deadlock, sim-engine-divergence, mutation-not-caught — and, from
/// the reconfiguration
/// family: reconfig-invalid-table, reconfig-union-cycle,
/// reconfig-event-crash.
std::string violation_kind(const OracleReport& rep);

OracleReport check_scenario(const ScenarioSpec& spec,
                            const ScenarioBuild& build,
                            const EngineOutcome& engine,
                            const OracleConfig& cfg = {});

/// build + route + mutate + check in one call — a pure function of
/// (spec, removals). `build_out` optionally receives the built fabric.
/// Specs with reconfig_events > 0 dispatch to run_reconfig_scenario.
OracleReport run_scenario(const ScenarioSpec& spec,
                          const std::vector<Removal>& removals = {},
                          const OracleConfig& cfg = {},
                          ScenarioBuild* build_out = nullptr);

/// Reconfiguration-family check: drive a fault/repair trace (drawn
/// deterministically from spec.seed, spec.reconfig_events events) through
/// a live ResilienceManager running the spec's engine. The oracle hooks
/// every commit: each committed epoch must pass the full static validation
/// and cover every alive terminal (reconfig-invalid-table), and every
/// transition the manager calls hitless must pass an INDEPENDENT pairwise
/// union-CDG re-check (reconfig-union-cycle) — differential against the
/// manager's own column-based gate. Intermediate epochs of a migration-
/// wave chain (src/resilience/waves.hpp) are exempt from full validation
/// (bounded staleness is their design) but every one must pass the
/// pairwise union re-check against its predecessor. An event the manager
/// cannot survive is reconfig-event-crash. Engines without a live repair
/// mode (minhop, torus-qos, fattree) report as inapplicable. `build_out`
/// receives the pre-trace fabric, so reproducer dumps stay comparable.
OracleReport run_reconfig_scenario(const ScenarioSpec& spec,
                                   const std::vector<Removal>& removals = {},
                                   const OracleConfig& cfg = {},
                                   ScenarioBuild* build_out = nullptr);

// --- reproducers -----------------------------------------------------------

struct Reproducer {
  ScenarioSpec spec;
  std::vector<Removal> removals;  // minimizer's shrink steps, in order
  std::string expect;             // violation kind that must reproduce
  /// write_fabric() dump of the fully degraded fabric, embedded in the
  /// file as a human-readable cross-check (replay() compares it against
  /// the regenerated network). Empty = skip the comparison.
  std::string fabric_dump;
};

struct MinimizeConfig {
  std::size_t max_trials = 400;  // scenario re-runs the shrink may spend
  OracleConfig oracle;
};

/// Greedy shrink: repeatedly try removing alive switches and links,
/// keeping a removal whenever the scenario still fails with the same
/// violation kind. Requires the unshrunk scenario to fail.
Reproducer minimize_scenario(const ScenarioSpec& spec,
                             const MinimizeConfig& cfg = {});

void write_reproducer(std::ostream& os, const Reproducer& r);
Reproducer read_reproducer(std::istream& is);
Reproducer load_reproducer_file(const std::string& path);
void save_reproducer_file(const std::string& path, const Reproducer& r);

struct ReplayResult {
  OracleReport report;
  bool fabric_matches = true;  // embedded dump == regenerated fabric
  bool reproduced = false;     // expected violation kind fired again
};

ReplayResult replay(const Reproducer& r, const OracleConfig& cfg = {});

// --- batches ---------------------------------------------------------------

struct FuzzConfig {
  std::uint32_t threads = 0;  // 0 = process default (see thread_pool.hpp)
  OracleConfig oracle;
};

struct ScenarioOutcome {
  ScenarioSpec spec;
  std::size_t link_faults = 0;    // achieved
  std::size_t switch_faults = 0;  // achieved
  OracleReport report;
};

/// Random scenario from the cross product of all topology generators x
/// compatible engines x VL budgets {1,2,4,8} x fault settings — a pure
/// function of (base_seed, index), so batches are resumable and
/// distributable by index range.
ScenarioSpec draw_scenario(std::uint64_t base_seed, std::uint64_t index);

/// Random reconfiguration scenario: same topology/fault cross product as
/// draw_scenario, engine restricted to the live repair engines
/// (nue/updown/dfsssp/lash) and 3-8 trace events. Pure function of
/// (base_seed, index).
ScenarioSpec draw_reconfig_scenario(std::uint64_t base_seed,
                                    std::uint64_t index);

/// Fixed-seed smoke corpus: every topology generator x every applicable
/// engine (nue/updown/minhop/dfsssp/lash everywhere, torus-qos on the
/// torus, fattree on the fat tree) x VL budgets {1,4} x {pristine,
/// 2 link faults}. Small fabrics; the whole corpus runs in seconds.
std::vector<ScenarioSpec> smoke_corpus(std::uint64_t base_seed);

/// Run scenarios concurrently on the shared thread pool, one independent
/// RNG stream per scenario; outcome i belongs to specs[i] regardless of
/// thread count (scenarios are pure functions of their spec).
std::vector<ScenarioOutcome> run_batch(const std::vector<ScenarioSpec>& specs,
                                       const FuzzConfig& cfg = {});

}  // namespace nue::fuzz
