// The reconfiguration scenario family: drive a drawn fault/repair trace
// through the live resilience manager and check every committed epoch and
// every claimed-hitless swap, the latter differentially — the oracle's
// union-CDG re-check walks (source, destination) pairs, independent of the
// manager's column-based accumulation, so a dependency the fast path
// drops shows up here as reconfig-union-cycle.
#include "fuzz/fuzz.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "resilience/resilience.hpp"
#include "topology/faults.hpp"
#include "util/rng.hpp"

namespace nue::fuzz {

namespace {

// Independent stream for the trace draw (and the reconfig spec draw) so
// reconfig scenarios do not replay the fault injector's choices.
constexpr std::uint64_t kReconfigSalt = 0x7EC04F16C0DEULL;

std::optional<resilience::Engine> repair_engine(Engine e) {
  switch (e) {
    case Engine::kNue: return resilience::Engine::kNue;
    case Engine::kUpDown: return resilience::Engine::kUpDown;
    case Engine::kDfsssp: return resilience::Engine::kDfsssp;
    case Engine::kLash: return resilience::Engine::kLash;
    case Engine::kMinHop:
    case Engine::kTorusQos:
    case Engine::kFatTree:
      return std::nullopt;
  }
  return std::nullopt;
}

void add_violation(OracleReport& rep, const std::string& kind,
                   const std::string& detail) {
  rep.violations.push_back(kind + ": " + detail);
}

/// Union-CDG acyclicity by exact per-(source, destination) walks over both
/// tables, stale-tolerant (a walk stops at a hole or dead channel, its
/// prefix dependencies stay). Deliberately NOT union_cdg_acyclic: that is
/// the code under test.
bool pairwise_union_acyclic(const Network& net, const RoutingResult& a,
                            const RoutingResult& b) {
  const std::uint32_t stride = std::max(a.num_vls(), b.num_vls()) + 1;
  std::vector<std::vector<std::uint32_t>> adj(net.num_channels() * stride);
  std::unordered_set<std::uint64_t> seen;
  for (const RoutingResult* rr : {&a, &b}) {
    const auto& dests = rr->destinations();
    for (std::size_t di = 0; di < dests.size(); ++di) {
      const NodeId d = dests[di];
      const auto di32 = static_cast<std::uint32_t>(di);
      for (NodeId s : net.terminals()) {
        if (s == d) continue;
        NodeId at = s;
        std::size_t hops = 0;
        auto prev = static_cast<std::uint32_t>(-1);
        while (at != d && hops++ <= net.num_nodes()) {
          const ChannelId c = rr->next(at, di32);
          if (c == kInvalidChannel || net.src(c) != at ||
              !net.channel_alive(c)) {
            break;
          }
          const std::uint8_t vl = rr->vl(at, s, di32);
          const std::uint32_t slot = vl < rr->num_vls() ? vl : stride - 1;
          const std::uint32_t cur = c * stride + slot;
          if (prev != static_cast<std::uint32_t>(-1)) {
            const std::uint64_t key =
                (static_cast<std::uint64_t>(prev) << 32) | cur;
            if (seen.insert(key).second) adj[prev].push_back(cur);
          }
          prev = cur;
          at = net.dst(c);
        }
      }
    }
  }
  return is_acyclic(adj);
}

}  // namespace

OracleReport run_reconfig_scenario(const ScenarioSpec& spec,
                                   const std::vector<Removal>& removals,
                                   const OracleConfig& cfg,
                                   ScenarioBuild* build_out) {
  (void)cfg;  // the flit-sim differential check stays with the static family
  OracleReport rep;
  ScenarioBuild build = build_scenario(spec, removals);
  const auto engine = repair_engine(spec.engine);
  if (!engine.has_value()) {
    rep.applicable = false;
    rep.engine_error = std::string(engine_name(spec.engine)) +
                       " has no live repair mode";
    if (build_out != nullptr) *build_out = std::move(build);
    return rep;
  }
  const FaultTrace trace =
      draw_fault_trace(build.net, spec.generate, spec.seed ^ kReconfigSalt,
                       spec.reconfig_events);

  resilience::RepairPolicy policy;
  policy.engine = *engine;
  policy.vls = spec.vls;
  policy.max_vls = std::max(spec.vls, 8u);
  policy.seed = spec.seed;
  policy.num_threads = 1;  // scenarios parallelize across, not within

  rep.reconfig_checked = true;
  try {
    resilience::ResilienceManager mgr(build.net, policy);
    mgr.set_commit_hook([&](const Network& net, const RoutingResult* old,
                            const RoutingResult& fresh,
                            const TransitionRecord& rec) {
      std::ostringstream where;
      where << "epoch " << rec.epoch << " after " << rec.event;
      const bool intermediate =
          rec.wave_count > 0 && rec.wave_index < rec.wave_count;
      if (intermediate) {
        // Intermediate wave epochs are gated on pairwise union acyclicity
        // ONLY: they may legitimately carry broken/stale columns (a
        // fault-affected destination scheduled into a later wave keeps
        // serving its pre-fault column — the bounded-staleness window) or
        // holes (a joined destination not yet migrated), so full
        // validation and terminal coverage apply to the chain's final
        // epoch, not here. The union check is the whole safety claim of
        // a wave, so every one is re-proved differentially.
        where << " (wave " << rec.wave_index << "/" << rec.wave_count << ")";
        if (old == nullptr) {
          add_violation(rep, "reconfig-union-cycle",
                        where.str() + ": wave epoch committed with no "
                                      "predecessor table");
        } else if (!pairwise_union_acyclic(net, *old, fresh)) {
          add_violation(rep, "reconfig-union-cycle",
                        where.str() +
                            ": intermediate wave epoch's pairwise union "
                            "CDG has a cycle");
        }
        return;
      }
      const ValidationReport v = validate_routing(net, fresh);
      if (!v.ok()) {
        add_violation(rep, "reconfig-invalid-table",
                      where.str() + ": " + v.detail);
      }
      for (NodeId t : net.terminals()) {
        if (!fresh.is_destination(t)) {
          std::ostringstream os;
          os << where.str() << ": alive terminal " << t
             << " is not a destination";
          add_violation(rep, "reconfig-invalid-table", os.str());
          break;
        }
      }
      if (rec.hitless && old != nullptr &&
          !pairwise_union_acyclic(net, *old, fresh)) {
        add_violation(rep, "reconfig-union-cycle",
                      where.str() +
                          ": swap claimed hitless but the pairwise "
                          "old+new union CDG has a cycle");
      }
    });
    const std::vector<TransitionRecord> records = mgr.replay(trace);
    for (const TransitionRecord& r : records) {
      if (r.committed_step == "noop") continue;
      ++rep.reconfig_transitions;
      if (r.hitless) ++rep.reconfig_hitless;
      if (r.drained) ++rep.reconfig_drained;
      if (r.wave_count > 0) {
        ++rep.reconfig_waved;
        rep.reconfig_wave_commits += r.wave_count;
      }
    }
    rep.validation = validate_routing(mgr.net(), *mgr.table());

    // Oracle self-test: break the final epoch's table and report what the
    // validator sees, under the same violation kinds as the static family
    // (so inject-bug reproducers minimize and replay identically); a
    // mutation nothing catches is a blind spot in the reconfig oracle too.
    if (spec.mutation != Mutation::kNone) {
      RoutingResult mutated = *mgr.table();
      ScenarioBuild final_build;
      final_build.net = mgr.net();
      apply_mutation(spec, final_build, mutated);
      const ValidationReport mv = validate_routing(final_build.net, mutated);
      if (!mv.connected) add_violation(rep, "unreachable", mv.detail);
      if (!mv.cycle_free) add_violation(rep, "path-revisits-node", mv.detail);
      if (!mv.vl_in_range) {
        add_violation(rep, "vl-overflow",
                      "mutated final epoch assigns a VL >= num_vls (" +
                          std::to_string(mutated.num_vls()) + ")");
      }
      if (mv.ok()) {
        add_violation(rep, "mutation-not-caught",
                      std::string("mutation '") +
                          mutation_name(spec.mutation) +
                          "' on the final epoch produced no violation");
      }
    }
  } catch (const std::exception& e) {
    add_violation(rep, "reconfig-event-crash", e.what());
  }
  if (build_out != nullptr) *build_out = std::move(build);
  return rep;
}

ScenarioSpec draw_reconfig_scenario(std::uint64_t base_seed,
                                    std::uint64_t index) {
  ScenarioSpec s = draw_scenario(base_seed, index);
  Rng rng(base_seed ^ kReconfigSalt ^ ((index + 1) * 0x9E3779B97F4A7C15ULL));
  const Engine engines[] = {Engine::kNue, Engine::kUpDown, Engine::kDfsssp,
                            Engine::kLash};
  s.engine = engines[rng.next_below(4)];
  s.mutation = Mutation::kNone;
  s.reconfig_events = 3 + rng.next_below(6);
  return s;
}

}  // namespace nue::fuzz
