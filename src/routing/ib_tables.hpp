// InfiniBand-style compiled forwarding state, the form a subnet manager
// (OpenSM, where Nue was eventually merged) actually programs into the
// hardware:
//
//  - LIDs: dense local identifiers assigned to every alive node,
//  - per-switch linear forwarding tables (LFT): LID -> output port,
//  - per-source SL tables: destination LID -> service level,
//  - per-port SL2VL maps: service level -> virtual lane.
//
// Compiling a RoutingResult into this representation and walking packets
// through it exercises exactly the indirections real fabric hardware uses;
// `verify_compiled` cross-checks the compiled state against the original
// routing function hop by hop.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

using Lid = std::uint16_t;
constexpr Lid kInvalidLid = 0xFFFF;
constexpr std::uint8_t kInvalidPort = 0xFF;

struct IbTables {
  // LID assignment (dense over alive nodes, 1-based like InfiniBand).
  std::vector<Lid> lid_of_node;    // node id -> LID (kInvalidLid if dead)
  std::vector<NodeId> node_of_lid; // LID -> node id (index 0 unused)

  // Port numbering: port p of node v is v's p-th alive outgoing channel.
  // port_channel[v][p] = the channel that port drives.
  std::vector<std::vector<ChannelId>> port_channel;

  // Per-switch LFT: lft[v][lid] = output port toward that LID.
  std::vector<std::vector<std::uint8_t>> lft;

  // Per-source-node SL table: sl[v][lid] = service level for traffic this
  // node originates toward LID (InfiniBand: resolved at path query time).
  std::vector<std::vector<std::uint8_t>> sl;

  // Per-(node, input port) SL2VL: sl2vl[v][in_port][sl] = VL. InfiniBand
  // switches support per-port-pair tables; per-input is enough for every
  // engine here (the per-hop torus scheme keys on the output's ring).
  std::vector<std::vector<std::vector<std::uint8_t>>> sl2vl;

  /// Per-hop VL schemes (Torus-2QoS-like): explicit per-node VL by
  /// destination LID, standing in for the per-port-pair SL2VL programming
  /// the real engine uses. Empty for fixed-VL engines.
  std::vector<std::vector<std::uint8_t>> vl_by_dest;

  std::uint32_t num_vls = 1;

  /// Number of forwarding entries across all switches (table footprint).
  std::size_t total_lft_entries() const {
    std::size_t n = 0;
    for (const auto& t : lft) n += t.size();
    return n;
  }
};

/// Compile a routing into InfiniBand-style state.
/// Per-hop VL schemes (Torus-2QoS-like) are expressible when the VL at a
/// node depends only on (node, destination): the SL carries the
/// destination-class and SL2VL resolves per node. kPerSource schemes map
/// SLs 1:1 to layers.
IbTables compile_ib_tables(const Network& net, const RoutingResult& rr);

/// Walk a packet from `src` to `dst` using ONLY the compiled state
/// (LFT lookups + SL2VL), returning the channels taken; throws on any
/// mismatch with the fabric (dead port, loop).
std::vector<ChannelId> ib_walk(const Network& net, const IbTables& tables,
                               NodeId src, NodeId dst);

/// Cross-check: every (terminal source, destination) pair must traverse
/// exactly the same channels and VLs as the original routing function.
bool verify_compiled(const Network& net, const RoutingResult& rr,
                     const IbTables& tables);

}  // namespace nue
