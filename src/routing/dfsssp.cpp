#include "routing/dfsssp.hpp"

#include <algorithm>
#include <memory>

#include "routing/cdg_index.hpp"
#include "routing/layer_cdg.hpp"
#include "routing/sssp_engine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nue {

namespace {

/// Compute the balanced per-destination trees and fill the next tables.
/// Trees of one update epoch run concurrently (see build_balanced_trees);
/// the table fill writes disjoint destination columns, so it is parallel
/// and exact at any thread count.
std::vector<DestTree> build_trees(const Network& net,
                                  const std::vector<NodeId>& dests,
                                  RoutingResult& rr, std::uint32_t epoch,
                                  std::uint32_t threads) {
  TELEM_SPAN("dfsssp.trees");
  std::vector<double> weights(net.num_channels(), 1.0);
  std::vector<DestTree> trees =
      build_balanced_trees(net, dests, weights, epoch, threads);
  parallel_for(resolve_threads(threads), dests.size(), [&](std::size_t di) {
    const DestTree& t = trees[di];
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (t.next[v] != kInvalidChannel) {
        rr.set_next(v, static_cast<std::uint32_t>(di), t.next[v]);
      }
    }
  });
  return trees;
}

/// True if the dependency pair (e_in, e_out) involves a terminal channel;
/// such pairs cannot participate in cycles and are excluded, matching the
/// paper's treatment of terminal access links.
bool touches_terminal(const Network& net, ChannelId a, ChannelId b) {
  return net.is_terminal(net.src(a)) || net.is_terminal(net.dst(a)) ||
         net.is_terminal(net.src(b)) || net.is_terminal(net.dst(b));
}

class DfssspSolver {
 public:
  DfssspSolver(const Network& net, const std::vector<NodeId>& dests,
               const DfssspOptions& opt, RoutingResult& rr)
      : net_(net), dests_(dests), opt_(opt), rr_(rr), idx_(net) {
    trees_ = build_trees(net, dests, rr, opt.sssp_epoch, opt.num_threads);
    hard_cap_ = opt.allow_exceed ? 64u : opt.max_vls;
  }

  DfssspStats solve() {
    layers_.emplace_back(std::make_unique<LayerCdg>(idx_));
    {
      TELEM_SPAN("dfsssp.seed");
      seed_layer0();
    }
    {
      TELEM_SPAN("dfsssp.break_cycles");
      for (std::uint32_t l = 0; l < layers_.size(); ++l) break_cycles(l);
    }
    DfssspStats st;
    st.vls_needed = static_cast<std::uint32_t>(layers_.size());
    st.paths_moved = moved_;
    if (opt_.balance_layers) {
      TELEM_SPAN("dfsssp.balance");
      balance();
    }
    if (telemetry::enabled()) {
      telemetry::counter("dfsssp.paths_moved").add_always(moved_);
    }
    return st;
  }

 private:
  /// All paths start in layer 0; seed its dependency counts from the tree
  /// structure: every source crossing channel e into node v continues via
  /// next(v), so the pair (e, next(v)) carries usage(e) paths. The usage
  /// vectors are pure per-tree reductions and run concurrently in blocks;
  /// the dependency counts are added serially in destination order.
  void seed_layer0() {
    const unsigned agents = resolve_threads(opt_.num_threads);
    const std::size_t block =
        std::max<std::size_t>(static_cast<std::size_t>(agents) * 4, 1);
    std::vector<std::vector<std::uint32_t>> usages(
        std::min(block, dests_.size()));
    for (std::size_t base = 0; base < dests_.size(); base += block) {
      const std::size_t count = std::min(block, dests_.size() - base);
      parallel_for(agents, count, [&](std::size_t i) {
        usages[i] = tree_channel_usage(net_, trees_[base + i]);
      });
      for (std::size_t i = 0; i < count; ++i) {
        seed_one_tree(trees_[base + i], usages[i]);
      }
    }
  }

  void seed_one_tree(const DestTree& t,
                     const std::vector<std::uint32_t>& usage) {
    for (NodeId w = 0; w < net_.num_nodes(); ++w) {
      const ChannelId e = t.next[w];
      if (e == kInvalidChannel || usage[e] == 0) continue;
      const NodeId v = net_.dst(e);
      if (v == t.dest) continue;
      const ChannelId out = t.next[v];
      NUE_DCHECK(out != kInvalidChannel);
      if (touches_terminal(net_, e, out)) continue;
      const auto eid = idx_.edge_id(e, out);
      NUE_DCHECK(eid != CdgIndex::kNoEdge);
      layers_[0]->add(eid, usage[e]);
    }
  }

  void break_cycles(std::uint32_t layer) {
    while (true) {
      const auto cycle = layers_[layer]->find_cycle();
      if (cycle.empty()) return;
      // Cut the cheapest edge of the cycle by moving all its paths up.
      CdgIndex::EdgeId victim = cycle[0];
      for (const auto e : cycle) {
        if (layers_[layer]->count(e) < layers_[layer]->count(victim)) {
          victim = e;
        }
      }
      while (layers_[layer]->count(victim) > 0) {
        move_one_path(layer, victim);
      }
    }
  }

  /// Locate one (source terminal, destination) path assigned to `layer`
  /// whose route uses dense edge `eid`, and move it to layer + 1.
  void move_one_path(std::uint32_t layer, CdgIndex::EdgeId eid) {
    // Recover (c1 -> c2) from the dense id: c1 owns the CSR row.
    const ChannelId c2 = idx_.edge_head(eid);
    ChannelId c1 = kInvalidChannel;
    {
      // Binary search the row containing eid.
      ChannelId lo = 0, hi = static_cast<ChannelId>(net_.num_channels());
      while (lo + 1 < hi) {
        const ChannelId mid = (lo + hi) / 2;
        if (idx_.first_edge(mid) <= eid) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      c1 = lo;
    }
    const NodeId w = net_.src(c1);
    for (std::size_t di = 0; di < dests_.size(); ++di) {
      const auto& t = trees_[di];
      if (t.next[w] != c1) continue;
      const NodeId v = net_.dst(c1);
      if (v == t.dest || t.next[v] != c2) continue;
      // Find a terminal in w's subtree still assigned to `layer`.
      const NodeId s = find_layer_terminal(t, w, static_cast<std::uint32_t>(di),
                                           layer);
      if (s == kInvalidNode) continue;
      move_path(s, static_cast<std::uint32_t>(di), layer, layer + 1);
      return;
    }
    NUE_CHECK_MSG(false, "dependency count without a matching path");
  }

  /// BFS down the in-tree from `start` looking for a terminal whose path
  /// toward the tree's destination is assigned to `layer`.
  NodeId find_layer_terminal(const DestTree& t, NodeId start,
                             std::uint32_t di, std::uint32_t layer) {
    bfs_.clear();
    bfs_.push_back(start);
    for (std::size_t i = 0; i < bfs_.size(); ++i) {
      const NodeId x = bfs_[i];
      if (net_.is_terminal(x) && x != t.dest &&
          rr_.vl(x, x, di) == layer) {
        return x;
      }
      for (ChannelId c : net_.out(x)) {
        const NodeId y = net_.dst(c);
        if (t.next[y] == reverse(c)) bfs_.push_back(y);
      }
    }
    return kInvalidNode;
  }

  /// Move path (s, di) out of layer `from` into the first higher layer
  /// whose CDG stays acyclic (first-fit packing keeps the VL demand close
  /// to the original engine's; always-next-layer re-clusters the evicted
  /// paths and inflates the demand).
  void move_path(NodeId s, std::uint32_t di, std::uint32_t from,
                 std::uint32_t first_candidate) {
    ++moved_;
    for (std::uint32_t to = first_candidate;; ++to) {
      if (to >= hard_cap_) {
        throw RoutingFailure("DFSSSP exceeds the virtual-lane limit of " +
                             std::to_string(hard_cap_));
      }
      while (layers_.size() <= to) {
        layers_.emplace_back(std::make_unique<LayerCdg>(idx_));
      }
      // Tentatively place into `to`, rolling back on a cycle.
      std::vector<CdgIndex::EdgeId> added;
      bool ok = true;
      for_each_pair(s, di, [&](ChannelId a, ChannelId b) {
        if (!ok) return;
        const auto eid = idx_.edge_id(a, b);
        NUE_DCHECK(eid != CdgIndex::kNoEdge);
        if (layers_[to]->count(eid) == 0 &&
            layers_[to]->creates_cycle(a, b)) {
          ok = false;
          return;
        }
        layers_[to]->add(eid);
        added.push_back(eid);
      });
      if (!ok) {
        for (const auto eid : added) layers_[to]->remove(eid);
        continue;
      }
      rr_.set_source_vl(s, di, static_cast<std::uint8_t>(to));
      for_each_pair(s, di, [&](ChannelId a, ChannelId b) {
        layers_[from]->remove(idx_.edge_id(a, b));
      });
      return;
    }
  }

  template <typename Cb>
  void for_each_pair(NodeId s, std::uint32_t di, Cb&& cb) {
    const auto& t = trees_[di];
    ChannelId prev = kInvalidChannel;
    NodeId at = s;
    while (at != t.dest) {
      const ChannelId c = t.next[at];
      if (prev != kInvalidChannel && !touches_terminal(net_, prev, c)) {
        cb(prev, c);
      }
      prev = c;
      at = net_.dst(c);
    }
  }

  /// Spread paths from the heaviest layers into unused layers (the
  /// "DFSSSP uses all available VLs for balancing" behaviour [5, 8]).
  void balance() {
    if (layers_.size() >= opt_.max_vls) return;
    const auto terminals = net_.terminals();
    const std::uint32_t first_new = static_cast<std::uint32_t>(layers_.size());
    for (std::uint32_t target = first_new; target < opt_.max_vls; ++target) {
      layers_.emplace_back(std::make_unique<LayerCdg>(idx_));
      // Round-robin over destinations: move whole per-destination path
      // groups out of layer (target % first_new) while they stay acyclic.
      const std::uint32_t source_layer = target % first_new;
      std::size_t budget = dests_.size() / opt_.max_vls + 1;
      for (std::size_t di = target; di < dests_.size() && budget > 0;
           di += opt_.max_vls, --budget) {
        try_move_dest_group(static_cast<std::uint32_t>(di), source_layer,
                            target, terminals);
      }
    }
  }

  /// Move every path of destination di currently in `from` to `to` if the
  /// target layer stays acyclic; otherwise leave everything in place.
  void try_move_dest_group(std::uint32_t di, std::uint32_t from,
                           std::uint32_t to,
                           const std::vector<NodeId>& terminals) {
    // Collect the movable sources.
    std::vector<NodeId> movable;
    for (NodeId s : terminals) {
      if (s != dests_[di] && rr_.vl(s, s, di) == from) movable.push_back(s);
    }
    if (movable.empty()) return;
    // Tentatively add all their pairs to `to`, checking incrementally.
    std::vector<CdgIndex::EdgeId> added;
    bool ok = true;
    for (NodeId s : movable) {
      for_each_pair(s, di, [&](ChannelId a, ChannelId b) {
        if (!ok) return;
        const auto eid = idx_.edge_id(a, b);
        if (layers_[to]->count(eid) == 0 &&
            layers_[to]->creates_cycle(a, b)) {
          ok = false;
          return;
        }
        layers_[to]->add(eid);
        added.push_back(eid);
      });
      if (!ok) break;
    }
    if (!ok) {
      for (const auto eid : added) layers_[to]->remove(eid);
      return;
    }
    // Commit: flip VLs and remove from the old layer.
    for (NodeId s : movable) {
      rr_.set_source_vl(s, di, static_cast<std::uint8_t>(to));
      for_each_pair(s, di, [&](ChannelId a, ChannelId b) {
        layers_[from]->remove(idx_.edge_id(a, b));
      });
    }
  }

  const Network& net_;
  const std::vector<NodeId>& dests_;
  DfssspOptions opt_;
  RoutingResult& rr_;
  CdgIndex idx_;
  std::vector<DestTree> trees_;
  std::vector<std::unique_ptr<LayerCdg>> layers_;
  std::vector<NodeId> bfs_;
  std::size_t moved_ = 0;
  std::uint32_t hard_cap_ = 8;
};

}  // namespace

RoutingResult route_minhop(const Network& net,
                           const std::vector<NodeId>& dests) {
  RoutingResult rr(net.num_nodes(), dests, 1, VlMode::kPerDest);
  build_trees(net, dests, rr, /*epoch=*/1, /*threads=*/0);
  return rr;
}

RoutingResult route_dfsssp(const Network& net,
                           const std::vector<NodeId>& dests,
                           const DfssspOptions& opt, DfssspStats* stats) {
  TELEM_SPAN("dfsssp.route");
  // VLs are per (source, destination) path; allocate the table with the cap
  // (allow_exceed may grow past it, clamped to 64 layers for the VL field).
  const std::uint32_t table_vls = opt.allow_exceed ? 64 : opt.max_vls;
  RoutingResult rr(net.num_nodes(), dests, table_vls, VlMode::kPerSource);
  DfssspSolver solver(net, dests, opt, rr);
  const DfssspStats st = solver.solve();
  if (stats) *stats = st;
  return rr;
}

}  // namespace nue
