// Dense index of the *complete* channel dependency graph (Definition 6):
// vertices are the channels of the network, and channel c_p has an edge to
// every channel c_q leaving dst(c_p) except U-turns back to src(c_p)
// (including U-turns over parallel channels of a multigraph).
//
// DFSSSP and LASH use this as a dense edge-id space for per-layer
// dependency counting; Nue builds its per-layer state arrays on top of it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/network.hpp"
#include "util/error.hpp"

namespace nue {

class CdgIndex {
 public:
  using EdgeId = std::uint32_t;
  static constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

  explicit CdgIndex(const Network& net) {
    const std::size_t nc = net.num_channels();
    row_begin_.assign(nc + 1, 0);
    for (ChannelId c = 0; c < nc; ++c) {
      row_begin_[c + 1] = row_begin_[c];
      if (!net.channel_alive(c)) continue;
      for (ChannelId s : net.out(net.dst(c))) {
        if (net.dst(s) == net.src(c)) continue;  // U-turn (any parallel)
        ++row_begin_[c + 1];
      }
    }
    succ_.resize(row_begin_[nc]);
    for (ChannelId c = 0; c < nc; ++c) {
      if (!net.channel_alive(c)) continue;
      EdgeId at = row_begin_[c];
      for (ChannelId s : net.out(net.dst(c))) {
        if (net.dst(s) == net.src(c)) continue;
        succ_[at++] = s;
      }
    }
  }

  std::size_t num_edges() const { return succ_.size(); }
  std::size_t num_channels() const { return row_begin_.size() - 1; }

  /// Successor channels of channel c (edges of the complete CDG).
  std::span<const ChannelId> successors(ChannelId c) const {
    return {succ_.data() + row_begin_[c],
            succ_.data() + row_begin_[c + 1]};
  }

  EdgeId first_edge(ChannelId c) const { return row_begin_[c]; }

  /// Dense id of edge (c1 -> c2); kNoEdge if absent (U-turn or dead).
  EdgeId edge_id(ChannelId c1, ChannelId c2) const {
    for (EdgeId e = row_begin_[c1]; e < row_begin_[c1 + 1]; ++e) {
      if (succ_[e] == c2) return e;
    }
    return kNoEdge;
  }

  /// The successor channel of a dense edge id.
  ChannelId edge_head(EdgeId e) const { return succ_[e]; }

 private:
  std::vector<EdgeId> row_begin_;
  std::vector<ChannelId> succ_;
};

}  // namespace nue
