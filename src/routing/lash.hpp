// LASH — LAyered SHortest path routing [32].
//
// Shortest paths are computed per destination switch (one balanced tree
// each, so tables stay destination-based); every (source switch,
// destination switch) pair is then assigned to the first virtual layer
// whose channel dependency graph stays acyclic when the pair's path is
// added. Pairs are processed shortest-first (the standard packing
// heuristic). Terminals inherit their switches' layer.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

struct LashOptions {
  std::uint32_t max_vls = 8;
  /// Report-only mode: keep opening layers past max_vls (up to 64).
  bool allow_exceed = false;
  /// Weight-update epoch of the per-switch balanced trees (see
  /// DfssspOptions::sssp_epoch); 1 = exact serial feedback loop.
  std::uint32_t sssp_epoch = 1;
  /// Worker threads (0 = process default from --threads, 1 = serial).
  /// The layer packing itself stays sequential (it is order-defined);
  /// tree building, table fill, and VL assignment parallelize exactly.
  std::uint32_t num_threads = 0;
};

struct LashStats {
  std::uint32_t vls_needed = 1;
};

RoutingResult route_lash(const Network& net, const std::vector<NodeId>& dests,
                         const LashOptions& opt = {},
                         LashStats* stats = nullptr);

}  // namespace nue
