// LASH — LAyered SHortest path routing [32].
//
// Shortest paths are computed per destination switch (one balanced tree
// each, so tables stay destination-based); every (source switch,
// destination switch) pair is then assigned to the first virtual layer
// whose channel dependency graph stays acyclic when the pair's path is
// added. Pairs are processed shortest-first (the standard packing
// heuristic). Terminals inherit their switches' layer.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

struct LashOptions {
  std::uint32_t max_vls = 8;
  /// Report-only mode: keep opening layers past max_vls (up to 64).
  bool allow_exceed = false;
};

struct LashStats {
  std::uint32_t vls_needed = 1;
};

RoutingResult route_lash(const Network& net, const std::vector<NodeId>& dests,
                         const LashOptions& opt = {},
                         LashStats* stats = nullptr);

}  // namespace nue
