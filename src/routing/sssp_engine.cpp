#include "routing/sssp_engine.hpp"

#include <limits>

#include "heap/dary_heap.hpp"
#include "util/error.hpp"

namespace nue {

DestTree dest_tree(const Network& net, NodeId dest,
                   const std::vector<double>& weights) {
  NUE_CHECK(net.node_alive(dest));
  NUE_CHECK(weights.size() == net.num_channels());
  DestTree t;
  t.dest = dest;
  t.next.assign(net.num_nodes(), kInvalidChannel);
  t.distance.assign(net.num_nodes(),
                    std::numeric_limits<double>::infinity());
  t.settle_order.reserve(net.num_alive_nodes());
  DaryHeap<double> heap(net.num_nodes());
  t.distance[dest] = 0.0;
  heap.insert(dest, 0.0);
  while (!heap.empty()) {
    const NodeId v = heap.extract_min();
    t.settle_order.push_back(v);
    // Relax the predecessors of v: traffic channel e = (w -> v) is the
    // reverse of the out-channel (v -> w).
    for (ChannelId c : net.out(v)) {
      const NodeId w = net.dst(c);
      const ChannelId e = reverse(c);
      NUE_DCHECK(weights[e] > 0.0);
      const double nd = t.distance[v] + kHopWeight + weights[e];
      if (nd < t.distance[w]) {
        t.distance[w] = nd;
        t.next[w] = e;
        heap.insert_or_decrease(w, nd);
      }
    }
  }
  return t;
}

std::vector<std::uint32_t> tree_channel_usage(const Network& net,
                                              const DestTree& tree) {
  std::vector<std::uint32_t> usage(net.num_channels(), 0);
  std::vector<std::uint32_t> subtree(net.num_nodes(), 0);
  // Farthest-first accumulation of terminal counts down the in-tree.
  for (auto it = tree.settle_order.rbegin(); it != tree.settle_order.rend();
       ++it) {
    const NodeId v = *it;
    if (v == tree.dest) continue;
    std::uint32_t cnt = subtree[v];
    if (net.is_terminal(v)) ++cnt;
    if (cnt == 0) continue;
    const ChannelId e = tree.next[v];
    NUE_DCHECK(e != kInvalidChannel);
    usage[e] += cnt;
    subtree[net.dst(e)] += cnt;
  }
  return usage;
}

void apply_weight_update(std::vector<double>& weights,
                         const std::vector<std::uint32_t>& usage) {
  NUE_CHECK(weights.size() == usage.size());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    weights[c] += static_cast<double>(usage[c]);
  }
}

}  // namespace nue
