#include "routing/sssp_engine.hpp"

#include <algorithm>
#include <limits>

#include "heap/dary_heap.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nue {

namespace {

/// dest_tree with caller-provided heap scratch (cleared on entry), so one
/// execution agent can reuse its heap across the trees of an epoch.
DestTree dest_tree_with(const Network& net, NodeId dest,
                        const std::vector<double>& weights,
                        DaryHeap<double>& heap) {
  NUE_CHECK(net.node_alive(dest));
  NUE_CHECK(weights.size() == net.num_channels());
  heap.clear();
  DestTree t;
  t.dest = dest;
  t.next.assign(net.num_nodes(), kInvalidChannel);
  t.distance.assign(net.num_nodes(),
                    std::numeric_limits<double>::infinity());
  t.settle_order.reserve(net.num_alive_nodes());
  t.distance[dest] = 0.0;
  heap.insert(dest, 0.0);
  // Decrease-keys are tallied locally and flushed once per tree so the
  // hot relaxation loop never touches a shared atomic.
  std::uint64_t decrease_keys = 0;
  while (!heap.empty()) {
    const NodeId v = heap.extract_min();
    t.settle_order.push_back(v);
    // Relax the predecessors of v: traffic channel e = (w -> v) is the
    // reverse of the out-channel (v -> w).
    for (ChannelId c : net.out(v)) {
      const NodeId w = net.dst(c);
      const ChannelId e = reverse(c);
      NUE_DCHECK(weights[e] > 0.0);
      const double nd = t.distance[v] + kHopWeight + weights[e];
      if (nd < t.distance[w]) {
        if (t.next[w] != kInvalidChannel) ++decrease_keys;
        t.distance[w] = nd;
        t.next[w] = e;
        heap.insert_or_decrease(w, nd);
      }
    }
  }
  if (decrease_keys != 0 && telemetry::enabled()) {
    static auto& counter = telemetry::counter("sssp.heap_decrease_keys");
    counter.add_always(decrease_keys);
  }
  return t;
}

}  // namespace

DestTree dest_tree(const Network& net, NodeId dest,
                   const std::vector<double>& weights) {
  DaryHeap<double> heap(net.num_nodes());
  return dest_tree_with(net, dest, weights, heap);
}

std::vector<DestTree> build_balanced_trees(const Network& net,
                                           const std::vector<NodeId>& dests,
                                           std::vector<double>& weights,
                                           std::uint32_t epoch,
                                           std::uint32_t threads) {
  TELEM_SPAN("sssp.balanced_trees");
  if (epoch == 0) epoch = 1;
  const unsigned agents = resolve_threads(threads);
  std::vector<DestTree> trees(dests.size());
  std::vector<std::vector<std::uint32_t>> usages(
      std::min<std::size_t>(epoch, dests.size()));
  for (std::size_t base = 0; base < dests.size(); base += epoch) {
    const std::size_t count =
        std::min<std::size_t>(epoch, dests.size() - base);
    // Within the epoch every tree reads the same weight snapshot; the
    // chunk grain only decides which agent computes which trees (heap
    // scratch is fully reset per tree), so results are thread-agnostic.
    const std::size_t grain = (count + agents - 1) / agents;
    parallel_for_chunks(agents, count, grain,
                        [&](std::size_t b, std::size_t e) {
                          DaryHeap<double> heap(net.num_nodes());
                          for (std::size_t i = b; i < e; ++i) {
                            trees[base + i] = dest_tree_with(
                                net, dests[base + i], weights, heap);
                            usages[i] =
                                tree_channel_usage(net, trees[base + i]);
                          }
                        });
    for (std::size_t i = 0; i < count; ++i) {
      apply_weight_update(weights, usages[i]);
    }
  }
  return trees;
}

std::vector<std::uint32_t> tree_channel_usage(const Network& net,
                                              const DestTree& tree) {
  std::vector<std::uint32_t> usage(net.num_channels(), 0);
  std::vector<std::uint32_t> subtree(net.num_nodes(), 0);
  // Farthest-first accumulation of terminal counts down the in-tree.
  for (auto it = tree.settle_order.rbegin(); it != tree.settle_order.rend();
       ++it) {
    const NodeId v = *it;
    if (v == tree.dest) continue;
    std::uint32_t cnt = subtree[v];
    if (net.is_terminal(v)) ++cnt;
    if (cnt == 0) continue;
    const ChannelId e = tree.next[v];
    NUE_DCHECK(e != kInvalidChannel);
    usage[e] += cnt;
    subtree[net.dst(e)] += cnt;
  }
  return usage;
}

void apply_weight_update(std::vector<double>& weights,
                         const std::vector<std::uint32_t>& usage) {
  NUE_CHECK(weights.size() == usage.size());
  for (std::size_t c = 0; c < weights.size(); ++c) {
    weights[c] += static_cast<double>(usage[c]);
  }
}

}  // namespace nue
