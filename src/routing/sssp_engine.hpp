// Shared engine for SSSP-based routing functions (MinHop-like, DFSSSP,
// LASH's per-destination trees): weighted single-destination shortest-path
// trees in traffic orientation with DFSSSP-style channel-weight updates
// for global path balancing [8, 17].
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"

namespace nue {

/// Shortest-path in-tree toward one destination.
/// next[v] = first channel of v's route toward the destination (traffic
/// direction), kInvalidChannel for the destination itself and dead nodes.
struct DestTree {
  NodeId dest = kInvalidNode;
  std::vector<ChannelId> next;
  std::vector<double> distance;
  /// Nodes in settle order (destination first); farthest-first iteration
  /// is the reverse.
  std::vector<NodeId> settle_order;
};

/// Hop-count dominance constant: effective channel cost is
/// kHopWeight + weight, so Dijkstra minimizes hop count first and uses the
/// accumulated balancing weights only to break ties among shortest paths —
/// DFSSSP/LASH are shortest-path routings (§5.1 reports max length 6 = the
/// topological optimum for them). Balancing weights stay far below this
/// (they sum path counts, < 1e9 in any of our experiments), and doubles
/// keep exact integer semantics till 2^53.
constexpr double kHopWeight = 1e10;

/// Dijkstra toward `dest` over `weights` (indexed by channel, traffic
/// direction), hop-minimal with weight tiebreak. Deterministic: exact ties
/// keep the first-found channel.
DestTree dest_tree(const Network& net, NodeId dest,
                   const std::vector<double>& weights);

/// Balanced tree set with the DFSSSP weight feedback, computed in update
/// epochs: the `epoch` destinations of one epoch all see the weight
/// snapshot taken at the epoch boundary and are therefore independent —
/// they run concurrently on up to `threads` workers (0 = global default),
/// each with its own heap/dist/pred scratch. The weight updates are then
/// applied serially in destination order, so the result depends only on
/// `epoch`, never on the thread count. epoch == 1 reproduces the fully
/// serial feedback loop (update after every tree) bit-for-bit.
std::vector<DestTree> build_balanced_trees(const Network& net,
                                           const std::vector<NodeId>& dests,
                                           std::vector<double>& weights,
                                           std::uint32_t epoch,
                                           std::uint32_t threads);

/// Number of terminal sources whose route crosses each channel of the
/// tree; used for both weight updates and forwarding-index accounting.
std::vector<std::uint32_t> tree_channel_usage(const Network& net,
                                              const DestTree& tree);

/// DFSSSP weight update: weights[c] += usage[c] for every used channel.
void apply_weight_update(std::vector<double>& weights,
                         const std::vector<std::uint32_t>& usage);

}  // namespace nue
