// MinHop-like balanced shortest-path routing and DFSSSP [8]:
// deadlock-free single-source shortest-path routing. DFSSSP computes
// weighted shortest-path trees with balancing weight updates, then breaks
// cycles in the induced channel dependency graph by moving individual
// (source, destination) paths into higher virtual layers.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

/// Balanced SSSP routing without any deadlock avoidance (1 VL).
/// This is the "fastest possible oblivious routing" control: it is NOT
/// deadlock-free on topologies with cyclic dependencies (e.g. tori).
RoutingResult route_minhop(const Network& net,
                           const std::vector<NodeId>& dests);

struct DfssspOptions {
  std::uint32_t max_vls = 8;
  /// If true, never fail: keep opening layers past max_vls (up to 64) and
  /// report the demand in DfssspStats (used to reproduce Fig. 1b / the VC
  /// annotations of Fig. 10). If false, throw RoutingFailure when the cap
  /// is exceeded — the paper's "DFSSSP is inapplicable" outcome.
  bool allow_exceed = false;
  /// Spread paths over all max_vls layers after cycle-breaking to improve
  /// balance (the "DFSSSP usually uses all eight available VCs" behaviour).
  bool balance_layers = true;
  /// Weight-update epoch for the balanced SSSP sweep: the trees of one
  /// epoch share a weight snapshot and are computed concurrently; updates
  /// apply serially in destination order afterwards. 1 (default) is the
  /// exact serial feedback loop of the original engine; larger epochs
  /// trade a slightly staler balance signal for parallelism. The routing
  /// depends only on this value, never on the thread count.
  std::uint32_t sssp_epoch = 1;
  /// Worker threads (0 = process default from --threads, 1 = serial).
  std::uint32_t num_threads = 0;
};

struct DfssspStats {
  std::uint32_t vls_needed = 1;   // layers required for deadlock-freedom
  std::size_t paths_moved = 0;    // paths shifted during cycle-breaking
};

RoutingResult route_dfsssp(const Network& net,
                           const std::vector<NodeId>& dests,
                           const DfssspOptions& opt = {},
                           DfssspStats* stats = nullptr);

}  // namespace nue
