#include "routing/dump.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "routing/validate.hpp"

namespace nue {

void write_forwarding_tables(std::ostream& os, const Network& net,
                             const RoutingResult& rr) {
  os << "# forwarding tables: " << rr.destinations().size()
     << " destinations, " << rr.num_vls() << " VL(s)\n";
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v) || net.is_terminal(v)) continue;
    os << "switch " << v << ":\n";
    for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
      const NodeId d = rr.destinations()[di];
      if (d == v) continue;
      const ChannelId c = rr.next(v, static_cast<std::uint32_t>(di));
      if (c == kInvalidChannel) continue;
      os << "  dest " << d << " -> channel " << c << " (next hop "
         << net.dst(c) << ") vl "
         << static_cast<int>(rr.vl(v, v, static_cast<std::uint32_t>(di)))
         << "\n";
    }
  }
}

void write_network_dot(std::ostream& os, const Network& net) {
  os << "graph fabric {\n  overlap=false;\n";
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) continue;
    os << "  n" << v << " [shape="
       << (net.is_switch(v) ? "box" : "circle") << "];\n";
  }
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (!net.channel_alive(c)) continue;
    os << "  n" << net.src(c) << " -- n" << net.dst(c) << ";\n";
  }
  os << "}\n";
}

void write_cdg_dot(std::ostream& os, const Network& net,
                   const RoutingResult& rr, std::vector<NodeId> sources) {
  if (sources.empty()) sources = net.terminals();
  const auto adj = induced_cdg(net, rr, sources);
  os << "digraph cdg {\n  node [shape=ellipse];\n";
  // Vertex id = channel * (num_vls + 1) + slot; slot num_vls is the
  // out-of-range-VL overflow vertex (see induced_cdg).
  const std::uint32_t stride = rr.num_vls() + 1;
  auto label = [&](std::uint32_t vertex) {
    const auto c = static_cast<ChannelId>(vertex / stride);
    const auto vl = vertex % stride;
    os << "\"c" << net.src(c) << "_" << net.dst(c) << "_";
    if (vl == rr.num_vls()) {
      os << "vlOVF\"";
    } else {
      os << "vl" << vl << "\"";
    }
  };
  for (std::uint32_t v = 0; v < adj.size(); ++v) {
    for (const std::uint32_t w : adj[v]) {
      os << "  ";
      label(v);
      os << " -> ";
      label(w);
      os << ";\n";
    }
  }
  os << "}\n";
}

void write_routing(std::ostream& os, const Network& net,
                    const RoutingResult& rr) {
  os << "routing v1\n";
  os << "nodes " << rr.num_nodes() << "\n";
  os << "vls " << rr.num_vls() << "\n";
  os << "mode " << static_cast<int>(rr.vl_mode()) << "\n";
  os << "dests";
  for (NodeId d : rr.destinations()) os << " " << d;
  os << "\n";
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    os << "column " << di << "\n";
    for (NodeId v = 0; v < rr.num_nodes(); ++v) {
      if (!net.node_alive(v) || v == rr.destinations()[di]) continue;
      const ChannelId c = rr.next(v, static_cast<std::uint32_t>(di));
      if (c == kInvalidChannel) continue;
      os << v << " " << c;
      switch (rr.vl_mode()) {
        case VlMode::kPerDest:
          break;  // one VL per column, written below
        case VlMode::kPerSource:
          os << " " << static_cast<int>(
              rr.vl(v, v, static_cast<std::uint32_t>(di)));
          break;
        case VlMode::kPerHop:
          os << " " << static_cast<int>(
              rr.vl(v, v, static_cast<std::uint32_t>(di)));
          break;
      }
      os << "\n";
    }
    if (rr.vl_mode() == VlMode::kPerDest) {
      const NodeId d = rr.destinations()[di];
      os << "vl " << static_cast<int>(
          rr.vl(d, d, static_cast<std::uint32_t>(di))) << "\n";
    }
    os << "end\n";
  }
}

RoutingResult read_routing(std::istream& is, const Network& net) {
  std::string tok;
  auto expect = [&](const std::string& want) {
    NUE_CHECK_MSG(static_cast<bool>(is >> tok) && tok == want,
                  "routing file: expected '" << want << "', got '" << tok
                                             << "'");
  };
  expect("routing");
  expect("v1");
  expect("nodes");
  std::size_t nodes;
  is >> nodes;
  NUE_CHECK_MSG(nodes == net.num_nodes(),
                "routing file is for a different fabric");
  expect("vls");
  std::uint32_t vls;
  is >> vls;
  expect("mode");
  int mode_int;
  is >> mode_int;
  const auto mode = static_cast<VlMode>(mode_int);
  expect("dests");
  std::string line;
  std::getline(is, line);
  std::istringstream ds(line);
  std::vector<NodeId> dests;
  NodeId d;
  while (ds >> d) dests.push_back(d);
  RoutingResult rr(nodes, dests, vls, mode);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    expect("column");
    std::size_t got_di;
    is >> got_di;
    NUE_CHECK(got_di == di);
    while (is >> tok) {
      if (tok == "end") break;
      if (tok == "vl") {
        int v;
        is >> v;
        rr.set_dest_vl(static_cast<std::uint32_t>(di),
                       static_cast<std::uint8_t>(v));
        continue;
      }
      const NodeId at = static_cast<NodeId>(std::stoul(tok));
      ChannelId c;
      is >> c;
      rr.set_next(at, static_cast<std::uint32_t>(di), c);
      if (mode == VlMode::kPerSource || mode == VlMode::kPerHop) {
        int v;
        is >> v;
        if (mode == VlMode::kPerSource) {
          rr.set_source_vl(at, static_cast<std::uint32_t>(di),
                           static_cast<std::uint8_t>(v));
        } else {
          rr.set_hop_vl(at, static_cast<std::uint32_t>(di),
                        static_cast<std::uint8_t>(v));
        }
      }
    }
  }
  return rr;
}

}  // namespace nue
