#include "routing/ib_tables.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nue {

IbTables compile_ib_tables(const Network& net, const RoutingResult& rr) {
  IbTables t;
  t.num_vls = rr.num_vls();

  // --- LID assignment -------------------------------------------------------
  t.lid_of_node.assign(net.num_nodes(), kInvalidLid);
  t.node_of_lid.push_back(kInvalidNode);  // LID 0 is reserved, as in IB
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) continue;
    t.lid_of_node[v] = static_cast<Lid>(t.node_of_lid.size());
    t.node_of_lid.push_back(v);
  }
  const std::size_t lid_space = t.node_of_lid.size();
  NUE_CHECK_MSG(lid_space <= 0xC000, "LID space exhausted");

  // --- ports ----------------------------------------------------------------
  t.port_channel.assign(net.num_nodes(), {});
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) continue;
    t.port_channel[v].assign(net.out(v).begin(), net.out(v).end());
    NUE_CHECK_MSG(t.port_channel[v].size() < kInvalidPort,
                  "switch radix exceeds the port-number encoding");
  }

  // --- LFTs + per-destination VL helper table --------------------------------
  t.lft.assign(net.num_nodes(), {});
  const bool per_hop = rr.vl_mode() == VlMode::kPerHop;
  std::vector<std::vector<std::uint8_t>> vl_by_dest;
  if (per_hop) vl_by_dest.assign(net.num_nodes(), {});
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v) || !net.is_switch(v)) continue;
    t.lft[v].assign(lid_space, kInvalidPort);
    if (per_hop) vl_by_dest[v].assign(lid_space, 0);
    for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
      const NodeId d = rr.destinations()[di];
      if (d == v || !net.node_alive(d)) continue;
      const ChannelId c = rr.next(v, static_cast<std::uint32_t>(di));
      if (c == kInvalidChannel) continue;
      const auto& ports = t.port_channel[v];
      const auto it = std::find(ports.begin(), ports.end(), c);
      NUE_CHECK(it != ports.end());
      t.lft[v][t.lid_of_node[d]] =
          static_cast<std::uint8_t>(it - ports.begin());
      if (per_hop) {
        vl_by_dest[v][t.lid_of_node[d]] =
            rr.vl(v, v, static_cast<std::uint32_t>(di));
      }
    }
  }

  // --- SL tables (per source node) -------------------------------------------
  t.sl.assign(net.num_nodes(), {});
  for (NodeId s = 0; s < net.num_nodes(); ++s) {
    if (!net.node_alive(s)) continue;
    t.sl[s].assign(lid_space, 0);
    for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
      const NodeId d = rr.destinations()[di];
      if (!net.node_alive(d)) continue;
      // For kPerDest/kPerSource the VL is fixed at injection: the SL *is*
      // the VL. Per-hop schemes resolve VLs via vl_by_dest below.
      t.sl[s][t.lid_of_node[d]] =
          per_hop ? 0 : rr.vl(s, s, static_cast<std::uint32_t>(di));
    }
  }

  // --- SL2VL ------------------------------------------------------------------
  // Identity maps: SL n -> VL n on every input port (sufficient for the
  // fixed-VL engines; the per-hop torus scheme uses vl_by_dest instead,
  // standing in for Torus-2QoS's per-port-pair SL2VL programming).
  t.sl2vl.assign(net.num_nodes(), {});
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) continue;
    std::vector<std::uint8_t> identity(16);
    for (std::uint8_t s = 0; s < 16; ++s) identity[s] = s % t.num_vls;
    t.sl2vl[v].assign(std::max<std::size_t>(t.port_channel[v].size(), 1),
                      identity);
  }
  t.vl_by_dest = std::move(vl_by_dest);
  return t;
}

std::vector<ChannelId> ib_walk(const Network& net, const IbTables& tables,
                               NodeId src, NodeId dst) {
  const Lid dlid = tables.lid_of_node[dst];
  NUE_CHECK(dlid != kInvalidLid);
  std::vector<ChannelId> path;
  NodeId at = src;
  std::uint8_t in_port = 0;
  while (at != dst) {
    ChannelId c;
    if (net.is_terminal(at)) {
      c = tables.port_channel[at].at(0);
    } else {
      const std::uint8_t port = tables.lft[at].at(dlid);
      NUE_CHECK_MSG(port != kInvalidPort,
                    "LFT hole at node " << at << " toward LID " << dlid);
      c = tables.port_channel[at].at(port);
    }
    NUE_CHECK(net.channel_alive(c));
    path.push_back(c);
    in_port = 0;  // tracked for SL2VL fidelity; identity maps ignore it
    at = net.dst(c);
    NUE_CHECK_MSG(path.size() <= net.num_nodes(), "LFT loop");
  }
  (void)in_port;
  return path;
}

bool verify_compiled(const Network& net, const RoutingResult& rr,
                     const IbTables& tables) {
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    if (!net.node_alive(d)) continue;
    for (NodeId s : net.terminals()) {
      if (s == d) continue;
      const auto expect = rr.trace(net, s, d);
      const auto got = ib_walk(net, tables, s, d);
      if (expect != got) return false;
      // VL fidelity: recompute per hop.
      const Lid dlid = tables.lid_of_node[d];
      for (const ChannelId c : got) {
        const NodeId at = net.src(c);
        const std::uint8_t want = rr.vl(at, s, static_cast<std::uint32_t>(di));
        std::uint8_t have;
        if (!tables.vl_by_dest.empty() && net.is_switch(at) &&
            !tables.vl_by_dest[at].empty()) {
          have = tables.vl_by_dest[at][dlid];
        } else if (!tables.vl_by_dest.empty()) {
          have = want;  // terminal hop of a per-hop scheme: VL immaterial
        } else {
          const std::uint8_t sl = tables.sl[s][dlid];
          have = tables.sl2vl[at][0][sl];
        }
        if (have != want) return false;
      }
    }
  }
  return true;
}

}  // namespace nue
