// Torus-2QoS-like topology-aware routing [25]: dimension-order routing on
// a (possibly faulty) torus with the classic dateline virtual-lane split
// (VL0 before crossing a ring's dateline, VL1 after — realized per hop via
// the kPerHop VL tables, standing in for Torus-2QoS's SL2VL mechanics).
//
// Fault tolerance matches the real engine's envelope: a single failure in
// a ring is routed around using the other ring direction (the broken ring
// is a path and needs no dateline, so it runs entirely on VL1); a second
// failure in the same ring makes the routing fail — exactly the limitation
// the paper cites in Section 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "topology/torus.hpp"

namespace nue {

/// Routes `dests` on the torus described by `spec` (the network may have
/// injected link/switch failures). Uses 2 VLs. Throws RoutingFailure when
/// a required ring is broken in both directions.
RoutingResult route_torus_qos(const Network& net, const TorusSpec& spec,
                              const std::vector<NodeId>& dests);

}  // namespace nue
