// Up*/Down* routing [29]: a BFS spanning tree assigns every channel an
// "up" (toward the root) or "down" direction; legal routes climb first and
// descend after — a down->up turn is never allowed, which breaks every
// dependency cycle with a single virtual lane.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

struct UpDownOptions {
  /// Root switch for the BFS levels; kInvalidNode selects a pseudo-center
  /// of the fabric (double-BFS midpoint heuristic).
  NodeId root = kInvalidNode;
  /// Use a DFS spanning tree's preorder numbers for the up/down
  /// orientation instead of BFS levels — the UD_DFS variant of Sancho et
  /// al. [28], which often balances the routing restrictions better on
  /// irregular fabrics (compared in the ablation bench).
  bool dfs_tree = false;
};

RoutingResult route_updown(const Network& net,
                           const std::vector<NodeId>& dests,
                           const UpDownOptions& opt = {});

/// The pseudo-center used when no root is given (exposed for tests and
/// for Nue's comparison benches).
NodeId pseudo_center(const Network& net);

}  // namespace nue
