// Human-readable exports: OpenSM-style forwarding-table dumps (akin to
// `osm-lid-matrix.dump` / SL2VL listings) and Graphviz renderings of the
// network and of an induced channel dependency graph — handy when
// debugging a routing engine or teaching the CDG model.
#pragma once

#include <iosfwd>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

/// Per-node forwarding table dump: one block per node listing
/// `dest -> out-channel (next hop) vl`. Ordered and deterministic.
void write_forwarding_tables(std::ostream& os, const Network& net,
                             const RoutingResult& rr);

/// GraphViz (dot) rendering of the network: switches as boxes, terminals
/// as circles, one undirected edge per duplex link.
void write_network_dot(std::ostream& os, const Network& net);

/// GraphViz rendering of the CDG induced by `rr` for traffic from
/// `sources` (default: all terminals): one vertex per (channel, VL) in
/// use, edges = observed dependencies. Cycle-free output is a visual proof
/// of Theorem 1's condition.
void write_cdg_dot(std::ostream& os, const Network& net,
                   const RoutingResult& rr,
                   std::vector<NodeId> sources = {});

/// Serialize a routing to a line-oriented text format (destinations, VL
/// mode, next-channel entries, VL tables), and parse it back. The network
/// is NOT embedded: loading requires the same fabric (ids must match) —
/// pair with save_fabric_file(). Round-trip stable.
void write_routing(std::ostream& os, const Network& net,
                   const RoutingResult& rr);
RoutingResult read_routing(std::istream& is, const Network& net);

}  // namespace nue
