#include "routing/fattree_routing.hpp"

#include "util/error.hpp"

namespace nue {

namespace {

/// Weight of address digit j (digit 0 is most significant), matching the
/// generator's convention.
std::uint32_t digit_weight(const FatTreeSpec& spec, std::uint32_t j) {
  std::uint32_t p = 1;
  for (std::uint32_t i = 0; i < spec.n - 2 - j; ++i) p *= spec.k;
  return p;
}

std::uint32_t get_digit(const FatTreeSpec& spec, std::uint32_t w,
                        std::uint32_t j) {
  return (w / digit_weight(spec, j)) % spec.k;
}

std::uint32_t set_digit(const FatTreeSpec& spec, std::uint32_t w,
                        std::uint32_t j, std::uint32_t val) {
  const std::uint32_t wd = digit_weight(spec, j);
  const std::uint32_t cur = get_digit(spec, w, j);
  return static_cast<std::uint32_t>(
      static_cast<std::int64_t>(w) +
      (static_cast<std::int64_t>(val) - cur) * wd);
}

ChannelId channel_between(const Network& net, NodeId a, NodeId b) {
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) return c;
  }
  NUE_CHECK_MSG(false, "no channel " << a << " -> " << b);
  return kInvalidChannel;
}

}  // namespace

RoutingResult route_fattree(const Network& net, const FatTreeSpec& spec,
                            const std::vector<NodeId>& dests) {
  RoutingResult rr(net.num_nodes(), dests, 1, VlMode::kPerDest);
  const NodeId first_terminal =
      static_cast<NodeId>(spec.n * spec.switches_per_level);

  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    NUE_CHECK_MSG(net.is_terminal(d), "fat-tree routing routes terminals");
    const std::uint32_t g = d - first_terminal;  // global terminal index
    const std::uint32_t leaf_addr = g / spec.terminals_per_leaf;
    const std::uint32_t spread = g % spec.k;  // up-port selection digit

    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (!net.node_alive(v) || v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, static_cast<std::uint32_t>(di), net.out(v)[0]);
        continue;
      }
      const std::uint32_t l = spec.level_of(v);
      const std::uint32_t w = spec.addr_of(v);
      // Does the prefix 0..l-1 agree with the destination leaf address?
      bool agrees = true;
      for (std::uint32_t j = 0; j < l && agrees; ++j) {
        agrees = get_digit(spec, w, j) == get_digit(spec, leaf_addr, j);
      }
      NodeId target;
      if (agrees && l == spec.n - 1) {
        // At the destination's leaf switch: deliver.
        NUE_CHECK(w == leaf_addr);
        target = d;
      } else if (agrees) {
        // Descend: fix digit l to the destination's digit.
        const std::uint32_t w2 =
            set_digit(spec, w, l, get_digit(spec, leaf_addr, l));
        target = spec.switch_id(l + 1, w2);
      } else {
        // Climb: digit l-1 chosen by the destination index for balance.
        const std::uint32_t w2 = set_digit(spec, w, l - 1, spread);
        target = spec.switch_id(l - 1, w2);
      }
      rr.set_next(v, static_cast<std::uint32_t>(di),
                  channel_between(net, v, target));
    }
  }
  return rr;
}

}  // namespace nue
