#include "routing/updown.hpp"

#include <limits>

#include "graph/algorithms.hpp"
#include "heap/dary_heap.hpp"
#include "routing/sssp_engine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace nue {

NodeId pseudo_center(const Network& net) {
  // Double-BFS: find a far pair (a, b), then take the midpoint of the
  // a->b shortest path. Restricted to switches so a terminal never roots
  // the up/down orientation.
  NodeId start = kInvalidNode;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_alive(v) && net.is_switch(v)) {
      start = v;
      break;
    }
  }
  NUE_CHECK(start != kInvalidNode);
  auto farthest_switch = [&](const std::vector<std::uint32_t>& dist) {
    NodeId best = start;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (net.node_alive(v) && net.is_switch(v) &&
          dist[v] != kUnreachable &&
          (dist[best] == kUnreachable || dist[v] > dist[best])) {
        best = v;
      }
    }
    return best;
  };
  const auto d0 = bfs_distances(net, start);
  const NodeId a = farthest_switch(d0);
  const auto da = bfs_distances(net, a);
  const NodeId b = farthest_switch(da);
  // Walk from b half-way back toward a along the BFS tree of a.
  const auto tree = bfs_tree(net, a);
  NodeId at = b;
  for (std::uint32_t i = 0; i < da[b] / 2; ++i) {
    at = net.dst(tree[at]);
  }
  if (net.is_terminal(at)) at = net.terminal_switch(at);
  return at;
}

RoutingResult route_updown(const Network& net,
                           const std::vector<NodeId>& dests,
                           const UpDownOptions& opt) {
  TELEM_SPAN("updown.route");
  const NodeId root = opt.root != kInvalidNode ? opt.root : pseudo_center(net);
  NUE_CHECK(net.node_alive(root));
  // Rank nodes for the up/down orientation: BFS levels (classic
  // Up*/Down*) or DFS preorder (UD_DFS [28]). Any total-order rank yields
  // an acyclic orientation; the choice shifts where the turn restrictions
  // land.
  std::vector<std::uint32_t> level;
  if (opt.dfs_tree) {
    level.assign(net.num_nodes(), kUnreachable);
    std::vector<std::pair<NodeId, std::size_t>> stack{{root, 0}};
    std::uint32_t counter = 0;
    level[root] = counter++;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < net.out(v).size()) {
        const NodeId w = net.dst(net.out(v)[i++]);
        if (level[w] == kUnreachable) {
          level[w] = counter++;
          stack.push_back({w, 0});
        }
      } else {
        stack.pop_back();
      }
    }
  } else {
    level = bfs_distances(net, root);
  }

  // Channel direction: up = toward the root (strictly lower level, or equal
  // level with lower node id as tiebreak — the classic total order that
  // keeps the orientation acyclic).
  auto is_up = [&](ChannelId c) {
    const NodeId u = net.src(c), v = net.dst(c);
    return level[v] < level[u] || (level[v] == level[u] && v < u);
  };

  RoutingResult rr(net.num_nodes(), dests, 1, VlMode::kPerDest);
  std::vector<double> weights(net.num_channels(), 1.0);
  const double inf = std::numeric_limits<double>::infinity();

  // Per destination: one Dijkstra in traffic orientation with a per-node
  // "routes all-down" flag. A node may take a down channel (w -> v) only
  // toward a node v that itself routes all-down; then w routes all-down
  // too. Up channels are always allowed and clear the flag. This keeps the
  // destination-based tables globally legal: once a table chain goes down
  // it stays down. Equal-cost ties prefer the down candidate, which keeps
  // more descent options open for the neighbors.
  std::vector<double> dist(net.num_nodes());
  std::vector<ChannelId> nxt(net.num_nodes());
  std::vector<std::uint8_t> all_down(net.num_nodes());
  std::vector<std::uint8_t> cand_down(net.num_nodes());
  std::vector<NodeId> settle;

  for (std::size_t di = 0; di < dests.size(); ++di) {
    TELEM_SPAN("updown.dest");
    const NodeId d = dests[di];
    std::fill(dist.begin(), dist.end(), inf);
    std::fill(nxt.begin(), nxt.end(), kInvalidChannel);
    std::fill(all_down.begin(), all_down.end(), 0);
    std::fill(cand_down.begin(), cand_down.end(), 0);
    settle.clear();
    DaryHeap<double> heap(net.num_nodes());
    dist[d] = 0.0;
    cand_down[d] = 1;
    heap.insert(d, 0.0);
    while (!heap.empty()) {
      const NodeId v = heap.extract_min();
      all_down[v] = cand_down[v];
      settle.push_back(v);
      for (ChannelId c : net.out(v)) {
        const NodeId w = net.dst(c);
        const ChannelId e = reverse(c);  // traffic channel w -> v
        const bool e_up = is_up(e);
        // Down first hop requires v to route all-down (or be the dest).
        if (!e_up && !all_down[v] && v != d) continue;
        const double nd = dist[v] + kHopWeight + weights[e];
        const bool improves =
            nd < dist[w] ||
            (nd == dist[w] && !e_up && !cand_down[w] && heap.contains(w));
        if (improves) {
          dist[w] = nd;
          nxt[w] = e;
          cand_down[w] = e_up ? 0 : 1;
          heap.insert_or_decrease(w, nd);
        }
      }
    }
    // The per-node collapse of the up/down automaton can in pathological
    // cases leave nodes unreached (every descent option settled as an
    // up-router). Fall back to pure BFS-tree routing for this destination:
    // tree routes are up*down* by construction and suffix-consistent.
    bool holes = false;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v != d && net.node_alive(v) && nxt[v] == kInvalidChannel) {
        holes = true;
        break;
      }
    }
    if (holes) {
      const auto tree = bfs_tree(net, root);
      // Ancestor chain of d (toward the root) for lowest-common-ancestor
      // style tree routing.
      std::vector<std::uint8_t> is_anc(net.num_nodes(), 0);
      std::vector<ChannelId> down_from(net.num_nodes(), kInvalidChannel);
      for (NodeId at = d; at != root;) {
        is_anc[at] = 1;
        const ChannelId up = tree[at];  // at -> parent
        down_from[net.dst(up)] = reverse(up);
        at = net.dst(up);
      }
      is_anc[root] = 1;
      std::fill(nxt.begin(), nxt.end(), kInvalidChannel);
      for (NodeId v = 0; v < net.num_nodes(); ++v) {
        if (!net.node_alive(v) || v == d) continue;
        nxt[v] = is_anc[v] ? down_from[v] : tree[v];
      }
      settle = net.alive_nodes();  // order irrelevant for table filling
    }
    // Fill tables and update weights for balancing.
    DestTree t;
    t.dest = d;
    t.next = nxt;
    t.distance = dist;
    t.settle_order = settle;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v != d && net.node_alive(v)) {
        NUE_CHECK_MSG(nxt[v] != kInvalidChannel,
                      "up/down cannot reach " << d << " from " << v);
        rr.set_next(v, static_cast<std::uint32_t>(di), nxt[v]);
      }
    }
    if (!holes) {
      apply_weight_update(weights, tree_channel_usage(net, t));
    }
  }
  return rr;
}

}  // namespace nue
