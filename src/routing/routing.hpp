// Routing function representation (Definition 3) shared by all routing
// engines (Nue and the baselines).
//
// A RoutingResult is a destination-based forwarding table: for every routed
// destination d and every node v, `next(v, d)` is the unique channel a
// packet at v takes toward d. Virtual-lane assignment comes in three
// flavours matching how real engines drive InfiniBand SL/VL:
//
//   kPerDest        — VL is a function of the destination only
//                     (DFSSSP without path-level moves, Nue: layer of d).
//   kPerSource      — VL is a function of (source node, destination)
//                     fixed at injection (LASH: switch-pair layers,
//                     DFSSSP: per-path layers). The packet keeps the VL.
//   kPerHop         — VL is a function of (current node, destination) and
//                     may change along the path (torus dateline scheme,
//                     emulating Torus-2QoS's SL2VL tricks).
//
// Deadlock analysis and the flit simulator treat (channel, VL) pairs as
// the resource vertices, so all three flavours validate uniformly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "util/error.hpp"

namespace nue {

enum class VlMode : std::uint8_t { kPerDest, kPerSource, kPerHop };

class RoutingResult {
 public:
  /// `dests` = routed destinations (ids into net). `num_nodes` = net size.
  RoutingResult(std::size_t num_nodes, std::vector<NodeId> dests,
                std::uint32_t num_vls, VlMode mode)
      : num_nodes_(num_nodes),
        destinations_(std::move(dests)),
        dest_index_(num_nodes, kNoDest),
        next_(destinations_.size() * num_nodes, kInvalidChannel),
        num_vls_(num_vls),
        vl_mode_(mode) {
    NUE_CHECK(num_vls >= 1);
    for (std::size_t i = 0; i < destinations_.size(); ++i) {
      dest_index_[destinations_[i]] = static_cast<std::uint32_t>(i);
    }
    switch (mode) {
      case VlMode::kPerDest:
        dest_vl_.assign(destinations_.size(), 0);
        break;
      case VlMode::kPerSource:
        source_vl_.assign(destinations_.size() * num_nodes, 0);
        break;
      case VlMode::kPerHop:
        hop_vl_.assign(destinations_.size() * num_nodes, 0);
        break;
    }
  }

  static constexpr std::uint32_t kNoDest = static_cast<std::uint32_t>(-1);

  const std::vector<NodeId>& destinations() const { return destinations_; }
  std::size_t num_nodes() const { return num_nodes_; }
  std::uint32_t num_vls() const { return num_vls_; }
  VlMode vl_mode() const { return vl_mode_; }

  /// Index of a destination in the table (kNoDest if not routed).
  std::uint32_t dest_index(NodeId d) const { return dest_index_[d]; }
  bool is_destination(NodeId d) const { return dest_index_[d] != kNoDest; }

  // --- forwarding table ----------------------------------------------------

  ChannelId next(NodeId at, std::uint32_t dest_idx) const {
    return next_[idx(at, dest_idx)];
  }
  void set_next(NodeId at, std::uint32_t dest_idx, ChannelId c) {
    next_[idx(at, dest_idx)] = c;
  }

  // --- virtual lanes --------------------------------------------------------

  void set_dest_vl(std::uint32_t dest_idx, std::uint8_t vl) {
    NUE_DCHECK(vl_mode_ == VlMode::kPerDest);
    dest_vl_[dest_idx] = vl;
  }
  void set_source_vl(NodeId src, std::uint32_t dest_idx, std::uint8_t vl) {
    NUE_DCHECK(vl_mode_ == VlMode::kPerSource);
    source_vl_[idx(src, dest_idx)] = vl;
  }
  void set_hop_vl(NodeId at, std::uint32_t dest_idx, std::uint8_t vl) {
    NUE_DCHECK(vl_mode_ == VlMode::kPerHop);
    hop_vl_[idx(at, dest_idx)] = vl;
  }

  /// VL used on the channel a packet (injected at `src`, heading to
  /// destination index `dest_idx`) takes when leaving node `at`.
  std::uint8_t vl(NodeId at, NodeId src, std::uint32_t dest_idx) const {
    switch (vl_mode_) {
      case VlMode::kPerDest:
        return dest_vl_[dest_idx];
      case VlMode::kPerSource:
        return source_vl_[idx(src, dest_idx)];
      case VlMode::kPerHop:
        return hop_vl_[idx(at, dest_idx)];
    }
    return 0;
  }

  // --- path helpers ---------------------------------------------------------

  /// Channels of the route src -> dst (traffic direction). Throws if the
  /// table has a hole or the walk exceeds num_nodes hops (cycle guard).
  std::vector<ChannelId> trace(const Network& net, NodeId src,
                               NodeId dst) const {
    const std::uint32_t di = dest_index(dst);
    NUE_CHECK_MSG(di != kNoDest, "node " << dst << " is not a destination");
    std::vector<ChannelId> path;
    NodeId at = src;
    while (at != dst) {
      const ChannelId c = next(at, di);
      NUE_CHECK_MSG(c != kInvalidChannel,
                    "no route at node " << at << " toward " << dst);
      NUE_CHECK(net.src(c) == at);
      path.push_back(c);
      at = net.dst(c);
      NUE_CHECK_MSG(path.size() <= num_nodes_,
                    "routing loop on route " << src << " -> " << dst);
    }
    return path;
  }

 private:
  std::size_t idx(NodeId at, std::uint32_t dest_idx) const {
    NUE_DCHECK(at < num_nodes_ && dest_idx < destinations_.size());
    return static_cast<std::size_t>(dest_idx) * num_nodes_ + at;
  }

  std::size_t num_nodes_;
  std::vector<NodeId> destinations_;
  std::vector<std::uint32_t> dest_index_;
  std::vector<ChannelId> next_;
  std::uint32_t num_vls_;
  VlMode vl_mode_;
  std::vector<std::uint8_t> dest_vl_;
  std::vector<std::uint8_t> source_vl_;
  std::vector<std::uint8_t> hop_vl_;
};

/// Thrown by routing engines when they cannot route the given network
/// within their constraints (e.g. DFSSSP/LASH exceeding the VL cap,
/// Torus-2QoS facing two failures in one ring). Bench harnesses catch this
/// and report the algorithm as inapplicable, like the missing bars/dots in
/// the paper's figures.
class RoutingFailure : public std::runtime_error {
 public:
  explicit RoutingFailure(const std::string& what)
      : std::runtime_error(what) {}
};

}  // namespace nue
