// Per-virtual-layer channel dependency graph with usage counts and
// incremental acyclicity checks, shared by DFSSSP's cycle breaking and
// LASH's first-fit layer assignment.
//
// The vertex set is the channel set; edges are dense ids of a CdgIndex.
// An edge is "present" while its path count is positive.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/cdg_index.hpp"
#include "util/error.hpp"

namespace nue {

class LayerCdg {
 public:
  using EdgeId = CdgIndex::EdgeId;

  explicit LayerCdg(const CdgIndex& idx)
      : idx_(&idx),
        count_(idx.num_edges(), 0),
        stamp_(idx.num_channels(), 0) {}

  std::uint32_t count(EdgeId e) const { return count_[e]; }

  void add(EdgeId e, std::uint32_t k = 1) { count_[e] += k; }

  void remove(EdgeId e, std::uint32_t k = 1) {
    NUE_DCHECK(count_[e] >= k);
    count_[e] -= k;
  }

  /// Would adding edge (c1 -> c2), currently absent, close a cycle?
  /// True iff c1 is reachable from c2 over present edges.
  bool creates_cycle(ChannelId c1, ChannelId c2) {
    if (c1 == c2) return true;
    ++generation_;
    return reach(c2, c1);
  }

  /// Find any cycle among present edges; empty if acyclic.
  /// Returns the cycle as a sequence of dense edge ids.
  std::vector<EdgeId> find_cycle() {
    const std::size_t nc = idx_->num_channels();
    // Three-color DFS with explicit stack; path_edge_ records the edge used
    // to enter each gray vertex so the cycle can be reconstructed.
    std::vector<std::uint8_t> color(nc, 0);
    std::vector<EdgeId> entry_edge(nc, CdgIndex::kNoEdge);
    std::vector<ChannelId> entry_from(nc, kInvalidChannel);
    struct Frame {
      ChannelId v;
      EdgeId next_e, end_e;
    };
    std::vector<Frame> stack;
    for (ChannelId start = 0; start < nc; ++start) {
      if (color[start] != 0) continue;
      color[start] = 1;
      stack.push_back({start, idx_->first_edge(start),
                       idx_->first_edge(start + 1)});
      while (!stack.empty()) {
        Frame& f = stack.back();
        bool descended = false;
        while (f.next_e < f.end_e) {
          const EdgeId e = f.next_e++;
          if (count_[e] == 0) continue;
          const ChannelId w = idx_->edge_head(e);
          if (color[w] == 1) {
            // Back edge: reconstruct the cycle w -> ... -> f.v -> w.
            std::vector<EdgeId> cycle{e};
            ChannelId at = f.v;
            while (at != w) {
              cycle.push_back(entry_edge[at]);
              at = entry_from[at];
            }
            return cycle;
          }
          if (color[w] == 0) {
            color[w] = 1;
            entry_edge[w] = e;
            entry_from[w] = f.v;
            stack.push_back(
                {w, idx_->first_edge(w), idx_->first_edge(w + 1)});
            descended = true;
            break;
          }
        }
        if (!descended && (stack.back().next_e >= stack.back().end_e)) {
          color[stack.back().v] = 2;
          stack.pop_back();
        }
      }
    }
    return {};
  }

 private:
  /// DFS over present edges: is `target` reachable from `from`?
  bool reach(ChannelId from, ChannelId target) {
    dfs_stack_.clear();
    dfs_stack_.push_back(from);
    stamp_[from] = generation_;
    while (!dfs_stack_.empty()) {
      const ChannelId v = dfs_stack_.back();
      dfs_stack_.pop_back();
      const EdgeId end = idx_->first_edge(v + 1);
      for (EdgeId e = idx_->first_edge(v); e < end; ++e) {
        if (count_[e] == 0) continue;
        const ChannelId w = idx_->edge_head(e);
        if (w == target) return true;
        if (stamp_[w] != generation_) {
          stamp_[w] = generation_;
          dfs_stack_.push_back(w);
        }
      }
    }
    return false;
  }

  const CdgIndex* idx_;
  std::vector<std::uint32_t> count_;
  std::vector<std::uint32_t> stamp_;
  std::vector<ChannelId> dfs_stack_;
  std::uint32_t generation_ = 0;
};

}  // namespace nue
