#include "routing/validate.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"

namespace nue {

namespace {

/// Walk the route src -> dst, invoking cb(channel, vl) per hop.
/// Returns false (and stops) on a table hole or a loop.
template <typename Cb>
bool walk(const Network& net, const RoutingResult& rr, NodeId src,
          std::uint32_t dest_idx, NodeId dst, Cb&& cb) {
  NodeId at = src;
  std::size_t hops = 0;
  while (at != dst) {
    const ChannelId c = rr.next(at, dest_idx);
    if (c == kInvalidChannel || net.src(c) != at) return false;
    cb(c, rr.vl(at, src, dest_idx));
    at = net.dst(c);
    if (++hops > net.num_nodes()) return false;
  }
  return true;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> induced_cdg(
    const Network& net, const RoutingResult& rr,
    const std::vector<NodeId>& sources) {
  // Slot num_vls of every channel is the overflow vertex: all out-of-range
  // VLs land there, so a broken table can neither alias onto a legal
  // (channel, VL) dependency (fabricating a cycle that no legal resource
  // pair has) nor hide behind one. validate_routing still reports the
  // breakage itself via vl_in_range.
  const std::uint32_t stride = rr.num_vls() + 1;
  const std::size_t v = net.num_channels() * stride;
  std::vector<std::vector<std::uint32_t>> adj(v);
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    for (NodeId s : sources) {
      if (s == d || !net.node_alive(s)) continue;
      std::uint32_t prev = static_cast<std::uint32_t>(-1);
      walk(net, rr, s, static_cast<std::uint32_t>(di), d,
           [&](ChannelId c, std::uint8_t vl) {
             const std::uint32_t slot =
                 vl < rr.num_vls() ? vl : rr.num_vls();
             const auto cur =
                 static_cast<std::uint32_t>(c * stride + slot);
             if (prev != static_cast<std::uint32_t>(-1)) {
               const std::uint64_t key =
                   (static_cast<std::uint64_t>(prev) << 32) | cur;
               if (seen.insert(key).second) adj[prev].push_back(cur);
             }
             prev = cur;
           });
    }
  }
  return adj;
}

bool is_acyclic(const std::vector<std::vector<std::uint32_t>>& adj) {
  // Iterative three-color DFS.
  const std::size_t n = adj.size();
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < adj[v].size()) {
        const std::uint32_t w = adj[v][i++];
        if (color[w] == 1) return false;  // back edge -> cycle
        if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

ValidationReport validate_routing(const Network& net, const RoutingResult& rr,
                                  std::vector<NodeId> sources) {
  if (sources.empty()) sources = net.terminals();
  ValidationReport rep;
  std::vector<std::uint8_t> visited(net.num_nodes(), 0);
  std::uint64_t total_len = 0;

  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    for (NodeId s : sources) {
      if (s == d || !net.node_alive(s)) continue;
      std::size_t len = 0;
      std::vector<NodeId> touched{s};
      visited[s] = 1;
      bool node_revisited = false;
      const bool complete =
          walk(net, rr, s, static_cast<std::uint32_t>(di), d,
               [&](ChannelId c, std::uint8_t vl) {
                 ++len;
                 const NodeId w = net.dst(c);
                 if (visited[w]) node_revisited = true;
                 visited[w] = 1;
                 touched.push_back(w);
                 if (vl >= rr.num_vls()) rep.vl_in_range = false;
               });
      for (NodeId v : touched) visited[v] = 0;
      if (!complete) {
        if (rep.connected) {
          std::ostringstream os;
          os << "no complete route " << s << " -> " << d;
          rep.detail = os.str();
        }
        rep.connected = false;
        continue;
      }
      if (node_revisited) {
        rep.cycle_free = false;
        if (rep.detail.empty()) {
          std::ostringstream os;
          os << "route " << s << " -> " << d << " revisits a node";
          rep.detail = os.str();
        }
      }
      ++rep.num_paths;
      total_len += len;
      rep.max_path_length = std::max(rep.max_path_length, len);
    }
  }
  if (rep.num_paths > 0) {
    rep.avg_path_length =
        static_cast<double>(total_len) / static_cast<double>(rep.num_paths);
  }
  rep.deadlock_free = is_acyclic(induced_cdg(net, rr, sources));
  if (!rep.deadlock_free && rep.detail.empty()) {
    rep.detail = "induced CDG has a cycle";
  }
  return rep;
}

}  // namespace nue
