#include "routing/validate.hpp"

#include <algorithm>
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"

namespace nue {

namespace {

enum class WalkEnd : std::uint8_t {
  kReached,      // arrived at the destination
  kHole,         // missing/foreign table entry
  kDeadChannel,  // entry points at a failed channel (stale table)
  kLoop,         // exceeded the hop bound
};

/// Walk the route src -> dst, invoking cb(channel, vl) per hop taken.
/// Stops (without invoking cb for the offending hop) on a table hole, a
/// dead channel, or a loop; dependencies emitted before the stop are the
/// resources in-flight packets can actually occupy, so callers keep them.
template <typename Cb>
WalkEnd walk(const Network& net, const RoutingResult& rr, NodeId src,
             std::uint32_t dest_idx, NodeId dst, Cb&& cb) {
  NodeId at = src;
  std::size_t hops = 0;
  while (at != dst) {
    const ChannelId c = rr.next(at, dest_idx);
    if (c == kInvalidChannel || net.src(c) != at) return WalkEnd::kHole;
    if (!net.channel_alive(c)) return WalkEnd::kDeadChannel;
    cb(c, rr.vl(at, src, dest_idx));
    at = net.dst(c);
    if (++hops > net.num_nodes()) return WalkEnd::kLoop;
  }
  return WalkEnd::kReached;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> induced_cdg(
    const Network& net, const RoutingResult& rr,
    const std::vector<NodeId>& sources) {
  // Slot num_vls of every channel is the overflow vertex: all out-of-range
  // VLs land there, so a broken table can neither alias onto a legal
  // (channel, VL) dependency (fabricating a cycle that no legal resource
  // pair has) nor hide behind one. validate_routing still reports the
  // breakage itself via vl_in_range.
  const std::uint32_t stride = rr.num_vls() + 1;
  const std::size_t v = net.num_channels() * stride;
  std::vector<std::vector<std::uint32_t>> adj(v);
  // Parallel edges are NOT deduplicated: the cycle check visits every
  // adjacency entry once either way, and hashing each emitted dependency
  // used to dominate the whole validation pass.
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    for (NodeId s : sources) {
      if (s == d || !net.node_alive(s)) continue;
      std::uint32_t prev = static_cast<std::uint32_t>(-1);
      walk(net, rr, s, static_cast<std::uint32_t>(di), d,
           [&](ChannelId c, std::uint8_t vl) {
             const std::uint32_t slot =
                 vl < rr.num_vls() ? vl : rr.num_vls();
             const auto cur =
                 static_cast<std::uint32_t>(c * stride + slot);
             if (prev != static_cast<std::uint32_t>(-1)) {
               adj[prev].push_back(cur);
             }
             prev = cur;
           });
    }
  }
  return adj;
}

bool is_acyclic(const std::vector<std::vector<std::uint32_t>>& adj) {
  // Iterative three-color DFS.
  const std::size_t n = adj.size();
  std::vector<std::uint8_t> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.clear();
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [v, i] = stack.back();
      if (i < adj[v].size()) {
        const std::uint32_t w = adj[v][i++];
        if (color[w] == 1) return false;  // back edge -> cycle
        if (color[w] == 0) {
          color[w] = 1;
          stack.emplace_back(w, 0);
        }
      } else {
        color[v] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

namespace {

/// The per-destination walk checks shared by validate_routing and
/// validate_columns: walks every source to destination `di`, folding
/// reachability, node revisits, VL sanity, liveness, and path-length
/// accounting into `rep`. `visited` is caller-owned all-zero scratch
/// (returned all-zero).
void validate_dest_walks(const Network& net, const RoutingResult& rr,
                         std::uint32_t di, const std::vector<NodeId>& sources,
                         std::vector<std::uint8_t>& visited,
                         ValidationReport& rep, std::uint64_t& total_len) {
  const NodeId d = rr.destinations()[di];
  if (!net.node_alive(d)) {
    // Stale table: it still routes toward a destination the fabric has
    // lost. The walks below would fail anyway (the channels into a dead
    // node die with it) — flag the root cause instead.
    if (rep.live_elements) {
      std::ostringstream os;
      os << "table routes to removed destination " << d;
      rep.detail = os.str();
    }
    rep.live_elements = false;
    return;
  }
  for (NodeId s : sources) {
    if (s == d || !net.node_alive(s)) continue;
    std::size_t len = 0;
    std::vector<NodeId> touched{s};
    visited[s] = 1;
    bool node_revisited = false;
    const WalkEnd end = walk(net, rr, s, di, d,
                             [&](ChannelId c, std::uint8_t vl) {
                               ++len;
                               const NodeId w = net.dst(c);
                               if (visited[w]) node_revisited = true;
                               visited[w] = 1;
                               touched.push_back(w);
                               if (vl >= rr.num_vls()) rep.vl_in_range = false;
                             });
    for (NodeId v : touched) visited[v] = 0;
    if (end == WalkEnd::kDeadChannel) {
      if (rep.live_elements && rep.detail.empty()) {
        std::ostringstream os;
        os << "route " << s << " -> " << d << " crosses a dead channel";
        rep.detail = os.str();
      }
      rep.live_elements = false;
    }
    if (end != WalkEnd::kReached) {
      if (rep.connected && rep.detail.empty()) {
        std::ostringstream os;
        os << "no complete route " << s << " -> " << d;
        rep.detail = os.str();
      }
      rep.connected = false;
      continue;
    }
    if (node_revisited) {
      rep.cycle_free = false;
      if (rep.detail.empty()) {
        std::ostringstream os;
        os << "route " << s << " -> " << d << " revisits a node";
        rep.detail = os.str();
      }
    }
    ++rep.num_paths;
    total_len += len;
    rep.max_path_length = std::max(rep.max_path_length, len);
  }
}

}  // namespace

ValidationReport validate_routing(const Network& net, const RoutingResult& rr,
                                  std::vector<NodeId> sources) {
  TELEM_SPAN("validate.routing");
  if (sources.empty()) sources = net.terminals();
  ValidationReport rep;
  std::vector<std::uint8_t> visited(net.num_nodes(), 0);
  std::uint64_t total_len = 0;
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    validate_dest_walks(net, rr, static_cast<std::uint32_t>(di), sources,
                        visited, rep, total_len);
  }
  if (rep.num_paths > 0) {
    rep.avg_path_length =
        static_cast<double>(total_len) / static_cast<double>(rep.num_paths);
  }
  rep.deadlock_free = is_acyclic(induced_cdg(net, rr, sources));
  if (!rep.deadlock_free && rep.detail.empty()) {
    rep.detail = "induced CDG has a cycle";
  }
  return rep;
}

ValidationReport validate_columns(const Network& net, const RoutingResult& rr,
                                  const std::vector<NodeId>& dests,
                                  std::vector<NodeId> sources) {
  TELEM_SPAN("validate.columns");
  if (sources.empty()) sources = net.terminals();
  ValidationReport rep;
  std::vector<std::uint8_t> visited(net.num_nodes(), 0);
  std::uint64_t total_len = 0;
  for (NodeId d : dests) {
    const std::uint32_t di = rr.dest_index(d);
    if (di == RoutingResult::kNoDest) {
      if (rep.connected && rep.detail.empty()) {
        std::ostringstream os;
        os << "table has no column for destination " << d;
        rep.detail = os.str();
      }
      rep.connected = false;
      continue;
    }
    validate_dest_walks(net, rr, di, sources, visited, rep, total_len);
  }
  if (rep.num_paths > 0) {
    rep.avg_path_length =
        static_cast<double>(total_len) / static_cast<double>(rep.num_paths);
  }
  return rep;
}

std::vector<NodeId> affected_destinations(const Network& net,
                                          const RoutingResult& rr) {
  std::vector<NodeId> affected;
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    if (!net.node_alive(d)) {
      affected.push_back(d);
      continue;
    }
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d || !net.node_alive(v)) continue;
      const ChannelId c = rr.next(v, static_cast<std::uint32_t>(di));
      if (c == kInvalidChannel || !net.channel_alive(c) ||
          !net.node_alive(net.dst(c))) {
        affected.push_back(d);
        break;
      }
    }
  }
  return affected;
}

namespace {

/// (channel, VL)-vertex dependency accumulator shared by the two tables
/// of a union-CDG check. Slot stride-1 is the common overflow vertex for
/// out-of-range VLs (same aliasing argument as induced_cdg). Parallel
/// edges are kept — the cycle check is linear in the adjacency either
/// way, and per-edge dedup hashing used to dominate the transition gate.
struct CdgAccum {
  explicit CdgAccum(std::size_t num_channels, std::uint32_t stride)
      : stride(stride), adj(num_channels * stride) {}

  void edge(std::uint32_t prev, std::uint32_t cur) {
    adj[prev].push_back(cur);
  }

  std::uint32_t slot(const RoutingResult& rr, std::uint8_t vl) const {
    return vl < rr.num_vls() ? vl : stride - 1;
  }

  std::uint32_t stride;
  std::vector<std::vector<std::uint32_t>> adj;
};

/// Column-derived dependencies for VL schemes where the lane at a node
/// does not depend on the packet's source (kPerDest, kPerHop): every pair
/// of consecutive alive hops of a forwarding column is a dependency,
/// regardless of which source drives it — O(nodes) per destination and a
/// superset of the terminal-sourced walks.
void accumulate_column_deps(const Network& net, const RoutingResult& rr,
                            CdgAccum& acc) {
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    const auto di32 = static_cast<std::uint32_t>(di);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d || !net.node_alive(v)) continue;
      const ChannelId c = rr.next(v, di32);
      if (c == kInvalidChannel || net.src(c) != v || !net.channel_alive(c)) {
        continue;  // stale/hole entry: no resource can be requested here
      }
      const NodeId u = net.dst(c);
      if (u == d || !net.node_alive(u)) continue;
      const ChannelId c2 = rr.next(u, di32);
      if (c2 == kInvalidChannel || net.src(c2) != u ||
          !net.channel_alive(c2)) {
        continue;
      }
      acc.edge(c * acc.stride + acc.slot(rr, rr.vl(v, v, di32)),
               c2 * acc.stride + acc.slot(rr, rr.vl(u, u, di32)));
    }
  }
}

/// Exact per-(source, destination) walks for per-source VL schemes, with
/// stale-tolerant prefixes (walk stops at dead channels, emitted
/// dependencies stay).
void accumulate_pair_deps(const Network& net, const RoutingResult& rr,
                          const std::vector<NodeId>& sources, CdgAccum& acc) {
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    for (NodeId s : sources) {
      if (s == d || !net.node_alive(s)) continue;
      std::uint32_t prev = static_cast<std::uint32_t>(-1);
      walk(net, rr, s, static_cast<std::uint32_t>(di), d,
           [&](ChannelId c, std::uint8_t vl) {
             const auto cur = c * acc.stride + acc.slot(rr, vl);
             if (prev != static_cast<std::uint32_t>(-1)) acc.edge(prev, cur);
             prev = cur;
           });
    }
  }
}

}  // namespace

bool union_cdg_acyclic(const Network& net, const RoutingResult& old_rr,
                       const RoutingResult& new_rr,
                       std::vector<NodeId> sources) {
  TELEM_SPAN("validate.union_gate");
  const std::uint32_t stride =
      std::max(old_rr.num_vls(), new_rr.num_vls()) + 1;
  CdgAccum acc(net.num_channels(), stride);
  for (const RoutingResult* rr : {&old_rr, &new_rr}) {
    if (rr->vl_mode() == VlMode::kPerSource) {
      if (sources.empty()) sources = net.terminals();
      accumulate_pair_deps(net, *rr, sources, acc);
    } else {
      accumulate_column_deps(net, *rr, acc);
    }
  }
  return is_acyclic(acc.adj);
}

}  // namespace nue
