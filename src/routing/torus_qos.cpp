#include "routing/torus_qos.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace nue {

namespace {

/// Per-(dimension, ring) connectivity: ring[i] describes the boundary
/// between positions i and i+1 (mod n) of the ring.
struct RingInfo {
  // Alive parallel channels from position i to i+1 (forward) and the
  // matching reverse direction; empty = broken boundary.
  std::vector<std::vector<ChannelId>> fwd;
  std::vector<std::vector<ChannelId>> bwd;
  std::vector<std::uint8_t> pos_alive;
  bool intact = true;  // no dead boundary and no dead position
};

class TorusRouter {
 public:
  TorusRouter(const Network& net, const TorusSpec& spec)
      : net_(net), spec_(spec) {}

  RoutingResult route(const std::vector<NodeId>& dests) {
    build_rings();
    RoutingResult rr(net_.num_nodes(), dests, 2, VlMode::kPerHop);
    for (std::size_t di = 0; di < dests.size(); ++di) {
      route_dest(rr, static_cast<std::uint32_t>(di), dests[di]);
    }
    return rr;
  }

 private:
  std::size_t num_dims() const { return spec_.dims.size(); }

  /// Ring key: dimension d plus the fixed coordinates of all other dims.
  std::size_t ring_key(std::size_t dim,
                       const std::vector<std::uint32_t>& coord) const {
    std::size_t key = 0;
    for (std::size_t i = 0; i < num_dims(); ++i) {
      if (i == dim) continue;
      key = key * spec_.dims[i] + coord[i];
    }
    return dim_ring_base_[dim] + key;
  }

  void build_rings() {
    const std::uint32_t nsw = spec_.num_switches();
    dim_ring_base_.assign(num_dims() + 1, 0);
    for (std::size_t d = 0; d < num_dims(); ++d) {
      dim_ring_base_[d + 1] =
          dim_ring_base_[d] + nsw / spec_.dims[d];
    }
    rings_.assign(dim_ring_base_[num_dims()], {});
    for (std::size_t d = 0; d < num_dims(); ++d) {
      const std::uint32_t n = spec_.dims[d];
      for (NodeId sw = 0; sw < nsw; ++sw) {
        auto coord = spec_.coord_of(sw);
        if (coord[d] != 0) continue;  // one switch per ring initializes it
        RingInfo& ring = rings_[ring_key(d, coord)];
        ring.fwd.assign(n, {});
        ring.bwd.assign(n, {});
        ring.pos_alive.assign(n, 0);
        for (std::uint32_t p = 0; p < n; ++p) {
          coord[d] = p;
          const NodeId at = spec_.switch_at(coord);
          ring.pos_alive[p] = net_.node_alive(at) ? 1 : 0;
          if (!ring.pos_alive[p]) ring.intact = false;
          coord[d] = (p + 1) % n;
          const NodeId nb = spec_.switch_at(coord);
          if (net_.node_alive(at)) {
            for (ChannelId c : net_.out(at)) {
              if (net_.dst(c) == nb) {
                ring.fwd[p].push_back(c);
                ring.bwd[p].push_back(reverse(c));
              }
            }
          }
          if (ring.fwd[p].empty()) ring.intact = false;
          coord[d] = 0;
        }
        // Rings of size < 3 have no wrap channel distinct from the direct
        // one; treat them as broken (path-like), which routes them on VL1
        // without a dateline — trivially acyclic.
        if (n < 3) ring.intact = false;
      }
    }
  }

  /// Direction choice within a ring from position p to q: +1 or -1.
  /// Throws RoutingFailure when both directions are blocked.
  int choose_dir(const RingInfo& ring, std::uint32_t n, std::uint32_t p,
                 std::uint32_t q) const {
    auto passable = [&](int dir) {
      std::uint32_t at = p;
      while (at != q) {
        const std::uint32_t boundary = dir > 0 ? at : (at + n - 1) % n;
        if (ring.fwd[boundary].empty()) return false;
        at = (at + n + static_cast<std::uint32_t>(dir)) % n;
        if (at != q && !ring.pos_alive[at]) return false;
      }
      return true;
    };
    const std::uint32_t fwd_len = (q + n - p) % n;
    const std::uint32_t bwd_len = n - fwd_len;
    const bool f = passable(+1);
    const bool b = passable(-1);
    if (f && b) return fwd_len <= bwd_len ? +1 : -1;
    if (f) return +1;
    if (b) return -1;
    throw RoutingFailure("torus ring broken in both directions");
  }

  /// Does the remaining path p -> q in direction dir cross the dateline
  /// (the boundary between positions n-1 and 0)?
  static bool crosses_dateline(std::uint32_t n, std::uint32_t p,
                               std::uint32_t q, int dir) {
    std::uint32_t at = p;
    while (at != q) {
      const std::uint32_t boundary = dir > 0 ? at : (at + n - 1) % n;
      if (boundary == n - 1) return true;
      at = (at + n + static_cast<std::uint32_t>(dir)) % n;
    }
    return false;
  }

  void route_dest(RoutingResult& rr, std::uint32_t di, NodeId d) {
    const NodeId dsw = net_.is_terminal(d) ? net_.terminal_switch(d) : d;
    const auto dcoord = spec_.coord_of(dsw);
    const std::uint32_t nsw = spec_.num_switches();
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (!net_.node_alive(v) || v == d) continue;
      if (net_.is_terminal(v)) {
        rr.set_next(v, di, net_.out(v)[0]);  // inject at the switch
        rr.set_hop_vl(v, di, 0);
        continue;
      }
      if (v == dsw) {
        // Deliver over the access link (d is a terminal here).
        for (ChannelId c : net_.out(v)) {
          if (net_.dst(c) == d) {
            rr.set_next(v, di, c);
            rr.set_hop_vl(v, di, 0);
            break;
          }
        }
        continue;
      }
      if (v >= nsw) continue;  // dead-terminal slot guard (not expected)
      const auto vcoord = spec_.coord_of(v);
      // Dimension-order: resolve the first differing dimension — unless
      // the DOR corner (v with that coordinate already corrected) is a
      // dead switch, in which case later dimensions are resolved first.
      // This mirrors Torus-2QoS's routing around single failures; strict
      // dimension order is violated only for paths pivoting around the
      // fault, and the resulting tables are still checked for CDG
      // acyclicity by the validation layer.
      std::size_t dim = num_dims();
      for (std::size_t i = 0; i < num_dims(); ++i) {
        if (vcoord[i] == dcoord[i]) continue;
        auto corner = vcoord;
        corner[i] = dcoord[i];
        bool rest_differs = false;
        for (std::size_t j = 0; j < num_dims(); ++j) {
          rest_differs |= j != i && vcoord[j] != dcoord[j];
        }
        if (rest_differs && !net_.node_alive(spec_.switch_at(corner))) {
          continue;  // corner dead and journey continues: try another dim
        }
        dim = i;
        break;
      }
      NUE_CHECK_MSG(dim < num_dims(),
                    "all DOR corners dead around node " << v);
      const RingInfo& ring = rings_[ring_key(dim, vcoord)];
      const std::uint32_t n = spec_.dims[dim];
      const std::uint32_t p = vcoord[dim];
      const std::uint32_t q = dcoord[dim];
      const int dir = choose_dir(ring, n, p, q);
      const std::uint32_t boundary = dir > 0 ? p : (p + n - 1) % n;
      const auto& parallels = dir > 0 ? ring.fwd[boundary] : ring.bwd[boundary];
      NUE_CHECK(!parallels.empty());
      // Spread destinations across parallel (redundant) channels; mixing
      // in the ring position avoids systematic aliasing when few
      // destinations cross a given boundary.
      rr.set_next(v, di, parallels[(di + p) % parallels.size()]);
      // Dateline VL rule in intact rings; broken rings are paths and run
      // entirely on VL1.
      std::uint8_t vl = 1;
      if (ring.intact) {
        vl = crosses_dateline(n, p, q, dir) ? 0 : 1;
      }
      rr.set_hop_vl(v, di, vl);
    }
  }

  const Network& net_;
  const TorusSpec& spec_;
  std::vector<std::size_t> dim_ring_base_;
  std::vector<RingInfo> rings_;
};

}  // namespace

RoutingResult route_torus_qos(const Network& net, const TorusSpec& spec,
                              const std::vector<NodeId>& dests) {
  TorusRouter router(net, spec);
  return router.route(dests);
}

}  // namespace nue
