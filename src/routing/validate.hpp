// Routing validation: the three validity properties of Definition 3 plus
// deadlock-freedom via Theorem 1 (acyclicity of the induced channel
// dependency graph), evaluated over (channel, VL) resource pairs so that
// per-source and per-hop VL schemes are handled exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

struct ValidationReport {
  bool connected = true;        // every source reaches every destination
  bool cycle_free = true;       // no path visits a node twice
  bool deadlock_free = true;    // induced CDG over (channel, VL) is acyclic
  bool vl_in_range = true;      // all VLs < num_vls
  /// Stale-table detection: false when the table routes to a destination
  /// that has been removed from the fabric, or some route crosses a dead
  /// channel — the signature of forwarding state that predates a runtime
  /// fault and was never repaired (docs/RESILIENCE.md).
  bool live_elements = true;
  std::size_t num_paths = 0;
  std::size_t max_path_length = 0;
  double avg_path_length = 0.0;
  std::string detail;           // first failure description

  bool ok() const {
    return connected && cycle_free && deadlock_free && vl_in_range &&
           live_elements;
  }
};

/// Validate routing `rr` for all (src, dst) pairs with src in `sources`
/// and dst in rr.destinations(). Sources default to all alive terminals.
ValidationReport validate_routing(const Network& net, const RoutingResult& rr,
                                  std::vector<NodeId> sources = {});

/// Column-subset validation for incremental repairs: the per-path checks
/// of validate_routing restricted to the columns of `dests` (sources
/// default to all alive terminals). The induced-CDG acyclicity pass is
/// NOT run — deadlock_free stays true — because the caller must already
/// cover it for the whole table: the resilience manager's union-CDG
/// transition gate implies it (the new table's dependency set is a subset
/// of the old+new union the gate proves acyclic), and a drained
/// recompute goes through the full validate_routing instead. A `dests`
/// entry the table does not route fails the report as disconnected.
ValidationReport validate_columns(const Network& net, const RoutingResult& rr,
                                  const std::vector<NodeId>& dests,
                                  std::vector<NodeId> sources = {});

/// Induced channel dependency graph of `rr` over (channel, VL) vertices
/// (vertex id = channel * (num_vls + 1) + vl), as an adjacency list (a
/// dependency exercised by several pairs appears once per walk — parallel
/// edges do not affect the acyclicity check and deduplicating them is
/// what used to dominate the cost of this pass). Slot num_vls of each
/// channel is a dedicated overflow vertex: hops
/// whose VL is out of range land there instead of being clamped onto a
/// legal layer, so a broken table can never alias onto (or hide behind) a
/// legal dependency. Only dependencies exercised by (src in sources) ->
/// (dst in destinations) traffic are included, mirroring Definition 4.
std::vector<std::vector<std::uint32_t>> induced_cdg(
    const Network& net, const RoutingResult& rr,
    const std::vector<NodeId>& sources);

/// True if the directed graph given as adjacency lists is acyclic.
bool is_acyclic(const std::vector<std::vector<std::uint32_t>>& adj);

// --- runtime reconfiguration helpers ----------------------------------------

/// Destinations of `rr` whose forwarding column no longer matches the
/// current fabric: the destination itself is dead, some alive node's next
/// pointer is a dead channel, or an alive node has no entry at all (a node
/// that was down when the table was computed and has since been restored).
/// The complement can be spliced verbatim into a successor table — this is
/// the table diff driving incremental repair (src/resilience).
std::vector<NodeId> affected_destinations(const Network& net,
                                          const RoutingResult& rr);

/// Transition-safety gate for hitless reconfiguration (UPR compatibility):
/// while a new routing function is being installed, in-flight packets may
/// still hold (channel, VL) resources according to the old one, so
/// deadlock freedom through the swap window requires the UNION of both
/// induced CDGs to be acyclic, not merely each on its own. Walks tolerate
/// the old table's stale entries — a route stops at a dead channel, its
/// prefix dependencies (resources packets can actually occupy) still
/// count. For per-destination and per-hop VL schemes the dependencies are
/// derived per forwarding column in O(nodes), a conservative superset of
/// the terminal-sourced Definition 4 set; per-source tables fall back to
/// exact per-pair walks.
bool union_cdg_acyclic(const Network& net, const RoutingResult& old_rr,
                       const RoutingResult& new_rr,
                       std::vector<NodeId> sources = {});

}  // namespace nue
