// Routing validation: the three validity properties of Definition 3 plus
// deadlock-freedom via Theorem 1 (acyclicity of the induced channel
// dependency graph), evaluated over (channel, VL) resource pairs so that
// per-source and per-hop VL schemes are handled exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"

namespace nue {

struct ValidationReport {
  bool connected = true;        // every source reaches every destination
  bool cycle_free = true;       // no path visits a node twice
  bool deadlock_free = true;    // induced CDG over (channel, VL) is acyclic
  bool vl_in_range = true;      // all VLs < num_vls
  std::size_t num_paths = 0;
  std::size_t max_path_length = 0;
  double avg_path_length = 0.0;
  std::string detail;           // first failure description

  bool ok() const {
    return connected && cycle_free && deadlock_free && vl_in_range;
  }
};

/// Validate routing `rr` for all (src, dst) pairs with src in `sources`
/// and dst in rr.destinations(). Sources default to all alive terminals.
ValidationReport validate_routing(const Network& net, const RoutingResult& rr,
                                  std::vector<NodeId> sources = {});

/// Induced channel dependency graph of `rr` over (channel, VL) vertices
/// (vertex id = channel * (num_vls + 1) + vl), as a deduplicated adjacency
/// list. Slot num_vls of each channel is a dedicated overflow vertex: hops
/// whose VL is out of range land there instead of being clamped onto a
/// legal layer, so a broken table can never alias onto (or hide behind) a
/// legal dependency. Only dependencies exercised by (src in sources) ->
/// (dst in destinations) traffic are included, mirroring Definition 4.
std::vector<std::vector<std::uint32_t>> induced_cdg(
    const Network& net, const RoutingResult& rr,
    const std::vector<NodeId>& sources);

/// True if the directed graph given as adjacency lists is acyclic.
bool is_acyclic(const std::vector<std::vector<std::uint32_t>>& adj);

}  // namespace nue
