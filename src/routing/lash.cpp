#include "routing/lash.hpp"

#include <algorithm>
#include <memory>

#include "routing/cdg_index.hpp"
#include "routing/layer_cdg.hpp"
#include "routing/sssp_engine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nue {

RoutingResult route_lash(const Network& net, const std::vector<NodeId>& dests,
                         const LashOptions& opt, LashStats* stats) {
  TELEM_SPAN("lash.route");
  const std::uint32_t hard_cap = opt.allow_exceed ? 64 : opt.max_vls;
  RoutingResult rr(net.num_nodes(), dests, hard_cap, VlMode::kPerSource);
  const unsigned agents = resolve_threads(opt.num_threads);

  // Balanced shortest-path tree per destination (tables per destination
  // node; switch-pair layering below reuses the destination switch's tree).
  std::vector<double> weights(net.num_channels(), 1.0);
  const auto switches = net.switches();
  std::vector<std::uint32_t> sw_tree_of(net.num_nodes(),
                                        static_cast<std::uint32_t>(-1));
  std::vector<DestTree> sw_trees = build_balanced_trees(
      net, switches, weights, opt.sssp_epoch, opt.num_threads);
  for (std::size_t i = 0; i < switches.size(); ++i) {
    sw_tree_of[switches[i]] = static_cast<std::uint32_t>(i);
  }

  // Fill destination tables: route to the destination's switch along the
  // switch tree, then take the access link. For switch destinations use
  // their own tree directly. Destinations own disjoint table columns, so
  // the fill parallelizes exactly.
  parallel_for(agents, dests.size(), [&](std::size_t di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.is_terminal(d) ? net.terminal_switch(d) : d;
    const auto& tree = sw_trees[sw_tree_of[dsw]];
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d || !net.node_alive(v)) continue;
      if (v == dsw) {
        // d must be a terminal here: deliver over the access link.
        for (ChannelId c : net.out(v)) {
          if (net.dst(c) == d) {
            rr.set_next(v, static_cast<std::uint32_t>(di), c);
            break;
          }
        }
      } else {
        rr.set_next(v, static_cast<std::uint32_t>(di), tree.next[v]);
      }
    }
    // Terminal sources attached to dsw still need their access hop.
    for (ChannelId c : net.out(dsw)) {
      const NodeId t = net.dst(c);
      if (net.is_terminal(t) && t != d) {
        rr.set_next(t, static_cast<std::uint32_t>(di), reverse(c));
      }
    }
  });

  // Layer assignment per (source switch, destination switch) pair,
  // shortest paths first. Path lengths are independent tree walks; the
  // pair list is laid out by (source index, destination index) so the
  // stable sort below sees the same sequence at any thread count.
  struct Pair {
    NodeId src_sw, dst_sw;
    std::uint32_t len;
  };
  const std::size_t nsw = switches.size();
  std::vector<Pair> pairs(nsw * (nsw - 1));
  parallel_for(agents, nsw, [&](std::size_t si) {
    const NodeId s = switches[si];
    std::size_t slot = si * (nsw - 1);
    for (std::size_t dj = 0; dj < nsw; ++dj) {
      const NodeId d = switches[dj];
      if (s == d) continue;
      const auto& tree = sw_trees[sw_tree_of[d]];
      std::uint32_t len = 0;
      for (NodeId at = s; at != d; at = net.dst(tree.next[at])) ++len;
      pairs[slot++] = {s, d, len};
    }
  });
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const Pair& a, const Pair& b) { return a.len < b.len; });

  CdgIndex idx(net);
  std::vector<std::unique_ptr<LayerCdg>> layers;
  layers.emplace_back(std::make_unique<LayerCdg>(idx));
  // pair_layer[src_sw * N + dst_sw]
  std::vector<std::uint8_t> pair_layer(net.num_nodes() * net.num_nodes(), 0);

  struct PathEdge {
    CdgIndex::EdgeId id;
    ChannelId tail, head;
  };
  std::vector<PathEdge> path_edges;
  {
    TELEM_SPAN("lash.layering");
    for (const Pair& p : pairs) {
      const auto& tree = sw_trees[sw_tree_of[p.dst_sw]];
      path_edges.clear();
      ChannelId prev = kInvalidChannel;
      for (NodeId at = p.src_sw; at != p.dst_sw;) {
        const ChannelId c = tree.next[at];
        if (prev != kInvalidChannel) {
          const auto eid = idx.edge_id(prev, c);
          NUE_DCHECK(eid != CdgIndex::kNoEdge);
          path_edges.push_back({eid, prev, c});
        }
        prev = c;
        at = net.dst(c);
      }
      bool placed = false;
      for (std::uint32_t l = 0; !placed; ++l) {
        if (l == layers.size()) {
          if (l >= hard_cap) {
            throw RoutingFailure("LASH exceeds the virtual-lane limit");
          }
          layers.emplace_back(std::make_unique<LayerCdg>(idx));
        }
        LayerCdg& cdg = *layers[l];
        // Tentatively add the path's dependencies with incremental checks.
        std::size_t committed = 0;
        bool ok = true;
        for (const auto& pe : path_edges) {
          if (cdg.count(pe.id) == 0 && cdg.creates_cycle(pe.tail, pe.head)) {
            ok = false;
            break;
          }
          cdg.add(pe.id);
          ++committed;
        }
        if (ok) {
          pair_layer[static_cast<std::size_t>(p.src_sw) * net.num_nodes() +
                     p.dst_sw] = static_cast<std::uint8_t>(l);
          placed = true;
        } else {
          for (std::size_t i = 0; i < committed; ++i) {
            cdg.remove(path_edges[i].id);
          }
        }
      }
    }
  }

  // VL per (source, destination): the switch pair's layer. Pure reads of
  // pair_layer into disjoint columns — exact at any thread count.
  parallel_for(agents, dests.size(), [&](std::size_t di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.is_terminal(d) ? net.terminal_switch(d) : d;
    for (NodeId s = 0; s < net.num_nodes(); ++s) {
      if (!net.node_alive(s) || s == d) continue;
      const NodeId ssw =
          net.is_terminal(s) ? net.terminal_switch(s) : s;
      const std::uint8_t vl =
          ssw == dsw ? 0
                     : pair_layer[static_cast<std::size_t>(ssw) *
                                      net.num_nodes() +
                                  dsw];
      rr.set_source_vl(s, static_cast<std::uint32_t>(di), vl);
    }
  });

  if (stats) stats->vls_needed = static_cast<std::uint32_t>(layers.size());
  return rr;
}

}  // namespace nue
