// Fat-tree routing for k-ary n-trees (Zahavi-style destination-mod-k
// up-port selection [33]): strictly up then down, deadlock-free with a
// single virtual lane, with downward paths fixed by the destination's leaf
// address and upward ports spread by destination index.
#pragma once

#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "topology/trees.hpp"

namespace nue {

RoutingResult route_fattree(const Network& net, const FatTreeSpec& spec,
                            const std::vector<NodeId>& dests);

}  // namespace nue
