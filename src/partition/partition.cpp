#include "partition/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "util/error.hpp"

namespace nue {

namespace {

/// Weighted undirected graph for the multilevel scheme.
struct PGraph {
  std::vector<std::uint32_t> vwgt;
  // adjacency: (neighbor, edge weight), one entry per neighbor
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> adj;
  std::size_t n() const { return vwgt.size(); }
};

struct CoarseLevel {
  PGraph graph;
  std::vector<std::uint32_t> map_to_coarse;  // fine vertex -> coarse vertex
};

/// Heavy-edge matching coarsening step. Returns the coarse graph and the
/// fine->coarse map; nullopt-equivalent signalled by no shrinkage.
CoarseLevel coarsen(const PGraph& g, Rng& rng) {
  const std::size_t n = g.n();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  constexpr std::uint32_t kUnmatched = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> match(n, kUnmatched);
  for (std::uint32_t v : order) {
    if (match[v] != kUnmatched) continue;
    std::uint32_t best = kUnmatched, best_w = 0;
    for (const auto& [u, w] : g.adj[v]) {
      if (u != v && match[u] == kUnmatched && w > best_w) {
        best = u;
        best_w = w;
      }
    }
    if (best != kUnmatched) {
      match[v] = best;
      match[best] = v;
    } else {
      match[v] = v;
    }
  }
  CoarseLevel lvl;
  lvl.map_to_coarse.assign(n, kUnmatched);
  std::uint32_t next_id = 0;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (lvl.map_to_coarse[v] != kUnmatched) continue;
    lvl.map_to_coarse[v] = next_id;
    lvl.map_to_coarse[match[v]] = next_id;
    ++next_id;
  }
  lvl.graph.vwgt.assign(next_id, 0);
  lvl.graph.adj.assign(next_id, {});
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> edges;
  for (std::uint32_t v = 0; v < n; ++v) {
    const std::uint32_t cv = lvl.map_to_coarse[v];
    lvl.graph.vwgt[cv] += g.vwgt[v];
    for (const auto& [u, w] : g.adj[v]) {
      const std::uint32_t cu = lvl.map_to_coarse[u];
      if (cu == cv) continue;
      edges[{cv, cu}] += w;  // counted once per direction; symmetric input
    }
  }
  for (const auto& [key, w] : edges) {
    lvl.graph.adj[key.first].push_back({key.second, w});
  }
  return lvl;
}

/// Greedy graph growing initial partition on the coarsest graph.
std::vector<std::uint32_t> initial_partition(const PGraph& g, std::uint32_t k,
                                             Rng& rng) {
  const std::size_t n = g.n();
  std::uint64_t total = 0;
  for (auto w : g.vwgt) total += w;
  const double target = static_cast<double>(total) / k;
  constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> part(n, kNone);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::size_t cursor = 0;
  for (std::uint32_t p = 0; p + 1 < k; ++p) {
    // Seed with the first unassigned vertex, then BFS-grow.
    while (cursor < n && part[order[cursor]] != kNone) ++cursor;
    if (cursor >= n) break;
    std::vector<std::uint32_t> frontier{order[cursor]};
    part[order[cursor]] = p;
    double grown = g.vwgt[order[cursor]];
    for (std::size_t i = 0; i < frontier.size() && grown < target; ++i) {
      for (const auto& [u, w] : g.adj[frontier[i]]) {
        (void)w;
        if (part[u] == kNone && grown < target) {
          part[u] = p;
          grown += g.vwgt[u];
          frontier.push_back(u);
        }
      }
    }
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    if (part[v] == kNone) part[v] = k - 1;
  }
  return part;
}

/// Boundary refinement: greedy gain moves keeping weights within slack.
void refine(const PGraph& g, std::uint32_t k, std::vector<std::uint32_t>& part,
            Rng& rng) {
  const std::size_t n = g.n();
  std::uint64_t total = 0;
  for (auto w : g.vwgt) total += w;
  const double max_part = 1.10 * static_cast<double>(total) / k + 1.0;
  std::vector<double> weight(k, 0.0);
  for (std::uint32_t v = 0; v < n; ++v) weight[part[v]] += g.vwgt[v];
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::int64_t> link(k);
  for (int pass = 0; pass < 4; ++pass) {
    rng.shuffle(order);
    bool any = false;
    for (std::uint32_t v : order) {
      std::fill(link.begin(), link.end(), 0);
      for (const auto& [u, w] : g.adj[v]) link[part[u]] += w;
      const std::uint32_t from = part[v];
      std::uint32_t best = from;
      std::int64_t best_gain = 0;
      for (std::uint32_t p = 0; p < k; ++p) {
        if (p == from) continue;
        const std::int64_t gain = link[p] - link[from];
        if (gain > best_gain && weight[p] + g.vwgt[v] <= max_part) {
          best = p;
          best_gain = gain;
        }
      }
      if (best != from) {
        part[v] = best;
        weight[from] -= g.vwgt[v];
        weight[best] += g.vwgt[v];
        any = true;
      }
    }
    if (!any) break;
  }
}

}  // namespace

std::vector<std::uint32_t> kway_partition_switches(
    const Network& net, const std::vector<NodeId>& switches,
    const std::vector<std::uint32_t>& node_weights, std::uint32_t k,
    Rng& rng) {
  NUE_CHECK(node_weights.size() == switches.size());
  // Build the base weighted graph over switch positions.
  std::vector<std::uint32_t> pos_of(net.num_nodes(),
                                    static_cast<std::uint32_t>(-1));
  for (std::uint32_t i = 0; i < switches.size(); ++i) {
    pos_of[switches[i]] = i;
  }
  PGraph base;
  base.vwgt = node_weights;
  base.adj.assign(switches.size(), {});
  for (std::uint32_t i = 0; i < switches.size(); ++i) {
    std::map<std::uint32_t, std::uint32_t> nb;
    for (ChannelId c : net.out(switches[i])) {
      const NodeId w = net.dst(c);
      if (net.is_switch(w)) ++nb[pos_of[w]];
    }
    for (const auto& [u, w] : nb) base.adj[i].push_back({u, w});
  }

  // Multilevel V-cycle.
  std::vector<CoarseLevel> levels;
  const PGraph* cur = &base;
  while (cur->n() > std::max<std::size_t>(8 * k, 32)) {
    CoarseLevel lvl = coarsen(*cur, rng);
    if (lvl.graph.n() >= cur->n()) break;  // no shrinkage, stop
    levels.push_back(std::move(lvl));
    cur = &levels.back().graph;
  }
  std::vector<std::uint32_t> part = initial_partition(*cur, k, rng);
  refine(*cur, k, part, rng);
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    const PGraph& fine =
        (it + 1 == levels.rend()) ? base : (it + 1)->graph;
    std::vector<std::uint32_t> fine_part(fine.n());
    for (std::uint32_t v = 0; v < fine.n(); ++v) {
      fine_part[v] = part[it->map_to_coarse[v]];
    }
    part = std::move(fine_part);
    refine(fine, k, part, rng);
  }
  return part;
}

std::vector<std::vector<NodeId>> partition_destinations(
    const Network& net, const std::vector<NodeId>& dests, std::uint32_t k,
    PartitionStrategy strategy, Rng& rng) {
  NUE_CHECK(k >= 1);
  std::vector<std::vector<NodeId>> parts(k);
  if (k == 1) {
    parts[0] = dests;
    return parts;
  }

  if (strategy == PartitionStrategy::kRandom) {
    std::vector<NodeId> shuffled = dests;
    rng.shuffle(shuffled);
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      parts[i % k].push_back(shuffled[i]);
    }
    return parts;
  }

  // Both structural strategies group destinations by their switch.
  const auto switches = net.switches();
  std::vector<std::uint32_t> pos_of(net.num_nodes(),
                                    static_cast<std::uint32_t>(-1));
  for (std::uint32_t i = 0; i < switches.size(); ++i) {
    pos_of[switches[i]] = i;
  }
  std::vector<std::vector<NodeId>> by_switch(switches.size());
  for (NodeId d : dests) {
    const NodeId sw = net.is_terminal(d) ? net.terminal_switch(d) : d;
    by_switch[pos_of[sw]].push_back(d);
  }

  std::vector<std::uint32_t> sw_part;
  if (strategy == PartitionStrategy::kClustered) {
    // Deal switch groups round-robin in random order.
    std::vector<std::uint32_t> order(switches.size());
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    sw_part.assign(switches.size(), 0);
    std::uint32_t next = 0;
    for (std::uint32_t i : order) {
      if (by_switch[i].empty()) continue;
      sw_part[i] = next;
      next = (next + 1) % k;
    }
  } else {
    std::vector<std::uint32_t> wgt(switches.size());
    for (std::size_t i = 0; i < switches.size(); ++i) {
      wgt[i] = static_cast<std::uint32_t>(by_switch[i].size());
    }
    sw_part = kway_partition_switches(net, switches, wgt, k, rng);
  }
  for (std::size_t i = 0; i < switches.size(); ++i) {
    for (NodeId d : by_switch[i]) parts[sw_part[i]].push_back(d);
  }

  // Guarantee non-empty parts when possible: steal from the largest.
  for (std::uint32_t p = 0; p < k; ++p) {
    if (!parts[p].empty()) continue;
    auto biggest = std::max_element(
        parts.begin(), parts.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    if (biggest->size() >= 2) {
      parts[p].push_back(biggest->back());
      biggest->pop_back();
    }
  }
  return parts;
}

}  // namespace nue
