// Destination partitioning for Nue (Section 4.5): split the destination
// node set into k disjoint subsets, one per virtual layer. The paper uses
// a multilevel k-way partitioning [19] of the network and also evaluates
// random partitioning and partial clustering (terminals of one switch stay
// together); all three are provided (the ablation bench compares them).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "util/rng.hpp"

namespace nue {

enum class PartitionStrategy : std::uint8_t {
  kKway,       // multilevel k-way on the switch graph (default, as in Nue)
  kRandom,     // uniform random split
  kClustered,  // partial clustering: per-switch groups dealt round-robin
};

/// Split `dests` into k subsets. Every subset is non-empty when
/// |dests| >= k; counts are balanced to within one element for kRandom and
/// to within a switch's terminal group for the structural strategies.
std::vector<std::vector<NodeId>> partition_destinations(
    const Network& net, const std::vector<NodeId>& dests, std::uint32_t k,
    PartitionStrategy strategy, Rng& rng);

/// Multilevel k-way partition of the switch graph itself (exposed for
/// tests): returns part index per switch-position in `switches`.
/// Node weights = number of destinations attached to the switch; edge
/// weights = number of parallel channels.
std::vector<std::uint32_t> kway_partition_switches(
    const Network& net, const std::vector<NodeId>& switches,
    const std::vector<std::uint32_t>& node_weights, std::uint32_t k,
    Rng& rng);

}  // namespace nue
