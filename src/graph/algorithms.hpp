// Graph algorithms on Network: BFS, weighted SSSP, spanning trees,
// connectivity, Brandes betweenness centrality, and the convex subgraph
// of a destination set (Definition 8).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"

namespace nue {

constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// Hop distances from src to every alive node (kUnreachable if none).
std::vector<std::uint32_t> bfs_distances(const Network& net, NodeId src);

/// BFS spanning tree rooted at `root` over alive nodes.
/// Result: for every node v != root, parent_channel[v] is the channel
/// (v -> parent) pointing one hop toward the root; kInvalidChannel for the
/// root and for unreachable/dead nodes.
std::vector<ChannelId> bfs_tree(const Network& net, NodeId root);

/// True if all alive nodes are mutually reachable.
bool is_connected(const Network& net);

/// Result of a weighted single-source shortest path run.
struct SsspResult {
  std::vector<double> distance;        // per node; +inf if unreachable
  std::vector<ChannelId> used_channel; // channel (pred -> v) that reached v
};

/// Dijkstra from src over alive channels with per-channel weights
/// (weights.size() == net.num_channels()). Ties are broken toward the
/// channel listed first in adjacency order, making runs deterministic.
SsspResult dijkstra(const Network& net, NodeId src,
                    const std::vector<double>& weights);

/// Brandes betweenness centrality (unweighted, multigraph-aware).
/// If `mask` is non-empty, the computation is restricted to the subgraph
/// induced by nodes v with mask[v] != 0 (both as path endpoints and as
/// intermediate nodes). Dead nodes always score 0.
///
/// `threads` > 1 computes the per-source dependency vectors concurrently
/// (each source is an independent BFS + backward accumulation) and reduces
/// them into the result on one thread in ascending source order — the
/// identical floating-point operation sequence as the serial sweep, so the
/// output is bit-identical for every thread count. 0 = the process-wide
/// default installed by --threads (see util/thread_pool.hpp).
std::vector<double> betweenness_centrality(
    const Network& net, const std::vector<std::uint8_t>& mask = {},
    std::uint32_t threads = 1);

/// Pivot-sampled approximate Brandes (Brandes–Pich estimator): runs the
/// per-source dependency accumulation from `pivots` sources instead of all
/// of them and scales the sum by (#sources / pivots), an unbiased estimate
/// of the exact centrality. Exact Brandes is the asymptotic wall of Nue's
/// escape-root selection (O(V·E) per layer); at 10^5+ switches a few
/// hundred pivots rank the top-central switches correctly at a vanishing
/// fraction of the cost (docs/SCALING.md).
///
/// Pivot choice is deterministic — evenly spaced over the eligible sources
/// in ascending node order — so routing tables stay reproducible across
/// runs and thread counts (same reduction discipline as the exact path).
/// `pivots` == 0 or >= #eligible sources degrades to the exact algorithm.
std::vector<double> betweenness_centrality_sampled(
    const Network& net, std::size_t pivots,
    const std::vector<std::uint8_t>& mask = {}, std::uint32_t threads = 1);

/// Convex subgraph (Definition 8) of a destination set: marks every node
/// that lies on at least one shortest path between two nodes of `dests`
/// (including the destinations themselves). Returns a node mask.
std::vector<std::uint8_t> convex_subgraph(const Network& net,
                                          const std::vector<NodeId>& dests);

}  // namespace nue
