// Interconnection network model (Definition 1 of the paper).
//
// A network is a connected multigraph G(N, C): nodes are terminals or
// switches, and every duplex link is split into two directed channels of
// opposite direction. Channels are stored in pairs so that the reverse
// channel of c is always c ^ 1 — this identity is load-bearing throughout
// the routing code (forwarding tables store "search-orientation" channels
// and the traffic direction is the reverse).
//
// Storage is struct-of-arrays, sized for 10^5..10^6-switch fabrics
// (docs/SCALING.md): channel endpoints live in two parallel NodeId
// arrays, the alive/terminal flags are word-packed bitsets, and the
// adjacency lists are segments of one flat CSR-style pool — out(v) is a
// contiguous 32-bit ChannelId span, so the per-destination graph searches
// stream cache lines instead of chasing per-node vector headers. Segments
// grow by amortized relocation within the pool during construction and
// the pool compacts itself (in node order, preserving each segment's
// entry order) when dead space outweighs the live entries, so the
// adjacency iteration order — and with it every deterministic tie-break
// downstream — is exactly the order the old per-node vectors had in every
// add/remove/restore history.
//
// Fault injection (fail-in-place experiments, Figs. 1 and 11) removes
// channels/nodes in place: ids stay stable, dead channels disappear from
// adjacency lists, dead nodes keep their id but have no channels.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "util/bitset.hpp"
#include "util/error.hpp"

namespace nue {

using NodeId = std::uint32_t;
using ChannelId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr ChannelId kInvalidChannel = static_cast<ChannelId>(-1);

/// A directed channel (n_src, n_dst). Returned by value: endpoints are
/// stored struct-of-arrays.
struct Channel {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

/// Reverse channel id (the opposite direction of the same duplex link).
constexpr ChannelId reverse(ChannelId c) { return c ^ 1u; }

class Network {
 public:
  // --- construction -------------------------------------------------------

  NodeId add_switch() { return add_node(false); }
  NodeId add_terminal() { return add_node(true); }

  /// Pre-size the id spaces (generators know their final shape; avoids
  /// re-growth of the SoA arrays while building million-switch fabrics).
  void reserve(std::size_t nodes, std::size_t links) {
    chan_src_.reserve(2 * links);
    chan_dst_.reserve(2 * links);
    adj_begin_.reserve(nodes);
    adj_len_.reserve(nodes);
    adj_cap_.reserve(nodes);
    adj_pool_.reserve(2 * links);
  }

  /// Add a duplex link between u and v: creates the directed channel pair
  /// (u,v) = returned id, (v,u) = returned id ^ 1. Parallel links are
  /// allowed (multigraph); self loops are not.
  ChannelId add_link(NodeId u, NodeId v) {
    NUE_CHECK(u < num_nodes() && v < num_nodes());
    NUE_CHECK_MSG(u != v, "self loop at node " << u);
    NUE_CHECK_MSG(alive_node_[u] && alive_node_[v], "link to dead node");
    const auto c = static_cast<ChannelId>(chan_src_.size());
    chan_src_.push_back(u);
    chan_dst_.push_back(v);
    chan_src_.push_back(v);
    chan_dst_.push_back(u);
    alive_channel_.push_back(true);
    alive_channel_.push_back(true);
    push_adj(u, c);
    push_adj(v, c + 1);
    num_alive_channels_ += 2;
    return c;
  }

  // --- fault injection ----------------------------------------------------

  /// Remove the duplex link containing channel c (kills c and reverse(c)).
  void remove_link(ChannelId c) {
    c &= ~1u;  // normalize to the even channel of the pair
    NUE_CHECK(alive_channel_[c]);
    erase_adj(chan_src_[c], c);
    erase_adj(chan_dst_[c], c + 1);
    alive_channel_.reset(c);
    alive_channel_.reset(c + 1);
    num_alive_channels_ -= 2;
  }

  /// Remove a node and all its links. The id stays valid but dead.
  void remove_node(NodeId v) {
    NUE_CHECK(alive_node_[v]);
    while (adj_len_[v] > 0) {
      remove_link(adj_pool_[adj_begin_[v] + adj_len_[v] - 1]);
    }
    alive_node_.reset(v);
    --num_alive_nodes_;
    if (is_terminal_[v]) --num_alive_terminals_;
  }

  // --- fault repair ---------------------------------------------------------

  /// Re-add a previously removed duplex link (both endpoints must be
  /// alive). The channel ids are unchanged; the pair reappears at the end
  /// of its endpoints' adjacency lists, so adjacency order — and with it
  /// every deterministic tie-break downstream — is a function of the
  /// remove/restore event history, never of wall-clock interleaving.
  void restore_link(ChannelId c) {
    c &= ~1u;  // normalize to the even channel of the pair
    NUE_CHECK_MSG(!alive_channel_[c], "restoring an alive link");
    NUE_CHECK_MSG(alive_node_[chan_src_[c]] && alive_node_[chan_dst_[c]],
                  "restoring link " << c << " to a dead node");
    alive_channel_.set(c);
    alive_channel_.set(c + 1);
    push_adj(chan_src_[c], c);
    push_adj(chan_dst_[c], c + 1);
    num_alive_channels_ += 2;
  }

  /// Revive a dead node with no links; repairs bring its links back
  /// individually via restore_link (see topology/faults.hpp for the
  /// switch-level repair that does both).
  void restore_node(NodeId v) {
    NUE_CHECK_MSG(!alive_node_[v], "restoring an alive node");
    alive_node_.set(v);
    ++num_alive_nodes_;
    if (is_terminal_[v]) ++num_alive_terminals_;
  }

  // --- accessors ----------------------------------------------------------

  std::size_t num_nodes() const { return is_terminal_.size(); }
  std::size_t num_channels() const { return chan_src_.size(); }
  std::size_t num_alive_nodes() const { return num_alive_nodes_; }
  std::size_t num_alive_channels() const { return num_alive_channels_; }
  std::size_t num_alive_terminals() const { return num_alive_terminals_; }
  std::size_t num_alive_switches() const {
    return num_alive_nodes_ - num_alive_terminals_;
  }

  bool is_terminal(NodeId v) const { return is_terminal_[v]; }
  bool is_switch(NodeId v) const { return !is_terminal_[v]; }
  bool node_alive(NodeId v) const { return alive_node_[v]; }
  bool channel_alive(ChannelId c) const { return alive_channel_[c]; }

  Channel channel(ChannelId c) const { return {chan_src_[c], chan_dst_[c]}; }
  NodeId src(ChannelId c) const { return chan_src_[c]; }
  NodeId dst(ChannelId c) const { return chan_dst_[c]; }

  /// Alive outgoing channels of v (contiguous slice of the CSR pool).
  std::span<const ChannelId> out(NodeId v) const {
    return {adj_pool_.data() + adj_begin_[v], adj_len_[v]};
  }
  std::size_t degree(NodeId v) const { return adj_len_[v]; }

  /// Maximum degree Δ over alive nodes.
  std::size_t max_degree() const {
    std::size_t d = 0;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (alive_node_[v]) d = std::max<std::size_t>(d, adj_len_[v]);
    }
    return d;
  }

  /// All alive terminals / switches / nodes (computed on demand).
  std::vector<NodeId> terminals() const { return collect(true); }
  std::vector<NodeId> switches() const { return collect(false); }
  std::vector<NodeId> alive_nodes() const {
    std::vector<NodeId> r;
    r.reserve(num_alive_nodes_);
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (alive_node_[v]) r.push_back(v);
    }
    return r;
  }
  std::vector<ChannelId> alive_channels() const {
    std::vector<ChannelId> r;
    r.reserve(num_alive_channels_);
    for (ChannelId c = 0; c < num_channels(); ++c) {
      if (alive_channel_[c]) r.push_back(c);
    }
    return r;
  }

  /// The unique switch a terminal attaches to.
  NodeId terminal_switch(NodeId t) const {
    NUE_CHECK(is_terminal(t) && adj_len_[t] == 1);
    return chan_dst_[adj_pool_[adj_begin_[t]]];
  }

  // --- adjacency-pool introspection ----------------------------------------

  /// Accounting snapshot of the shared adjacency pool. Invariants (audited
  /// by check_pool_invariants and the churn regression tests):
  ///   used  = sum of segment capacities,
  ///   live  = sum of segment lengths (live <= used),
  ///   size  = used + holes (every pool slot is segment capacity or
  ///           relocation waste),
  ///   size <= 2 * live + kCompactSlack after any mutation (compaction
  ///           keeps the dead space bounded under remove/restore churn).
  struct PoolStats {
    std::size_t size = 0;   // adj_pool_.size()
    std::size_t used = 0;   // sum of segment capacities
    std::size_t holes = 0;  // relocation waste pending compaction
    std::size_t live = 0;   // alive adjacency entries (sum of lengths)
  };
  PoolStats pool_stats() const {
    return {adj_pool_.size(), pool_used_, pool_holes_, pool_live_};
  }

  /// Dead space the pool tolerates (entries) before a mutation triggers
  /// compaction; bounds the steady-state footprint of a long-running
  /// fault/repair churn at 2x the live adjacency size plus this slack.
  static constexpr std::size_t kCompactSlack = 1024;

  /// O(nodes log nodes) structural audit of the adjacency pool: segment
  /// bounds, pairwise disjointness, the accounting identities above, and
  /// the compaction bound. Throws via NUE_CHECK on violation; the churn
  /// tests call it after every operation batch.
  void check_pool_invariants() const {
    std::size_t used = 0, live = 0;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> segments;
    for (NodeId v = 0; v < adj_begin_.size(); ++v) {
      NUE_CHECK_MSG(adj_len_[v] <= adj_cap_[v],
                    "segment length exceeds capacity at node " << v);
      NUE_CHECK_MSG(adj_begin_[v] + static_cast<std::size_t>(adj_cap_[v]) <=
                        adj_pool_.size(),
                    "segment of node " << v << " outside the pool");
      used += adj_cap_[v];
      live += adj_len_[v];
      if (adj_cap_[v] > 0) segments.emplace_back(adj_begin_[v], adj_cap_[v]);
    }
    std::sort(segments.begin(), segments.end());
    for (std::size_t i = 0; i + 1 < segments.size(); ++i) {
      NUE_CHECK_MSG(segments[i].first + static_cast<std::size_t>(
                                            segments[i].second) <=
                        segments[i + 1].first,
                    "overlapping adjacency segments at offset "
                        << segments[i + 1].first);
    }
    NUE_CHECK_MSG(used == pool_used_, "pool_used_ drift: counted "
                                          << used << ", recorded "
                                          << pool_used_);
    NUE_CHECK_MSG(live == pool_live_, "pool_live_ drift: counted "
                                          << live << ", recorded "
                                          << pool_live_);
    NUE_CHECK_MSG(pool_used_ + pool_holes_ == adj_pool_.size(),
                  "pool accounting leak: used " << pool_used_ << " + holes "
                                                << pool_holes_ << " != size "
                                                << adj_pool_.size());
    NUE_CHECK_MSG(adj_pool_.size() <= 2 * pool_live_ + kCompactSlack,
                  "missed compaction: pool size " << adj_pool_.size()
                                                  << " for " << pool_live_
                                                  << " live entries");
  }

 private:
  NodeId add_node(bool terminal) {
    const auto v = static_cast<NodeId>(is_terminal_.size());
    is_terminal_.push_back(terminal);
    alive_node_.push_back(true);
    adj_begin_.push_back(0);
    adj_len_.push_back(0);
    adj_cap_.push_back(0);
    ++num_alive_nodes_;
    if (terminal) ++num_alive_terminals_;
    return v;
  }

  /// Append to v's adjacency segment, relocating it to the pool's end
  /// (doubled capacity) when full. Amortized O(1); dead space is
  /// reclaimed by compact() once it outweighs the live entries.
  void push_adj(NodeId v, ChannelId c) {
    if (adj_len_[v] == adj_cap_[v]) {
      const std::uint32_t new_cap =
          adj_cap_[v] == 0 ? 4 : adj_cap_[v] * 2;
      const std::size_t nb = adj_pool_.size();
      NUE_CHECK_MSG(nb + new_cap <
                        static_cast<std::size_t>(
                            std::numeric_limits<std::uint32_t>::max()),
                    "adjacency pool exceeds 32-bit index space");
      adj_pool_.resize(nb + new_cap);
      std::copy(adj_pool_.begin() + adj_begin_[v],
                adj_pool_.begin() + adj_begin_[v] + adj_len_[v],
                adj_pool_.begin() + nb);
      pool_holes_ += adj_cap_[v];
      pool_used_ += new_cap - adj_cap_[v];
      adj_begin_[v] = static_cast<std::uint32_t>(nb);
      adj_cap_[v] = new_cap;
    }
    adj_pool_[adj_begin_[v] + adj_len_[v]++] = c;
    ++pool_live_;
    // Compaction must come after the append lands: compact() shrinks every
    // segment's capacity to its length, so running it with the new slot
    // reserved but unwritten would hand that slot to the next segment and
    // the append would corrupt a neighbour (or write past the pool).
    maybe_compact();
  }

  /// Swap-remove from v's segment — the same order discipline the old
  /// per-node vectors used, so downstream tie-breaks are unchanged.
  void erase_adj(NodeId v, ChannelId c) {
    const std::uint32_t b = adj_begin_[v];
    for (std::uint32_t i = 0; i < adj_len_[v]; ++i) {
      if (adj_pool_[b + i] == c) {
        adj_pool_[b + i] = adj_pool_[b + adj_len_[v] - 1];
        --adj_len_[v];
        --pool_live_;
        maybe_compact();
        return;
      }
    }
    NUE_CHECK_MSG(false, "channel " << c << " not in out list of " << v);
  }

  /// Compact when the dead space — relocation holes plus the capacity
  /// slack of shrunken segments — outweighs the live entries. Measured
  /// against `pool_live_`, not capacity: the previous trigger compared
  /// holes against `pool_used_`, which every relocation grows in lockstep
  /// with the hole it leaves, so holes could never outgrow it, compaction
  /// was unreachable, and a remove/restore churn (the fabric-manager
  /// daemon's steady state) grew the pool without bound.
  void maybe_compact() {
    if (adj_pool_.size() > 2 * pool_live_ + kCompactSlack) compact();
  }

  /// Repack every segment in node-id order (cache-optimal sweep layout),
  /// preserving per-segment entry order. Capacity shrinks to the live
  /// length; later growth relocates again — amortized against the pool
  /// doubling that got us here.
  void compact() {
    std::vector<ChannelId> fresh;
    fresh.reserve(pool_live_);
    std::size_t at = 0;
    for (NodeId v = 0; v < adj_begin_.size(); ++v) {
      fresh.insert(fresh.end(), adj_pool_.begin() + adj_begin_[v],
                   adj_pool_.begin() + adj_begin_[v] + adj_len_[v]);
      adj_begin_[v] = static_cast<std::uint32_t>(at);
      adj_cap_[v] = adj_len_[v];
      at += adj_len_[v];
    }
    adj_pool_.swap(fresh);
    pool_used_ = at;
    pool_holes_ = 0;
  }

  std::vector<NodeId> collect(bool terminal) const {
    std::vector<NodeId> r;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (alive_node_[v] && is_terminal_[v] == terminal) r.push_back(v);
    }
    return r;
  }

  // SoA channel endpoints: chan_src_[c] / chan_dst_[c].
  std::vector<NodeId> chan_src_;
  std::vector<NodeId> chan_dst_;
  // CSR adjacency pool: node v's alive out-channels live at
  // adj_pool_[adj_begin_[v] .. adj_begin_[v] + adj_len_[v]).
  std::vector<ChannelId> adj_pool_;
  std::vector<std::uint32_t> adj_begin_;
  std::vector<std::uint32_t> adj_len_;
  std::vector<std::uint32_t> adj_cap_;
  std::size_t pool_used_ = 0;   // sum of segment capacities
  std::size_t pool_holes_ = 0;  // relocation waste pending compaction
  std::size_t pool_live_ = 0;   // sum of segment lengths
  DynamicBitset is_terminal_;
  DynamicBitset alive_node_;
  DynamicBitset alive_channel_;
  std::size_t num_alive_nodes_ = 0;
  std::size_t num_alive_channels_ = 0;
  std::size_t num_alive_terminals_ = 0;
};

}  // namespace nue
