// Interconnection network model (Definition 1 of the paper).
//
// A network is a connected multigraph G(N, C): nodes are terminals or
// switches, and every duplex link is split into two directed channels of
// opposite direction. Channels are stored in pairs so that the reverse
// channel of c is always c ^ 1 — this identity is load-bearing throughout
// the routing code (forwarding tables store "search-orientation" channels
// and the traffic direction is the reverse).
//
// Fault injection (fail-in-place experiments, Figs. 1 and 11) removes
// channels/nodes in place: ids stay stable, dead channels disappear from
// adjacency lists, dead nodes keep their id but have no channels.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nue {

using NodeId = std::uint32_t;
using ChannelId = std::uint32_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr ChannelId kInvalidChannel = static_cast<ChannelId>(-1);

/// A directed channel (n_src, n_dst).
struct Channel {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
};

/// Reverse channel id (the opposite direction of the same duplex link).
constexpr ChannelId reverse(ChannelId c) { return c ^ 1u; }

class Network {
 public:
  // --- construction -------------------------------------------------------

  NodeId add_switch() { return add_node(false); }
  NodeId add_terminal() { return add_node(true); }

  /// Add a duplex link between u and v: creates the directed channel pair
  /// (u,v) = returned id, (v,u) = returned id ^ 1. Parallel links are
  /// allowed (multigraph); self loops are not.
  ChannelId add_link(NodeId u, NodeId v) {
    NUE_CHECK(u < num_nodes() && v < num_nodes());
    NUE_CHECK_MSG(u != v, "self loop at node " << u);
    NUE_CHECK_MSG(alive_node_[u] && alive_node_[v], "link to dead node");
    const auto c = static_cast<ChannelId>(channels_.size());
    channels_.push_back({u, v});
    channels_.push_back({v, u});
    alive_channel_.push_back(true);
    alive_channel_.push_back(true);
    out_[u].push_back(c);
    out_[v].push_back(c + 1);
    num_alive_channels_ += 2;
    return c;
  }

  // --- fault injection ----------------------------------------------------

  /// Remove the duplex link containing channel c (kills c and reverse(c)).
  void remove_link(ChannelId c) {
    c &= ~1u;  // normalize to the even channel of the pair
    NUE_CHECK(alive_channel_[c]);
    erase_from_out(channels_[c].src, c);
    erase_from_out(channels_[c].dst, c + 1);
    alive_channel_[c] = false;
    alive_channel_[c + 1] = false;
    num_alive_channels_ -= 2;
  }

  /// Remove a node and all its links. The id stays valid but dead.
  void remove_node(NodeId v) {
    NUE_CHECK(alive_node_[v]);
    while (!out_[v].empty()) remove_link(out_[v].back());
    alive_node_[v] = false;
    --num_alive_nodes_;
    if (is_terminal_[v]) --num_alive_terminals_;
  }

  // --- fault repair ---------------------------------------------------------

  /// Re-add a previously removed duplex link (both endpoints must be
  /// alive). The channel ids are unchanged; the pair reappears at the end
  /// of its endpoints' adjacency lists, so adjacency order — and with it
  /// every deterministic tie-break downstream — is a function of the
  /// remove/restore event history, never of wall-clock interleaving.
  void restore_link(ChannelId c) {
    c &= ~1u;  // normalize to the even channel of the pair
    NUE_CHECK_MSG(!alive_channel_[c], "restoring an alive link");
    NUE_CHECK_MSG(alive_node_[channels_[c].src] && alive_node_[channels_[c].dst],
                  "restoring link " << c << " to a dead node");
    alive_channel_[c] = true;
    alive_channel_[c + 1] = true;
    out_[channels_[c].src].push_back(c);
    out_[channels_[c].dst].push_back(c + 1);
    num_alive_channels_ += 2;
  }

  /// Revive a dead node with no links; repairs bring its links back
  /// individually via restore_link (see topology/faults.hpp for the
  /// switch-level repair that does both).
  void restore_node(NodeId v) {
    NUE_CHECK_MSG(!alive_node_[v], "restoring an alive node");
    alive_node_[v] = true;
    ++num_alive_nodes_;
    if (is_terminal_[v]) ++num_alive_terminals_;
  }

  // --- accessors ----------------------------------------------------------

  std::size_t num_nodes() const { return is_terminal_.size(); }
  std::size_t num_channels() const { return channels_.size(); }
  std::size_t num_alive_nodes() const { return num_alive_nodes_; }
  std::size_t num_alive_channels() const { return num_alive_channels_; }
  std::size_t num_alive_terminals() const { return num_alive_terminals_; }
  std::size_t num_alive_switches() const {
    return num_alive_nodes_ - num_alive_terminals_;
  }

  bool is_terminal(NodeId v) const { return is_terminal_[v]; }
  bool is_switch(NodeId v) const { return !is_terminal_[v]; }
  bool node_alive(NodeId v) const { return alive_node_[v]; }
  bool channel_alive(ChannelId c) const { return alive_channel_[c]; }

  const Channel& channel(ChannelId c) const { return channels_[c]; }
  NodeId src(ChannelId c) const { return channels_[c].src; }
  NodeId dst(ChannelId c) const { return channels_[c].dst; }

  /// Alive outgoing channels of v.
  std::span<const ChannelId> out(NodeId v) const { return out_[v]; }
  std::size_t degree(NodeId v) const { return out_[v].size(); }

  /// Maximum degree Δ over alive nodes.
  std::size_t max_degree() const {
    std::size_t d = 0;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (alive_node_[v]) d = std::max(d, out_[v].size());
    }
    return d;
  }

  /// All alive terminals / switches / nodes (computed on demand).
  std::vector<NodeId> terminals() const { return collect(true); }
  std::vector<NodeId> switches() const { return collect(false); }
  std::vector<NodeId> alive_nodes() const {
    std::vector<NodeId> r;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (alive_node_[v]) r.push_back(v);
    }
    return r;
  }
  std::vector<ChannelId> alive_channels() const {
    std::vector<ChannelId> r;
    for (ChannelId c = 0; c < num_channels(); ++c) {
      if (alive_channel_[c]) r.push_back(c);
    }
    return r;
  }

  /// The unique switch a terminal attaches to.
  NodeId terminal_switch(NodeId t) const {
    NUE_CHECK(is_terminal(t) && out_[t].size() == 1);
    return channels_[out_[t][0]].dst;
  }

 private:
  NodeId add_node(bool terminal) {
    const auto v = static_cast<NodeId>(is_terminal_.size());
    is_terminal_.push_back(terminal);
    alive_node_.push_back(true);
    out_.emplace_back();
    ++num_alive_nodes_;
    if (terminal) ++num_alive_terminals_;
    return v;
  }

  void erase_from_out(NodeId v, ChannelId c) {
    auto& o = out_[v];
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (o[i] == c) {
        o[i] = o.back();
        o.pop_back();
        return;
      }
    }
    NUE_CHECK_MSG(false, "channel " << c << " not in out list of " << v);
  }

  std::vector<NodeId> collect(bool terminal) const {
    std::vector<NodeId> r;
    for (NodeId v = 0; v < num_nodes(); ++v) {
      if (alive_node_[v] && is_terminal_[v] == terminal) r.push_back(v);
    }
    return r;
  }

  std::vector<Channel> channels_;
  std::vector<std::vector<ChannelId>> out_;
  std::vector<std::uint8_t> is_terminal_;
  std::vector<std::uint8_t> alive_node_;
  std::vector<std::uint8_t> alive_channel_;
  std::size_t num_alive_nodes_ = 0;
  std::size_t num_alive_channels_ = 0;
  std::size_t num_alive_terminals_ = 0;
};

}  // namespace nue
