#include "graph/algorithms.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "heap/dary_heap.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nue {

std::vector<std::uint32_t> bfs_distances(const Network& net, NodeId src) {
  NUE_CHECK(net.node_alive(src));
  std::vector<std::uint32_t> dist(net.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId v : frontier) {
      for (ChannelId c : net.out(v)) {
        const NodeId w = net.dst(c);
        if (dist[w] == kUnreachable) {
          dist[w] = dist[v] + 1;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<ChannelId> bfs_tree(const Network& net, NodeId root) {
  NUE_CHECK(net.node_alive(root));
  std::vector<ChannelId> parent(net.num_nodes(), kInvalidChannel);
  std::vector<std::uint8_t> seen(net.num_nodes(), 0);
  seen[root] = 1;
  std::vector<NodeId> frontier{root};
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId v : frontier) {
      for (ChannelId c : net.out(v)) {
        const NodeId w = net.dst(c);
        if (!seen[w]) {
          seen[w] = 1;
          // Channel from w back toward the root is the reverse of (v -> w).
          parent[w] = reverse(c);
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return parent;
}

bool is_connected(const Network& net) {
  if (net.num_alive_nodes() == 0) return true;
  NodeId start = kInvalidNode;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_alive(v)) {
      start = v;
      break;
    }
  }
  const auto dist = bfs_distances(net, start);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_alive(v) && dist[v] == kUnreachable) return false;
  }
  return true;
}

SsspResult dijkstra(const Network& net, NodeId src,
                    const std::vector<double>& weights) {
  NUE_CHECK(net.node_alive(src));
  NUE_CHECK(weights.size() == net.num_channels());
  SsspResult r;
  r.distance.assign(net.num_nodes(), std::numeric_limits<double>::infinity());
  r.used_channel.assign(net.num_nodes(), kInvalidChannel);
  DaryHeap<double> heap(net.num_nodes());
  r.distance[src] = 0.0;
  heap.insert(src, 0.0);
  while (!heap.empty()) {
    const NodeId v = heap.extract_min();
    for (ChannelId c : net.out(v)) {
      const NodeId w = net.dst(c);
      NUE_DCHECK(weights[c] > 0.0);
      const double nd = r.distance[v] + weights[c];
      if (nd < r.distance[w]) {
        r.distance[w] = nd;
        r.used_channel[w] = c;
        heap.insert_or_decrease(w, nd);
      }
    }
  }
  return r;
}

namespace {

/// Per-source scratch of Brandes' algorithm; reused across the sources one
/// execution agent processes.
struct BrandesScratch {
  explicit BrandesScratch(std::size_t n) : dist(n), sigma(n), delta(n) {
    order.reserve(n);
  }
  std::vector<std::uint32_t> dist;
  std::vector<double> sigma;      // # shortest paths (multigraph: each
                                  // parallel channel counts as a path)
  std::vector<double> delta;
  std::vector<NodeId> order;      // visit order for the backward pass
};

/// One source of Brandes' algorithm: BFS forward, dependency accumulation
/// backward. Leaves the source's dependency vector in scratch.delta
/// (delta[w] = 0 for unreached nodes and for w == s).
template <typename InGraph>
void brandes_source(const Network& net, const InGraph& in_graph, NodeId s,
                    BrandesScratch& sc) {
  std::fill(sc.dist.begin(), sc.dist.end(), kUnreachable);
  std::fill(sc.sigma.begin(), sc.sigma.end(), 0.0);
  std::fill(sc.delta.begin(), sc.delta.end(), 0.0);
  sc.order.clear();
  sc.dist[s] = 0;
  sc.sigma[s] = 1.0;
  std::queue<NodeId> q;
  q.push(s);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    sc.order.push_back(v);
    for (ChannelId c : net.out(v)) {
      const NodeId w = net.dst(c);
      if (!in_graph(w)) continue;
      if (sc.dist[w] == kUnreachable) {
        sc.dist[w] = sc.dist[v] + 1;
        q.push(w);
      }
      if (sc.dist[w] == sc.dist[v] + 1) sc.sigma[w] += sc.sigma[v];
    }
  }
  // Backward accumulation.
  for (auto it = sc.order.rbegin(); it != sc.order.rend(); ++it) {
    const NodeId w = *it;
    for (ChannelId c : net.out(w)) {
      // Predecessor relation: v -> w with dist[v] + 1 == dist[w].
      const NodeId v = net.dst(c);  // neighbor; check if predecessor
      if (!in_graph(v) || sc.dist[v] == kUnreachable) continue;
      if (sc.dist[v] + 1 == sc.dist[w]) {
        sc.delta[v] += sc.sigma[v] / sc.sigma[w] * (1.0 + sc.delta[w]);
      }
    }
  }
  sc.delta[s] = 0.0;  // a source never scores for itself
}

/// Shared accumulation over an explicit source list (exact = every
/// eligible source; sampled = the pivot subset). Serial agents sweep the
/// list in order; parallel agents compute the per-source dependency
/// vectors concurrently, and only the reduction into cb orders
/// floating-point additions across sources. Each cb[w] is its own
/// accumulator chain, so adding the per-source dependency vectors on one
/// thread in ascending source order reproduces the serial operation
/// sequence exactly (delta[w] = 0 contributions are exact no-ops on the
/// non-negative accumulators). The window only bounds the memory holding
/// completed dependency vectors; its size never affects the result.
template <typename InGraph>
void accumulate_brandes(const Network& net, const InGraph& in_graph,
                        const std::vector<NodeId>& sources, unsigned agents,
                        std::vector<double>& cb) {
  const std::size_t n = net.num_nodes();
  if (agents <= 1) {
    BrandesScratch sc(n);
    for (NodeId s : sources) {
      brandes_source(net, in_graph, s, sc);
      for (NodeId w = 0; w < n; ++w) cb[w] += sc.delta[w];
    }
    return;
  }
  const std::size_t window = static_cast<std::size_t>(agents) * 4;
  std::vector<std::vector<double>> deltas(
      std::min<std::size_t>(window, sources.size()));
  for (std::size_t base = 0; base < sources.size(); base += window) {
    const std::size_t count =
        std::min(window, sources.size() - base);
    parallel_for_chunks(agents, count, 1,
                        [&](std::size_t begin, std::size_t end) {
                          BrandesScratch sc(n);
                          for (std::size_t i = begin; i < end; ++i) {
                            brandes_source(net, in_graph,
                                           sources[base + i], sc);
                            deltas[i] = sc.delta;
                          }
                        });
    for (std::size_t i = 0; i < count; ++i) {
      const std::vector<double>& d = deltas[i];
      for (NodeId w = 0; w < n; ++w) cb[w] += d[w];
    }
  }
}

}  // namespace

std::vector<double> betweenness_centrality(const Network& net,
                                           const std::vector<std::uint8_t>& mask,
                                           std::uint32_t threads) {
  const std::size_t n = net.num_nodes();
  auto in_graph = [&](NodeId v) {
    return net.node_alive(v) && (mask.empty() || mask[v]);
  };
  std::vector<double> cb(n, 0.0);
  std::vector<NodeId> sources;
  sources.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    if (in_graph(s)) sources.push_back(s);
  }
  accumulate_brandes(net, in_graph, sources, resolve_threads(threads), cb);
  return cb;
}

std::vector<double> betweenness_centrality_sampled(
    const Network& net, std::size_t pivots,
    const std::vector<std::uint8_t>& mask, std::uint32_t threads) {
  const std::size_t n = net.num_nodes();
  auto in_graph = [&](NodeId v) {
    return net.node_alive(v) && (mask.empty() || mask[v]);
  };
  std::vector<NodeId> eligible;
  eligible.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    if (in_graph(s)) eligible.push_back(s);
  }
  std::vector<double> cb(n, 0.0);
  if (pivots == 0 || pivots >= eligible.size()) {
    accumulate_brandes(net, in_graph, eligible, resolve_threads(threads), cb);
    return cb;
  }
  // Deterministic pivots: evenly spaced over the eligible sources in
  // ascending node order. Regular topologies enumerate nodes in a spatial
  // sweep, so the spacing doubles as geometric coverage of the fabric;
  // and unlike a seeded draw the choice is stable under any thread count
  // or call site, keeping routing tables reproducible.
  std::vector<NodeId> sources;
  sources.reserve(pivots);
  for (std::size_t i = 0; i < pivots; ++i) {
    sources.push_back(eligible[i * eligible.size() / pivots]);
  }
  accumulate_brandes(net, in_graph, sources, resolve_threads(threads), cb);
  // Brandes–Pich scaling: each sampled source stands in for
  // #eligible/pivots of them.
  const double scale =
      static_cast<double>(eligible.size()) / static_cast<double>(pivots);
  for (double& v : cb) v *= scale;
  return cb;
}

std::vector<std::uint8_t> convex_subgraph(const Network& net,
                                          const std::vector<NodeId>& dests) {
  const std::size_t n = net.num_nodes();
  std::vector<std::uint8_t> in_hull(n, 0);
  std::vector<std::uint8_t> is_dest(n, 0);
  for (NodeId d : dests) {
    NUE_CHECK(net.node_alive(d));
    is_dest[d] = 1;
    in_hull[d] = 1;
  }
  // Forward step: BFS from each destination x; backward step: a reverse
  // sweep (in decreasing distance order) seeded at every destination marks
  // exactly the nodes lying on some shortest path from x to a destination.
  std::vector<std::uint8_t> on_path(n);
  std::vector<std::vector<NodeId>> by_dist;
  for (NodeId x : dests) {
    const auto dist = bfs_distances(net, x);
    std::uint32_t maxd = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > maxd) maxd = dist[v];
    }
    by_dist.assign(maxd + 1, {});
    std::fill(on_path.begin(), on_path.end(), 0);
    for (NodeId y : dests) {
      if (dist[y] != kUnreachable && !on_path[y]) {
        on_path[y] = 1;
        by_dist[dist[y]].push_back(y);
      }
    }
    for (std::uint32_t level = maxd; level > 0; --level) {
      for (NodeId v : by_dist[level]) {
        for (ChannelId c : net.out(v)) {
          const NodeId w = net.dst(c);
          if (dist[w] != kUnreachable && dist[w] + 1 == level && !on_path[w]) {
            on_path[w] = 1;
            by_dist[dist[w]].push_back(w);
          }
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (on_path[v]) in_hull[v] = 1;
    }
  }
  return in_hull;
}

}  // namespace nue
