#include "graph/algorithms.hpp"

#include <limits>
#include <queue>

#include "heap/dary_heap.hpp"
#include "util/error.hpp"

namespace nue {

std::vector<std::uint32_t> bfs_distances(const Network& net, NodeId src) {
  NUE_CHECK(net.node_alive(src));
  std::vector<std::uint32_t> dist(net.num_nodes(), kUnreachable);
  std::vector<NodeId> frontier{src};
  dist[src] = 0;
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId v : frontier) {
      for (ChannelId c : net.out(v)) {
        const NodeId w = net.dst(c);
        if (dist[w] == kUnreachable) {
          dist[w] = dist[v] + 1;
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return dist;
}

std::vector<ChannelId> bfs_tree(const Network& net, NodeId root) {
  NUE_CHECK(net.node_alive(root));
  std::vector<ChannelId> parent(net.num_nodes(), kInvalidChannel);
  std::vector<std::uint8_t> seen(net.num_nodes(), 0);
  seen[root] = 1;
  std::vector<NodeId> frontier{root};
  std::vector<NodeId> next;
  while (!frontier.empty()) {
    next.clear();
    for (NodeId v : frontier) {
      for (ChannelId c : net.out(v)) {
        const NodeId w = net.dst(c);
        if (!seen[w]) {
          seen[w] = 1;
          // Channel from w back toward the root is the reverse of (v -> w).
          parent[w] = reverse(c);
          next.push_back(w);
        }
      }
    }
    frontier.swap(next);
  }
  return parent;
}

bool is_connected(const Network& net) {
  if (net.num_alive_nodes() == 0) return true;
  NodeId start = kInvalidNode;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_alive(v)) {
      start = v;
      break;
    }
  }
  const auto dist = bfs_distances(net, start);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.node_alive(v) && dist[v] == kUnreachable) return false;
  }
  return true;
}

SsspResult dijkstra(const Network& net, NodeId src,
                    const std::vector<double>& weights) {
  NUE_CHECK(net.node_alive(src));
  NUE_CHECK(weights.size() == net.num_channels());
  SsspResult r;
  r.distance.assign(net.num_nodes(), std::numeric_limits<double>::infinity());
  r.used_channel.assign(net.num_nodes(), kInvalidChannel);
  DaryHeap<double> heap(net.num_nodes());
  r.distance[src] = 0.0;
  heap.insert(src, 0.0);
  while (!heap.empty()) {
    const NodeId v = heap.extract_min();
    for (ChannelId c : net.out(v)) {
      const NodeId w = net.dst(c);
      NUE_DCHECK(weights[c] > 0.0);
      const double nd = r.distance[v] + weights[c];
      if (nd < r.distance[w]) {
        r.distance[w] = nd;
        r.used_channel[w] = c;
        heap.insert_or_decrease(w, nd);
      }
    }
  }
  return r;
}

std::vector<double> betweenness_centrality(
    const Network& net, const std::vector<std::uint8_t>& mask) {
  const std::size_t n = net.num_nodes();
  auto in_graph = [&](NodeId v) {
    return net.node_alive(v) && (mask.empty() || mask[v]);
  };
  std::vector<double> cb(n, 0.0);
  // Brandes' algorithm, one BFS per source, accumulating pair dependencies.
  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n);   // # shortest paths (multigraph: each
                                  // parallel channel counts as a path)
  std::vector<double> delta(n);
  std::vector<NodeId> order;      // visit order for the backward pass
  order.reserve(n);
  for (NodeId s = 0; s < n; ++s) {
    if (!in_graph(s)) continue;
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[s] = 0;
    sigma[s] = 1.0;
    std::queue<NodeId> q;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      order.push_back(v);
      for (ChannelId c : net.out(v)) {
        const NodeId w = net.dst(c);
        if (!in_graph(w)) continue;
        if (dist[w] == kUnreachable) {
          dist[w] = dist[v] + 1;
          q.push(w);
        }
        if (dist[w] == dist[v] + 1) sigma[w] += sigma[v];
      }
    }
    // Backward accumulation.
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const NodeId w = *it;
      for (ChannelId c : net.out(w)) {
        // Predecessor relation: v -> w with dist[v] + 1 == dist[w].
        const NodeId v = net.dst(c);  // neighbor; check if predecessor
        if (!in_graph(v) || dist[v] == kUnreachable) continue;
        if (dist[v] + 1 == dist[w]) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) cb[w] += delta[w];
    }
  }
  return cb;
}

std::vector<std::uint8_t> convex_subgraph(const Network& net,
                                          const std::vector<NodeId>& dests) {
  const std::size_t n = net.num_nodes();
  std::vector<std::uint8_t> in_hull(n, 0);
  std::vector<std::uint8_t> is_dest(n, 0);
  for (NodeId d : dests) {
    NUE_CHECK(net.node_alive(d));
    is_dest[d] = 1;
    in_hull[d] = 1;
  }
  // Forward step: BFS from each destination x; backward step: a reverse
  // sweep (in decreasing distance order) seeded at every destination marks
  // exactly the nodes lying on some shortest path from x to a destination.
  std::vector<std::uint8_t> on_path(n);
  std::vector<std::vector<NodeId>> by_dist;
  for (NodeId x : dests) {
    const auto dist = bfs_distances(net, x);
    std::uint32_t maxd = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > maxd) maxd = dist[v];
    }
    by_dist.assign(maxd + 1, {});
    std::fill(on_path.begin(), on_path.end(), 0);
    for (NodeId y : dests) {
      if (dist[y] != kUnreachable && !on_path[y]) {
        on_path[y] = 1;
        by_dist[dist[y]].push_back(y);
      }
    }
    for (std::uint32_t level = maxd; level > 0; --level) {
      for (NodeId v : by_dist[level]) {
        for (ChannelId c : net.out(v)) {
          const NodeId w = net.dst(c);
          if (dist[w] != kUnreachable && dist[w] + 1 == level && !on_path[w]) {
            on_path[w] = 1;
            by_dist[dist[w]].push_back(w);
          }
        }
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      if (on_path[v]) in_hull[v] = 1;
    }
  }
  return in_hull;
}

}  // namespace nue
