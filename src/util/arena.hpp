// Monotonic arena for routing scratch (docs/SCALING.md).
//
// The Nue layer router and its CompleteCdg together allocate ~25 scratch
// arrays sized by |nodes| or |channels|; before the arena each LayerRouter
// construction paid one malloc per array (and reroute_nue constructs a
// router per escape-root attempt). The arena turns that into bump-pointer
// slices of a few large chunks that are RETAINED across reset(): a
// reset-in-O(1) rewind of the bump cursor, after which the next router
// re-slices the same memory — zero steady-state allocation no matter how
// many layers, destination columns, or repair attempts run through it.
//
// Lifetime rules (the arena is deliberately dumb — these are load-bearing):
//   * alloc<T>() returns uninitialized POD storage; alloc_filled<T>()
//     value-fills. Only trivially copyable/destructible T: the arena never
//     runs destructors.
//   * reset() invalidates every outstanding slice at once. The owner of a
//     scratch structure must not outlive the reset that reclaims it —
//     LayerRouter enforces this by owning `Arena& scratch_` whose reset
//     happens in its own constructor (one live router per arena).
//   * Slices are stable between resets: no later alloc moves earlier ones
//     (chunked growth, never realloc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/error.hpp"

namespace nue {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 1 << 20)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage for n objects of trivially-destructible T.
  template <typename T>
  T* alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena never runs destructors");
    return static_cast<T*>(raw_alloc(n * sizeof(T), alignof(T)));
  }

  /// Storage for n objects, each copy-initialized from `value`.
  template <typename T>
  T* alloc_filled(std::size_t n, const T& value) {
    T* p = alloc<T>(n);
    for (std::size_t i = 0; i < n; ++i) p[i] = value;
    return p;
  }

  /// O(1) rewind: every chunk is retained, the cursor returns to the
  /// front. All outstanding slices are invalidated.
  void reset() {
    cur_chunk_ = 0;
    cur_off_ = 0;
  }

  /// Bytes currently held (capacity, not live allocation).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* raw_alloc(std::size_t bytes, std::size_t align) {
    NUE_DCHECK(align != 0 && (align & (align - 1)) == 0);
    while (true) {
      if (cur_chunk_ < chunks_.size()) {
        Chunk& c = chunks_[cur_chunk_];
        const std::size_t base =
            reinterpret_cast<std::size_t>(c.data.get()) + cur_off_;
        const std::size_t pad = (align - (base & (align - 1))) & (align - 1);
        if (cur_off_ + pad + bytes <= c.size) {
          void* p = c.data.get() + cur_off_ + pad;
          cur_off_ += pad + bytes;
          return p;
        }
        // Chunk full: move on (its tail is wasted until the next reset).
        ++cur_chunk_;
        cur_off_ = 0;
        continue;
      }
      // Out of retained chunks: grow geometrically so huge fabrics settle
      // into O(1) chunks instead of thousands of small ones.
      const std::size_t want = bytes + align;
      std::size_t size = chunk_bytes_;
      if (!chunks_.empty()) size = chunks_.back().size * 2;
      if (size < want) size = want;
      chunks_.push_back({std::make_unique<std::byte[]>(size), size});
      cur_chunk_ = chunks_.size() - 1;
      cur_off_ = 0;
    }
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t cur_chunk_ = 0;
  std::size_t cur_off_ = 0;
};

/// Fixed-capacity vector over an arena slice: push_back/clear/iteration
/// with no ownership and no growth (capacity is the caller-proven bound,
/// checked in debug). The routing scratch lists (BFS frontiers, island
/// sets, DFS stacks) all have natural |nodes| or |channels| bounds.
template <typename T>
class FixedVec {
 public:
  FixedVec() = default;
  FixedVec(Arena& arena, std::size_t capacity)
      : data_(arena.alloc<T>(capacity)), cap_(capacity) {}

  void clear() { size_ = 0; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return cap_; }

  void push_back(const T& v) {
    NUE_DCHECK(size_ < cap_);
    data_[size_++] = v;
  }
  void pop_back() {
    NUE_DCHECK(size_ > 0);
    --size_;
  }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void assign(std::size_t n, const T& v) {
    NUE_DCHECK(n <= cap_);
    size_ = n;
    for (std::size_t i = 0; i < n; ++i) data_[i] = v;
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace nue
