// Shared thread pool and deterministic parallel-for for the routing
// runtime.
//
// Design constraints (see docs/PARALLELISM.md):
//   * No work stealing, no task dependencies: every parallel region is a
//     flat index range [0, n) whose iterations are independent by
//     construction, so scheduling can never influence results.
//   * The calling thread always participates in the loop (it drains the
//     same atomic chunk counter as the pool workers), so a parallel region
//     makes progress even when every pool worker is busy — nested regions
//     degrade to serial execution instead of deadlocking.
//   * `threads <= 1` runs the plain serial loop inline, byte-for-byte the
//     legacy single-threaded code path (no pool, no atomics).
//
// The pool itself is a lazily constructed process-wide singleton; routing
// engines read their worker count from an options field (0 = the global
// default installed by the --threads flag, which itself defaults to
// std::thread::hardware_concurrency()).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace nue {

/// Number of hardware threads (never 0).
inline unsigned hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace detail {
inline std::atomic<std::uint32_t>& default_threads_slot() {
  static std::atomic<std::uint32_t> slot{0};
  return slot;
}
}  // namespace detail

/// Install the process-wide default worker count (the --threads flag).
/// 0 restores "use hardware concurrency".
inline void set_default_threads(std::uint32_t n) {
  detail::default_threads_slot().store(n, std::memory_order_relaxed);
}

/// Resolve an options-level thread request: 0 means "global default",
/// which in turn defaults to hardware concurrency.
inline unsigned resolve_threads(std::uint32_t requested) {
  if (requested != 0) return requested;
  const std::uint32_t def =
      detail::default_threads_slot().load(std::memory_order_relaxed);
  return def != 0 ? def : hardware_threads();
}

/// Fixed-size FIFO thread pool (std::thread + condition_variable only).
class ThreadPool {
 public:
  explicit ThreadPool(unsigned workers) {
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  unsigned workers() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide pool. Sized for the machine but never below 4 workers so
  /// that thread-count sweeps (and TSan runs) exercise real concurrency
  /// even on small containers; surplus workers just sleep.
  static ThreadPool& shared() {
    static ThreadPool pool(hardware_threads() < 4 ? 4 : hardware_threads());
    return pool;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
        if (stop_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Run fn(begin, end) over disjoint contiguous chunks covering [0, n),
/// using up to `threads` execution agents (pool workers + the caller).
/// Each chunk is executed by exactly one agent, so fn may keep per-call
/// scratch and reuse it across the chunk's iterations. Chunk boundaries
/// are fixed by `grain` alone (never by thread count or timing), so any
/// per-chunk state is deterministic. Exceptions propagate to the caller
/// (first one wins; remaining chunks are abandoned).
template <typename Fn>
void parallel_for_chunks(unsigned threads, std::size_t n, std::size_t grain,
                         Fn&& fn) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t agents =
      threads <= 1 ? 1 : std::min<std::size_t>(threads, chunks);
  if (agents <= 1) {
    for (std::size_t b = 0; b < n; b += grain) {
      fn(b, b + grain < n ? b + grain : n);
    }
    return;
  }

  // Helper tasks are *optional*: the region closes as soon as the caller
  // has drained every chunk and the helpers that actually started have
  // finished. A helper task that only gets scheduled after the region
  // closed is a no-op. Waiting instead for every submitted task to run
  // would deadlock nested regions: a pool worker inside a nested
  // parallel_for would block on its queued helpers, which can never be
  // picked up while every worker is itself blocked the same way.
  struct State {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::function<void(State&)> drain;  // cleared once the region closes
    unsigned executing = 0;
    bool closed = false;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->drain = [&fn, n, grain](State& st) {
    try {
      for (;;) {
        const std::size_t begin = st.next.fetch_add(grain);
        if (begin >= n) return;
        fn(begin, begin + grain < n ? begin + grain : n);
      }
    } catch (...) {
      st.next.store(n);  // abandon the remaining chunks
      std::lock_guard<std::mutex> lk(st.mu);
      if (!st.error) st.error = std::current_exception();
    }
  };

  const unsigned helpers = static_cast<unsigned>(agents - 1);
  for (unsigned h = 0; h < helpers; ++h) {
    ThreadPool::shared().submit([state] {
      std::function<void(State&)> drain;
      {
        std::lock_guard<std::mutex> lk(state->mu);
        if (state->closed) return;  // region already over: nothing to help
        ++state->executing;
        drain = state->drain;
      }
      {
        // Per-task span: one per helper that actually drained chunks, so
        // a trace shows how the region's work spread over pool workers.
        TELEM_SPAN("pool.task");
        drain(*state);
      }
      {
        std::lock_guard<std::mutex> lk(state->mu);
        --state->executing;
      }
      state->cv.notify_one();
    });
  }
  {
    TELEM_SPAN("pool.caller");
    state->drain(*state);  // the caller always participates
  }
  std::unique_lock<std::mutex> lk(state->mu);
  state->closed = true;
  state->cv.wait(lk, [&] { return state->executing == 0; });
  state->drain = nullptr;  // drop the references into the caller's frame
  if (state->error) std::rethrow_exception(state->error);
}

/// Run fn(i) for every i in [0, n); iterations must be independent.
/// `threads <= 1` is the exact legacy serial loop.
template <typename Fn>
void parallel_for(unsigned threads, std::size_t n, Fn&& fn,
                  std::size_t grain = 1) {
  parallel_for_chunks(threads, n, grain,
                      [&fn](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i) fn(i);
                      });
}

}  // namespace nue
