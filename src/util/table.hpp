// Console table / CSV emitter for experiment harnesses.
//
// Every bench binary prints the same rows the paper's figures/tables report;
// this helper keeps the formatting uniform and optionally mirrors rows to a
// CSV file for plotting.
#pragma once

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nue {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  class Row {
   public:
    explicit Row(Table* t) : t_(t) {}
    Row& operator<<(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    Row& operator<<(const char* s) { return *this << std::string(s); }
    Row& operator<<(double v) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(3) << v;
      return *this << os.str();
    }
    template <typename T>
      requires std::is_integral_v<T>
    Row& operator<<(T v) {
      return *this << std::to_string(v);
    }
    ~Row() { t_->add_row(std::move(cells_)); }
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;

   private:
    Table* t_;
    std::vector<std::string> cells_;
  };

  Row row() { return Row(this); }

  void add_row(std::vector<std::string> cells) {
    NUE_CHECK_MSG(cells.size() == headers_.size(),
                  "row has " << cells.size() << " cells, expected "
                             << headers_.size());
    rows_.push_back(std::move(cells));
  }

  /// Pretty-print with aligned columns.
  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
      width[c] = headers_[c].size();
    for (const auto& r : rows_)
      for (std::size_t c = 0; c < r.size(); ++c)
        width[c] = std::max(width[c], r[c].size());

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        os << (c ? "  " : "") << std::left << std::setw(static_cast<int>(width[c]))
           << cells[c];
      }
      os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
      rule += std::string(width[c], '-') + (c + 1 < headers_.size() ? "  " : "");
    os << rule << '\n';
    for (const auto& r : rows_) emit(r);
    os.flush();
  }

  /// Mirror the table to a CSV file (no quoting needed for our content).
  void write_csv(const std::string& path) const {
    std::ofstream f(path);
    NUE_CHECK_MSG(f.good(), "cannot open " << path);
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c)
        f << (c ? "," : "") << cells[c];
      f << '\n';
    };
    emit(headers_);
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nue
