// Minimal command-line flag parsing for the experiment binaries.
//
// Supported syntax: --name value, --name=value, and boolean --name.
// Unknown flags abort with a usage message so typos don't silently run the
// default configuration.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

namespace nue {

class Flags {
 public:
  Flags(int argc, char** argv) : prog_(argv[0]) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  /// Register + read an integer flag.
  std::int64_t get_int(const std::string& name, std::int64_t def,
                       const std::string& help) {
    describe(name, std::to_string(def), help);
    const auto v = find(name);
    return v ? std::strtoll(v->c_str(), nullptr, 10) : def;
  }

  double get_double(const std::string& name, double def,
                    const std::string& help) {
    describe(name, std::to_string(def), help);
    const auto v = find(name);
    return v ? std::strtod(v->c_str(), nullptr) : def;
  }

  std::string get_string(const std::string& name, const std::string& def,
                         const std::string& help) {
    describe(name, def, help);
    const auto v = find(name);
    return v ? *v : def;
  }

  /// Register + read the standard --threads flag shared by every binary:
  /// 0 = hardware concurrency, 1 = fully serial legacy path. The caller
  /// passes the result to set_default_threads() (util/thread_pool.hpp).
  std::uint32_t get_threads() {
    return static_cast<std::uint32_t>(get_int(
        "threads", 0,
        "worker threads (0 = hardware concurrency, 1 = serial)"));
  }

  bool get_bool(const std::string& name, bool def, const std::string& help) {
    describe(name, def ? "true" : "false", help);
    const auto v = find(name);
    if (!v) return def;
    return *v != "false" && *v != "0";
  }

  /// Call after all get_* registrations: validates args, handles --help.
  /// Returns false if the program should exit (help printed / bad flag).
  bool finish() {
    bool ok = true;
    for (std::size_t i = 0; i < args_.size(); ++i) {
      std::string a = args_[i];
      if (a == "--help" || a == "-h") {
        usage();
        return false;
      }
      if (a.rfind("--", 0) != 0) {
        std::cerr << "unexpected argument: " << a << "\n";
        ok = false;
        continue;
      }
      std::string name = a.substr(2);
      auto eq = name.find('=');
      if (eq != std::string::npos) name = name.substr(0, eq);
      if (!known_.count(name)) {
        std::cerr << "unknown flag: --" << name << "\n";
        ok = false;
      }
      // Skip the value of "--name value" style flags.
      if (eq == std::string::npos && i + 1 < args_.size() &&
          args_[i + 1].rfind("--", 0) != 0) {
        ++i;
      }
    }
    if (!ok) usage();
    return ok;
  }

 private:
  void describe(const std::string& name, const std::string& def,
                const std::string& help) {
    if (!known_.count(name)) {
      known_[name] = "  --" + name + " (default " + def + "): " + help;
    }
  }

  /// Find the raw value for --name in the argument list.
  const std::string* find(const std::string& name) {
    for (std::size_t i = 0; i < args_.size(); ++i) {
      const std::string& a = args_[i];
      if (a == "--" + name) {
        if (i + 1 < args_.size() && args_[i + 1].rfind("--", 0) != 0) {
          return &args_[i + 1];
        }
        static const std::string kTrue = "true";
        return &kTrue;  // boolean flag without a value
      }
      const std::string prefix = "--" + name + "=";
      if (a.rfind(prefix, 0) == 0) {
        values_[name] = a.substr(prefix.size());
        return &values_[name];
      }
    }
    return nullptr;
  }

  void usage() const {
    std::cerr << "usage: " << prog_ << " [flags]\n";
    for (const auto& [_, desc] : known_) std::cerr << desc << "\n";
  }

  std::string prog_;
  std::vector<std::string> args_;
  std::map<std::string, std::string> known_;
  std::map<std::string, std::string> values_;
};

}  // namespace nue
