// Error handling helpers.
//
// Library invariants are enforced with NUE_CHECK (always on, throws
// std::logic_error) so that experiment binaries fail loudly instead of
// producing silently wrong tables. Hot-loop assertions use NUE_DCHECK which
// compiles out in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nue::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "NUE_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace nue::detail

#define NUE_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr))                                                     \
      ::nue::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define NUE_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      std::ostringstream os_;                                        \
      os_ << msg;                                                    \
      ::nue::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                  os_.str());                        \
    }                                                                \
  } while (0)

#ifdef NDEBUG
#define NUE_DCHECK(expr) ((void)0)
#else
#define NUE_DCHECK(expr) NUE_CHECK(expr)
#endif
