// Generation-stamped scratch vectors: O(1) bulk reset for per-step scratch
// that would otherwise be cleared with full-size std::fill calls.
//
// Every slot carries the epoch in which it was last written; a read from a
// slot whose stamp is stale yields the default value, exactly as if the
// vector had been refilled with the default at the start of the epoch.
// Used by Nue's LayerRouter, whose per-destination reset was a set of
// O(|nodes| + |channels|) fills that dominate the step setup on large
// low-diameter fabrics (Kautz, Dragonfly) where each search step touches
// only a fraction of the channel array.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace nue {

template <typename T>
class EpochVector {
 public:
  EpochVector(std::size_t n, T def)
      : val_(n, def), gen_(n, 0), def_(def) {}

  /// O(1) logical reset of every slot to the default value. (On the
  /// ~2^32-step wraparound the stamps are cleared once, keeping reads
  /// unambiguous.)
  void next_epoch() {
    if (++cur_ == 0) {
      std::fill(gen_.begin(), gen_.end(), 0);
      cur_ = 1;
    }
  }

  T operator[](std::size_t i) const {
    return gen_[i] == cur_ ? val_[i] : def_;
  }

  void set(std::size_t i, T v) {
    gen_[i] = cur_;
    val_[i] = v;
  }

  std::size_t size() const { return val_.size(); }

 private:
  std::vector<T> val_;
  std::vector<std::uint32_t> gen_;
  std::uint32_t cur_ = 1;
  T def_;
};

}  // namespace nue
