// Word-packed dynamic bitset for the hot membership flags of the scaling
// path (docs/SCALING.md): Network's alive masks and the ω used-set of the
// complete CDG. 64 flags per cache line octet instead of one byte each —
// an 8x footprint cut over vector<uint8_t> — with word-parallel bulk
// operations (clear, union, population count) so whole-set work costs
// O(bits/64) instead of O(bits).
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace nue {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false)
      : bits_(n), words_((n + 63) / 64, value ? ~0ull : 0ull) {
    trim();
  }

  std::size_t size() const { return bits_; }
  std::size_t num_words() const { return words_.size(); }

  bool operator[](std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  bool test(std::size_t i) const { return (*this)[i]; }

  void set(std::size_t i) { words_[i >> 6] |= 1ull << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(1ull << (i & 63)); }
  void assign(std::size_t i, bool v) { v ? set(i) : reset(i); }

  /// Append one bit (amortized O(1), word-granular growth).
  void push_back(bool v) {
    if ((bits_ & 63) == 0) words_.push_back(0);
    if (v) words_.back() |= 1ull << (bits_ & 63);
    ++bits_;
  }

  /// Word-parallel bulk clear: O(bits/64).
  void clear_all() {
    std::memset(words_.data(), 0, words_.size() * sizeof(std::uint64_t));
  }

  /// Word-parallel union with another set of the same size.
  void or_with(const DynamicBitset& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
    }
  }

  /// Word-parallel population count.
  std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }

  void resize(std::size_t n, bool value = false) {
    const std::uint64_t fill = value ? ~0ull : 0ull;
    if (value && bits_ < n && (bits_ & 63) != 0) {
      // Fill the tail of the current last word before adding new words.
      words_.back() |= fill << (bits_ & 63);
    }
    words_.resize((n + 63) / 64, fill);
    bits_ = n;
    trim();
  }

  /// Raw word access (word-parallel scans in callers).
  const std::uint64_t* words() const { return words_.data(); }

 private:
  /// Keep bits past size() zero so count()/word scans stay exact.
  void trim() {
    if ((bits_ & 63) != 0 && !words_.empty()) {
      words_.back() &= (~0ull) >> (64 - (bits_ & 63));
    }
  }

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace nue
