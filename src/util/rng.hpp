// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic components of the library (random topologies, fault
// injection, random partitioning, traffic jitter) take an explicit `Rng`
// so that every experiment in the paper reproduction is seed-stable across
// platforms. We deliberately avoid std::mt19937 + std::uniform_*_distribution
// because distribution implementations differ between standard libraries.
#pragma once

#include <cstdint>
#include <algorithm>
#include <vector>

namespace nue {

/// xoshiro256** by Blackman & Vigna (public domain), seeded via splitmix64.
/// Fast, high quality, and fully specified so results are portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to expand the seed into the full state.
    std::uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t next_below(std::uint64_t bound) {
    // For our workloads bound << 2^64, so the rejection loop is ~never taken.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Derive an independent child stream (for nested reproducibility).
  Rng fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace nue
