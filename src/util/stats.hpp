// Small statistics accumulator used by the metric collectors
// (edge forwarding indices, path lengths, throughput series).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/error.hpp"

namespace nue {

/// Streaming min/max/mean/stddev (Welford) accumulator.
class Stats {
 public:
  void add(double x) {
    ++n_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return n_; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return mean_; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Percentile of a sample set (linear interpolation); copies the input.
inline double percentile(std::vector<double> v, double p) {
  NUE_CHECK(!v.empty());
  NUE_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

}  // namespace nue
