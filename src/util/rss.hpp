// Process memory introspection for the benches and the telemetry run
// report: peak resident-set size as the kernel accounted it (VmHWM),
// which is what "did the million-switch sweep fit in RAM" actually asks.
#pragma once

#include <cstdio>
#include <cstring>

namespace nue {

/// Peak resident-set size of the current process in MiB, read from
/// /proc/self/status (VmHWM — the high-water mark, not the current RSS,
/// so a value captured after a run covers the run's largest footprint).
/// Returns 0.0 on platforms without procfs or if the read fails; callers
/// treat 0.0 as "unavailable".
inline double peak_rss_mb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0.0;
  char line[256];
  double mb = 0.0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      long kb = 0;
      if (std::sscanf(line + 6, "%ld", &kb) == 1) {
        mb = static_cast<double>(kb) / 1024.0;
      }
      break;
    }
  }
  std::fclose(f);
  return mb;
#else
  return 0.0;
#endif
}

}  // namespace nue
