// Process memory introspection for the benches and the telemetry run
// report: peak resident-set size as the kernel accounted it (VmHWM),
// which is what "did the million-switch sweep fit in RAM" actually asks.
#pragma once

#include <fstream>
#include <istream>
#include <optional>
#include <sstream>
#include <string>

namespace nue {

/// Parse the VmHWM high-water mark out of a /proc/self/status-shaped
/// stream. Returns nullopt when the field is absent (kernels or
/// sandboxes that strip it) or malformed — a missing value must read as
/// "unavailable", never as a garbage number that lands in a bench
/// report. Exposed separately from peak_rss_mb() so the degraded paths
/// are unit-testable without a fake procfs.
inline std::optional<double> peak_rss_mb_from_status(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    long long kb = 0;
    std::string unit;
    if (!(fields >> kb >> unit) || kb < 0 || unit != "kB") {
      return std::nullopt;
    }
    return static_cast<double>(kb) / 1024.0;
  }
  return std::nullopt;
}

/// Peak resident-set size of the current process in MiB, read from
/// /proc/self/status (VmHWM — the high-water mark, not the current RSS,
/// so a value captured after a run covers the run's largest footprint).
/// Returns nullopt on platforms without procfs or when the field cannot
/// be read; exporters omit the value rather than emitting a fake 0.
inline std::optional<double> peak_rss_mb() {
#if defined(__linux__)
  std::ifstream f("/proc/self/status");
  if (!f.is_open()) return std::nullopt;
  return peak_rss_mb_from_status(f);
#else
  return std::nullopt;
#endif
}

}  // namespace nue
