#include "metrics/reconfig_log.hpp"

#include <ostream>

#include "util/stats.hpp"

namespace nue {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (char ch : s) {
    if (ch == '"' || ch == '\\') os << '\\';
    os << ch;
  }
  os << '"';
}

}  // namespace

ReconfigLog::Summary ReconfigLog::summarize() const {
  Summary s;
  s.transitions = total_transitions_;
  s.noops = total_noops_;
  s.hitless = total_hitless_;
  s.drained = total_drained_;
  s.waved = total_waved_;
  s.wave_commits = total_wave_commits_;
  s.by_step = total_by_step_;
  s.evicted = evicted_records();
  s.max_repair_ms = max_repair_ms_;
  std::vector<double> repair;
  for (const TransitionRecord& r : records_) {
    if (r.committed_step != "noop") repair.push_back(r.repair_ms);
  }
  if (!repair.empty()) {
    s.median_repair_ms = percentile(repair, 50.0);
    s.p99_repair_ms = percentile(repair, 99.0);
  }
  return s;
}

void ReconfigLog::write_json(std::ostream& os) const {
  const Summary s = summarize();
  os << "{\n  \"transitions\": " << s.transitions
     << ",\n  \"noops\": " << s.noops << ",\n  \"hitless\": " << s.hitless
     << ",\n  \"drained\": " << s.drained
     << ",\n  \"waved\": " << s.waved
     << ",\n  \"wave_commits\": " << s.wave_commits
     << ",\n  \"evicted\": " << s.evicted
     << ",\n  \"by_step\": {";
  bool first_step = true;
  for (const auto& [step, count] : s.by_step) {
    if (!first_step) os << ", ";
    first_step = false;
    write_json_string(os, step);
    os << ": " << count;
  }
  os << "},\n  \"median_repair_ms\": " << s.median_repair_ms
     << ",\n  \"p99_repair_ms\": " << s.p99_repair_ms
     << ",\n  \"max_repair_ms\": " << s.max_repair_ms
     << ",\n  \"records\": [\n";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const TransitionRecord& r = records_[i];
    os << "    {\"epoch\": " << r.epoch << ", \"event\": ";
    write_json_string(os, r.event);
    os << ", \"affected_dests\": " << r.affected_dests
       << ", \"total_dests\": " << r.total_dests << ", \"step\": ";
    write_json_string(os, r.committed_step);
    os << ", \"hitless\": " << (r.hitless ? "true" : "false")
       << ", \"drained\": " << (r.drained ? "true" : "false");
    if (r.wave_count > 0) {
      os << ", \"wave_index\": " << r.wave_index
         << ", \"wave_count\": " << r.wave_count;
    }
    os << ", \"repair_ms\": " << r.repair_ms << ", \"verdicts\": [";
    for (std::size_t j = 0; j < r.verdicts.size(); ++j) {
      if (j) os << ", ";
      write_json_string(os, r.verdicts[j]);
    }
    os << "]}" << (i + 1 < records_.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace nue
