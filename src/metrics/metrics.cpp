#include "metrics/metrics.hpp"

#include "graph/algorithms.hpp"
#include "util/error.hpp"

namespace nue {

std::vector<std::uint64_t> edge_forwarding_index(const Network& net,
                                                 const RoutingResult& rr) {
  std::vector<std::uint64_t> gamma(net.num_channels(), 0);
  const auto terminals = net.terminals();
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    if (!net.is_terminal(d)) continue;
    for (NodeId s : terminals) {
      if (s == d) continue;
      NodeId at = s;
      std::size_t hops = 0;
      while (at != d) {
        const ChannelId c = rr.next(at, static_cast<std::uint32_t>(di));
        NUE_CHECK_MSG(c != kInvalidChannel, "incomplete routing tables");
        ++gamma[c];
        at = net.dst(c);
        NUE_CHECK_MSG(++hops <= net.num_nodes(), "routing loop");
      }
    }
  }
  return gamma;
}

ForwardingIndexSummary summarize_forwarding_index(
    const Network& net, const std::vector<std::uint64_t>& gamma) {
  Stats st;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (!net.channel_alive(c)) continue;
    if (net.is_terminal(net.src(c)) || net.is_terminal(net.dst(c))) continue;
    st.add(static_cast<double>(gamma[c]));
  }
  return {st.min(), st.max(), st.mean(), st.stddev()};
}

PathLengthSummary path_length_stats(const Network& net,
                                    const RoutingResult& rr) {
  PathLengthSummary r;
  std::uint64_t total = 0, total_sp = 0, pairs = 0;
  const auto terminals = net.terminals();
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    const NodeId d = rr.destinations()[di];
    if (!net.is_terminal(d)) continue;
    const auto sp = bfs_distances(net, d);
    for (NodeId s : terminals) {
      if (s == d) continue;
      const auto path = rr.trace(net, s, d);
      total += path.size();
      r.max = std::max(r.max, path.size());
      NUE_CHECK(sp[s] != kUnreachable);
      total_sp += sp[s];
      r.max_shortest = std::max<std::size_t>(r.max_shortest, sp[s]);
      ++pairs;
    }
  }
  if (pairs > 0) {
    r.avg = static_cast<double>(total) / static_cast<double>(pairs);
    r.avg_shortest = static_cast<double>(total_sp) / static_cast<double>(pairs);
  }
  return r;
}

}  // namespace nue
