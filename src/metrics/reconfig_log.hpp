// Reconfiguration verdict log: every repair transition the live resilience
// manager performs (src/resilience) is recorded here — which event fired,
// how much of the routing function it touched, which rung of the retry
// ladder produced the committed table, whether the union-CDG gate allowed
// a hitless swap or forced a drained recompute, and how long the repair
// took. Benches and the nue_route --fault-trace replay mode serialize the
// log as JSON (BENCH_reconfig.json).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nue {

struct TransitionRecord {
  std::uint64_t epoch = 0;       // epoch this transition installed
  std::string event;             // triggering event label ("link-down 42")
  std::size_t affected_dests = 0;  // columns that had to be recomputed
  std::size_t total_dests = 0;     // destinations in the committed table
  /// Rung of the repair ladder that produced the committed table:
  /// "incremental", "full-recompute", "more-vls", "nue-fallback" — or
  /// "noop" when the event left every column intact (epoch unchanged).
  std::string committed_step;
  bool union_gate_checked = false;  // false for noops / the initial table
  bool hitless = false;     // union-CDG gate passed: swapped without drain
  bool drained = false;     // gate failed: drained full recompute installed
  double repair_ms = 0.0;   // event applied -> table committed
  /// One line per ladder attempt, in order ("incremental: ok", "more-vls:
  /// engine declined: ...", "incremental: over budget (12.3ms > 5ms)").
  std::vector<std::string> verdicts;
};

class ReconfigLog {
 public:
  void add(TransitionRecord r) { records_.push_back(std::move(r)); }
  const std::vector<TransitionRecord>& records() const { return records_; }

  struct Summary {
    std::size_t transitions = 0;  // records excluding noops
    std::size_t noops = 0;
    std::size_t hitless = 0;
    std::size_t drained = 0;
    double median_repair_ms = 0.0;
    double p99_repair_ms = 0.0;
    double max_repair_ms = 0.0;
  };
  Summary summarize() const;

  void write_json(std::ostream& os) const;

 private:
  std::vector<TransitionRecord> records_;
};

}  // namespace nue
