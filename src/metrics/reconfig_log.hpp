// Reconfiguration verdict log: every repair transition the live resilience
// manager performs (src/resilience) is recorded here — which event fired,
// how much of the routing function it touched, which rung of the retry
// ladder produced the committed table, whether the union-CDG gate allowed
// a hitless swap or forced a drained recompute, and how long the repair
// took. Benches and the nue_route --fault-trace replay mode serialize the
// log as JSON (BENCH_reconfig.json).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace nue {

struct TransitionRecord {
  std::uint64_t epoch = 0;       // epoch this transition installed
  std::string event;             // triggering event label ("link-down 42")
  std::size_t affected_dests = 0;  // columns that had to be recomputed
  std::size_t total_dests = 0;     // destinations in the committed table
  /// Rung of the repair ladder that produced the committed table:
  /// "incremental", "full-recompute", "more-vls", "nue-fallback" — or
  /// "noop" when the event left every column intact (epoch unchanged), or
  /// "wave" for the intermediate epochs of a migration-wave chain (the
  /// chain's final record carries the producing rung).
  std::string committed_step;
  bool union_gate_checked = false;  // false for noops / the initial table
  bool hitless = false;     // union-CDG gate passed: swapped without drain
  bool drained = false;     // gate failed: drained full recompute installed
  /// Migration-wave chain linkage (src/resilience/waves.hpp): a
  /// transition whose direct union gate failed but that scheduled into
  /// dependency-safe waves commits wave_count epochs — wave_count - 1
  /// intermediate records (committed_step "wave", affected_dests = the
  /// columns that wave migrated) then the final record. 0/0 = ordinary
  /// single-epoch transition.
  std::uint32_t wave_index = 0;  // 1-based position within the chain
  std::uint32_t wave_count = 0;  // epochs in the chain (0 = not a chain)
  double repair_ms = 0.0;   // event applied -> table committed
  /// One line per ladder attempt, in order ("incremental: ok", "more-vls:
  /// engine declined: ...", "incremental: over budget (12.3ms > 5ms)").
  std::vector<std::string> verdicts;
};

class ReconfigLog {
 public:
  void add(TransitionRecord r) {
    absorb_into_totals(r);
    records_.push_back(std::move(r));
    trim();
  }

  /// The retained record window, oldest first. With a retention cap this
  /// is a suffix of the full trail (see set_max_records).
  const std::vector<TransitionRecord>& records() const { return records_; }

  /// Cap the retained record window at `n` (0 = unbounded, the one-shot
  /// CLI default — replays want the full trail). The resident daemon sets
  /// a cap so a shard's log cannot grow monotonically over an unbounded
  /// event stream: once the window overflows, the oldest records are
  /// dropped in amortized-O(1) batches. Every Summary count and the
  /// repair-time maximum stay exact across eviction; median/p99 are
  /// computed over the retained window only.
  void set_max_records(std::size_t n) {
    max_records_ = n;
    trim();
  }
  std::size_t max_records() const { return max_records_; }

  /// Records ever added (retained + evicted).
  std::size_t total_records() const { return total_records_; }
  std::size_t evicted_records() const { return total_records_ - records_.size(); }

  struct Summary {
    std::size_t transitions = 0;  // records excluding noops (exact)
    std::size_t noops = 0;        // exact
    std::size_t hitless = 0;      // exact
    std::size_t drained = 0;      // exact
    std::size_t waved = 0;        // wave chains completed: drains avoided
                                  // by the wave scheduler (exact)
    std::size_t wave_commits = 0;  // epochs committed as part of a wave
                                   // chain, intermediates + finals (exact)
    std::size_t evicted = 0;      // records dropped from the window
    /// Committed-step -> record count, "noop" and "wave" included — the
    /// per-rung ladder statistics, exact across eviction like every other
    /// count here (a bounded resident manager must not lose its drain/
    /// rung breakdown when the window trims).
    std::map<std::string, std::size_t> by_step;
    double median_repair_ms = 0.0;  // over the retained window
    double p99_repair_ms = 0.0;     // over the retained window
    double max_repair_ms = 0.0;     // exact across eviction
  };
  Summary summarize() const;

  void write_json(std::ostream& os) const;

 private:
  void absorb_into_totals(const TransitionRecord& r) {
    ++total_records_;
    ++total_by_step_[r.committed_step];
    if (r.wave_count > 0) {
      ++total_wave_commits_;
      if (r.wave_index == r.wave_count) ++total_waved_;
    }
    if (r.committed_step == "noop") {
      ++total_noops_;
    } else {
      ++total_transitions_;
      if (r.hitless) ++total_hitless_;
      if (r.drained) ++total_drained_;
      if (r.repair_ms > max_repair_ms_) max_repair_ms_ = r.repair_ms;
    }
  }

  /// Drop the oldest records down to half the cap once the window
  /// overflows — halving batches make the vector erase amortized O(1)
  /// per add. The totals above were folded in at add() time, so nothing
  /// is lost but the per-record detail.
  void trim() {
    if (max_records_ == 0 || records_.size() <= max_records_) return;
    const std::size_t keep = max_records_ - max_records_ / 2;
    records_.erase(records_.begin(),
                   records_.end() - static_cast<std::ptrdiff_t>(keep));
  }

  std::vector<TransitionRecord> records_;
  std::size_t max_records_ = 0;
  // Running aggregates over every record ever added, so summarize() stays
  // exact after eviction.
  std::size_t total_records_ = 0;
  std::size_t total_transitions_ = 0;
  std::size_t total_noops_ = 0;
  std::size_t total_hitless_ = 0;
  std::size_t total_drained_ = 0;
  std::size_t total_waved_ = 0;
  std::size_t total_wave_commits_ = 0;
  std::map<std::string, std::size_t> total_by_step_;
  double max_repair_ms_ = 0.0;
};

}  // namespace nue
