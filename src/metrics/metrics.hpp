// Routing quality metrics from Section 5.1: the edge forwarding index γ
// for inter-switch channels (Heydemann et al. [15]) and path-length
// statistics relative to shortest paths.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "routing/routing.hpp"
#include "util/stats.hpp"

namespace nue {

/// Edge forwarding index per channel: number of terminal-to-terminal routes
/// crossing each directed channel, for all (src terminal, dst in
/// rr.destinations() ∩ terminals) pairs.
std::vector<std::uint64_t> edge_forwarding_index(const Network& net,
                                                 const RoutingResult& rr);

struct ForwardingIndexSummary {
  double min = 0, max = 0, avg = 0, sd = 0;
};

/// Summarize γ over alive inter-switch channels only (terminal access links
/// all carry the same load for all-to-all and are excluded, as in §5.1).
ForwardingIndexSummary summarize_forwarding_index(
    const Network& net, const std::vector<std::uint64_t>& gamma);

struct PathLengthSummary {
  double avg = 0;
  std::size_t max = 0;
  double avg_shortest = 0;    // BFS lower bound over the same pairs
  std::size_t max_shortest = 0;
};

/// Path-length statistics for terminal-to-terminal routes, plus the
/// shortest-path baseline over the same pairs.
PathLengthSummary path_length_stats(const Network& net,
                                    const RoutingResult& rr);

}  // namespace nue
