// Addressable 4-ary heap with O(log n) decrease-key.
//
// Provided as the comparison point for the Fibonacci heap ablation
// (bench_micro_heap): on sparse graphs the d-ary heap's better constants
// often win despite the worse decrease-key bound. Same addressable-id
// interface as FibonacciHeap so routing code can be templated over either.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace nue {

template <typename Key, unsigned Arity = 4>
class DaryHeap {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNil = static_cast<Id>(-1);

  explicit DaryHeap(std::size_t capacity) : pos_(capacity, kNil) {}

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool contains(Id id) const { return pos_[id] != kNil; }
  Key key(Id id) const {
    NUE_DCHECK(contains(id));
    return items_[pos_[id]].key;
  }

  void clear() {
    for (const auto& it : items_) pos_[it.id] = kNil;
    items_.clear();
  }

  void insert(Id id, Key key) {
    NUE_CHECK_MSG(!contains(id), "duplicate insert of id " << id);
    items_.push_back({key, id});
    pos_[id] = static_cast<Id>(items_.size() - 1);
    sift_up(items_.size() - 1);
  }

  bool insert_or_decrease(Id id, Key key) {
    if (!contains(id)) {
      insert(id, key);
      return true;
    }
    if (key < items_[pos_[id]].key) {
      decrease_key(id, key);
      return true;
    }
    return false;
  }

  Id min() const {
    NUE_DCHECK(!empty());
    return items_[0].id;
  }

  Id extract_min() {
    NUE_CHECK(!empty());
    const Id id = items_[0].id;
    pos_[id] = kNil;
    if (items_.size() > 1) {
      items_[0] = items_.back();
      pos_[items_[0].id] = 0;
      items_.pop_back();
      sift_down(0);
    } else {
      items_.pop_back();
    }
    return id;
  }

  void decrease_key(Id id, Key key) {
    NUE_DCHECK(contains(id));
    NUE_CHECK_MSG(!(items_[pos_[id]].key < key),
                  "decrease_key would increase key");
    items_[pos_[id]].key = key;
    sift_up(pos_[id]);
  }

 private:
  struct Item {
    Key key;
    Id id;
  };

  void sift_up(std::size_t i) {
    Item it = items_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!(it.key < items_[parent].key)) break;
      items_[i] = items_[parent];
      pos_[items_[i].id] = static_cast<Id>(i);
      i = parent;
    }
    items_[i] = it;
    pos_[it.id] = static_cast<Id>(i);
  }

  void sift_down(std::size_t i) {
    Item it = items_[i];
    const std::size_t n = items_.size();
    while (true) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (items_[c].key < items_[best].key) best = c;
      }
      if (!(items_[best].key < it.key)) break;
      items_[i] = items_[best];
      pos_[items_[i].id] = static_cast<Id>(i);
      i = best;
    }
    items_[i] = it;
    pos_[it.id] = static_cast<Id>(i);
  }

  std::vector<Item> items_;
  std::vector<Id> pos_;
};

}  // namespace nue
