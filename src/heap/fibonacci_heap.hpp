// Fibonacci heap with O(1) amortized decrease-key.
//
// Algorithm 1 of the paper requires a heap with constant-time decrease-key
// to reach the stated O(|C| log |C| + |E|) complexity; this is the same
// data structure the OpenSM implementation of Nue uses.
//
// The heap is *addressable*: items are dense integer ids in [0, capacity)
// (channel ids in the routing code), so handles are free and `contains()`
// is O(1). An id may be re-inserted after extraction, which the Nue
// backtracking/shortcut optimizations need.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace nue {

template <typename Key>
class FibonacciHeap {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNil = static_cast<Id>(-1);

  explicit FibonacciHeap(std::size_t capacity) : nodes_(capacity) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool contains(Id id) const { return nodes_[id].in_heap; }
  Key key(Id id) const {
    NUE_DCHECK(contains(id));
    return nodes_[id].key;
  }

  /// Reset to empty without releasing memory (reused across routing steps).
  void clear() {
    if (size_ == 0) return;
    // Lazy clear: mark every node as out-of-heap by walking the root list
    // would miss children, so walk all nodes only if non-trivial. The heap
    // is small relative to capacity in practice, but correctness first:
    for (auto& n : nodes_) n.in_heap = false;
    min_ = kNil;
    size_ = 0;
  }

  void insert(Id id, Key key) {
    NUE_CHECK_MSG(!nodes_[id].in_heap, "duplicate insert of id " << id);
    Node& n = nodes_[id];
    n.key = key;
    n.parent = kNil;
    n.child = kNil;
    n.degree = 0;
    n.marked = false;
    n.in_heap = true;
    splice_into_roots(id);
    if (min_ == kNil || key < nodes_[min_].key) min_ = id;
    ++size_;
  }

  /// Insert if absent, decrease if present with a smaller key.
  /// Returns true if the stored key changed.
  bool insert_or_decrease(Id id, Key key) {
    if (!nodes_[id].in_heap) {
      insert(id, key);
      return true;
    }
    if (key < nodes_[id].key) {
      decrease_key(id, key);
      return true;
    }
    return false;
  }

  Id min() const {
    NUE_DCHECK(!empty());
    return min_;
  }

  Id extract_min() {
    NUE_CHECK(!empty());
    const Id z = min_;
    // Promote all children of z to roots.
    Id c = nodes_[z].child;
    if (c != kNil) {
      Id it = c;
      do {
        const Id next = nodes_[it].right;
        nodes_[it].parent = kNil;
        nodes_[it].marked = false;
        splice_into_roots(it);
        it = next;
      } while (it != c);
    }
    // Remove z from root list.
    const Id right = nodes_[z].right;
    unlink(z);
    nodes_[z].in_heap = false;
    --size_;
    if (size_ == 0) {
      min_ = kNil;
    } else {
      // `right` was captured after child promotion, so it is a live root.
      NUE_DCHECK(right != z);
      min_ = right;
      consolidate(right);
    }
    return z;
  }

  void decrease_key(Id id, Key key) {
    Node& n = nodes_[id];
    NUE_DCHECK(n.in_heap);
    NUE_CHECK_MSG(!(n.key < key), "decrease_key would increase key");
    n.key = key;
    const Id p = n.parent;
    if (p != kNil && key < nodes_[p].key) {
      cut(id, p);
      cascading_cut(p);
    }
    if (key < nodes_[min_].key) min_ = id;
  }

 private:
  struct Node {
    Key key{};
    Id parent = kNil;
    Id child = kNil;
    Id left = kNil;
    Id right = kNil;
    std::uint32_t degree = 0;
    bool marked = false;
    bool in_heap = false;
  };

  void splice_into_roots(Id id) {
    if (min_ == kNil) {
      nodes_[id].left = id;
      nodes_[id].right = id;
    } else {
      // Insert next to min_ (anchor of the circular root list).
      Node& m = nodes_[min_];
      nodes_[id].left = min_;
      nodes_[id].right = m.right;
      nodes_[m.right].left = id;
      m.right = id;
    }
  }

  /// Remove id from its circular sibling list (does not touch parent links).
  void unlink(Id id) {
    Node& n = nodes_[id];
    nodes_[n.left].right = n.right;
    nodes_[n.right].left = n.left;
  }

  void consolidate(Id some_root) {
    // Collect the current roots (the circular list through some_root).
    scratch_roots_.clear();
    Id it = some_root;
    do {
      scratch_roots_.push_back(it);
      it = nodes_[it].right;
    } while (it != some_root);

    degree_table_.assign(64, kNil);
    for (Id x : scratch_roots_) {
      std::uint32_t d = nodes_[x].degree;
      while (degree_table_[d] != kNil) {
        Id y = degree_table_[d];
        if (nodes_[y].key < nodes_[x].key) std::swap(x, y);
        link(y, x);  // y becomes child of x
        degree_table_[d] = kNil;
        ++d;
      }
      degree_table_[d] = x;
    }
    // Rebuild the root list and min pointer from the degree table.
    min_ = kNil;
    for (Id r : degree_table_) {
      if (r == kNil) continue;
      nodes_[r].left = r;
      nodes_[r].right = r;
      if (min_ == kNil) {
        min_ = r;
      } else {
        // splice r next to min_
        Node& m = nodes_[min_];
        nodes_[r].left = min_;
        nodes_[r].right = m.right;
        nodes_[m.right].left = r;
        m.right = r;
        if (nodes_[r].key < m.key) min_ = r;
      }
    }
  }

  /// Make y a child of x (both are roots; y already unlinked by caller loop
  /// semantics — we unlink it here for safety).
  void link(Id y, Id x) {
    unlink(y);
    Node& ny = nodes_[y];
    Node& nx = nodes_[x];
    ny.parent = x;
    ny.marked = false;
    if (nx.child == kNil) {
      nx.child = y;
      ny.left = y;
      ny.right = y;
    } else {
      Node& c = nodes_[nx.child];
      ny.left = nx.child;
      ny.right = c.right;
      nodes_[c.right].left = y;
      c.right = y;
    }
    ++nx.degree;
  }

  void cut(Id id, Id parent) {
    Node& p = nodes_[parent];
    if (p.child == id) {
      p.child = nodes_[id].right == id ? kNil : nodes_[id].right;
    }
    unlink(id);
    --p.degree;
    nodes_[id].parent = kNil;
    nodes_[id].marked = false;
    splice_into_roots(id);
  }

  void cascading_cut(Id id) {
    Id p = nodes_[id].parent;
    while (p != kNil) {
      if (!nodes_[id].marked) {
        nodes_[id].marked = true;
        return;
      }
      cut(id, p);
      id = p;
      p = nodes_[id].parent;
    }
  }

  std::vector<Node> nodes_;
  std::vector<Id> scratch_roots_;
  std::vector<Id> degree_table_;
  Id min_ = kNil;
  std::size_t size_ = 0;
};

}  // namespace nue
