// Per-virtual-layer state of the complete channel dependency graph
// (Definitions 5 and 6) with the ω subgraph-numbering optimization of
// Section 4.6.1.
//
// Vertices are the network's channels; edges come from a shared CdgIndex.
// Vertex state lives in two structures sized for 10^5+-switch fabrics
// (docs/SCALING.md):
//   * used_  — a word-packed bitset: the ω membership test (is this
//     channel part of the used subgraph?) is the single hottest query of
//     the layer Dijkstra, and it now costs one bit probe on a cache line
//     holding 512 neighbouring channels instead of a byte load per id.
//   * comp_  — a flat component label per used channel (0 = unused). The
//     paper relabels whole arrays on every merge; the old code used a
//     union–find (pointer chasing on every test); here equality of two
//     labels IS the component test — O(1), no chasing — and merges
//     relabel the smaller member list into the larger (amortized
//     O(log C) relabels per channel). Component ids are recycled through
//     a free list so long layers don't grow the table without bound.
// Edge state: unused / used / blocked(-1). Escape-path dependencies and the
// dependencies of completed routing steps are permanent (never removed, as
// in the paper); the *transient* marks of the step in flight are journaled
// and purged by end_step() so that the maintained graph stays exactly the
// routing-induced CDG of Definition 4 plus the escape paths.
//
// The purge is incremental: each reverted mark is swap-removed from the
// used-edge adjacency and a per-channel incident-degree counter retires
// channels whose last dependency disappears. (The previous implementation
// rebuilt ω and the adjacency from the permanent journal — O(channels)
// per destination, the quadratic wall this file used to hit at scale.)
// Component labels are deliberately NOT split on removal: labels only
// ever merge, so they describe a supergraph of the surviving
// dependencies, and "labels differ" still proves "no path" — condition
// (c) stays exact in the only direction that matters for correctness,
// while a stale same-label answer merely downgrades to the condition (d)
// cycle search that the Pearce–Kelly order resolves in O(1) when it
// already agrees with the new edge. Routing tables are bit-identical
// either way (both conditions run the same topo_insert); only the
// merge/search statistics shift.
//
// Orientation: everything here lives in *search orientation* (paths grow
// from the destination outward, Algorithm 1); the traffic-induced CDG is
// the edge-reversed image under c -> reverse(c), an isomorphism that
// preserves acyclicity, so Theorem 1 applies to the real traffic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "graph/network.hpp"
#include "routing/cdg_index.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"

namespace nue {

class CompleteCdg {
 public:
  using EdgeId = CdgIndex::EdgeId;

  struct Stats {
    std::uint64_t dfs_searches = 0;   // condition (d) cycle searches
    std::uint64_t dfs_steps = 0;      // channels visited by those searches
    std::uint64_t merges = 0;         // condition (c) subgraph merges
    std::uint64_t blocked_edges = 0;  // edges turned into restrictions
    std::uint64_t fast_accepts = 0;   // conditions (a)/(b) resolved O(1)
  };

  CompleteCdg(const Network& net, const CdgIndex& idx)
      : net_(&net),
        idx_(&idx),
        used_(net.num_channels()),
        comp_(net.num_channels(), 0),
        used_deg_(net.num_channels(), 0),
        estate_(idx.num_edges(), 0),
        used_succ_(net.num_channels()),
        used_pred_(net.num_channels()),
        ord_(net.num_channels()),
        stamp_f_(net.num_channels(), 0),
        stamp_b_(net.num_channels(), 0) {
    comp_members_.emplace_back();  // component ids start at 1
    for (std::uint32_t i = 0; i < ord_.size(); ++i) ord_[i] = i;
  }

  // --- state queries --------------------------------------------------------

  bool channel_used(ChannelId c) const { return used_[c]; }
  bool edge_used(EdgeId e) const { return estate_[e] == 1; }
  bool edge_blocked(EdgeId e) const { return estate_[e] == -1; }
  const Stats& stats() const { return stats_; }

  // --- mutation -------------------------------------------------------------

  /// Mark a channel used in a fresh subgraph component (no-op if used).
  void mark_channel_used(ChannelId c) {
    if (!used_[c]) {
      used_.set(c);
      const std::uint32_t id = new_component();
      comp_[c] = id;
      comp_members_[id].push_back(c);
    }
  }

  /// Unconditionally mark edge (c1 -> c2) used and merge components.
  /// Caller must know this cannot close a cycle (escape-path setup).
  /// Permanent: survives every step purge.
  void force_edge_used(ChannelId c1, ChannelId c2) {
    const EdgeId e = idx_->edge_id(c1, c2);
    NUE_CHECK_MSG(e != CdgIndex::kNoEdge, "not a complete-CDG edge");
    mark_channel_used(c1);
    mark_channel_used(c2);
    if (estate_[e] == 1) return;
    NUE_CHECK(estate_[e] == 0);
    const bool ok = topo_insert(c1, c2);
    NUE_CHECK_MSG(ok, "escape paths must stay acyclic");
    set_edge_used(e, c1, c2, /*permanent=*/true);
  }

  /// Checked variant of force_edge_used(): marks the edge permanently used
  /// unless it would close a cycle with the dependencies already present
  /// (incremental rerouting pre-marks the preserved columns' dependencies,
  /// and a fresh escape tree is not guaranteed to be compatible with
  /// them). Returns false and changes nothing on a cycle.
  bool try_force_edge_used(ChannelId c1, ChannelId c2) {
    const EdgeId e = idx_->edge_id(c1, c2);
    NUE_CHECK_MSG(e != CdgIndex::kNoEdge, "not a complete-CDG edge");
    if (estate_[e] == 1) {
      // Already used; promote a step mark to permanent.
      for (auto it = step_edges_.begin(); it != step_edges_.end(); ++it) {
        if (it->e == e) {
          permanent_edges_.push_back(*it);
          step_edges_.erase(it);
          break;
        }
      }
      return true;
    }
    if (estate_[e] == -1) return false;
    mark_channel_used(c1);
    mark_channel_used(c2);
    if (!topo_insert(c1, c2)) return false;
    set_edge_used(e, c1, c2, /*permanent=*/true);
    return true;
  }

  /// Bulk-load a jointly-acyclic permanent dependency set into an EMPTY
  /// CDG. Incremental rerouting pre-marks the old table's surviving
  /// per-layer dependencies — all drawn from one validated, acyclic CDG,
  /// so they cannot conflict with each other — before anything else is
  /// placed; loading them edge-by-edge would pay one Pearce–Kelly
  /// insertion each, which dominates the repair latency. Here a single
  /// Kahn pass over the loaded subgraph assigns the topological order:
  /// the participating channels' current ord_ positions are pooled and
  /// handed back in topological order, so ord_ stays a permutation and
  /// every untouched channel keeps its position. Acceptance is exact
  /// either way (topo_insert is an exact cycle check), so routing results
  /// are unchanged — only the setup cost drops from O(E) insertions to
  /// one linear pass. Dies on a cyclic input (caller contract).
  void force_edges_bulk(
      const std::vector<std::pair<ChannelId, ChannelId>>& edges) {
    NUE_CHECK_MSG(permanent_edges_.empty() && step_edges_.empty(),
                  "bulk dependency load needs an empty CDG");
    for (const auto& [c1, c2] : edges) {
      const EdgeId e = idx_->edge_id(c1, c2);
      NUE_CHECK_MSG(e != CdgIndex::kNoEdge, "not a complete-CDG edge");
      if (estate_[e] == 1) continue;  // duplicate across columns
      NUE_CHECK(estate_[e] == 0);
      mark_channel_used(c1);
      mark_channel_used(c2);
      set_edge_used(e, c1, c2, /*permanent=*/true);
    }
    ++generation_;
    std::vector<ChannelId> region;
    const auto touch = [&](ChannelId c) {
      if (stamp_f_[c] != generation_) {
        stamp_f_[c] = generation_;
        region.push_back(c);
      }
    };
    for (const auto& rec : permanent_edges_) {
      touch(rec.c1);
      touch(rec.c2);
    }
    std::sort(region.begin(), region.end());  // deterministic worklist
    pool_.clear();
    for (ChannelId c : region) pool_.push_back(ord_[c]);
    std::sort(pool_.begin(), pool_.end());
    std::vector<std::uint32_t> indeg(net_->num_channels(), 0);
    for (ChannelId c : region) {
      for (ChannelId w : used_succ_[c]) ++indeg[w];
    }
    fnodes_.clear();
    for (ChannelId c : region) {
      if (indeg[c] == 0) fnodes_.push_back(c);
    }
    std::size_t taken = 0;
    for (std::size_t i = 0; i < fnodes_.size(); ++i) {
      const ChannelId c = fnodes_[i];
      ord_[c] = pool_[taken++];
      for (ChannelId w : used_succ_[c]) {
        if (--indeg[w] == 0) fnodes_.push_back(w);
      }
    }
    NUE_CHECK_MSG(taken == region.size(),
                  "bulk-loaded dependencies must be acyclic");
  }

  // --- per-destination step lifecycle ----------------------------------------
  //
  // During one routing step (one destination), Algorithm 1 marks every
  // accepted relaxation `used` and every rejected one `blocked`. Most of
  // the used marks are superseded when a node later finds a better inbound
  // channel; only the dependencies of the *final* tree are real (the CDG
  // of Definition 4 is induced by the routing function, not by the search
  // history). end_step() therefore reverts all non-final marks of the step
  // and clears the step's blocked memoization (which was relative to the
  // larger transient graph), retiring channels whose last incident
  // dependency disappears. Without this purge the restrictions pile
  // up and the escape-path fallback rate explodes on dense multigraphs.

  void begin_step() {
    step_edges_.clear();
    step_blocked_.clear();
  }

  /// `keep` flags (indexed by dense edge id, num_edges entries) select
  /// which of this step's used marks are real dependencies of the final
  /// paths. Incremental: cost is O(reverted marks), independent of fabric
  /// size. Taken as a raw pointer so arena-sliced flag arrays pass
  /// without an owning container.
  void end_step(const std::uint8_t* keep) {
    for (const auto& rec : step_edges_) {
      if (keep[rec.e]) {
        permanent_edges_.push_back(rec);
      } else {
        remove_used_edge(rec);
      }
    }
    if (!keep_blocked_across_steps_) {
      for (const EdgeId e : step_blocked_) estate_[e] = 0;
      step_blocked_.clear();
    }
    step_edges_.clear();
  }

  /// Internal consistency check (used by the property tests):
  ///  - the topological order is consistent with every used edge,
  ///  - the used-successor adjacency matches the permanent + step journals,
  ///  - every journaled edge is in the `used` state,
  ///  - ω marks exactly cover the channels with incident used edges plus
  ///    the explicitly marked roots, and component labels never separate
  ///    the endpoints of a used edge.
  bool check_invariants() const {
    for (ChannelId c = 0; c < used_succ_.size(); ++c) {
      for (ChannelId w : used_succ_[c]) {
        if (!(ord_[c] < ord_[w])) return false;
        if (!used_[c] || !used_[w]) return false;
        if (comp_[c] == 0 || comp_[c] != comp_[w]) return false;
      }
    }
    std::size_t adjacency_edges = 0;
    for (const auto& sl : used_succ_) adjacency_edges += sl.size();
    if (adjacency_edges != permanent_edges_.size() + step_edges_.size()) {
      return false;
    }
    for (const auto& rec : permanent_edges_) {
      if (estate_[rec.e] != 1) return false;
    }
    for (const auto& rec : step_edges_) {
      if (estate_[rec.e] != 1) return false;
    }
    return true;
  }

  /// Policy knob (ablation): retain blocked marks across destination
  /// steps. Restrictions then accumulate as in the paper's text, trading
  /// search freedom for fewer repeated cycle searches.
  void set_keep_blocked(bool keep) { keep_blocked_across_steps_ = keep; }

  /// Assign one shared component id to a set of channels (the paper marks
  /// all escape paths with ω = 1; sharing an id across disconnected parts
  /// is conservative — condition (d) just falls back to a DFS).
  void unify_components(const std::vector<ChannelId>& channels) {
    std::uint32_t root = 0;
    for (ChannelId c : channels) {
      mark_channel_used(c);
      if (root == 0) {
        root = comp_[c];
      } else {
        root = unite(root, comp_[c]);
      }
    }
  }

  /// Algorithm 3 with check-before-mark semantics: try to use dependency
  /// (c1 -> c2), where c1 is already used. Returns true and marks the edge
  /// used on success; returns false and marks the edge blocked when the
  /// dependency would close a cycle. Edges already used return true in
  /// O(1); already blocked return false in O(1).
  bool try_use_edge(ChannelId c1, ChannelId c2) {
    const EdgeId e = idx_->edge_id(c1, c2);
    NUE_DCHECK(e != CdgIndex::kNoEdge);
    return try_use_edge_by_id(e, c1, c2);
  }

  bool try_use_edge_by_id(EdgeId e, ChannelId c1, ChannelId c2) {
    NUE_DCHECK(used_[c1]);
    if (estate_[e] == -1) {  // condition (a)
      ++stats_.fast_accepts;
      return false;
    }
    if (estate_[e] == 1) {  // condition (b)
      ++stats_.fast_accepts;
      return true;
    }
    if (!used_[c2] || comp_[c1] != comp_[c2]) {
      // condition (c): connecting disjoint acyclic subgraphs cannot close
      // a cycle; the insertion below only restores the topological order.
      // (Labels only merge, never split, so "labels differ" is an exact
      // disconnection proof even after step purges.)
      ++stats_.merges;
      const bool ok = topo_insert(c1, c2);
      NUE_DCHECK(ok);
      (void)ok;
      set_edge_used(e, c1, c2);
      return true;
    }
    // condition (d): same component — a cycle search is required. The
    // incremental topological order makes it O(1) whenever the order
    // already agrees with the new edge, and bounded otherwise.
    ++stats_.dfs_searches;
    if (!topo_insert(c1, c2)) {
      estate_[e] = -1;
      step_blocked_.push_back(e);
      ++stats_.blocked_edges;
      return false;
    }
    set_edge_used(e, c1, c2);
    return true;
  }

  /// Atomic feasibility check for re-pointing a node's inbound channel
  /// (impasse backtracking §4.6.2 / shortcuts §4.6.3): would using edge
  /// (c_in -> c_new) together with edges (c_new -> out_i) for every out_i
  /// close a cycle? No state is modified; commit with commit_switch().
  /// Any already-blocked member edge fails the check.
  bool switch_feasible(ChannelId c_in, ChannelId c_new,
                       const std::vector<ChannelId>& outs) {
    {
      const EdgeId e = idx_->edge_id(c_in, c_new);
      if (e == CdgIndex::kNoEdge || estate_[e] == -1) return false;
    }
    for (ChannelId o : outs) {
      const EdgeId e = idx_->edge_id(c_new, o);
      if (e == CdgIndex::kNoEdge || estate_[e] == -1) return false;
    }
    // Cycle possibilities through the new edges:
    //  - c_in reachable from c_new           (closes via c_in -> c_new)
    //  - c_new or c_in reachable from out_i  (closes via c_new -> out_i
    //                                         [+ c_in -> c_new])
    if (channel_used(c_new) && reachable(c_new, c_in)) return false;
    for (ChannelId o : outs) {
      if (!channel_used(o)) continue;
      if (reachable2(o, c_new, c_in)) return false;
    }
    return true;
  }

  /// switch_feasible() without an inbound edge: only the out-star
  /// (c_new -> out_i). Used when c_new starts at the search source.
  bool switch_feasible_star(ChannelId c_new,
                            const std::vector<ChannelId>& outs) {
    for (ChannelId o : outs) {
      const EdgeId e = idx_->edge_id(c_new, o);
      if (e == CdgIndex::kNoEdge || estate_[e] == -1) return false;
    }
    for (ChannelId o : outs) {
      if (!channel_used(o)) continue;
      if (reachable(o, c_new)) return false;
    }
    return true;
  }

  /// Commit a switch previously validated by switch_feasible().
  void commit_switch(ChannelId c_in, ChannelId c_new,
                     const std::vector<ChannelId>& outs) {
    const bool ok1 = try_use_edge(c_in, c_new);
    NUE_CHECK(ok1);
    for (ChannelId o : outs) {
      const bool ok = try_use_edge(c_new, o);
      NUE_CHECK(ok);
    }
  }

 private:
  struct EdgeRec {
    EdgeId e;
    ChannelId c1, c2;
  };

  std::uint32_t new_component() {
    if (!free_comps_.empty()) {
      const std::uint32_t id = free_comps_.back();
      free_comps_.pop_back();
      return id;
    }
    comp_members_.emplace_back();
    return static_cast<std::uint32_t>(comp_members_.size() - 1);
  }

  /// Merge two component labels: relabel the smaller member list into the
  /// larger and recycle the losing id. Member lists may hold stale
  /// entries for channels that were retired or relabeled since; they are
  /// dropped when their list is walked. Returns the surviving label.
  std::uint32_t unite(std::uint32_t a, std::uint32_t b) {
    if (a == b) return a;
    if (comp_members_[a].size() < comp_members_[b].size()) std::swap(a, b);
    auto& winner = comp_members_[a];
    for (ChannelId c : comp_members_[b]) {
      if (comp_[c] == b) {
        comp_[c] = a;
        winner.push_back(c);
      }
    }
    comp_members_[b].clear();
    free_comps_.push_back(b);
    return a;
  }

  void set_edge_used(EdgeId e, ChannelId c1, ChannelId c2,
                     bool permanent = false) {
    estate_[e] = 1;
    mark_channel_used(c2);
    used_succ_[c1].push_back(c2);
    used_pred_[c2].push_back(c1);
    ++used_deg_[c1];
    ++used_deg_[c2];
    unite(comp_[c1], comp_[c2]);
    (permanent ? permanent_edges_ : step_edges_).push_back({e, c1, c2});
  }

  /// Revert one step mark: O(degree) swap-removal from the used-edge
  /// adjacency plus retirement of channels losing their last dependency.
  void remove_used_edge(const EdgeRec& rec) {
    estate_[rec.e] = 0;
    swap_erase(used_succ_[rec.c1], rec.c2);
    swap_erase(used_pred_[rec.c2], rec.c1);
    drop_incident(rec.c1);
    drop_incident(rec.c2);
    // ord_ stays valid: removing edges never invalidates a topological
    // order of the remaining graph.
  }

  static void swap_erase(std::vector<ChannelId>& list, ChannelId value) {
    for (std::size_t i = 0; i < list.size(); ++i) {
      if (list[i] == value) {
        list[i] = list.back();
        list.pop_back();
        return;
      }
    }
    NUE_CHECK_MSG(false, "used-edge adjacency out of sync");
  }

  /// A channel whose last incident used edge was reverted leaves ω (its
  /// stale component-member entry is dropped lazily on the next merge).
  void drop_incident(ChannelId c) {
    if (--used_deg_[c] == 0) {
      used_.reset(c);
      comp_[c] = 0;
    }
  }

  /// DFS over used edges: is `target` reachable from `from`?
  /// Prunes with the maintained topological order: any path only moves to
  /// larger positions, so subtrees at positions past the target are dead.
  bool reachable(ChannelId from, ChannelId target) {
    return reachable2(from, target, target);
  }

  /// DFS: does `from` reach target1 or target2?
  bool reachable2(ChannelId from, ChannelId t1, ChannelId t2) {
    const std::uint32_t bound = std::max(ord_[t1], ord_[t2]);
    if (ord_[from] > bound) return false;
    ++generation_;
    dfs_stack_.clear();
    dfs_stack_.push_back(from);
    stamp_f_[from] = generation_;
    while (!dfs_stack_.empty()) {
      const ChannelId v = dfs_stack_.back();
      dfs_stack_.pop_back();
      for (ChannelId w : used_succ_[v]) {
        ++stats_.dfs_steps;
        if (w == t1 || w == t2) return true;
        if (ord_[w] < bound && stamp_f_[w] != generation_) {
          stamp_f_[w] = generation_;
          dfs_stack_.push_back(w);
        }
      }
    }
    return false;
  }

  /// Pearce–Kelly incremental topological order maintenance: make the
  /// order consistent with a new edge (a -> b), or report a cycle (and
  /// change nothing). The search is confined to the affected region
  /// [ord(b), ord(a)], which keeps the common case O(1).
  bool topo_insert(ChannelId a, ChannelId b) {
    if (ord_[a] < ord_[b]) return true;
    const std::uint32_t lb = ord_[b];
    const std::uint32_t ub = ord_[a];
    // Forward region: reachable from b with ord <= ub.
    ++generation_;
    fnodes_.clear();
    fnodes_.push_back(b);
    stamp_f_[b] = generation_;
    for (std::size_t i = 0; i < fnodes_.size(); ++i) {
      for (ChannelId w : used_succ_[fnodes_[i]]) {
        ++stats_.dfs_steps;
        if (w == a) return false;  // cycle
        if (ord_[w] < ub && stamp_f_[w] != generation_) {
          stamp_f_[w] = generation_;
          fnodes_.push_back(w);
        }
      }
    }
    // Backward region: reaching a with ord >= lb.
    bnodes_.clear();
    bnodes_.push_back(a);
    stamp_b_[a] = generation_;
    for (std::size_t i = 0; i < bnodes_.size(); ++i) {
      for (ChannelId w : used_pred_[bnodes_[i]]) {
        ++stats_.dfs_steps;
        if (ord_[w] > lb && stamp_b_[w] != generation_) {
          stamp_b_[w] = generation_;
          bnodes_.push_back(w);
        }
      }
    }
    // Redistribute the affected positions: all of B (in relative order)
    // before all of F (in relative order).
    auto by_ord = [&](ChannelId x, ChannelId y) { return ord_[x] < ord_[y]; };
    std::sort(fnodes_.begin(), fnodes_.end(), by_ord);
    std::sort(bnodes_.begin(), bnodes_.end(), by_ord);
    pool_.clear();
    for (ChannelId x : bnodes_) pool_.push_back(ord_[x]);
    for (ChannelId x : fnodes_) pool_.push_back(ord_[x]);
    std::sort(pool_.begin(), pool_.end());
    std::size_t i = 0;
    for (ChannelId x : bnodes_) ord_[x] = pool_[i++];
    for (ChannelId x : fnodes_) ord_[x] = pool_[i++];
    return true;
  }

  const Network* net_;
  const CdgIndex* idx_;
  std::vector<EdgeRec> permanent_edges_;
  std::vector<EdgeRec> step_edges_;
  std::vector<EdgeId> step_blocked_;
  DynamicBitset used_;                   // ω membership, word-packed
  std::vector<std::uint32_t> comp_;      // flat ω component labels
  std::vector<std::uint32_t> used_deg_;  // incident used edges per channel
  std::vector<std::vector<ChannelId>> comp_members_;
  std::vector<std::uint32_t> free_comps_;
  std::vector<std::int8_t> estate_;
  std::vector<std::vector<ChannelId>> used_succ_;
  std::vector<std::vector<ChannelId>> used_pred_;
  std::vector<std::uint32_t> ord_;
  std::vector<std::uint32_t> stamp_f_;
  std::vector<std::uint32_t> stamp_b_;
  std::vector<ChannelId> dfs_stack_;
  std::vector<ChannelId> fnodes_;
  std::vector<ChannelId> bnodes_;
  std::vector<std::uint32_t> pool_;
  std::uint32_t generation_ = 0;
  bool keep_blocked_across_steps_ = false;
  Stats stats_;
};

}  // namespace nue
