// Nue routing (Section 4): deadlock-free, oblivious, destination-based
// routing computed *inside* the complete channel dependency graph, for any
// fixed number of virtual lanes k >= 1.
//
// Pipeline per virtual layer (Algorithm 2):
//   1. partition destinations into k subsets (multilevel k-way / random /
//      clustered, §4.5),
//   2. convex subgraph of the subset + Brandes betweenness to pick the
//      escape-tree root (§4.3),
//   3. escape paths from a BFS spanning tree pre-marked `used` (§4.2),
//   4. per destination: modified Dijkstra within the complete CDG
//      (Algorithm 1) with the ω cycle-search memoization (§4.6.1, Alg. 3),
//      local impasse backtracking (§4.6.2) and island shortcuts (§4.6.3),
//   5. DFSSSP-style channel weight updates for global balance.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/network.hpp"
#include "partition/partition.hpp"
#include "routing/routing.hpp"
#include "util/rng.hpp"

namespace nue {

struct NueOptions {
  std::uint32_t num_vls = 1;
  PartitionStrategy partition = PartitionStrategy::kKway;
  /// Escape-tree root selection: betweenness-central node of the convex
  /// subgraph (paper) vs. an arbitrary node (ablation).
  bool central_root = true;
  /// §4.6.2 local backtracking on impasses (ablation switch). When off,
  /// any impasse immediately falls back to the escape paths.
  bool backtracking = true;
  /// §4.6.3 shortcuts: let resolved islands shorten already-settled nodes.
  bool shortcuts = true;
  /// Maximum alternatives remembered per node for backtracking.
  std::uint32_t alt_stack_limit = 8;
  /// Keep blocked-edge marks across destination steps, so routing
  /// restrictions accumulate for the layer's lifetime exactly as in the
  /// paper (§4.6.1 relies on it: a condition-(d) search runs at most once
  /// per edge per layer). Transient `used` marks of superseded relaxations
  /// are still purged per step — only real dependencies persist
  /// (Definition 4). Disabling this re-evaluates every restriction per
  /// step: marginally fewer escape fallbacks on some fabrics, but several
  /// times slower (ablation bench compares both).
  bool sticky_restrictions = true;
  /// Initial channel weight offset (weights start at 1 + damping and grow
  /// by one per path). Damps the early-step volatility of the balancing
  /// weights: with a low base, the first destinations of a layer see huge
  /// relative weight differences and take erratic detours whose
  /// dependencies then obstruct everyone else. 50 is robust across the
  /// evaluated topology families (swept in the ablation bench).
  double balance_damping = 50.0;
  /// Incremental rerouting only: how many escape-tree roots to try for a
  /// hitless repair (the preferred betweenness-central root plus up to
  /// this many alternatives) before giving up on old-dependency
  /// compatibility and reverting to the unconditional escape-first setup.
  /// Each attempt is one BFS + checked marking pass per layer, so the cap
  /// bounds the repair latency; 0 tries every alive switch.
  std::uint32_t reroute_root_attempts = 16;
  /// Incremental rerouting only: escape-root hints indexed by virtual
  /// layer (kInvalidNode = no hint; dead or non-switch entries ignored).
  /// The previous table's roots are the natural candidates — their full
  /// escape trees were force-marked in that table's CDG, so a BFS tree
  /// from the same root on the degraded fabric is almost always
  /// compatible with the surviving old dependencies, making the hitless
  /// repair succeed on the first attempt instead of sweeping roots.
  std::vector<NodeId> escape_root_hints;
  /// Pivot count for the sampled Brandes betweenness behind the escape-root
  /// selection (betweenness_centrality_sampled): 0 = exact Brandes, the
  /// right default for Fig.-scale fabrics; a few hundred pivots make root
  /// selection tractable at 10^5+ switches with near-identical root
  /// rankings (docs/SCALING.md). Changing the pivot count can change the
  /// selected roots — tables remain deterministic for a fixed value.
  std::size_t betweenness_pivots = 0;
  std::uint64_t seed = 1;
  /// Worker threads for routing the virtual layers (0 = process default
  /// from --threads, 1 = serial). Layers are independent by construction
  /// (§4.5 partitions the destinations), and all RNG draws happen in a
  /// sequential prologue, so the result is bit-identical to the serial
  /// engine at every thread count (docs/PARALLELISM.md).
  std::uint32_t num_threads = 0;
};

struct NueStats {
  std::size_t fallbacks = 0;         // destinations routed via escape paths
  std::size_t islands_resolved = 0;  // impasses fixed by backtracking
  std::size_t islands_unresolved = 0;  // impasses that forced a fallback
  std::size_t backtrack_option1 = 0;   // resolved via the current chain
  std::size_t backtrack_option2 = 0;   // resolved via an alternative switch
  std::size_t shortcuts_taken = 0;   // settled nodes improved via islands
  std::uint64_t cycle_searches = 0;  // condition-(d) DFS invocations
  std::uint64_t cycle_search_steps = 0;
  std::uint64_t fast_accepts = 0;    // O(1) accepts via conditions (a)/(b)
  /// Escape root per virtual layer (layer-indexed; kInvalidNode for a
  /// layer that routed nothing — empty subset, or every column reused).
  std::vector<NodeId> roots;
};

/// Route every node in `dests` (paths from all nodes to each destination).
/// Never fails on a connected network: Lemma 3 guarantees connectivity for
/// any k >= 1.
RoutingResult route_nue(const Network& net, const std::vector<NodeId>& dests,
                        const NueOptions& opt = {},
                        NueStats* stats = nullptr);

/// Escape-root selection for one destination subset (exposed for tests and
/// the root-selection ablation bench): the node of the convex subgraph of
/// `subset` with maximum betweenness centrality. `pivots` != 0 swaps the
/// exact Brandes pass for the pivot-sampled estimator (see NueOptions).
NodeId select_escape_root(const Network& net,
                          const std::vector<NodeId>& subset,
                          std::size_t pivots = 0);

/// Number of distinct channel dependencies the escape paths of a BFS
/// spanning tree rooted at `root` impose toward the destinations `dests`
/// (the quantity Fig. 5 compares across root choices, §4.3): fewer initial
/// dependencies leave Nue more routing freedom.
std::size_t count_escape_dependencies(const Network& net, NodeId root,
                                      const std::vector<NodeId>& dests);

// --- fail-in-place incremental rerouting ------------------------------------

struct RerouteStats {
  std::size_t dests_kept = 0;       // columns reused unchanged
  std::size_t dests_rerouted = 0;   // columns recomputed
  /// Of the recomputed columns: how many went through the partial repair
  /// (intact region settled on its old channels, only the nodes orphaned
  /// by the failure re-searched). Requires the column's stale pre-marking
  /// to have skipped nothing; the rest pay a full column recompute.
  std::size_t dests_patched = 0;
  std::size_t dests_dropped = 0;    // destinations that died with a switch
  std::size_t dests_demoted = 0;    // intact columns recomputed anyway
                                    // because their dependencies clashed
                                    // with the new escape paths
  /// Stale dependencies of broken columns (still-alive hop pairs that
  /// in-flight packets may occupy until they hit the dead element) that
  /// could not be pre-marked because they clashed with the escape tree or
  /// other marks. 0 means the old+new union CDG is acyclic by
  /// construction — a hitless table swap (docs/RESILIENCE.md).
  std::size_t stale_marks_skipped = 0;
};

/// Fail-in-place rerouting (the paper's deployment context [7]): `net` is
/// the degraded fabric — same node/channel id space as when `old` was
/// computed, with elements removed. Forwarding columns untouched by the
/// failures are reused verbatim; only destinations whose routes crossed a
/// failed element (or that died themselves) are recomputed, inside a CDG
/// pre-seeded with the preserved columns' dependencies so the merged
/// routing stays deadlock-free (Theorem 1 applies to the union).
RoutingResult reroute_nue(const Network& net, const RoutingResult& old,
                          const NueOptions& opt = {},
                          RerouteStats* reroute_stats = nullptr,
                          NueStats* stats = nullptr);

}  // namespace nue
