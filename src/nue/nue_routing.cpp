#include "nue/nue_routing.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "heap/fibonacci_heap.hpp"
#include "nue/complete_cdg.hpp"
#include "routing/cdg_index.hpp"
#include "routing/sssp_engine.hpp"
#include "telemetry/telemetry.hpp"
#include "util/arena.hpp"
#include "util/epoch.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace nue {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Routes all destinations of one virtual layer inside that layer's
/// complete CDG.
///
/// All flat per-layer scratch — the balancing weights, the escape-tree
/// CSR, the backtracking alternative stacks, the step keep flags, and the
/// bounded worklists — is sliced from the caller's Arena instead of
/// individually heap-allocated. The constructor rewinds the arena, so at
/// most ONE router may be live per arena; reroute_nue exploits exactly
/// that by re-constructing a router per escape-root attempt on the same
/// arena with zero steady-state allocation. The dynamically-sized state
/// (the CDG's used-edge adjacency, the Fibonacci heap, the epoch-stamped
/// Dijkstra columns) stays owned — its size depends on routing history,
/// not on the fabric.
class LayerRouter {
 public:
  LayerRouter(const Network& net, const CdgIndex& idx, NodeId root,
              const NueOptions& opt, NueStats& stats, Arena& scratch)
      : net_(net),
        idx_(idx),
        opt_(opt),
        stats_(stats),
        scratch_(scratch),
        cdg_(net, idx),
        tree_parent_(bfs_tree(net, root)),
        node_dist_(net.num_nodes(), kInf),
        used_channel_(net.num_nodes(), kInvalidChannel),
        chan_dist_(net.num_channels(), kInf),
        heap_(net.num_channels()) {
    cdg_.set_keep_blocked(opt.sticky_restrictions);
    const std::size_t n = net.num_nodes();
    scratch_.reset();  // reclaim any previous router's slices
    weights_ = scratch_.alloc<double>(net.num_channels());
    escape_next_ = scratch_.alloc<ChannelId>(n);
    escape_seen_ = scratch_.alloc<std::uint8_t>(n);
    intact_ = scratch_.alloc<std::uint8_t>(n);
    keep_flags_ = scratch_.alloc_filled<std::uint8_t>(idx.num_edges(), 0);
    alt_data_ = scratch_.alloc<ChannelId>(n * opt.alt_stack_limit);
    alt_cnt_ = scratch_.alloc<std::uint32_t>(n);
    alt_gen_ = scratch_.alloc_filled<std::uint32_t>(n, 0);
    bfs_ = FixedVec<NodeId>(scratch_, n);
    chain_ = FixedVec<NodeId>(scratch_, n + 1);
    islands_ = FixedVec<NodeId>(scratch_, n);
    // Escape spanning tree as a CSR over the arena; per-node entry order
    // matches the old per-node vectors (same ascending-v fill), which
    // compute_escape_next's BFS tie-breaks depend on.
    tree_adj_begin_ = scratch_.alloc_filled<std::uint32_t>(n + 1, 0);
    for (NodeId v = 0; v < n; ++v) {
      const ChannelId up = tree_parent_[v];
      if (up == kInvalidChannel) continue;
      ++tree_adj_begin_[v + 1];
      ++tree_adj_begin_[net.dst(up) + 1];
    }
    for (NodeId v = 0; v < n; ++v) {
      tree_adj_begin_[v + 1] += tree_adj_begin_[v];
    }
    tree_adj_pool_ = scratch_.alloc<ChannelId>(tree_adj_begin_[n]);
    std::uint32_t* cursor = scratch_.alloc_filled<std::uint32_t>(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      const ChannelId up = tree_parent_[v];
      if (up == kInvalidChannel) continue;
      const NodeId p = net.dst(up);
      tree_adj_pool_[tree_adj_begin_[v] + cursor[v]++] = up;
      tree_adj_pool_[tree_adj_begin_[p] + cursor[p]++] = reverse(up);
    }
  }

  /// Pre-mark the escape paths (Definition 7) toward every destination of
  /// this layer as `used` with one shared subgraph id.
  void init_escape_paths(const std::vector<NodeId>& dests) {
    // Initial channel weight: damping x the expected per-channel usage
    // accumulated over this layer's steps. A higher base suppresses the
    // early-step volatility of the balancing weights (when few updates
    // have happened, a 2x weight difference would cause erratic detours);
    // relative differences then grow to their natural scale as the layer
    // progresses, like the late steps of a k=1 run.
    std::fill(weights_, weights_ + net_.num_channels(),
              1.0 + opt_.balance_damping);
    std::vector<ChannelId> escape_channels;
    for (NodeId d : dests) {
      compute_escape_next(d);
      for (NodeId v = 0; v < net_.num_nodes(); ++v) {
        const ChannelId tn = escape_next_[v];  // traffic channel v -> parent
        if (tn == kInvalidChannel) continue;
        const ChannelId mark = reverse(tn);  // search orientation
        if (!cdg_.channel_used(mark)) escape_channels.push_back(mark);
        cdg_.mark_channel_used(mark);
        const NodeId p = net_.dst(tn);
        if (p != d) {
          cdg_.force_edge_used(reverse(escape_next_[p]), mark);
        }
      }
    }
    cdg_.unify_components(escape_channels);
  }

  /// Escape-path setup tolerant of pre-seeded dependencies (incremental
  /// rerouting): returns false when the spanning tree's dependencies
  /// conflict with them — the caller must then discard this router and
  /// recompute the layer from scratch.
  bool init_escape_paths_checked(const std::vector<NodeId>& dests) {
    std::fill(weights_, weights_ + net_.num_channels(),
              1.0 + opt_.balance_damping);
    std::vector<ChannelId> escape_channels;
    for (NodeId d : dests) {
      compute_escape_next(d);
      for (NodeId v = 0; v < net_.num_nodes(); ++v) {
        const ChannelId tn = escape_next_[v];
        if (tn == kInvalidChannel) continue;
        const ChannelId mark = reverse(tn);
        if (!cdg_.channel_used(mark)) escape_channels.push_back(mark);
        cdg_.mark_channel_used(mark);
        const NodeId p = net_.dst(tn);
        if (p != d &&
            !cdg_.try_force_edge_used(reverse(escape_next_[p]), mark)) {
          return false;
        }
      }
    }
    cdg_.unify_components(escape_channels);
    return true;
  }

  /// Pre-seed the CDG with a preserved forwarding column's dependencies
  /// (traffic orientation mirrored into search orientation), so the new
  /// columns cannot form a cycle with the reused ones. Returns false when
  /// the column clashes with dependencies already present (escape paths or
  /// previously kept columns) — the caller then recomputes it instead.
  /// Partially placed marks stay: they are correct (they mirror real old
  /// dependencies) and only slightly over-constrain the layer.
  bool premark_column_checked(const RoutingResult& old, std::uint32_t old_di,
                              NodeId d) {
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (v == d || !net_.node_alive(v)) continue;
      const ChannelId c = old.next(v, old_di);  // traffic channel v -> p
      NUE_DCHECK(c != kInvalidChannel);
      const NodeId p = net_.dst(c);
      if (p == d) continue;
      const ChannelId pc = old.next(p, old_di);
      if (!cdg_.try_force_edge_used(reverse(pc), reverse(c))) return false;
    }
    return true;
  }

  /// Best-effort pre-marking of a broken column's STALE dependencies: the
  /// consecutive still-alive hop pairs of the old column, which in-flight
  /// packets keep occupying until they reach the dead element (or the
  /// destination, for the intact tail). Routing the replacement column
  /// around these marks keeps the old+new union CDG acyclic — the
  /// resilience manager's condition for a hitless table swap. Unlike the
  /// kept-column premark this must not fail the column: a mark that would
  /// close a cycle is skipped (returned in the count) and the transition
  /// gate downstream gets the final say.
  std::size_t premark_stale_deps(const RoutingResult& old,
                                 std::uint32_t old_di, NodeId d) {
    std::size_t skipped = 0;
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (v == d || !net_.node_alive(v)) continue;
      const ChannelId c = old.next(v, old_di);  // traffic channel v -> p
      if (c == kInvalidChannel || !net_.channel_alive(c)) continue;
      const NodeId p = net_.dst(c);
      if (p == d || !net_.node_alive(p)) continue;
      const ChannelId pc = old.next(p, old_di);
      if (pc == kInvalidChannel || !net_.channel_alive(pc)) continue;
      if (!cdg_.try_force_edge_used(reverse(pc), reverse(c))) ++skipped;
    }
    return skipped;
  }

  /// Bulk form of the column pre-marks (constraints-first rerouting): the
  /// surviving dependencies of one old layer are jointly acyclic — they
  /// all come from that layer's validated CDG — so they load into the
  /// fresh CDG with one topological pass instead of per-edge insertions.
  void premark_bulk(
      const std::vector<std::pair<ChannelId, ChannelId>>& deps) {
    cdg_.force_edges_bulk(deps);
  }

  /// Route destination d; fills column di of rr. Returns true when the
  /// graph search succeeded, false when the step fell back to the escape
  /// paths (counted in stats).
  bool route_destination(NodeId d, RoutingResult& rr, std::uint32_t di) {
    reset_scratch();
    cdg_.begin_step();
    seed_search(d);
    return finish_route(d, rr, di);
  }

  /// Partial-column repair (incremental rerouting): a failure orphans only
  /// the nodes whose old pointer chain runs into the dead element — often
  /// a small neighborhood of the failure. Settle the intact region on its
  /// old channels (distance 0, so no relaxation displaces it) and run the
  /// modified Dijkstra only over the orphans attaching at the frontier.
  /// Requires this column's stale pre-marking to have skipped nothing: the
  /// intact entries' dependencies must already be in the CDG for the
  /// merged column's extraction to hold. Impasses fall back to the escape
  /// paths exactly like route_destination (the escape tree covers every
  /// node, orphaned or not).
  bool route_destination_partial(NodeId d, RoutingResult& rr,
                                 std::uint32_t di, const RoutingResult& old,
                                 std::uint32_t old_di) {
    classify_intact(d, old, old_di);
    reset_scratch();
    cdg_.begin_step();
    seed_partial(d, old, old_di);
    return finish_route(d, rr, di);
  }

  const CompleteCdg::Stats& cdg_stats() const { return cdg_.stats(); }

 private:
  /// Shared tail of the routing step: drain/backtrack until fully routed
  /// (or fall back to the escape paths), then extract column di.
  bool finish_route(NodeId d, RoutingResult& rr, std::uint32_t di) {
    while (true) {
      drain_heap();
      if (!find_islands(d)) break;  // fully routed
      if (!opt_.backtracking || !resolve_one_island(d)) {
        stats_.islands_unresolved += islands_.size();
        fallback_to_escape(d, rr, di);
        // Escape paths are permanently marked already; none of this
        // step's transient marks are real dependencies.
        cdg_.end_step(keep_flags_);
        return false;
      }
    }
    // Extract the destination-based table: traffic takes the reverse of
    // the search-orientation used channel. Keep exactly the dependencies
    // of the final in-tree (plus, transitively, the escape marks).
    std::vector<CdgIndex::EdgeId> kept;
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (v == d || !net_.node_alive(v)) continue;
      const ChannelId c = used_channel_[v];
      NUE_DCHECK(c != kInvalidChannel);
      rr.set_next(v, di, reverse(c));
      const NodeId p = net_.src(c);
      if (p != d) {
        const auto e = idx_.edge_id(used_channel_[p], c);
        NUE_DCHECK(e != CdgIndex::kNoEdge);
        NUE_DCHECK(cdg_.edge_used(e));
        keep_flags_[e] = 1;
        kept.push_back(e);
      }
    }
    cdg_.end_step(keep_flags_);
    for (const auto e : kept) keep_flags_[e] = 0;
    update_weights(d, /*escape=*/false);
    return true;
  }

  /// intact_[v] = 1 when v's old chain still reaches d over alive
  /// elements, 2 when it runs into the dead element (orphaned). Memoized
  /// pointer-chase: every node is classified once, O(nodes) total.
  void classify_intact(NodeId d, const RoutingResult& old,
                       std::uint32_t old_di) {
    std::fill(intact_, intact_ + net_.num_nodes(), 0);
    intact_[d] = 1;
    for (NodeId s = 0; s < net_.num_nodes(); ++s) {
      if (s == d || !net_.node_alive(s) || intact_[s] != 0) continue;
      chain_.clear();
      NodeId at = s;
      std::uint8_t verdict = 2;  // orphan unless the chase lands intact
      while (intact_[at] == 0 && chain_.size() <= net_.num_nodes()) {
        chain_.push_back(at);
        const ChannelId c = old.next(at, old_di);
        if (c == kInvalidChannel || !net_.channel_alive(c) ||
            !net_.node_alive(net_.dst(c))) {
          break;
        }
        at = net_.dst(c);
      }
      if (intact_[at] != 0) verdict = intact_[at];
      for (NodeId v : chain_) intact_[v] = verdict;
    }
  }

  /// Multi-source seeding for the partial repair: the intact region is
  /// settled at distance 0 on its old channels, and only the frontier —
  /// intact nodes (or the destination itself) with an orphaned alive
  /// neighbor — enters the heap, since any other relaxation could only
  /// land inside the settled region and be rejected on distance.
  void seed_partial(NodeId d, const RoutingResult& old,
                    std::uint32_t old_di) {
    dest_ = d;
    node_dist_.set(d, 0.0);
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (v == d || !net_.node_alive(v) || intact_[v] != 1) continue;
      const ChannelId c = reverse(old.next(v, old_di));  // search orientation
      // The stale pre-marks covered channels with a downstream pair; leaf
      // channels next to d still need their ω entry for the relaxations
      // and backtracking probes touching them.
      cdg_.mark_channel_used(c);
      used_channel_.set(v, c);
      node_dist_.set(v, 0.0);
    }
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (!net_.node_alive(v) || (v != d && intact_[v] != 1)) continue;
      bool frontier = false;
      for (ChannelId out : net_.out(v)) {
        const NodeId w = net_.dst(out);
        if (net_.channel_alive(out) && net_.node_alive(w) &&
            intact_[w] == 2) {
          frontier = true;
          break;
        }
      }
      if (!frontier) continue;
      if (v == d) {
        // The destination's own channels reach orphans directly: seed them
        // like seed_search's fake-channel expansion, restricted to orphan
        // heads (intact heads are already settled).
        for (ChannelId c : net_.out(d)) {
          const NodeId w = net_.dst(c);
          if (!net_.channel_alive(c) || !net_.node_alive(w) ||
              intact_[w] != 2) {
            continue;
          }
          const double nd = weights_[c];
          if (nd < node_dist_[w]) {
            if (used_channel_[w] != kInvalidChannel) {
              push_alt(w, used_channel_[w]);
            }
            cdg_.mark_channel_used(c);
            used_channel_.set(w, c);
            node_dist_.set(w, nd);
            chan_dist_.set(c, nd);
            heap_.insert_or_decrease(c, nd);
          } else {
            push_alt(w, c);
          }
        }
      } else {
        const ChannelId c = used_channel_[v];
        chan_dist_.set(c, 0.0);
        heap_.insert(c, 0.0);
      }
    }
  }

  // --- escape paths ---------------------------------------------------------

  /// BFS within the spanning tree: escape_next_[v] = the traffic channel
  /// (v -> tree parent toward d).
  void compute_escape_next(NodeId d) {
    const std::size_t n = net_.num_nodes();
    std::fill(escape_next_, escape_next_ + n, kInvalidChannel);
    bfs_.clear();
    bfs_.push_back(d);
    std::fill(escape_seen_, escape_seen_ + n, 0);
    escape_seen_[d] = 1;
    for (std::size_t i = 0; i < bfs_.size(); ++i) {
      const NodeId v = bfs_[i];
      const std::uint32_t te = tree_adj_begin_[v + 1];
      for (std::uint32_t t = tree_adj_begin_[v]; t < te; ++t) {
        const ChannelId c = tree_adj_pool_[t];  // c = (v -> nb)
        const NodeId nb = net_.dst(c);
        if (escape_seen_[nb]) continue;
        escape_seen_[nb] = 1;
        escape_next_[nb] = reverse(c);  // nb -> v, one hop toward d
        bfs_.push_back(nb);
      }
    }
  }

  void fallback_to_escape(NodeId d, RoutingResult& rr, std::uint32_t di) {
    ++stats_.fallbacks;
    compute_escape_next(d);
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (v == d || !net_.node_alive(v)) continue;
      NUE_DCHECK(escape_next_[v] != kInvalidChannel);
      rr.set_next(v, di, escape_next_[v]);
    }
    update_weights(d, /*escape=*/true);
  }

  // --- Algorithm 1 ----------------------------------------------------------

  /// O(1) per-destination reset: the scratch vectors are generation-
  /// stamped, so bumping the epoch invalidates every slot without the
  /// full-size fills the serial engine performed (which dominate step
  /// setup on large low-diameter fabrics).
  void reset_scratch() {
    node_dist_.next_epoch();
    used_channel_.next_epoch();
    chan_dist_.next_epoch();
    if (++alts_epoch_ == 0) {
      std::fill(alt_gen_, alt_gen_ + net_.num_nodes(), 0);
      alts_epoch_ = 1;
    }
    heap_.clear();
    dest_ = kInvalidNode;
  }

  /// Backtracking alternatives of v recorded this step (empty if stale).
  std::span<const ChannelId> alts_of(NodeId v) const {
    if (alt_gen_[v] != alts_epoch_) return {};
    return {alt_data_ + static_cast<std::size_t>(v) * opt_.alt_stack_limit,
            alt_cnt_[v]};
  }

  void seed_search(NodeId d) {
    dest_ = d;
    node_dist_.set(d, 0.0);
    if (net_.is_terminal(d)) {
      const ChannelId c0 = net_.out(d)[0];
      cdg_.mark_channel_used(c0);
      chan_dist_.set(c0, 0.0);
      used_channel_.set(net_.dst(c0), c0);
      node_dist_.set(net_.dst(c0), 0.0);
      heap_.insert(c0, 0.0);
    } else {
      // Switch source: the paper's fake channel (∅, n_0) feeding every
      // outgoing channel; equivalent to seeding all of them directly.
      for (ChannelId c : net_.out(d)) {
        const NodeId w = net_.dst(c);
        const double nd = weights_[c];
        if (nd < node_dist_[w]) {
          if (used_channel_[w] != kInvalidChannel) {
            push_alt(w, used_channel_[w]);
          }
          cdg_.mark_channel_used(c);
          used_channel_.set(w, c);
          node_dist_.set(w, nd);
          chan_dist_.set(c, nd);
          heap_.insert_or_decrease(c, nd);
        } else {
          push_alt(w, c);  // losing parallel channel; backtracking option
        }
      }
    }
  }

  void drain_heap() {
    while (!heap_.empty()) {
      const ChannelId cp = heap_.extract_min();
      const NodeId v = net_.dst(cp);
      if (used_channel_[v] != cp) {
        // Stale pop: the node switched to a better inbound channel while
        // cp waited. Keep cp as a backtracking alternative (§4.6.2).
        push_alt(v, cp);
        continue;
      }
      relax_from(cp);
    }
  }

  void relax_from(ChannelId cp) {
    const auto succ = idx_.successors(cp);
    CdgIndex::EdgeId e = idx_.first_edge(cp);
    for (const ChannelId cq : succ) {
      const CdgIndex::EdgeId eid = e++;
      if (cdg_.edge_blocked(eid)) continue;  // condition (a)
      const NodeId w = net_.dst(cq);
      const double nd = chan_dist_[cp] + weights_[cq];
      if (!(nd < node_dist_[w])) {
        push_alt(w, cq);
        continue;
      }
      // Current-step children of w constrain an inbound switch: their
      // dependencies (old_in, out) must be re-placeable as (cq, out).
      // Children can exist whenever w was reached before (it may have
      // relaxed neighbors during an earlier settled period and switched
      // since), so the scan keys on reachedness, not on the settled flag.
      children_.clear();
      if (used_channel_[w] != kInvalidChannel) {
        for (ChannelId out : net_.out(w)) {
          if (used_channel_[net_.dst(out)] == out) children_.push_back(out);
        }
      }
      if (children_.empty()) {
        if (!cdg_.try_use_edge_by_id(eid, cp, cq)) continue;
      } else {
        if (!opt_.shortcuts) continue;
        if (!cdg_.switch_feasible(cp, cq, children_)) continue;
        cdg_.commit_switch(cp, cq, children_);
        ++stats_.shortcuts_taken;
      }
      if (used_channel_[w] != kInvalidChannel && used_channel_[w] != cq) {
        push_alt(w, used_channel_[w]);
      }
      used_channel_.set(w, cq);
      node_dist_.set(w, nd);
      chan_dist_.set(cq, nd);
      heap_.insert_or_decrease(cq, nd);
    }
  }

  // --- impasse handling (§4.6.2) --------------------------------------------

  bool find_islands(NodeId d) {
    islands_.clear();
    for (NodeId v = 0; v < net_.num_nodes(); ++v) {
      if (net_.node_alive(v) && v != d && node_dist_[v] == kInf) {
        islands_.push_back(v);
      }
    }
    return !islands_.empty();
  }

  bool resolve_one_island(NodeId d) {
    for (NodeId v : islands_) {
      if (try_backtrack_into(v, d)) {
        ++stats_.islands_resolved;
        return true;
      }
    }
    return false;
  }

  /// Local backtracking: reach island v through a reached neighbor u,
  /// either via u's current inbound channel or by switching u to a stored
  /// alternative (validating u's existing child dependencies atomically).
  bool try_backtrack_into(NodeId v, NodeId d) {
    for (ChannelId out : net_.out(v)) {
      const ChannelId c = reverse(out);  // candidate inbound (u -> v)
      const NodeId u = net_.src(c);
      if (node_dist_[u] == kInf || u == d) continue;
      // Option 1: extend u's current chain.
      const ChannelId cur = used_channel_[u];
      if (cur != kInvalidChannel && cdg_.try_use_edge(cur, c)) {
        ++stats_.backtrack_option1;
        reach_island(v, c, node_dist_[u] + weights_[c]);
        return true;
      }
      // Option 2: switch u's inbound to a remembered alternative.
      for (const ChannelId a : alts_of(u)) {
        if (a == used_channel_[u]) continue;
        const NodeId x = net_.src(a);
        const ChannelId chain_in =
            x == d ? kInvalidChannel : used_channel_[x];
        if (x != d &&
            (chain_in == kInvalidChannel || node_dist_[x] == kInf)) {
          continue;
        }
        // u's current-step children keep their outgoing dependencies,
        // re-rooted onto channel a; plus the new edge (a -> c).
        children_.clear();
        children_.push_back(c);
        for (ChannelId o : net_.out(u)) {
          if (used_channel_[net_.dst(o)] == o) children_.push_back(o);
        }
        if (!switch_with_optional_chain(chain_in, a, children_)) continue;
        // Commit the switch of u.
        const double u_dist =
            (x == d ? 0.0 : node_dist_[x]) + weights_[a];
        ++stats_.backtrack_option2;
        push_alt(u, used_channel_[u]);
        used_channel_.set(u, a);
        node_dist_.set(u, std::min(node_dist_[u], u_dist));
        chan_dist_.set(a, node_dist_[u]);
        reach_island(v, c, node_dist_[u] + weights_[c]);
        return true;
      }
    }
    return false;
  }

  /// switch_feasible + commit, tolerating a missing inbound chain edge
  /// (alternatives whose tail is the destination itself have none).
  bool switch_with_optional_chain(ChannelId chain_in, ChannelId a,
                                  const std::vector<ChannelId>& outs) {
    if (chain_in != kInvalidChannel) {
      if (!cdg_.switch_feasible(chain_in, a, outs)) return false;
      cdg_.commit_switch(chain_in, a, outs);
      return true;
    }
    // No inbound edge: check only the out-star around `a`, atomically —
    // a failure mid-commit would leave earlier edges marked (sticky).
    if (!cdg_.switch_feasible_star(a, outs)) return false;
    cdg_.mark_channel_used(a);
    for (ChannelId o : outs) {
      const bool ok = cdg_.try_use_edge(a, o);
      NUE_CHECK(ok);
    }
    return true;
  }

  void reach_island(NodeId v, ChannelId c, double nd) {
    if (used_channel_[v] != kInvalidChannel) push_alt(v, used_channel_[v]);
    used_channel_.set(v, c);
    node_dist_.set(v, nd);
    chan_dist_.set(c, nd);
    heap_.insert_or_decrease(c, nd);
  }

  void push_alt(NodeId v, ChannelId c) {
    if (c == kInvalidChannel) return;
    if (alt_gen_[v] != alts_epoch_) {
      alt_gen_[v] = alts_epoch_;
      alt_cnt_[v] = 0;
    }
    ChannelId* a =
        alt_data_ + static_cast<std::size_t>(v) * opt_.alt_stack_limit;
    std::uint32_t& cnt = alt_cnt_[v];
    for (std::uint32_t i = 0; i < cnt; ++i) {
      if (a[i] == c) return;
    }
    if (cnt < opt_.alt_stack_limit) {
      a[cnt++] = c;
    } else if (cnt > 0) {
      // Keep the most recent alternatives (ring overwrite).
      a[alt_rr_++ % cnt] = c;
    }
  }

  // --- balancing ------------------------------------------------------------

  /// DFSSSP-style weight update: +1 per terminal-to-destination route on
  /// every search-orientation channel the route's reverse traffic uses.
  void update_weights(NodeId d, bool escape) {
    for (NodeId t : net_.terminals()) {
      if (t == d || !net_.node_alive(t)) continue;
      NodeId at = t;
      std::size_t guard = 0;
      while (at != d) {
        ChannelId search_chan;
        if (escape) {
          search_chan = reverse(escape_next_[at]);
          at = net_.dst(escape_next_[at]);
        } else {
          search_chan = used_channel_[at];
          at = net_.src(search_chan);
        }
        weights_[search_chan] += 1.0;
        NUE_CHECK_MSG(++guard <= net_.num_nodes(), "routing loop in Nue");
      }
    }
  }

  const Network& net_;
  const CdgIndex& idx_;
  const NueOptions& opt_;
  NueStats& stats_;
  Arena& scratch_;
  CompleteCdg cdg_;
  std::vector<ChannelId> tree_parent_;

  // arena slices (layer-lifetime flat scratch; see class comment)
  double* weights_ = nullptr;
  ChannelId* tree_adj_pool_ = nullptr;      // escape spanning tree, CSR
  std::uint32_t* tree_adj_begin_ = nullptr;
  ChannelId* alt_data_ = nullptr;           // nodes x alt_stack_limit
  std::uint32_t* alt_cnt_ = nullptr;
  std::uint32_t* alt_gen_ = nullptr;
  ChannelId* escape_next_ = nullptr;
  std::uint8_t* escape_seen_ = nullptr;
  std::uint8_t* intact_ = nullptr;  // partial repair: 1 intact, 2 orphan
  std::uint8_t* keep_flags_ = nullptr;
  FixedVec<NodeId> chain_;  // partial repair: pointer-chase stack
  FixedVec<NodeId> bfs_;
  FixedVec<NodeId> islands_;

  // per-destination scratch (generation-stamped: reset_scratch is O(1))
  EpochVector<double> node_dist_;
  EpochVector<ChannelId> used_channel_;
  std::uint32_t alts_epoch_ = 1;
  EpochVector<double> chan_dist_;
  FibonacciHeap<double> heap_;
  std::vector<ChannelId> children_;
  NodeId dest_ = kInvalidNode;
  std::size_t alt_rr_ = 0;
};

/// Fold one layer's stats into the run total. Called in ascending layer
/// order after the (possibly concurrent) layer tasks finish, so the
/// aggregate — including the order of `roots` — matches the serial engine
/// exactly at every thread count.
void merge_stats(NueStats& into, const NueStats& from) {
  into.fallbacks += from.fallbacks;
  into.islands_resolved += from.islands_resolved;
  into.islands_unresolved += from.islands_unresolved;
  into.backtrack_option1 += from.backtrack_option1;
  into.backtrack_option2 += from.backtrack_option2;
  into.shortcuts_taken += from.shortcuts_taken;
  into.cycle_searches += from.cycle_searches;
  into.cycle_search_steps += from.cycle_search_steps;
  into.fast_accepts += from.fast_accepts;
  into.roots.insert(into.roots.end(), from.roots.begin(), from.roots.end());
}

/// Publish a finished run's aggregate stats to the telemetry registry
/// (docs/OBSERVABILITY.md records the counter-name schema). The stats are
/// computed regardless; publishing is gated so disabled runs pay nothing.
void publish_stats(const NueStats& st) {
  if (!telemetry::enabled()) return;
  const auto add = [](const char* name, std::uint64_t v) {
    telemetry::counter(name).add_always(v);
  };
  add("nue.escape_fallbacks", st.fallbacks);
  add("nue.impasses", st.islands_resolved + st.islands_unresolved);
  add("nue.backtracks", st.backtrack_option1 + st.backtrack_option2);
  add("nue.shortcuts", st.shortcuts_taken);
  add("nue.omega_searches", st.cycle_searches);
  add("nue.omega_search_steps", st.cycle_search_steps);
  add("nue.omega_hits", st.fast_accepts);
}

}  // namespace

NodeId select_escape_root(const Network& net,
                          const std::vector<NodeId>& subset,
                          std::size_t pivots) {
  NUE_CHECK(!subset.empty());
  const auto mask = convex_subgraph(net, subset);
  const auto cb = betweenness_centrality_sampled(net, pivots, mask);
  NodeId best = subset[0];
  double best_cb = -1.0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v) || !mask[v]) continue;
    // Prefer switches: a terminal root degenerates the spanning tree.
    const double score = cb[v] + (net.is_switch(v) ? 0.5 : 0.0);
    if (score > best_cb) {
      best_cb = score;
      best = v;
    }
  }
  if (net.is_terminal(best)) best = net.terminal_switch(best);
  return best;
}

std::size_t count_escape_dependencies(const Network& net, NodeId root,
                                      const std::vector<NodeId>& dests) {
  const auto parent = bfs_tree(net, root);
  std::vector<std::vector<ChannelId>> adj(net.num_nodes());
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (parent[v] == kInvalidChannel) continue;
    adj[v].push_back(parent[v]);
    adj[net.dst(parent[v])].push_back(reverse(parent[v]));
  }
  // Sorted-vector dedup instead of a std::set: the dependency stream is
  // dest-major with heavy cross-destination overlap, and one sort + unique
  // over the flat buffer beats per-insert tree rebalancing (and its node
  // churn) by a wide margin on large columns.
  std::vector<std::pair<ChannelId, ChannelId>> deps;
  std::vector<ChannelId> toward(net.num_nodes());
  std::vector<NodeId> bfs;
  std::vector<std::uint8_t> seen(net.num_nodes());
  for (NodeId d : dests) {
    std::fill(toward.begin(), toward.end(), kInvalidChannel);
    std::fill(seen.begin(), seen.end(), 0);
    bfs.assign(1, d);
    seen[d] = 1;
    for (std::size_t i = 0; i < bfs.size(); ++i) {
      for (ChannelId c : adj[bfs[i]]) {
        const NodeId nb = net.dst(c);
        if (seen[nb]) continue;
        seen[nb] = 1;
        toward[nb] = reverse(c);
        bfs.push_back(nb);
      }
    }
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      const ChannelId e = toward[v];
      if (e == kInvalidChannel) continue;
      const NodeId p = net.dst(e);
      if (p != d) deps.emplace_back(e, toward[p]);
    }
  }
  std::sort(deps.begin(), deps.end());
  return static_cast<std::size_t>(
      std::unique(deps.begin(), deps.end()) - deps.begin());
}

RoutingResult reroute_nue(const Network& net, const RoutingResult& old,
                          const NueOptions& opt, RerouteStats* reroute_stats,
                          NueStats* stats) {
  TELEM_SPAN("nue.reroute");
  NueStats stats_local;
  NueStats& st = stats ? *stats : stats_local;
  st = NueStats{};
  RerouteStats rs_local;
  RerouteStats& rs = reroute_stats ? *reroute_stats : rs_local;
  rs = RerouteStats{};

  // Surviving destinations keep their old layer assignment. Destinations
  // that died with their switch still leave stale columns behind: in-flight
  // packets toward them occupy the surviving hops of the old column until
  // they reach the dead element, so those dependencies constrain the
  // replacement routes exactly like a broken column's.
  std::vector<NodeId> dests;
  std::vector<std::vector<NodeId>> stale_only(old.num_vls());
  for (NodeId d : old.destinations()) {
    if (net.node_alive(d)) {
      dests.push_back(d);
    } else {
      ++rs.dests_dropped;
      const std::uint32_t old_di = old.dest_index(d);
      stale_only[old.vl(d, d, old_di)].push_back(d);
    }
  }
  RoutingResult rr(net.num_nodes(), dests, old.num_vls(), VlMode::kPerDest);

  // Classify columns: a column survives iff every alive node still has a
  // live next channel toward a live neighbor (the pointer chains are
  // unchanged, so intact entries still terminate at the destination).
  std::vector<std::vector<NodeId>> kept(old.num_vls());
  std::vector<std::vector<NodeId>> affected(old.num_vls());
  for (NodeId d : dests) {
    const std::uint32_t old_di = old.dest_index(d);
    const std::uint32_t layer = old.vl(d, d, old_di);
    bool intact = true;
    for (NodeId v = 0; v < net.num_nodes() && intact; ++v) {
      if (v == d || !net.node_alive(v)) continue;
      const ChannelId c = old.next(v, old_di);
      intact = c != kInvalidChannel && net.channel_alive(c) &&
               net.node_alive(net.dst(c));
    }
    (intact ? kept : affected)[layer].push_back(d);
  }

  // Layers keep their original destination partition, so they stay
  // independent and recompute concurrently — same argument as route_nue,
  // and reroute draws no random numbers at all. Per-layer stats slots are
  // merged in layer order below.
  const CdgIndex idx(net);
  std::vector<NueStats> layer_stats(old.num_vls());
  std::vector<RerouteStats> layer_rs(old.num_vls());
  parallel_for(
      resolve_threads(opt.num_threads), old.num_vls(),
      [&](std::size_t layer) {
        TELEM_SPAN("nue.reroute_layer");
        NueStats& ls = layer_stats[layer];
        RerouteStats& lrs = layer_rs[layer];
        if (kept[layer].empty() && affected[layer].empty()) {
          ls.roots.push_back(kInvalidNode);
          return;
        }
        if (affected[layer].empty()) {
          // Nothing to recompute: reuse every column verbatim.
          for (NodeId d : kept[layer]) {
            const std::uint32_t old_di = old.dest_index(d);
            const std::uint32_t di = rr.dest_index(d);
            rr.set_dest_vl(di, static_cast<std::uint8_t>(layer));
            for (NodeId v = 0; v < net.num_nodes(); ++v) {
              if (v == d || !net.node_alive(v)) continue;
              rr.set_next(v, di, old.next(v, old_di));
            }
          }
          lrs.dests_kept += kept[layer].size();
          ls.roots.push_back(kInvalidNode);  // no new escape tree this layer
          return;
        }
        // Escape paths must be marked for every destination we end up
        // routing (Lemma 3), preserved columns must be fully pre-marked
        // before anything new is placed, and the stale dependencies of the
        // columns being replaced (broken, demoted, or dead-destination —
        // in-flight packets hold their surviving hops until they drain)
        // should be in the CDG too, so old and new tables can coexist
        // during the swap. Every pre-mark mirrors the old table's own
        // per-layer CDG — acyclic by that table's validation — so the
        // pre-marks never clash with each other; only the escape tree can
        // clash with them. Try the hitless-friendly order first: all
        // pre-marks, then a checked escape tree fitted around them — when
        // that succeeds with zero skipped marks, the old+new union CDG is
        // acyclic by construction. When no compatible tree exists, fall
        // back to the escape-first order (Lemma 3's delivery guarantee
        // outranks hitlessness) with best-effort stale marks, and the
        // transition gate downstream prices the skips. A kept column that
        // clashes is demoted into the routing set — that grows the escape
        // requirement, so iterate to a fixpoint (bounded by the
        // kept-column count; almost always a single pass).
        std::vector<NodeId> to_route = affected[layer];
        std::vector<NodeId> keep_cols = kept[layer];
        // One scratch arena for every root attempt of this layer: each
        // router construction rewinds it, so the attempt loop below runs
        // with zero steady-state allocation for the flat scratch.
        Arena arena;
        std::unique_ptr<LayerRouter> router;
        bool escape_first = false;
        // Root schedule for the checked escape setup. The hint — the root
        // this layer's previous escape tree grew from — goes first: that
        // tree was force-marked whole in the old table's CDG, so its BFS
        // re-derivation on the degraded fabric is almost always compatible
        // with the surviving old dependencies and the hitless repair
        // succeeds on the first attempt. Then the paper's
        // betweenness-central root (it minimizes escape dependencies,
        // Fig. 5), then capped alternatives spread across the fabric —
        // any one of them being compatible is enough.
        NodeId hint = layer < opt.escape_root_hints.size()
                          ? opt.escape_root_hints[layer]
                          : kInvalidNode;
        if (hint != kInvalidNode &&
            (hint >= net.num_nodes() || !net.node_alive(hint) ||
             !net.is_switch(hint))) {
          hint = kInvalidNode;
        }
        // The betweenness pass behind select_escape_root is the single
        // most expensive piece of the layer setup; memoize it and, when a
        // hint exists, don't even compute it until the hint fails.
        NodeId central = kInvalidNode;
        const auto preferred_root = [&]() -> NodeId {
          if (central == kInvalidNode) {
            central = opt.central_root
                          ? select_escape_root(net, to_route,
                                               opt.betweenness_pivots)
                          : net.switches().front();
          }
          return central;
        };
        std::vector<NodeId> candidates;
        if (hint != kInvalidNode) candidates.push_back(hint);
        bool expanded = false;
        const auto expand_candidates = [&] {
          expanded = true;
          const NodeId pref = preferred_root();
          if (pref != hint) candidates.push_back(pref);
          std::vector<NodeId> alts;
          for (NodeId s : net.switches()) {
            if (s != pref && s != hint && net.node_alive(s)) {
              alts.push_back(s);
            }
          }
          if (opt.reroute_root_attempts > 0 &&
              alts.size() > opt.reroute_root_attempts) {
            // Spread the capped attempts across the fabric instead of
            // clustering them on the lowest switch ids.
            const std::size_t step = alts.size() / opt.reroute_root_attempts;
            for (std::size_t i = 0; i < opt.reroute_root_attempts; ++i) {
              candidates.push_back(alts[i * step]);
            }
          } else {
            candidates.insert(candidates.end(), alts.begin(), alts.end());
          }
        };
        if (candidates.empty()) expand_candidates();
        std::size_t root_attempt = 0;
        NodeId root = kInvalidNode;
        // Stale-mark skip count per routed column of the final attempt: a
        // column with zero skips has its whole surviving dependency set in
        // the CDG and is eligible for the partial repair below.
        std::unordered_map<NodeId, std::size_t> col_skips;
        // Collector for one old column's surviving dependencies (the
        // consecutive still-alive hop pairs, search orientation). Kept
        // columns are fully alive, so the same liveness-filtered walk
        // yields their complete dependency set too.
        std::vector<std::pair<ChannelId, ChannelId>> old_deps;
        const auto collect_column_deps = [&](NodeId d) {
          const std::uint32_t odi = old.dest_index(d);
          for (NodeId v = 0; v < net.num_nodes(); ++v) {
            if (v == d || !net.node_alive(v)) continue;
            const ChannelId c = old.next(v, odi);  // traffic channel v -> p
            if (c == kInvalidChannel || !net.channel_alive(c)) continue;
            const NodeId p = net.dst(c);
            if (p == d || !net.node_alive(p)) continue;
            const ChannelId pc = old.next(p, odi);
            if (pc == kInvalidChannel || !net.channel_alive(pc)) continue;
            old_deps.emplace_back(reverse(pc), reverse(c));
          }
        };
        while (true) {
          root = escape_first ? preferred_root() : candidates[root_attempt];
          router.reset();  // release the failed attempt before its arena
                           // slices are rewound by the next construction
          router = std::make_unique<LayerRouter>(net, idx, root, opt, ls,
                                                 arena);
          if (!escape_first) {
            // Constraints-first: every pre-mark mirrors the old table's
            // acyclic per-layer CDG, so the pre-marks cannot conflict
            // with each other — bulk-load them in one topological pass,
            // then fit a checked escape tree around them. Zero skipped
            // marks and zero demotions by construction: succeeding here
            // makes the repair hitless.
            old_deps.clear();
            for (NodeId d : to_route) collect_column_deps(d);
            for (NodeId d : stale_only[layer]) collect_column_deps(d);
            for (NodeId d : keep_cols) collect_column_deps(d);
            router->premark_bulk(old_deps);
            col_skips.clear();
            for (NodeId d : to_route) col_skips[d] = 0;
            const bool tree_ok = router->init_escape_paths_checked(to_route);
            if (!tree_ok) {
              ++root_attempt;
              if (root_attempt >= candidates.size()) {
                if (!expanded) expand_candidates();
                if (root_attempt >= candidates.size()) escape_first = true;
              }
              continue;
            }
            break;
          }
          // Escape-first fallback (Lemma 3's delivery guarantee outranks
          // hitlessness): unconditional escape tree, then checked kept
          // pre-marks with demotion to a fixpoint, then best-effort stale
          // marks priced by the transition gate downstream.
          router->init_escape_paths(to_route);
          bool demoted = false;
          std::vector<NodeId> still_kept;
          for (NodeId d : keep_cols) {
            if (router->premark_column_checked(old, old.dest_index(d), d)) {
              still_kept.push_back(d);
            } else {
              to_route.push_back(d);
              ++lrs.dests_demoted;
              demoted = true;
            }
          }
          keep_cols.swap(still_kept);
          if (demoted) continue;  // rebuild with the enlarged routing set
          std::size_t skipped = 0;
          col_skips.clear();
          for (NodeId d : to_route) {
            const std::size_t sk =
                router->premark_stale_deps(old, old.dest_index(d), d);
            col_skips[d] = sk;
            skipped += sk;
          }
          for (NodeId d : stale_only[layer]) {
            skipped += router->premark_stale_deps(old, old.dest_index(d), d);
          }
          lrs.stale_marks_skipped += skipped;
          break;
        }
        ls.roots.push_back(root);
        for (NodeId d : keep_cols) {
          const std::uint32_t old_di = old.dest_index(d);
          const std::uint32_t di = rr.dest_index(d);
          rr.set_dest_vl(di, static_cast<std::uint8_t>(layer));
          for (NodeId v = 0; v < net.num_nodes(); ++v) {
            if (v == d || !net.node_alive(v)) continue;
            rr.set_next(v, di, old.next(v, old_di));
          }
          ++lrs.dests_kept;
        }
        for (NodeId d : to_route) {
          const std::uint32_t di = rr.dest_index(d);
          rr.set_dest_vl(di, static_cast<std::uint8_t>(layer));
          // Partial repair when the column's stale marks all landed: the
          // intact region is settled verbatim (its dependencies are in the
          // CDG already) and only the orphaned nodes are re-searched. A
          // column with skipped marks falls back to a full recompute —
          // its surviving dependencies are not all in the CDG, so the
          // merged extraction could not account for them.
          const auto it = col_skips.find(d);
          if (it != col_skips.end() && it->second == 0) {
            router->route_destination_partial(d, rr, di, old,
                                              old.dest_index(d));
            ++lrs.dests_patched;
          } else {
            router->route_destination(d, rr, di);
          }
          ++lrs.dests_rerouted;
        }
      });
  for (std::uint32_t layer = 0; layer < old.num_vls(); ++layer) {
    merge_stats(st, layer_stats[layer]);
    rs.dests_kept += layer_rs[layer].dests_kept;
    rs.dests_rerouted += layer_rs[layer].dests_rerouted;
    rs.dests_patched += layer_rs[layer].dests_patched;
    rs.dests_demoted += layer_rs[layer].dests_demoted;
    rs.stale_marks_skipped += layer_rs[layer].stale_marks_skipped;
  }
  publish_stats(st);
  return rr;
}

RoutingResult route_nue(const Network& net, const std::vector<NodeId>& dests,
                        const NueOptions& opt, NueStats* stats) {
  TELEM_SPAN("nue.route");
  NUE_CHECK(opt.num_vls >= 1);
  NueStats local;
  NueStats& st = stats ? *stats : local;
  st = NueStats{};

  // Sequential RNG prologue: every draw from the shared generator happens
  // here, in layer order — the partitioning, then each non-empty subset's
  // shuffle. The shuffle randomizes the routing order because consecutive
  // ids are usually terminals of the same switch whose near-identical
  // trees would pile dependencies onto the same channels before the
  // balancing weights can react. LayerRouter itself never draws, so the
  // layers below can run concurrently with output bit-identical to the
  // serial engine at every thread count (docs/PARALLELISM.md).
  Rng rng(opt.seed);
  std::vector<std::vector<NodeId>> parts;
  {
    TELEM_SPAN("nue.partition");
    parts = partition_destinations(net, dests, opt.num_vls, opt.partition,
                                   rng);
    for (std::uint32_t layer = 0; layer < opt.num_vls; ++layer) {
      if (!parts[layer].empty()) rng.shuffle(parts[layer]);
    }
  }

  RoutingResult rr(net.num_nodes(), dests, opt.num_vls, VlMode::kPerDest);
  const CdgIndex idx(net);

  // One task per virtual layer. Each writes only its own destinations'
  // table columns (disjoint memory) and its own stats slot; the merge
  // below runs in layer order, so nothing depends on scheduling.
  std::vector<NueStats> layer_stats(opt.num_vls);
  parallel_for(
      resolve_threads(opt.num_threads), opt.num_vls, [&](std::size_t layer) {
        TELEM_SPAN("nue.layer");
        const auto& subset = parts[layer];
        if (subset.empty()) {
          layer_stats[layer].roots.push_back(kInvalidNode);
          return;
        }
        NueStats& ls = layer_stats[layer];
        NodeId root;
        if (opt.central_root) {
          TELEM_SPAN("nue.escape_root");
          root = select_escape_root(net, subset, opt.betweenness_pivots);
        } else {
          // Ablation: arbitrary (first alive switch).
          root = kInvalidNode;
          for (NodeId v = 0; v < net.num_nodes() && root == kInvalidNode;
               ++v) {
            if (net.node_alive(v) && net.is_switch(v)) root = v;
          }
        }
        ls.roots.push_back(root);

        Arena arena;
        LayerRouter router(net, idx, root, opt, ls, arena);
        {
          TELEM_SPAN("nue.escape_paths");
          router.init_escape_paths(subset);
        }
        for (NodeId d : subset) {
          TELEM_SPAN("nue.dest");
          const std::uint32_t di = rr.dest_index(d);
          rr.set_dest_vl(di, static_cast<std::uint8_t>(layer));
          router.route_destination(d, rr, di);
        }
        ls.cycle_searches += router.cdg_stats().dfs_searches;
        ls.cycle_search_steps += router.cdg_stats().dfs_steps;
        ls.fast_accepts += router.cdg_stats().fast_accepts;
      });
  for (std::uint32_t layer = 0; layer < opt.num_vls; ++layer) {
    merge_stats(st, layer_stats[layer]);
  }
  publish_stats(st);
  return rr;
}

}  // namespace nue
