// Minimal JSON value for the fabric-manager daemon's wire protocol
// (docs/SERVICE.md): nue_managerd speaks line-delimited JSON over a
// Unix-domain socket, and this is the parser/serializer both ends of
// that socket share. Deliberately small — objects keep insertion order
// (responses serialize deterministically, which the daemon smoke test
// diffs), numbers are doubles (every id/epoch on the wire fits in the
// 53-bit mantissa), and parse errors throw with an offset so a garbled
// request is rejected as a protocol error instead of crashing a shard.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace nue::service {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull, kBool, kNumber, kString, kArray, kObject,
  };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(std::uint32_t n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Json>& items() const { return arr_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  // --- object helpers -------------------------------------------------------

  /// Member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  bool has(const std::string& key) const { return find(key) != nullptr; }

  std::string str(const std::string& key, const std::string& def = "") const {
    const Json* v = find(key);
    return v && v->is_string() ? v->str_ : def;
  }
  double num(const std::string& key, double def = 0.0) const {
    const Json* v = find(key);
    return v && v->is_number() ? v->num_ : def;
  }
  bool boolean(const std::string& key, bool def = false) const {
    const Json* v = find(key);
    return v && v->is_bool() ? v->bool_ : def;
  }

  /// Set (or overwrite) an object member, keeping insertion order.
  Json& set(const std::string& key, Json value) {
    type_ = Type::kObject;
    for (auto& [k, v] : obj_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    obj_.emplace_back(key, std::move(value));
    return *this;
  }

  Json& push_back(Json value) {
    type_ = Type::kArray;
    arr_.push_back(std::move(value));
    return *this;
  }

  // --- serialization --------------------------------------------------------

  std::string dump() const {
    std::ostringstream os;
    write(os);
    return os.str();
  }

  void write(std::ostream& os) const {
    switch (type_) {
      case Type::kNull:
        os << "null";
        return;
      case Type::kBool:
        os << (bool_ ? "true" : "false");
        return;
      case Type::kNumber: {
        // Integers (the common case on this wire: ids, epochs, counts)
        // print without a fraction so dumps stay byte-stable.
        const auto ll = static_cast<long long>(num_);
        if (static_cast<double>(ll) == num_) {
          os << ll;
        } else {
          os << num_;
        }
        return;
      }
      case Type::kString:
        write_string(os, str_);
        return;
      case Type::kArray: {
        os << '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
          if (i) os << ',';
          arr_[i].write(os);
        }
        os << ']';
        return;
      }
      case Type::kObject: {
        os << '{';
        for (std::size_t i = 0; i < obj_.size(); ++i) {
          if (i) os << ',';
          write_string(os, obj_[i].first);
          os << ':';
          obj_[i].second.write(os);
        }
        os << '}';
        return;
      }
    }
  }

  // --- parsing --------------------------------------------------------------

  /// Parse one JSON document; throws std::runtime_error (with the byte
  /// offset) on malformed input or trailing garbage.
  static Json parse(const std::string& text) {
    std::size_t pos = 0;
    Json j = parse_value(text, pos);
    skip_ws(text, pos);
    if (pos != text.size()) {
      throw std::runtime_error("trailing characters at offset " +
                               std::to_string(pos));
    }
    return j;
  }

 private:
  static void write_string(std::ostream& os, const std::string& s) {
    os << '"';
    for (char ch : s) {
      switch (ch) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\r': os << "\\r"; break;
        case '\t': os << "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            const char* hex = "0123456789abcdef";
            os << "\\u00" << hex[(ch >> 4) & 0xf] << hex[ch & 0xf];
          } else {
            os << ch;
          }
      }
    }
    os << '"';
  }

  [[noreturn]] static void fail(const char* what, std::size_t pos) {
    throw std::runtime_error(std::string(what) + " at offset " +
                             std::to_string(pos));
  }

  static void skip_ws(const std::string& t, std::size_t& pos) {
    while (pos < t.size() && (t[pos] == ' ' || t[pos] == '\t' ||
                              t[pos] == '\n' || t[pos] == '\r')) {
      ++pos;
    }
  }

  static bool consume(const std::string& t, std::size_t& pos,
                      const char* lit) {
    std::size_t p = pos;
    for (const char* c = lit; *c; ++c, ++p) {
      if (p >= t.size() || t[p] != *c) return false;
    }
    pos = p;
    return true;
  }

  static Json parse_value(const std::string& t, std::size_t& pos) {
    skip_ws(t, pos);
    if (pos >= t.size()) fail("unexpected end of input", pos);
    const char c = t[pos];
    if (c == '{') return parse_object(t, pos);
    if (c == '[') return parse_array(t, pos);
    if (c == '"') return Json(parse_string(t, pos));
    if (consume(t, pos, "true")) return Json(true);
    if (consume(t, pos, "false")) return Json(false);
    if (consume(t, pos, "null")) return Json(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(t, pos);
    fail("unexpected character", pos);
  }

  static Json parse_object(const std::string& t, std::size_t& pos) {
    Json j = object();
    ++pos;  // '{'
    skip_ws(t, pos);
    if (pos < t.size() && t[pos] == '}') {
      ++pos;
      return j;
    }
    for (;;) {
      skip_ws(t, pos);
      if (pos >= t.size() || t[pos] != '"') fail("expected member name", pos);
      std::string key = parse_string(t, pos);
      skip_ws(t, pos);
      if (pos >= t.size() || t[pos] != ':') fail("expected ':'", pos);
      ++pos;
      j.obj_.emplace_back(std::move(key), parse_value(t, pos));
      skip_ws(t, pos);
      if (pos >= t.size()) fail("unterminated object", pos);
      if (t[pos] == ',') {
        ++pos;
        continue;
      }
      if (t[pos] == '}') {
        ++pos;
        return j;
      }
      fail("expected ',' or '}'", pos);
    }
  }

  static Json parse_array(const std::string& t, std::size_t& pos) {
    Json j = array();
    ++pos;  // '['
    skip_ws(t, pos);
    if (pos < t.size() && t[pos] == ']') {
      ++pos;
      return j;
    }
    for (;;) {
      j.arr_.push_back(parse_value(t, pos));
      skip_ws(t, pos);
      if (pos >= t.size()) fail("unterminated array", pos);
      if (t[pos] == ',') {
        ++pos;
        continue;
      }
      if (t[pos] == ']') {
        ++pos;
        return j;
      }
      fail("expected ',' or ']'", pos);
    }
  }

  static std::string parse_string(const std::string& t, std::size_t& pos) {
    ++pos;  // '"'
    std::string out;
    while (pos < t.size()) {
      const char c = t[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c == '\\') {
        if (pos + 1 >= t.size()) fail("unterminated escape", pos);
        const char e = t[pos + 1];
        pos += 2;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > t.size()) fail("truncated \\u escape", pos);
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = t[pos + static_cast<std::size_t>(i)];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape", pos);
            }
            pos += 4;
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // needed by this protocol; lone surrogates encode as-is).
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xC0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape", pos - 1);
        }
        continue;
      }
      out += c;
      ++pos;
    }
    fail("unterminated string", pos);
  }

  static Json parse_number(const std::string& t, std::size_t& pos) {
    const std::size_t start = pos;
    if (pos < t.size() && t[pos] == '-') ++pos;
    while (pos < t.size() &&
           ((t[pos] >= '0' && t[pos] <= '9') || t[pos] == '.' ||
            t[pos] == 'e' || t[pos] == 'E' || t[pos] == '+' ||
            t[pos] == '-')) {
      ++pos;
    }
    try {
      std::size_t used = 0;
      const std::string tok = t.substr(start, pos - start);
      const double v = std::stod(tok, &used);
      if (used != tok.size()) fail("malformed number", start);
      return Json(v);
    } catch (const std::logic_error&) {
      fail("malformed number", start);
    }
  }

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace nue::service
