// nue_managerd's core: fabric shards and the request dispatcher
// (docs/SERVICE.md). A shard is one fabric under management — its live
// resilience manager (src/resilience), the epoch-swapped routing-table
// pair inside it, and per-shard telemetry counters. The service maps
// fabric names to shards and turns protocol requests (service/json.hpp
// values, already parsed off the wire by service/server.*) into
// responses.
//
// Concurrency model (the whole point of the shard split):
//
//   * route queries never take the shard's event lock. They grab the
//     manager's table() snapshot (shared_ptr double buffer) and walk the
//     forwarding table via RoutingResult::trace, which reads only the
//     table's own arrays plus the fabric's immutable channel-endpoint
//     arrays — safe concurrently with fault events mutating liveness and
//     adjacency on the same shard. Every response therefore comes from a
//     fully validated, already-committed epoch, never a half-repaired
//     table.
//   * fault/repair events, table dumps, and log reads serialize on the
//     shard's event mutex (ResilienceManager::apply's contract).
//   * shard map changes (load/unload) take the service's map mutex;
//     requests against different shards proceed independently.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "resilience/resilience.hpp"
#include "service/json.hpp"
#include "service/observability.hpp"
#include "topology/faults.hpp"

namespace nue::service {

/// One managed fabric: resilience manager + request counters. With a
/// journal attached, every commit (chain intermediates included) is
/// journaled via the manager's commit hook, gate failures get a
/// dedicated entry, and the flight recorder fires on them.
class FabricShard {
 public:
  /// Builds the fabric from the generator spec and routes the initial
  /// table (resilience::ResilienceManager's constructor — the heavy
  /// part of `load`). Throws on a bad spec or unroutable fabric.
  /// journal/flightrec may be null (offline/test shards) and must
  /// outlive the shard otherwise.
  FabricShard(std::string name, std::string generate,
              resilience::RepairPolicy policy,
              EventJournal* journal = nullptr,
              FlightRecorder* flightrec = nullptr);

  const std::string& name() const { return name_; }
  const std::string& generate() const { return generate_; }
  std::uint64_t epoch() const { return mgr_.epoch(); }

  /// Route src -> dst on the current epoch; lock-free w.r.t. events.
  Json route(std::uint32_t src, std::uint32_t dst);
  /// Apply one fault/repair event through the repair ladder.
  Json apply_event(const FaultEvent& e);
  /// Draw `count` random events server-side and apply them all.
  Json storm(std::size_t count, std::uint64_t seed, double restore_fraction);
  /// Deterministic forwarding-table dump (routing/dump.hpp) + its epoch.
  Json tables();
  Json status();
  /// The shard's ReconfigLog as raw JSON (metrics/reconfig_log.hpp).
  std::string reconfig_log_json();

 private:
  /// Journal the non-commit observations of one applied event (noop,
  /// gate-failure, drain) and pull the flight-recorder trigger. The
  /// commit hook already journaled the committed epochs themselves.
  void observe_transition(const TransitionRecord& rec);
  JournalEntry make_entry(const TransitionRecord& rec,
                          const std::string& kind) const;

  std::string name_;
  std::string generate_;
  EventJournal* journal_ = nullptr;      // not owned; may be null
  FlightRecorder* flightrec_ = nullptr;  // not owned; may be null
  resilience::ResilienceManager mgr_;
  std::mutex event_mu_;  // serializes apply/dump/log on this shard
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> route_errors_{0};
  std::atomic<std::int64_t> last_commit_ns_{0};  // epoch-age gauge source
};

class ManagerService {
 public:
  /// The default options journal to an in-memory ring only (no file, no
  /// flight recorder) — the live plane's data structures are always on,
  /// its disk sinks opt-in.
  explicit ManagerService(const ObservabilityOptions& obs = {});

  /// Load a fabric as a new shard (also the CLI --load path). Throws on
  /// duplicate names, bad specs, or unroutable fabrics.
  void load(const std::string& name, const std::string& generate,
            resilience::RepairPolicy policy);

  /// Dispatch one request. Never throws: every failure becomes an
  /// {"ok": false, "error": ...} response. A "req_id" member is echoed
  /// verbatim so clients can pipeline.
  Json handle(const Json& req);

  /// Set once a `shutdown` request has been acknowledged; the server's
  /// accept loop polls this to wind down.
  bool shutdown_requested() const {
    return shutdown_.load(std::memory_order_acquire);
  }

  /// Per-shard reconfiguration logs as raw-JSON extra sections for the
  /// telemetry run report flushed at shutdown ("reconfig.<fabric>").
  std::vector<std::pair<std::string, std::string>> report_sections();

  const EventJournal& journal() const { return journal_; }
  const FlightRecorder& flight_recorder() const { return flightrec_; }

 private:
  std::shared_ptr<FabricShard> find(const std::string& name);
  Json op_status();
  Json op_load(const Json& req);
  Json op_unload(const Json& req);
  Json op_metrics(const Json& req);
  Json op_journal(const Json& req);

  // Declared before shards_: shards hold raw pointers into both, so the
  // sinks must outlive every shard on destruction.
  EventJournal journal_;
  FlightRecorder flightrec_;
  std::mutex mu_;  // guards shards_ (the map, not the shards)
  std::vector<std::shared_ptr<FabricShard>> shards_;
  std::atomic<bool> shutdown_{false};
};

/// Parse the wire form of an event ({"kind": "link-down", "id": 42}).
/// Throws std::logic_error on an unknown kind.
FaultEvent parse_fault_event(const Json& req);

}  // namespace nue::service
