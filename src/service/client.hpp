// Blocking client for the nue_managerd wire protocol (docs/SERVICE.md):
// connect to the daemon's Unix-domain socket, send one '\n'-terminated
// JSON request line, read one response line. Shared by nue_routectl and
// the daemon integration test, so both exercise the exact byte protocol
// a foreign client would.
#pragma once

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "service/json.hpp"

namespace nue::service {

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      const int err = errno;
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("connect " + socket_path + ": " +
                               std::strerror(err));
    }
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip. Throws std::runtime_error when the
  /// daemon hangs up or replies with something that is not JSON.
  Json request(const Json& req) {
    send_line(req.dump());
    return Json::parse(read_line());
  }

 private:
  void send_line(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::write(fd_, framed.data() + off, framed.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("write: ") +
                                 std::strerror(errno));
      }
      off += static_cast<std::size_t>(n);
    }
  }

  std::string read_line() {
    std::size_t nl;
    while ((nl = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw std::runtime_error(std::string("read: ") + std::strerror(errno));
      }
      if (n == 0) {
        throw std::runtime_error("daemon closed the connection mid-response");
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer_.substr(0, nl);
    buffer_.erase(0, nl + 1);
    return line;
  }

  int fd_ = -1;
  std::string buffer_;  // carry-over between reads (pipelined responses)
};

}  // namespace nue::service
