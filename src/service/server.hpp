// Unix-domain socket front end for the fabric-manager service
// (docs/SERVICE.md). Wire protocol: line-delimited JSON — one request
// object per '\n'-terminated line, one response line back, in order,
// per connection. Connections are independent; requests on different
// connections run concurrently (each request is dispatched onto the
// shared worker pool, util/thread_pool.hpp), which is what lets route
// queries against one shard proceed while another shard climbs the
// repair ladder.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"

namespace nue::service {

class SocketServer {
 public:
  /// Binds and listens on `path` (an existing socket file is replaced —
  /// managerd owns its socket path). Throws std::runtime_error on bind
  /// failures.
  SocketServer(std::string path, ManagerService& service);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  const std::string& path() const { return path_; }

  /// Serve until the service acknowledges a `shutdown` request (or
  /// stop() is called from another thread). Graceful: stops accepting,
  /// then drains every open connection before returning, so a caller
  /// may flush telemetry exporters immediately after.
  void serve();

  /// Ask serve() to wind down (idempotent, callable from any thread or
  /// signal-safe contexts via the self-pipe).
  void stop();

 private:
  void handle_connection(int fd);

  std::string path_;
  ManagerService& service_;
  int listen_fd_ = -1;
  int wake_read_ = -1;   // self-pipe: stop() pokes the poll loop
  int wake_write_ = -1;
  std::atomic<bool> stopping_{false};
  std::mutex threads_mu_;
  std::vector<std::thread> connections_;
};

}  // namespace nue::service
