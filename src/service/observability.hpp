// The daemon's live observability plane (docs/OBSERVABILITY.md, "live
// plane"): a bounded structured event journal, a gate-failure flight
// recorder, and the live run-report builder behind the `metrics` op.
//
//   * EventJournal — an append-only ring of structured entries (one per
//     fault/repair/wave/drain/gate-failure, plus load/unload), each with
//     a monotone sequence number, epoch, committed step, and verdict.
//     Served by the `journal` op; optionally mirrored to a JSONL file
//     with byte-size rotation (`nue_managerd --journal FILE`).
//   * FlightRecorder — on a gate failure (a transition that had to wave
//     or drain), snapshots the journal tail, the tracer's recent spans,
//     and the counter registry into a flightrec-<fabric>-<epoch>.json
//     bundle, so every anomaly ships with the trace of the run that
//     produced it (the daemon-side analogue of route_fuzz's diagnosis
//     bundles).
//   * live_metrics_report — the run-report JSON (counters, histograms
//     with inclusive `le` edges, span aggregates) as a service::Json,
//     sampled live without flushing or quiescing anything.
//
// Everything here is readable while routing threads are hot: the journal
// takes one short mutex per append/read, the registry snapshots are
// relaxed-atomic reads, and the tracer drain is the same short-lock merge
// the exporters already use. None of it influences routing decisions.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "service/json.hpp"

namespace nue::service {

/// One journal record. `kind` is the taxonomy the journal schema fixes:
///   load / unload        — shard lifecycle
///   transition           — a committed repair epoch (chain finals too)
///   wave                 — an intermediate epoch of a migration chain
///   noop                 — an event that left every column intact
///   gate-failure         — a transition whose direct union gate failed
///                          (it waved or drained; `verdict` says which)
///   drain                — the drained-recompute fallback actually fired
struct JournalEntry {
  std::uint64_t seq = 0;   // assigned by EventJournal::append, monotone
  double t_ms = 0.0;       // telemetry::now_ns() at append, in ms
  std::string fabric;
  std::string kind;
  std::string event;       // fault-event description ("link-down 4", ...)
  std::uint64_t epoch = 0;
  std::string step;        // committed ladder rung ("incremental", ...)
  bool hitless = false;
  bool drained = false;
  std::uint32_t wave_index = 0;
  std::uint32_t wave_count = 0;
  double repair_ms = 0.0;
  std::string verdict;     // gate/scheduler verdict line

  Json to_json() const;
};

/// Bounded, thread-safe journal ring. Appends assign monotone sequence
/// numbers; total/evicted counts stay exact across eviction (same
/// contract as the ReconfigLog). With a file attached, every entry is
/// also written as one JSONL line, rotating FILE -> FILE.1 when the
/// byte budget is hit.
class EventJournal {
 public:
  explicit EventJournal(std::size_t capacity = 4096);

  /// Attach a JSONL mirror (throws std::runtime_error if unwritable).
  /// max_bytes 0 = never rotate.
  void open_file(const std::string& path, std::size_t max_bytes);

  /// Stamp (seq, t_ms) and append; returns the assigned seq.
  std::uint64_t append(JournalEntry e);

  /// Newest `n` entries in sequence order, optionally filtered by fabric
  /// (filter applies before the tail cut: the newest n *matching*).
  std::vector<JournalEntry> tail(std::size_t n,
                                 const std::string& fabric = "") const;

  std::uint64_t total() const;     // entries ever appended
  std::uint64_t evicted() const;   // entries dropped from the ring
  std::uint64_t rotations() const; // file rotations performed
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<JournalEntry> ring_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t total_ = 0;
  std::uint64_t rotations_ = 0;
  std::string file_path_;
  std::ofstream file_;
  std::size_t file_bytes_ = 0;
  std::size_t max_bytes_ = 0;
};

/// Where the live plane writes and how much it retains. Defaults are the
/// in-process test configuration; nue_managerd maps its flags onto this.
struct ObservabilityOptions {
  std::size_t journal_capacity = 4096;
  std::string journal_file;            // "" = no JSONL mirror
  std::size_t journal_max_bytes = 8u << 20;
  std::string flightrec_dir;           // "" = flight recorder off
  std::size_t flightrec_max_bundles = 16;
  std::size_t flightrec_journal_tail = 64;
  std::size_t flightrec_spans = 512;
};

/// Gate-failure flight recorder: trigger() writes one bundle per
/// anomaly, capped at `max_bundles` per process (further triggers are
/// counted, not written — an anomaly storm must not fill the disk).
class FlightRecorder {
 public:
  explicit FlightRecorder(const ObservabilityOptions& opts);

  bool enabled() const { return !dir_.empty(); }

  /// Snapshot journal tail + recent spans + counters into
  /// <dir>/flightrec-<fabric>-<epoch>.json. Returns the path written
  /// ("" when disabled, suppressed by the cap, or unwritable — the
  /// recorder must never take the serving path down).
  std::string trigger(const EventJournal& journal,
                      const JournalEntry& cause);

  std::uint64_t bundles() const;
  std::uint64_t suppressed() const;

 private:
  const std::string dir_;
  const std::size_t max_bundles_;
  const std::size_t journal_tail_;
  const std::size_t max_spans_;
  mutable std::mutex mu_;
  std::uint64_t bundles_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// The telemetry run report as a live Json value (schema_version,
/// counters, histograms with inclusive `le` edges, span aggregates +
/// drop count) — the `metrics` op's payload, sampled without flushing.
Json live_metrics_report();

}  // namespace nue::service
