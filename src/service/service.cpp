#include "service/service.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "routing/dump.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/generate.hpp"
#include "util/error.hpp"

namespace nue::service {

namespace {

/// Success/failure envelope shared by every op, so managerd.schema.json
/// can describe any response without oneOf (scripts/validate_json.py has
/// no union support): "ok" and "op" always, "error" only on failure,
/// op-specific members only on success.
Json ok_response(const std::string& op) {
  Json r = Json::object();
  r.set("ok", true);
  r.set("op", op);
  return r;
}

Json error_response(const std::string& op, const std::string& what) {
  Json r = Json::object();
  r.set("ok", false);
  r.set("op", op);
  r.set("error", what);
  return r;
}

}  // namespace

FaultEvent parse_fault_event(const Json& req) {
  const std::string kind = req.str("kind");
  FaultEvent e;
  if (kind == "link-down") {
    e.kind = FaultEventKind::kLinkDown;
  } else if (kind == "switch-down") {
    e.kind = FaultEventKind::kSwitchDown;
  } else if (kind == "link-restore") {
    e.kind = FaultEventKind::kLinkRestore;
  } else if (kind == "switch-restore") {
    e.kind = FaultEventKind::kSwitchRestore;
  } else {
    NUE_CHECK_MSG(false, "unknown event kind '" << kind
                         << "' (want link-down|switch-down|link-restore|"
                            "switch-restore)");
  }
  NUE_CHECK_MSG(req.has("id"), "event needs an \"id\" member");
  e.id = static_cast<std::uint32_t>(req.num("id"));
  return e;
}

// --- FabricShard ------------------------------------------------------------

FabricShard::FabricShard(std::string name, std::string generate,
                         resilience::RepairPolicy policy)
    : name_(std::move(name)),
      generate_(std::move(generate)),
      mgr_(generate_topology(generate_).net, std::move(policy)) {}

Json FabricShard::route(std::uint32_t src, std::uint32_t dst) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("service.route_queries").add();
  // Snapshot first: everything below reads this epoch's table plus the
  // fabric's immutable channel-endpoint arrays, so a concurrent event on
  // this shard cannot tear the walk (see the header's concurrency notes).
  const std::shared_ptr<const RoutingResult> rr = mgr_.table();
  const std::uint64_t epoch = mgr_.epoch();
  const Network& net = mgr_.net();
  try {
    NUE_CHECK_MSG(src < net.num_nodes() && dst < net.num_nodes(),
                  "node id out of range (fabric has " << net.num_nodes()
                                                      << " nodes)");
    const std::vector<ChannelId> path = rr->trace(net, src, dst);
    const std::uint32_t di = rr->dest_index(dst);
    Json hops = Json::array();
    Json vls = Json::array();
    Json nodes = Json::array();
    nodes.push_back(src);
    for (const ChannelId c : path) {
      hops.push_back(c);
      vls.push_back(static_cast<std::uint32_t>(rr->vl(net.src(c), src, di)));
      nodes.push_back(net.dst(c));
    }
    Json r = ok_response("route");
    r.set("fabric", name_);
    r.set("epoch", epoch);
    r.set("src", src);
    r.set("dst", dst);
    r.set("hops", path.size());
    r.set("channels", std::move(hops));
    r.set("nodes", std::move(nodes));
    r.set("vls", std::move(vls));
    return r;
  } catch (const std::exception& e) {
    route_errors_.fetch_add(1, std::memory_order_relaxed);
    Json r = error_response("route", e.what());
    r.set("fabric", name_);
    r.set("epoch", epoch);
    return r;
  }
}

Json FabricShard::apply_event(const FaultEvent& e) {
  std::lock_guard<std::mutex> lock(event_mu_);
  events_.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("service.fault_events").add();
  const TransitionRecord rec = mgr_.apply(e);
  Json r = ok_response("event");
  r.set("fabric", name_);
  r.set("event", rec.event);
  r.set("epoch", rec.epoch);
  r.set("step", rec.committed_step);
  r.set("hitless", rec.hitless);
  r.set("drained", rec.drained);
  r.set("waves", rec.wave_count);
  r.set("affected_dests", rec.affected_dests);
  r.set("repair_ms", Json(rec.repair_ms));
  return r;
}

Json FabricShard::storm(std::size_t count, std::uint64_t seed,
                        double restore_fraction) {
  std::lock_guard<std::mutex> lock(event_mu_);
  const FaultTrace trace =
      draw_fault_trace(mgr_.net(), generate_, seed, count, restore_fraction);
  std::size_t transitions = 0, noops = 0, hitless = 0, drained = 0;
  std::size_t waved = 0;
  for (const FaultEvent& e : trace.events) {
    events_.fetch_add(1, std::memory_order_relaxed);
    telemetry::counter("service.fault_events").add();
    const TransitionRecord rec = mgr_.apply(e);
    if (rec.committed_step == "noop") {
      ++noops;
    } else {
      ++transitions;
      if (rec.hitless) ++hitless;
      if (rec.drained) ++drained;
      if (rec.wave_count > 0) ++waved;
    }
  }
  Json r = ok_response("storm");
  r.set("fabric", name_);
  r.set("events", trace.events.size());
  r.set("transitions", transitions);
  r.set("noops", noops);
  // Counts, not the event response's booleans — distinct names keep the
  // one-envelope schema (managerd.schema.json) free of union types.
  r.set("hitless_swaps", hitless);
  r.set("drains", drained);
  r.set("waved", waved);
  r.set("epoch", mgr_.epoch());
  return r;
}

Json FabricShard::tables() {
  // Dumps read the fabric's liveness bitsets next to the table, so they
  // serialize with events — unlike route(), which only needs the
  // snapshot (and the dump must be of exactly one epoch anyway).
  std::lock_guard<std::mutex> lock(event_mu_);
  std::ostringstream os;
  write_forwarding_tables(os, mgr_.net(), *mgr_.table());
  Json r = ok_response("tables");
  r.set("fabric", name_);
  r.set("epoch", mgr_.epoch());
  r.set("dump", os.str());
  return r;
}

Json FabricShard::status() {
  std::lock_guard<std::mutex> lock(event_mu_);
  const auto sum = mgr_.log().summarize();
  Json r = Json::object();
  r.set("fabric", name_);
  r.set("generate", generate_);
  r.set("engine", resilience::engine_name(mgr_.policy().engine));
  r.set("epoch", mgr_.epoch());
  r.set("switches", mgr_.net().num_alive_switches());
  r.set("terminals", mgr_.net().num_alive_terminals());
  r.set("queries", queries_.load(std::memory_order_relaxed));
  r.set("events", events_.load(std::memory_order_relaxed));
  r.set("route_errors", route_errors_.load(std::memory_order_relaxed));
  r.set("transitions", sum.transitions);
  r.set("hitless", sum.hitless);
  r.set("drained", sum.drained);
  r.set("waves", sum.wave_commits);
  r.set("zero_drain_saves", sum.waved);
  r.set("noops", sum.noops);
  // Per-rung ladder outcomes (exact across log eviction) so an operator
  // can see from `nue_routectl status` alone whether a shard has ever
  // drained, waved, or climbed past the incremental rung.
  Json rungs = Json::object();
  for (const auto& [step, count] : sum.by_step) rungs.set(step, count);
  r.set("rungs", rungs);
  r.set("log_records", mgr_.log().records().size());
  r.set("log_evicted", mgr_.log().evicted_records());
  return r;
}

std::string FabricShard::reconfig_log_json() {
  std::lock_guard<std::mutex> lock(event_mu_);
  std::ostringstream os;
  mgr_.log().write_json(os);
  return os.str();
}

// --- ManagerService ---------------------------------------------------------

void ManagerService::load(const std::string& name, const std::string& generate,
                          resilience::RepairPolicy policy) {
  NUE_CHECK_MSG(!name.empty(), "fabric name must be non-empty");
  // Build outside the map lock: loads are the slow path (full initial
  // route) and must not stall queries against existing shards.
  auto shard =
      std::make_shared<FabricShard>(name, generate, std::move(policy));
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) {
    NUE_CHECK_MSG(s->name() != name, "fabric '" << name << "' already loaded");
  }
  shards_.push_back(std::move(shard));
}

std::shared_ptr<FabricShard> ManagerService::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

Json ManagerService::op_status() {
  std::vector<std::shared_ptr<FabricShard>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = shards_;
  }
  Json fabrics = Json::array();
  for (const auto& s : snapshot) fabrics.push_back(s->status());
  Json r = ok_response("status");
  r.set("fabrics", std::move(fabrics));
  return r;
}

Json ManagerService::op_load(const Json& req) {
  const std::string name = req.str("fabric");
  const std::string generate = req.str("generate");
  NUE_CHECK_MSG(!generate.empty(), "load needs a \"generate\" spec");
  resilience::RepairPolicy policy;
  const std::string engine = req.str("engine", "nue");
  const auto parsed = resilience::engine_from_name(engine);
  NUE_CHECK_MSG(parsed.has_value(),
                "unknown repair engine '" << engine << "'");
  policy.engine = *parsed;
  policy.vls = static_cast<std::uint32_t>(req.num("vls", 2));
  policy.max_vls = static_cast<std::uint32_t>(
      req.num("max_vls", std::max<double>(policy.vls, 8)));
  policy.seed = static_cast<std::uint64_t>(req.num("seed", 1));
  policy.num_threads = static_cast<std::uint32_t>(req.num("threads", 1));
  policy.log_max_records =
      static_cast<std::size_t>(req.num("log_max_records", 512));
  load(name, generate, policy);
  Json r = ok_response("load");
  r.set("fabric", name);
  r.set("generate", generate);
  return r;
}

Json ManagerService::op_unload(const Json& req) {
  const std::string name = req.str("fabric");
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = shards_.begin(); it != shards_.end(); ++it) {
    if ((*it)->name() == name) {
      shards_.erase(it);  // in-flight ops keep their shared_ptr alive
      Json r = ok_response("unload");
      r.set("fabric", name);
      return r;
    }
  }
  NUE_CHECK_MSG(false, "fabric '" << name << "' is not loaded");
  return Json();  // unreachable: the check above throws
}

Json ManagerService::handle(const Json& req) {
  telemetry::counter("service.requests").add();
  const std::string op = req.is_object() ? req.str("op") : "";
  Json resp;
  try {
    NUE_CHECK_MSG(req.is_object(), "request must be a JSON object");
    NUE_CHECK_MSG(!op.empty(), "request needs an \"op\" member");
    if (op == "status") {
      resp = op_status();
    } else if (op == "load") {
      resp = op_load(req);
    } else if (op == "unload") {
      resp = op_unload(req);
    } else if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      resp = ok_response("shutdown");
    } else if (op == "route" || op == "tables" || op == "event" ||
               op == "storm" || op == "reconfig-log") {
      const std::string name = req.str("fabric");
      auto shard = find(name);
      NUE_CHECK_MSG(shard != nullptr,
                    "fabric '" << name << "' is not loaded");
      if (op == "route") {
        NUE_CHECK_MSG(req.has("src") && req.has("dst"),
                      "route needs \"src\" and \"dst\"");
        resp = shard->route(static_cast<std::uint32_t>(req.num("src")),
                            static_cast<std::uint32_t>(req.num("dst")));
      } else if (op == "tables") {
        resp = shard->tables();
      } else if (op == "event") {
        resp = shard->apply_event(parse_fault_event(req));
      } else if (op == "storm") {
        resp = shard->storm(static_cast<std::size_t>(req.num("events", 16)),
                            static_cast<std::uint64_t>(req.num("seed", 1)),
                            req.num("restore_fraction", 0.3));
      } else {
        Json r = ok_response("reconfig-log");
        r.set("fabric", name);
        r.set("log", shard->reconfig_log_json());
        resp = r;
      }
    } else {
      NUE_CHECK_MSG(false, "unknown op '" << op << "'");
    }
  } catch (const std::exception& e) {
    telemetry::counter("service.request_errors").add();
    resp = error_response(op, e.what());
  }
  // Correlation id for pipelining clients ("req_id", echoed verbatim —
  // plain "id" is taken by the event op's element id).
  if (const Json* id = req.find("req_id")) resp.set("req_id", *id);
  return resp;
}

std::vector<std::pair<std::string, std::string>>
ManagerService::report_sections() {
  std::vector<std::shared_ptr<FabricShard>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = shards_;
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(snapshot.size());
  for (const auto& s : snapshot) {
    out.emplace_back("reconfig." + s->name(), s->reconfig_log_json());
  }
  return out;
}

}  // namespace nue::service
