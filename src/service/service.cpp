#include "service/service.hpp"

#include <exception>
#include <sstream>
#include <utility>

#include "routing/dump.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/generate.hpp"
#include "util/error.hpp"

namespace nue::service {

namespace {

/// Success/failure envelope shared by every op, so managerd.schema.json
/// can describe any response without oneOf (scripts/validate_json.py has
/// no union support): "ok" and "op" always, "error" only on failure,
/// op-specific members only on success.
Json ok_response(const std::string& op) {
  Json r = Json::object();
  r.set("ok", true);
  r.set("op", op);
  return r;
}

Json error_response(const std::string& op, const std::string& what) {
  Json r = Json::object();
  r.set("ok", false);
  r.set("op", op);
  r.set("error", what);
  return r;
}

/// Per-op request-latency histogram name. Known ops get their own series
/// (the `service.request_us.<op>` SLO family); anything else shares one
/// bucket so a hostile client can't grow the registry unboundedly.
const char* request_us_name(const std::string& op) {
  if (op == "status") return "service.request_us.status";
  if (op == "load") return "service.request_us.load";
  if (op == "unload") return "service.request_us.unload";
  if (op == "route") return "service.request_us.route";
  if (op == "tables") return "service.request_us.tables";
  if (op == "event") return "service.request_us.event";
  if (op == "storm") return "service.request_us.storm";
  if (op == "reconfig-log") return "service.request_us.reconfig-log";
  if (op == "metrics") return "service.request_us.metrics";
  if (op == "journal") return "service.request_us.journal";
  if (op == "shutdown") return "service.request_us.shutdown";
  return "service.request_us.other";
}

/// The verdict line that explains a failed direct union gate: the gate's
/// own cycle verdict when present, else the wave scheduler's stuck
/// verdict (the VL-shift/drain paths record that one first).
std::string gate_failure_verdict(const TransitionRecord& rec) {
  for (const std::string& v : rec.verdicts) {
    if (v.rfind("union-gate: cycle", 0) == 0) return v;
  }
  for (const std::string& v : rec.verdicts) {
    if (v.rfind("wave-scheduler:", 0) == 0) return v;
  }
  return rec.verdicts.empty() ? "" : rec.verdicts.back();
}

}  // namespace

FaultEvent parse_fault_event(const Json& req) {
  const std::string kind = req.str("kind");
  FaultEvent e;
  if (kind == "link-down") {
    e.kind = FaultEventKind::kLinkDown;
  } else if (kind == "switch-down") {
    e.kind = FaultEventKind::kSwitchDown;
  } else if (kind == "link-restore") {
    e.kind = FaultEventKind::kLinkRestore;
  } else if (kind == "switch-restore") {
    e.kind = FaultEventKind::kSwitchRestore;
  } else {
    NUE_CHECK_MSG(false, "unknown event kind '" << kind
                         << "' (want link-down|switch-down|link-restore|"
                            "switch-restore)");
  }
  NUE_CHECK_MSG(req.has("id"), "event needs an \"id\" member");
  e.id = static_cast<std::uint32_t>(req.num("id"));
  return e;
}

// --- FabricShard ------------------------------------------------------------

FabricShard::FabricShard(std::string name, std::string generate,
                         resilience::RepairPolicy policy,
                         EventJournal* journal, FlightRecorder* flightrec)
    : name_(std::move(name)),
      generate_(std::move(generate)),
      journal_(journal),
      flightrec_(flightrec),
      mgr_(generate_topology(generate_).net, std::move(policy)) {
  last_commit_ns_.store(telemetry::now_ns(), std::memory_order_relaxed);
  // Fires after every committed epoch, wave intermediates included. The
  // initial table committed during mgr_'s construction above, before the
  // hook existed — ManagerService::load journals that as a "load" entry.
  mgr_.set_commit_hook([this](const Network&, const RoutingResult*,
                              const RoutingResult&,
                              const TransitionRecord& rec) {
    last_commit_ns_.store(telemetry::now_ns(), std::memory_order_relaxed);
    if (journal_ == nullptr) return;
    journal_->append(make_entry(
        rec, rec.committed_step == "wave" ? "wave" : "transition"));
  });
}

JournalEntry FabricShard::make_entry(const TransitionRecord& rec,
                                     const std::string& kind) const {
  JournalEntry e;
  e.fabric = name_;
  e.kind = kind;
  e.event = rec.event;
  e.epoch = rec.epoch;
  e.step = rec.committed_step;
  e.hitless = rec.hitless;
  e.drained = rec.drained;
  e.wave_index = rec.wave_index;
  e.wave_count = rec.wave_count;
  e.repair_ms = rec.repair_ms;
  e.verdict = rec.verdicts.empty() ? "" : rec.verdicts.back();
  return e;
}

void FabricShard::observe_transition(const TransitionRecord& rec) {
  if (journal_ == nullptr) return;
  if (rec.committed_step == "noop") {
    journal_->append(make_entry(rec, "noop"));
    return;
  }
  // A transition that waved or drained is one whose direct union gate
  // failed — the anomaly the journal flags and the flight recorder
  // snapshots (commit entries for the epochs themselves already landed
  // via the hook).
  if (rec.wave_count == 0 && !rec.drained) return;
  JournalEntry gate = make_entry(rec, "gate-failure");
  gate.verdict = gate_failure_verdict(rec);
  journal_->append(gate);
  if (rec.drained) {
    journal_->append(make_entry(rec, "drain"));
  }
  if (flightrec_ != nullptr) flightrec_->trigger(*journal_, gate);
}

Json FabricShard::route(std::uint32_t src, std::uint32_t dst) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("service.route_queries").add();
  // Snapshot first: everything below reads this epoch's table plus the
  // fabric's immutable channel-endpoint arrays, so a concurrent event on
  // this shard cannot tear the walk (see the header's concurrency notes).
  const std::shared_ptr<const RoutingResult> rr = mgr_.table();
  const std::uint64_t epoch = mgr_.epoch();
  const Network& net = mgr_.net();
  try {
    NUE_CHECK_MSG(src < net.num_nodes() && dst < net.num_nodes(),
                  "node id out of range (fabric has " << net.num_nodes()
                                                      << " nodes)");
    const std::vector<ChannelId> path = rr->trace(net, src, dst);
    const std::uint32_t di = rr->dest_index(dst);
    Json hops = Json::array();
    Json vls = Json::array();
    Json nodes = Json::array();
    nodes.push_back(src);
    for (const ChannelId c : path) {
      hops.push_back(c);
      vls.push_back(static_cast<std::uint32_t>(rr->vl(net.src(c), src, di)));
      nodes.push_back(net.dst(c));
    }
    Json r = ok_response("route");
    r.set("fabric", name_);
    r.set("epoch", epoch);
    r.set("src", src);
    r.set("dst", dst);
    r.set("hops", path.size());
    r.set("channels", std::move(hops));
    r.set("nodes", std::move(nodes));
    r.set("vls", std::move(vls));
    return r;
  } catch (const std::exception& e) {
    route_errors_.fetch_add(1, std::memory_order_relaxed);
    Json r = error_response("route", e.what());
    r.set("fabric", name_);
    r.set("epoch", epoch);
    return r;
  }
}

Json FabricShard::apply_event(const FaultEvent& e) {
  std::lock_guard<std::mutex> lock(event_mu_);
  events_.fetch_add(1, std::memory_order_relaxed);
  telemetry::counter("service.fault_events").add();
  const TransitionRecord rec = mgr_.apply(e);
  observe_transition(rec);
  Json r = ok_response("event");
  r.set("fabric", name_);
  r.set("event", rec.event);
  r.set("epoch", rec.epoch);
  r.set("step", rec.committed_step);
  r.set("hitless", rec.hitless);
  r.set("drained", rec.drained);
  r.set("waves", rec.wave_count);
  r.set("affected_dests", rec.affected_dests);
  r.set("repair_ms", Json(rec.repair_ms));
  return r;
}

Json FabricShard::storm(std::size_t count, std::uint64_t seed,
                        double restore_fraction) {
  std::lock_guard<std::mutex> lock(event_mu_);
  const FaultTrace trace =
      draw_fault_trace(mgr_.net(), generate_, seed, count, restore_fraction);
  std::size_t transitions = 0, noops = 0, hitless = 0, drained = 0;
  std::size_t waved = 0;
  for (const FaultEvent& e : trace.events) {
    events_.fetch_add(1, std::memory_order_relaxed);
    telemetry::counter("service.fault_events").add();
    const TransitionRecord rec = mgr_.apply(e);
    observe_transition(rec);
    if (rec.committed_step == "noop") {
      ++noops;
    } else {
      ++transitions;
      if (rec.hitless) ++hitless;
      if (rec.drained) ++drained;
      if (rec.wave_count > 0) ++waved;
    }
  }
  Json r = ok_response("storm");
  r.set("fabric", name_);
  r.set("events", trace.events.size());
  r.set("transitions", transitions);
  r.set("noops", noops);
  // Counts, not the event response's booleans — distinct names keep the
  // one-envelope schema (managerd.schema.json) free of union types.
  r.set("hitless_swaps", hitless);
  r.set("drains", drained);
  r.set("waved", waved);
  r.set("epoch", mgr_.epoch());
  return r;
}

Json FabricShard::tables() {
  // Dumps read the fabric's liveness bitsets next to the table, so they
  // serialize with events — unlike route(), which only needs the
  // snapshot (and the dump must be of exactly one epoch anyway).
  std::lock_guard<std::mutex> lock(event_mu_);
  std::ostringstream os;
  write_forwarding_tables(os, mgr_.net(), *mgr_.table());
  Json r = ok_response("tables");
  r.set("fabric", name_);
  r.set("epoch", mgr_.epoch());
  r.set("dump", os.str());
  return r;
}

Json FabricShard::status() {
  std::lock_guard<std::mutex> lock(event_mu_);
  const auto sum = mgr_.log().summarize();
  Json r = Json::object();
  r.set("fabric", name_);
  r.set("generate", generate_);
  r.set("engine", resilience::engine_name(mgr_.policy().engine));
  r.set("epoch", mgr_.epoch());
  r.set("switches", mgr_.net().num_alive_switches());
  r.set("terminals", mgr_.net().num_alive_terminals());
  r.set("queries", queries_.load(std::memory_order_relaxed));
  r.set("events", events_.load(std::memory_order_relaxed));
  r.set("route_errors", route_errors_.load(std::memory_order_relaxed));
  r.set("transitions", sum.transitions);
  r.set("hitless", sum.hitless);
  r.set("drained", sum.drained);
  r.set("waves", sum.wave_commits);
  r.set("zero_drain_saves", sum.waved);
  r.set("noops", sum.noops);
  // Per-rung ladder outcomes (exact across log eviction) so an operator
  // can see from `nue_routectl status` alone whether a shard has ever
  // drained, waved, or climbed past the incremental rung.
  Json rungs = Json::object();
  for (const auto& [step, count] : sum.by_step) rungs.set(step, count);
  r.set("rungs", rungs);
  r.set("log_records", mgr_.log().records().size());
  r.set("log_evicted", mgr_.log().evicted_records());
  // Live SLO gauges: repair-latency quantiles over the retained log
  // window plus the age of the committed epoch — what `routectl watch`
  // renders per shard.
  r.set("p50_repair_ms", Json(sum.median_repair_ms));
  r.set("p99_repair_ms", Json(sum.p99_repair_ms));
  r.set("max_repair_ms", Json(sum.max_repair_ms));
  const double age_ms =
      static_cast<double>(telemetry::now_ns() -
                          last_commit_ns_.load(std::memory_order_relaxed)) /
      1e6;
  r.set("epoch_age_ms", Json(age_ms < 0 ? 0.0 : age_ms));
  return r;
}

std::string FabricShard::reconfig_log_json() {
  std::lock_guard<std::mutex> lock(event_mu_);
  std::ostringstream os;
  mgr_.log().write_json(os);
  return os.str();
}

// --- ManagerService ---------------------------------------------------------

ManagerService::ManagerService(const ObservabilityOptions& obs)
    : journal_(obs.journal_capacity), flightrec_(obs) {
  if (!obs.journal_file.empty()) {
    journal_.open_file(obs.journal_file, obs.journal_max_bytes);
  }
}

void ManagerService::load(const std::string& name, const std::string& generate,
                          resilience::RepairPolicy policy) {
  NUE_CHECK_MSG(!name.empty(), "fabric name must be non-empty");
  // Build outside the map lock: loads are the slow path (full initial
  // route) and must not stall queries against existing shards.
  auto shard = std::make_shared<FabricShard>(name, generate, std::move(policy),
                                             &journal_, &flightrec_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& s : shards_) {
      NUE_CHECK_MSG(s->name() != name,
                    "fabric '" << name << "' already loaded");
    }
    shards_.push_back(shard);
  }
  // The initial table committed inside the shard's constructor, before
  // its commit hook existed — journal the lifecycle event here instead.
  JournalEntry e;
  e.fabric = name;
  e.kind = "load";
  e.event = generate;
  e.epoch = shard->epoch();
  journal_.append(std::move(e));
}

std::shared_ptr<FabricShard> ManagerService::find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : shards_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

Json ManagerService::op_status() {
  std::vector<std::shared_ptr<FabricShard>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = shards_;
  }
  Json fabrics = Json::array();
  for (const auto& s : snapshot) fabrics.push_back(s->status());
  Json r = ok_response("status");
  r.set("fabrics", std::move(fabrics));
  return r;
}

Json ManagerService::op_load(const Json& req) {
  const std::string name = req.str("fabric");
  const std::string generate = req.str("generate");
  NUE_CHECK_MSG(!generate.empty(), "load needs a \"generate\" spec");
  resilience::RepairPolicy policy;
  const std::string engine = req.str("engine", "nue");
  const auto parsed = resilience::engine_from_name(engine);
  NUE_CHECK_MSG(parsed.has_value(),
                "unknown repair engine '" << engine << "'");
  policy.engine = *parsed;
  policy.vls = static_cast<std::uint32_t>(req.num("vls", 2));
  policy.max_vls = static_cast<std::uint32_t>(
      req.num("max_vls", std::max<double>(policy.vls, 8)));
  policy.seed = static_cast<std::uint64_t>(req.num("seed", 1));
  policy.num_threads = static_cast<std::uint32_t>(req.num("threads", 1));
  policy.log_max_records =
      static_cast<std::size_t>(req.num("log_max_records", 512));
  load(name, generate, policy);
  Json r = ok_response("load");
  r.set("fabric", name);
  r.set("generate", generate);
  return r;
}

Json ManagerService::op_unload(const Json& req) {
  const std::string name = req.str("fabric");
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = shards_.begin(); it != shards_.end(); ++it) {
    if ((*it)->name() == name) {
      const std::uint64_t epoch = (*it)->epoch();
      shards_.erase(it);  // in-flight ops keep their shared_ptr alive
      lock.unlock();
      JournalEntry e;
      e.fabric = name;
      e.kind = "unload";
      e.epoch = epoch;
      journal_.append(std::move(e));
      Json r = ok_response("unload");
      r.set("fabric", name);
      return r;
    }
  }
  NUE_CHECK_MSG(false, "fabric '" << name << "' is not loaded");
  return Json();  // unreachable: the check above throws
}

Json ManagerService::op_metrics(const Json& req) {
  const std::string format = req.str("format", "json");
  Json r = ok_response("metrics");
  if (format == "prom") {
    std::ostringstream os;
    telemetry::write_prometheus_text(os);
    r.set("text", os.str());
    return r;
  }
  NUE_CHECK_MSG(format == "json",
                "unknown metrics format '" << format << "' (want json|prom)");
  r.set("report", live_metrics_report());
  return r;
}

Json ManagerService::op_journal(const Json& req) {
  const auto n = static_cast<std::size_t>(req.num("n", 64));
  const std::string fabric = req.str("fabric", "");
  Json entries = Json::array();
  for (const JournalEntry& e : journal_.tail(n, fabric)) {
    entries.push_back(e.to_json());
  }
  Json r = ok_response("journal");
  r.set("entries", std::move(entries));
  r.set("total", journal_.total());
  r.set("evicted", journal_.evicted());
  return r;
}

Json ManagerService::handle(const Json& req) {
  telemetry::counter("service.requests").add();
  const std::string op = req.is_object() ? req.str("op") : "";
  const std::int64_t t0 = telemetry::now_ns();
  Json resp;
  try {
    NUE_CHECK_MSG(req.is_object(), "request must be a JSON object");
    NUE_CHECK_MSG(!op.empty(), "request needs an \"op\" member");
    if (op == "status") {
      resp = op_status();
    } else if (op == "load") {
      resp = op_load(req);
    } else if (op == "unload") {
      resp = op_unload(req);
    } else if (op == "metrics") {
      resp = op_metrics(req);
    } else if (op == "journal") {
      resp = op_journal(req);
    } else if (op == "shutdown") {
      shutdown_.store(true, std::memory_order_release);
      resp = ok_response("shutdown");
    } else if (op == "route" || op == "tables" || op == "event" ||
               op == "storm" || op == "reconfig-log") {
      const std::string name = req.str("fabric");
      auto shard = find(name);
      NUE_CHECK_MSG(shard != nullptr,
                    "fabric '" << name << "' is not loaded");
      if (op == "route") {
        NUE_CHECK_MSG(req.has("src") && req.has("dst"),
                      "route needs \"src\" and \"dst\"");
        resp = shard->route(static_cast<std::uint32_t>(req.num("src")),
                            static_cast<std::uint32_t>(req.num("dst")));
      } else if (op == "tables") {
        resp = shard->tables();
      } else if (op == "event") {
        resp = shard->apply_event(parse_fault_event(req));
      } else if (op == "storm") {
        resp = shard->storm(static_cast<std::size_t>(req.num("events", 16)),
                            static_cast<std::uint64_t>(req.num("seed", 1)),
                            req.num("restore_fraction", 0.3));
      } else {
        Json r = ok_response("reconfig-log");
        r.set("fabric", name);
        r.set("log", shard->reconfig_log_json());
        resp = r;
      }
    } else {
      NUE_CHECK_MSG(false, "unknown op '" << op << "'");
    }
  } catch (const std::exception& e) {
    telemetry::counter("service.request_errors").add();
    resp = error_response(op, e.what());
  }
  // Request-latency SLO series: overall and per op (errors included —
  // a failing request still costs the client its latency).
  const auto us =
      static_cast<std::uint64_t>((telemetry::now_ns() - t0) / 1000);
  telemetry::histogram("service.request_us").record(us);
  telemetry::histogram(request_us_name(op)).record(us);
  // Correlation id for pipelining clients ("req_id", echoed verbatim —
  // plain "id" is taken by the event op's element id).
  if (const Json* id = req.find("req_id")) resp.set("req_id", *id);
  return resp;
}

std::vector<std::pair<std::string, std::string>>
ManagerService::report_sections() {
  std::vector<std::shared_ptr<FabricShard>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = shards_;
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(snapshot.size());
  for (const auto& s : snapshot) {
    out.emplace_back("reconfig." + s->name(), s->reconfig_log_json());
  }
  return out;
}

}  // namespace nue::service
