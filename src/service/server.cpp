#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>
#include <stdexcept>
#include <utility>

#include "util/thread_pool.hpp"

namespace nue::service {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// write(2) until the buffer is gone; short writes are legal on sockets.
bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // client hung up mid-response
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

SocketServer::SocketServer(std::string path, ManagerService& service)
    : path_(std::move(path)), service_(service) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) sys_fail("socket");
  ::unlink(path_.c_str());  // managerd owns its socket path
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    sys_fail("bind " + path_);
  }
  if (::listen(listen_fd_, 64) != 0) sys_fail("listen " + path_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) sys_fail("pipe");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

SocketServer::~SocketServer() {
  stop();
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& t : connections_) {
      if (t.joinable()) t.join();
    }
    connections_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  ::unlink(path_.c_str());
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) return;
  const char byte = 'x';
  // Best effort: serve()'s poll wakes either on the pipe or its timeout.
  (void)!::write(wake_write_, &byte, 1);
}

void SocketServer::serve() {
  while (!stopping_.load(std::memory_order_acquire) &&
         !service_.shutdown_requested()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int rc = ::poll(fds, 2, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    if (rc == 0) continue;  // timeout: re-check the shutdown flags
    if (fds[1].revents != 0) break;  // stop() poked the pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      sys_fail("accept");
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
  stopping_.store(true, std::memory_order_release);
  // Drain: connection readers poll stopping_ every 100ms, so every open
  // connection winds down promptly and the caller can flush exporters.
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void SocketServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;  // timeout: re-check stopping_
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // EOF: client closed
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t nl;
    while ((nl = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, nl);
      buffer.erase(0, nl + 1);
      if (line.empty()) continue;
      Json resp;
      try {
        const Json req = Json::parse(line);
        // Dispatch onto the shared worker pool: the connection thread
        // only shuttles bytes, so one shard's long repair (or a slow
        // `load`) never starves requests arriving on other connections.
        std::promise<Json> done;
        std::future<Json> result = done.get_future();
        ThreadPool::shared().submit(
            [this, &req, &done] { done.set_value(service_.handle(req)); });
        resp = result.get();
      } catch (const std::exception& e) {
        resp = Json::object();
        resp.set("ok", false);
        resp.set("op", "");
        resp.set("error", std::string("protocol error: ") + e.what());
      }
      if (!write_all(fd, resp.dump() + "\n")) {
        open = false;
        break;
      }
      if (service_.shutdown_requested()) {
        // The shutdown ack is written first, then the daemon winds down.
        stop();
        open = false;
        break;
      }
    }
  }
  ::close(fd);
}

}  // namespace nue::service
