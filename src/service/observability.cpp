#include "service/observability.hpp"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/error.hpp"
#include "util/rss.hpp"

namespace nue::service {

// --- JournalEntry -----------------------------------------------------------

Json JournalEntry::to_json() const {
  Json j = Json::object();
  j.set("seq", seq);
  j.set("t_ms", Json(t_ms));
  j.set("fabric", fabric);
  j.set("kind", kind);
  j.set("event", event);
  j.set("epoch", epoch);
  j.set("step", step);
  j.set("hitless", hitless);
  j.set("drained", drained);
  j.set("wave_index", wave_index);
  j.set("wave_count", wave_count);
  j.set("repair_ms", Json(repair_ms));
  j.set("verdict", verdict);
  return j;
}

// --- EventJournal -----------------------------------------------------------

EventJournal::EventJournal(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void EventJournal::open_file(const std::string& path, std::size_t max_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  file_.open(path, std::ios::app);
  NUE_CHECK_MSG(file_.good(), "cannot open journal file '" << path << "'");
  file_path_ = path;
  max_bytes_ = max_bytes;
  file_bytes_ = static_cast<std::size_t>(file_.tellp());
}

std::uint64_t EventJournal::append(JournalEntry e) {
  std::lock_guard<std::mutex> lk(mu_);
  e.seq = next_seq_++;
  e.t_ms = static_cast<double>(telemetry::now_ns()) / 1e6;
  const std::uint64_t seq = e.seq;
  if (file_.is_open()) {
    const std::string line = e.to_json().dump();
    if (max_bytes_ > 0 && file_bytes_ > 0 &&
        file_bytes_ + line.size() + 1 > max_bytes_) {
      // Rotate FILE -> FILE.1 (one generation is enough: the journal is
      // a recent-history mirror, not an archive).
      file_.close();
      std::error_code ec;  // rotation failure must not drop the append
      std::filesystem::rename(file_path_, file_path_ + ".1", ec);
      file_.open(file_path_, std::ios::trunc);
      file_bytes_ = 0;
      ++rotations_;
    }
    if (file_.good()) {
      file_ << line << "\n";
      file_.flush();
      file_bytes_ += line.size() + 1;
    }
  }
  ring_.push_back(std::move(e));
  if (ring_.size() > capacity_) ring_.pop_front();
  ++total_;
  return seq;
}

std::vector<JournalEntry> EventJournal::tail(std::size_t n,
                                             const std::string& fabric) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<JournalEntry> out;
  out.reserve(std::min(n, ring_.size()));
  for (auto it = ring_.rbegin(); it != ring_.rend() && out.size() < n; ++it) {
    if (!fabric.empty() && it->fabric != fabric) continue;
    out.push_back(*it);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint64_t EventJournal::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_;
}

std::uint64_t EventJournal::evicted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return total_ > ring_.size() ? total_ - ring_.size() : 0;
}

std::uint64_t EventJournal::rotations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rotations_;
}

// --- FlightRecorder ---------------------------------------------------------

FlightRecorder::FlightRecorder(const ObservabilityOptions& opts)
    : dir_(opts.flightrec_dir),
      max_bundles_(opts.flightrec_max_bundles),
      journal_tail_(opts.flightrec_journal_tail),
      max_spans_(opts.flightrec_spans) {
  if (!dir_.empty()) {
    std::error_code ec;  // unwritable dir degrades to no bundles, below
    std::filesystem::create_directories(dir_, ec);
  }
}

std::string FlightRecorder::trigger(const EventJournal& journal,
                                    const JournalEntry& cause) {
  if (!enabled()) return "";
  std::lock_guard<std::mutex> lk(mu_);
  if (bundles_ >= max_bundles_) {
    ++suppressed_;
    telemetry::counter("service.flightrec_suppressed").add_always(1);
    return "";
  }

  Json bundle = Json::object();
  bundle.set("schema_version", 1);
  bundle.set("fabric", cause.fabric);
  bundle.set("epoch", cause.epoch);
  bundle.set("reason", cause.kind);
  bundle.set("cause", cause.to_json());
  Json entries = Json::array();
  for (const JournalEntry& e : journal.tail(journal_tail_)) {
    entries.push_back(e.to_json());
  }
  bundle.set("journal", std::move(entries));
  Json spans = Json::array();
  for (const auto& s : telemetry::Tracer::instance().recent_spans(max_spans_)) {
    Json sj = Json::object();
    sj.set("name", std::string(s.name));
    sj.set("tid", s.tid);
    sj.set("depth", s.depth);
    sj.set("start_us", Json(static_cast<double>(s.start_ns) / 1e3));
    sj.set("dur_us", Json(static_cast<double>(s.dur_ns) / 1e3));
    spans.push_back(std::move(sj));
  }
  bundle.set("spans", std::move(spans));
  Json counters = Json::object();
  for (const auto& [name, value] :
       telemetry::Registry::instance().counter_snapshot()) {
    counters.set(name, value);
  }
  bundle.set("counters", std::move(counters));

  std::string path = dir_ + "/flightrec-" + cause.fabric + "-" +
                     std::to_string(cause.epoch) + ".json";
  std::ofstream os(path);
  if (!os) return "";  // unwritable dir: degrade silently, keep serving
  os << bundle.dump() << "\n";
  ++bundles_;
  telemetry::counter("service.flightrec_bundles").add_always(1);
  return path;
}

std::uint64_t FlightRecorder::bundles() const {
  std::lock_guard<std::mutex> lk(mu_);
  return bundles_;
}

std::uint64_t FlightRecorder::suppressed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return suppressed_;
}

// --- live metrics report ----------------------------------------------------

Json live_metrics_report() {
  Json report = Json::object();
  report.set("schema_version", 1);
  Json counters = Json::object();
  for (const auto& [name, value] :
       telemetry::Registry::instance().counter_snapshot()) {
    counters.set(name, value);
  }
  report.set("counters", std::move(counters));
  Json histograms = Json::object();
  for (const auto& h : telemetry::Registry::instance().histogram_snapshot()) {
    Json hj = Json::object();
    hj.set("count", h.count);
    hj.set("sum", h.sum);
    Json buckets = Json::array();
    for (const auto& [le, n] : h.buckets) {
      Json b = Json::object();
      b.set("le", le);
      b.set("count", n);
      buckets.push_back(std::move(b));
    }
    hj.set("buckets", std::move(buckets));
    histograms.set(h.name, std::move(hj));
  }
  report.set("histograms", std::move(histograms));
  auto& tracer = telemetry::Tracer::instance();
  Json spans = Json::object();
  Json by_name = Json::object();
  // aggregate_all before dropped: both drain internally, order keeps the
  // drop count at least as fresh as the aggregates.
  for (const auto& [name, agg] : tracer.aggregate_all()) {
    Json a = Json::object();
    a.set("count", agg.count);
    a.set("total_ms", Json(static_cast<double>(agg.total_ns) / 1e6));
    by_name.set(name, std::move(a));
  }
  spans.set("dropped", tracer.dropped());
  spans.set("by_name", std::move(by_name));
  report.set("spans", std::move(spans));
  if (const auto rss = peak_rss_mb()) {
    report.set("peak_rss_mb", Json(*rss));
  }
  return report;
}

}  // namespace nue::service
