// Pivot-sampled Brandes (Brandes–Pich estimator, docs/SCALING.md):
// degradation to the exact algorithm at the boundary pivot counts, and
// the property the sampling actually has to deliver — escape roots whose
// quality (the Fig.-5 escape-dependency count) matches the exact-Brandes
// root — plus determinism and deadlock freedom of routings built on it.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

Network probe_torus() {
  TorusSpec t{{8, 8, 8}, 1, 1};
  return make_torus(t);
}

TEST(BrandesSampled, ZeroPivotsIsExact) {
  const Network net = probe_torus();
  const auto exact = betweenness_centrality(net);
  const auto sampled = betweenness_centrality_sampled(net, 0);
  ASSERT_EQ(sampled.size(), exact.size());
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_EQ(sampled[v], exact[v]) << "node " << v;
  }
}

TEST(BrandesSampled, PivotsCoveringAllSourcesIsExact) {
  const Network net = probe_torus();
  const auto exact = betweenness_centrality(net);
  const auto sampled =
      betweenness_centrality_sampled(net, net.num_nodes() + 1);
  ASSERT_EQ(sampled.size(), exact.size());
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_EQ(sampled[v], exact[v]) << "node " << v;
  }
}

TEST(BrandesSampled, DeterministicAcrossThreadCounts) {
  const Network net = probe_torus();
  const auto serial = betweenness_centrality_sampled(net, 32, {}, 1);
  const auto parallel = betweenness_centrality_sampled(net, 32, {}, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t v = 0; v < serial.size(); ++v) {
    EXPECT_EQ(serial[v], parallel[v]) << "node " << v;
  }
}

// The quality gate: a root picked from a few dozen sampled pivots must
// impose (about) as few escape dependencies as the exact-Brandes root —
// fewer initial restrictions leave Nue more routing freedom (§4.3). The
// observed ratio on this fabric is within 1.5% either way for every
// pivot count probed; 10% headroom keeps the test robust without letting
// a broken estimator (e.g. a corner/edge root, ~2x the dependencies)
// slip through.
TEST(BrandesSampled, SampledRootQualityNearExact) {
  const Network net = probe_torus();
  const auto dests = net.terminals();
  const NodeId root_exact = select_escape_root(net, dests, 0);
  const auto deps_exact = count_escape_dependencies(net, root_exact, dests);
  ASSERT_GT(deps_exact, 0u);
  for (std::size_t pivots : {16u, 32u, 64u}) {
    const NodeId root = select_escape_root(net, dests, pivots);
    const auto deps = count_escape_dependencies(net, root, dests);
    EXPECT_LE(static_cast<double>(deps),
              1.10 * static_cast<double>(deps_exact))
        << "pivots=" << pivots << " root=" << root << " deps=" << deps
        << " vs exact root=" << root_exact << " deps=" << deps_exact;
  }
}

TEST(BrandesSampled, RoutingWithSampledRootsStaysDeadlockFreeAndDeterministic) {
  TorusSpec t{{4, 4, 3}, 2, 1};
  Network net = make_torus(t);
  Rng rng(7);
  inject_link_failures(net, 6, rng);
  const auto dests = net.terminals();
  NueOptions opt;
  opt.num_vls = 4;
  opt.betweenness_pivots = 16;
  opt.num_threads = 1;
  const RoutingResult serial = route_nue(net, dests, opt);
  const auto rep = validate_routing(net, serial);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  opt.num_threads = 8;
  const RoutingResult parallel = route_nue(net, dests, opt);
  ASSERT_EQ(parallel.destinations(), serial.destinations());
  for (std::size_t i = 0; i < serial.destinations().size(); ++i) {
    for (NodeId v = 0; v < serial.num_nodes(); ++v) {
      ASSERT_EQ(parallel.next(v, static_cast<std::uint32_t>(i)),
                serial.next(v, static_cast<std::uint32_t>(i)));
      ASSERT_EQ(parallel.vl(v, v, static_cast<std::uint32_t>(i)),
                serial.vl(v, v, static_cast<std::uint32_t>(i)));
    }
  }
}

}  // namespace
}  // namespace nue
