// Telemetry subsystem contracts (docs/OBSERVABILITY.md):
//   * zero effect on results — routing tables are bit-identical with
//     telemetry on or off,
//   * well-formed span nesting under parallel_for at 1/4/8 threads,
//   * ring-buffer overflow drops are counted, never silent,
//   * counters/histograms and both exporters produce what they promise.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "nue/nue_routing.hpp"
#include "routing/dump.hpp"
#include "routing/validate.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/torus.hpp"
#include "util/thread_pool.hpp"

namespace nue {
namespace {

std::string tables_of(const Network& net, const RoutingResult& rr) {
  std::ostringstream os;
  write_forwarding_tables(os, net, rr);
  return os.str();
}

Network torus_4x4x3() {
  TorusSpec spec{{4, 4, 3}, 2, 1};
  return make_torus(spec);
}

/// Every telemetry test starts from clean sinks and leaves the global
/// switch the way it found it (off, in the test binary).
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::reset_all();
    telemetry::Tracer::instance().set_buffer_capacity(
        telemetry::Tracer::kDefaultBufferCapacity);
    telemetry::set_enabled(false);
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::Tracer::instance().set_buffer_capacity(
        telemetry::Tracer::kDefaultBufferCapacity);
    telemetry::reset_all();
  }
};

TEST_F(TelemetryTest, CountersAreGatedOnEnabled) {
  auto& c = telemetry::counter("test.gated");
  c.add(5);
  EXPECT_EQ(c.value(), 0u) << "disabled counter must not move";
  telemetry::set_enabled(true);
  c.add(5);
  c.add();
  EXPECT_EQ(c.value(), 6u);
  telemetry::set_enabled(false);
  c.add(100);
  EXPECT_EQ(c.value(), 6u);
  c.add_always(4);  // fold path bypasses the gate by design
  EXPECT_EQ(c.value(), 10u);
}

TEST_F(TelemetryTest, HistogramBucketsByBitWidth) {
  telemetry::set_enabled(true);
  auto& h = telemetry::histogram("test.hist");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 1010u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket(3), 1u);  // 4
  EXPECT_EQ(h.bucket(10), 1u);  // 1000
}

TEST_F(TelemetryTest, SpansRecordOnlyWhenEnabled) {
  { TELEM_SPAN("test.off"); }
  EXPECT_TRUE(telemetry::Tracer::instance().snapshot().empty());
  telemetry::set_enabled(true);
  { TELEM_SPAN("test.on"); }
  const auto spans = telemetry::Tracer::instance().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "test.on");
  EXPECT_GE(spans[0].dur_ns, 0);
}

TEST_F(TelemetryTest, OverflowDropsAreCountedNotSilent) {
  telemetry::set_enabled(true);
  telemetry::Tracer::instance().set_buffer_capacity(8);
  for (int i = 0; i < 20; ++i) {
    TELEM_SPAN("test.overflow");
  }
  auto& tracer = telemetry::Tracer::instance();
  const std::uint64_t dropped = tracer.dropped();
  const auto spans = tracer.snapshot();
  // This thread's ring holds 8 spans; the other 12 must be accounted as
  // drops (other test threads may have contributed their own spans).
  std::size_t ours = 0;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "test.overflow") ++ours;
  }
  EXPECT_EQ(ours, 8u);
  EXPECT_EQ(dropped, 12u);
  // The run report surfaces the count.
  std::ostringstream os;
  telemetry::write_run_report(os, "test", {});
  EXPECT_NE(os.str().find("\"dropped\": 12"), std::string::npos);
}

/// Reconstruct nesting per tid from (start, dur, depth): spans sorted by
/// (tid, start, -dur) must form a well-formed forest — each span lies
/// entirely within its innermost enclosing span, and its recorded depth is
/// exactly the number of enclosing spans still open.
void expect_well_formed_nesting(const std::vector<telemetry::Span>& spans) {
  std::map<std::uint32_t, std::vector<telemetry::Span>> open;  // per tid
  for (const auto& s : spans) {
    auto& stack = open[s.tid];
    while (!stack.empty() &&
           s.start_ns >= stack.back().start_ns + stack.back().dur_ns) {
      stack.pop_back();
    }
    if (!stack.empty()) {
      EXPECT_LE(s.start_ns + s.dur_ns,
                stack.back().start_ns + stack.back().dur_ns)
          << s.name << " straddles its parent " << stack.back().name;
    }
    EXPECT_EQ(s.depth, stack.size()) << s.name << " depth mismatch";
    stack.push_back(s);
  }
}

TEST_F(TelemetryTest, NestingWellFormedUnderParallelFor) {
  telemetry::set_enabled(true);
  for (std::uint32_t threads : {1u, 4u, 8u}) {
    telemetry::reset_all();
    parallel_for(threads, 64, [](std::size_t) {
      TELEM_SPAN("test.outer");
      for (int j = 0; j < 3; ++j) {
        TELEM_SPAN("test.inner");
      }
    });
    const auto spans = telemetry::Tracer::instance().snapshot();
    expect_well_formed_nesting(spans);
    std::size_t inner = 0;
    for (const auto& s : spans) {
      if (std::string_view(s.name) == "test.inner") ++inner;
    }
    EXPECT_EQ(inner, 64u * 3u) << "threads=" << threads;
  }
}

TEST_F(TelemetryTest, RoutingTablesBitIdenticalWithTelemetryOnAndOff) {
  const Network net = torus_4x4x3();
  const auto dests = net.terminals();
  NueOptions opt;
  opt.num_vls = 4;
  opt.num_threads = 4;
  const std::string off_tables = tables_of(net, route_nue(net, dests, opt));
  telemetry::set_enabled(true);
  const RoutingResult on = route_nue(net, dests, opt);
  telemetry::set_enabled(false);
  EXPECT_EQ(tables_of(net, on), off_tables);
  // The traced run left real engine spans behind.
  bool saw_engine_span = false;
  for (const auto& s : telemetry::Tracer::instance().snapshot()) {
    if (std::string_view(s.name) == "nue.layer") saw_engine_span = true;
  }
  EXPECT_TRUE(saw_engine_span);
}

TEST_F(TelemetryTest, ChromeTraceExportIsValidAndComplete) {
  telemetry::set_enabled(true);
  {
    TELEM_SPAN("test.parent");
    TELEM_SPAN("test.child");
  }
  std::ostringstream os;
  telemetry::write_chrome_trace(os, "unit \"test\"");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"test.parent\""), std::string::npos);
  EXPECT_NE(json.find("\"test.child\""), std::string::npos);
  EXPECT_NE(json.find("unit \\\"test\\\""), std::string::npos)
      << "process name must be JSON-escaped";
}

TEST_F(TelemetryTest, RunReportCarriesConfigCountersAndExtras) {
  telemetry::set_enabled(true);
  telemetry::counter("test.report_counter").add(7);
  telemetry::histogram("test.report_hist").record(5);
  std::ostringstream os;
  telemetry::write_run_report(os, "unit_test", {{"key", "value"}},
                              {{"extra", "{\"nested\": true}"}});
  const std::string json = os.str();
  EXPECT_NE(json.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"key\": \"value\""), std::string::npos);
  EXPECT_NE(json.find("\"test.report_counter\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"test.report_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"extra\": {\"nested\": true}"), std::string::npos);
}

TEST_F(TelemetryTest, AggregateSinceIsolatesDeltas) {
  telemetry::set_enabled(true);
  { TELEM_SPAN("test.before"); }
  const std::size_t mark = telemetry::Tracer::instance().collect();
  { TELEM_SPAN("test.after"); }
  { TELEM_SPAN("test.after"); }
  const auto agg = telemetry::Tracer::instance().aggregate_since(mark);
  EXPECT_EQ(agg.count("test.before"), 0u);
  ASSERT_EQ(agg.count("test.after"), 1u);
  EXPECT_EQ(agg.at("test.after").count, 2u);
}

}  // namespace
}  // namespace nue
