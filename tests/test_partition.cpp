#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "partition/partition.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

void expect_valid_partition(const Network& net,
                            const std::vector<NodeId>& dests,
                            const std::vector<std::vector<NodeId>>& parts,
                            std::uint32_t k) {
  ASSERT_EQ(parts.size(), k);
  std::set<NodeId> seen;
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    for (NodeId d : p) {
      EXPECT_TRUE(seen.insert(d).second) << "duplicate destination " << d;
    }
  }
  EXPECT_EQ(total, dests.size());
  for (NodeId d : dests) EXPECT_TRUE(seen.count(d));
  (void)net;
}

class PartitionStrategyTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionStrategyTest, CoversAllDestinationsDisjointly) {
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  const auto dests = net.terminals();
  for (std::uint32_t k : {1u, 2u, 3u, 8u}) {
    Rng rng(42);
    const auto parts =
        partition_destinations(net, dests, k, GetParam(), rng);
    expect_valid_partition(net, dests, parts, k);
    for (const auto& p : parts) EXPECT_FALSE(p.empty());
  }
}

TEST_P(PartitionStrategyTest, RoughBalance) {
  Rng topo_rng(5);
  RandomSpec rspec{30, 90, 4};
  Network net = make_random(rspec, topo_rng);
  const auto dests = net.terminals();
  const std::uint32_t k = 4;
  Rng rng(7);
  const auto parts = partition_destinations(net, dests, k, GetParam(), rng);
  const double target = static_cast<double>(dests.size()) / k;
  for (const auto& p : parts) {
    EXPECT_GT(static_cast<double>(p.size()), 0.25 * target);
    EXPECT_LT(static_cast<double>(p.size()), 2.5 * target);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, PartitionStrategyTest,
                         ::testing::Values(PartitionStrategy::kKway,
                                           PartitionStrategy::kRandom,
                                           PartitionStrategy::kClustered),
                         [](const auto& info) {
                           switch (info.param) {
                             case PartitionStrategy::kKway:
                               return "Kway";
                             case PartitionStrategy::kRandom:
                               return "Random";
                             default:
                               return "Clustered";
                           }
                         });

TEST(Partition, SingleLayerIsIdentity) {
  TorusSpec spec{{3, 3}, 2, 1};
  Network net = make_torus(spec);
  const auto dests = net.terminals();
  Rng rng(1);
  const auto parts = partition_destinations(net, dests, 1,
                                            PartitionStrategy::kKway, rng);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], dests);
}

TEST(Partition, ClusteredKeepsSwitchGroupsTogether) {
  TorusSpec spec{{4, 4}, 4, 1};
  Network net = make_torus(spec);
  const auto dests = net.terminals();
  Rng rng(3);
  const auto parts = partition_destinations(
      net, dests, 4, PartitionStrategy::kClustered, rng);
  // Every switch's terminals must land in one part.
  std::vector<int> part_of(net.num_nodes(), -1);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (NodeId d : parts[p]) part_of[d] = static_cast<int>(p);
  }
  for (NodeId sw : net.switches()) {
    int expected = -2;
    for (ChannelId c : net.out(sw)) {
      const NodeId nb = net.dst(c);
      if (!net.is_terminal(nb)) continue;
      if (expected == -2) expected = part_of[nb];
      EXPECT_EQ(part_of[nb], expected) << "switch " << sw;
    }
  }
}

/// Edge cut of a switch partition (for quality comparison).
std::size_t edge_cut(const Network& net,
                     const std::vector<std::vector<NodeId>>& parts) {
  std::vector<int> part_of(net.num_nodes(), -1);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    for (NodeId d : parts[p]) {
      const NodeId sw = net.is_terminal(d) ? net.terminal_switch(d) : d;
      part_of[sw] = static_cast<int>(p);
    }
  }
  std::size_t cut = 0;
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (!net.channel_alive(c)) continue;
    const NodeId a = net.src(c), b = net.dst(c);
    if (net.is_switch(a) && net.is_switch(b) && part_of[a] >= 0 &&
        part_of[b] >= 0 && part_of[a] != part_of[b]) {
      ++cut;
    }
  }
  return cut;
}

TEST(Partition, KwayBeatsRandomOnStructuredTopology) {
  // A torus has strong locality: multilevel k-way should produce a
  // markedly smaller edge cut than random assignment (averaged to avoid
  // seed luck).
  TorusSpec spec{{6, 6}, 2, 1};
  Network net = make_torus(spec);
  const auto dests = net.terminals();
  double kway_cut = 0.0, random_cut = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng r1(seed), r2(seed);
    kway_cut += static_cast<double>(edge_cut(
        net, partition_destinations(net, dests, 4, PartitionStrategy::kKway,
                                    r1)));
    random_cut += static_cast<double>(edge_cut(
        net, partition_destinations(net, dests, 4,
                                    PartitionStrategy::kRandom, r2)));
  }
  EXPECT_LT(kway_cut, 0.8 * random_cut);
}

TEST(Partition, MoreDestinationsThanPartsNeverYieldsEmptyPart) {
  Rng topo_rng(11);
  RandomSpec rspec{12, 20, 1};
  Network net = make_random(rspec, topo_rng);
  const auto dests = net.terminals();  // 12 dests
  for (std::uint32_t k = 1; k <= 8; ++k) {
    Rng rng(k);
    const auto parts = partition_destinations(net, dests, k,
                                              PartitionStrategy::kKway, rng);
    for (const auto& p : parts) {
      EXPECT_FALSE(p.empty()) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace nue
