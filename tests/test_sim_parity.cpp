// Differential parity suite: the discrete-event engine against the
// cycle-based baseline. The two implementations share the hardware model
// (flit_sim.hpp) but almost no code; verdict or delivery disagreement
// means one of them is wrong. Deterministic tables push every flit down
// the same path in both engines, so on completing runs the delivered
// packets/bytes AND total flit hops must match exactly — only cycle
// counts may differ (the event engine releases credits at t+1 where the
// cycle engine's in-cycle scan could reuse them at t).
#include <gtest/gtest.h>

#include <filesystem>

#include "fuzz/fuzz.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "sim/traffic.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_ring;

SimConfig parity_config() {
  SimConfig cfg;
  cfg.max_cycles = 5'000'000;
  cfg.deadlock_cycles = 10'000;
  return cfg;
}

void expect_parity(const Network& net, const RoutingResult& rr,
                   const std::vector<Message>& msgs, const SimConfig& cfg,
                   const std::string& what) {
  const SimResult ev = simulate(net, rr, msgs, cfg);
  const SimResult cy = simulate_cycle(net, rr, msgs, cfg);
  EXPECT_EQ(ev.completed, cy.completed) << what;
  EXPECT_EQ(ev.deadlocked, cy.deadlocked) << what;
  if (ev.completed && cy.completed) {
    EXPECT_EQ(ev.delivered_packets, cy.delivered_packets) << what;
    EXPECT_EQ(ev.delivered_bytes, cy.delivered_bytes) << what;
    EXPECT_EQ(ev.flit_hops, cy.flit_hops) << what;
  }
}

TEST(SimParity, Fig01TorusSaturationAndPatterns) {
  // The Fig. 1a fabric: 4x4x3 torus, 4 terminals per switch, one failed
  // switch — the paper's motivating experiment, under both saturation
  // all-to-all and adversarial pattern traffic.
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  Rng rng(2016);
  ASSERT_EQ(inject_switch_failures(net, 1, rng), 1u);
  NueOptions opt;
  opt.num_vls = 4;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto cfg = parity_config();
  expect_parity(net, rr, alltoall_shift_messages(net, 2048, 4), cfg,
                "fig01 alltoall");
  expect_parity(net, rr, pattern_messages(net, TrafficPattern::kTornado, 2048),
                cfg, "fig01 tornado");
}

TEST(SimParity, DragonflySaturationAndPatterns) {
  DragonflySpec spec{4, 2, 2, 5};  // 20 switches, 40 terminals
  Network net = make_dragonfly(spec);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto cfg = parity_config();
  expect_parity(net, rr, alltoall_shift_messages(net, 1024, 6), cfg,
                "dragonfly alltoall");
  expect_parity(net, rr,
                pattern_messages(net, TrafficPattern::kTranspose, 1024), cfg,
                "dragonfly transpose");
  Rng rng(7);
  expect_parity(net, rr, uniform_random_messages(net, 300, 512, rng), cfg,
                "dragonfly uniform");
}

TEST(SimParity, DeadlockVerdictsAgreeOnCyclicRouting) {
  Network net = make_ring(6, 2);
  const auto rr = route_minhop(net, net.terminals());
  ASSERT_FALSE(validate_routing(net, rr).deadlock_free);
  auto cfg = parity_config();
  cfg.deadlock_cycles = 5000;
  cfg.buffer_flits = 2;
  const auto msgs = alltoall_shift_messages(net, 4096);
  const SimResult ev = simulate(net, rr, msgs, cfg);
  const SimResult cy = simulate_cycle(net, rr, msgs, cfg);
  EXPECT_TRUE(ev.deadlocked);
  EXPECT_TRUE(cy.deadlocked);
  EXPECT_EQ(ev.completed, cy.completed);
}

TEST(SimParity, AdaptiveEnginesAgreeOnVerdicts) {
  // Adaptive routing makes per-engine choices, so hop counts legitimately
  // differ — but both engines must complete (the escape lane guarantee).
  Network net = make_ring(6, 2);
  const auto escape = route_nue(net, net.terminals(), NueOptions{});
  auto cfg = parity_config();
  cfg.buffer_flits = 2;
  const auto msgs = alltoall_shift_messages(net, 4096);
  const SimResult ev = simulate_adaptive(net, escape, 2, msgs, cfg);
  const SimResult cy = simulate_adaptive_cycle(net, escape, 2, msgs, cfg);
  EXPECT_TRUE(ev.completed);
  EXPECT_TRUE(cy.completed);
  EXPECT_EQ(ev.delivered_bytes, cy.delivered_bytes);
}

TEST(SimParity, CorpusScenarioVerdictsAgree) {
  // Every shipped reproducer, replayed with the deliberate table breakage
  // stripped: whenever its scenario yields a simulatable table (the same
  // static gate the fuzzer's oracle applies), both engines must agree on
  // the verdict and, on completion, the delivered totals.
  const std::filesystem::path dir = NUE_TEST_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  const auto cfg = parity_config();
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    const fuzz::Reproducer r =
        fuzz::load_reproducer_file(entry.path().string());
    fuzz::ScenarioSpec spec = r.spec;
    spec.mutation = fuzz::Mutation::kNone;
    const fuzz::ScenarioBuild build = fuzz::build_scenario(spec, r.removals);
    const fuzz::EngineOutcome engine = fuzz::run_engine(spec, build);
    if (!engine.rr.has_value()) continue;
    const auto val = validate_routing(build.net, *engine.rr);
    if (!val.connected || !val.cycle_free || !val.vl_in_range ||
        build.net.num_alive_terminals() < 2) {
      continue;
    }
    expect_parity(build.net, *engine.rr,
                  alltoall_shift_messages(build.net, 256, 4), cfg,
                  entry.path().filename().string());
    ++checked;
  }
  EXPECT_GE(checked, 2u);
}

TEST(SimParity, OracleCrossChecksEnginesBydefault) {
  fuzz::ScenarioSpec spec;
  spec.seed = 4;
  spec.generate = "torus:3x3:1";
  spec.engine = fuzz::Engine::kNue;
  spec.vls = 2;
  const fuzz::OracleReport rep = fuzz::run_scenario(spec);
  EXPECT_TRUE(rep.ok()) << (rep.violations.empty()
                                ? ""
                                : rep.violations.front());
  EXPECT_TRUE(rep.sim_checked);
  EXPECT_TRUE(rep.engines_cross_checked);
}

}  // namespace
}  // namespace nue
