// Property tests for Nue routing: validity (connected, destination-based,
// cycle-free) and deadlock-freedom for every topology family, every VL
// count 1..8, multiple seeds, and with every optimization toggled — the
// paper's central claim is that Nue never fails regardless of k.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "metrics/metrics.hpp"
#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_paper_ring_with_terminals;
using test::make_ring;

void expect_valid_nue(const Network& net, std::uint32_t k,
                      const NueOptions& base_opt = {},
                      NueStats* stats_out = nullptr) {
  NueOptions opt = base_opt;
  opt.num_vls = k;
  NueStats stats;
  const auto rr = route_nue(net, net.terminals(), opt, &stats);
  EXPECT_EQ(rr.num_vls(), k);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << "k=" << k << ": " << rep.detail;
  if (stats_out) *stats_out = stats;
}

TEST(Nue, SingleVlOnRing) {
  // k = 1 is the hard case no other VL-based routing supports.
  expect_valid_nue(make_ring(8), 1);
}

TEST(Nue, PaperRingAllVlCounts) {
  Network net = make_paper_ring_with_terminals();
  for (std::uint32_t k = 1; k <= 4; ++k) expect_valid_nue(net, k);
}

TEST(Nue, TorusAllVlCounts) {
  TorusSpec spec{{4, 4, 3}, 2, 1};
  Network net = make_torus(spec);
  for (std::uint32_t k = 1; k <= 8; ++k) expect_valid_nue(net, k);
}

TEST(Nue, Fig1FaultyTorus) {
  // The exact Fig. 1 network: 4x4x3, 4 terminals/switch, 1 dead switch.
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  Rng rng(2016);
  ASSERT_EQ(inject_switch_failures(net, 1, rng), 1u);
  for (std::uint32_t k = 1; k <= 4; ++k) expect_valid_nue(net, k);
}

TEST(Nue, RandomTopologiesManySeeds) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    RandomSpec spec{25, 70, 3};
    Network net = make_random(spec, rng);
    for (std::uint32_t k : {1u, 2u, 4u}) {
      NueOptions opt;
      opt.seed = seed;
      expect_valid_nue(net, k, opt);
    }
  }
}

TEST(Nue, KautzAndDragonfly) {
  {
    KautzSpec spec{3, 2, 2, 1};
    Network net = make_kautz(spec);
    for (std::uint32_t k : {1u, 3u}) expect_valid_nue(net, k);
  }
  {
    DragonflySpec spec{4, 2, 2, 5};
    Network net = make_dragonfly(spec);
    for (std::uint32_t k : {1u, 3u}) expect_valid_nue(net, k);
  }
}

TEST(Nue, FatTree) {
  FatTreeSpec spec{4, 2, 4, 0};
  Network net = make_kary_ntree(spec);
  for (std::uint32_t k : {1u, 2u}) expect_valid_nue(net, k);
}

TEST(Nue, FaultyTorusSweep) {
  // The Fig. 11 scenario in miniature: tori with injected link failures
  // must always be routable regardless of k (100% applicability).
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    TorusSpec spec{{4, 4, 4}, 2, 1};
    Network net = make_torus(spec);
    Rng rng(seed);
    inject_link_failures(net, 4, rng);
    for (std::uint32_t k : {1u, 8u}) {
      NueOptions opt;
      opt.seed = seed;
      expect_valid_nue(net, k, opt);
    }
  }
}

TEST(Nue, AllPartitionStrategiesValid) {
  TorusSpec spec{{4, 4}, 3, 1};
  Network net = make_torus(spec);
  for (auto strategy :
       {PartitionStrategy::kKway, PartitionStrategy::kRandom,
        PartitionStrategy::kClustered}) {
    NueOptions opt;
    opt.partition = strategy;
    expect_valid_nue(net, 4, opt);
  }
}

TEST(Nue, AblationsStayCorrect) {
  // Disabling the optimizations must never break correctness — only
  // increase fallbacks / path lengths.
  Rng rng(7);
  RandomSpec spec{20, 55, 3};
  Network net = make_random(spec, rng);
  {
    NueOptions opt;
    opt.backtracking = false;
    expect_valid_nue(net, 1, opt);
    expect_valid_nue(net, 4, opt);
  }
  {
    NueOptions opt;
    opt.shortcuts = false;
    expect_valid_nue(net, 1, opt);
  }
  {
    NueOptions opt;
    opt.central_root = false;
    expect_valid_nue(net, 2, opt);
  }
}

TEST(Nue, BacktrackingReducesFallbacks) {
  // Aggregate over seeds: with local backtracking enabled, strictly fewer
  // destinations should end on the escape paths.
  std::size_t with_bt = 0, without_bt = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed + 100);
    RandomSpec spec{25, 80, 3};
    Network net = make_random(spec, rng);
    NueStats s1, s2;
    NueOptions o1;
    o1.num_vls = 1;
    route_nue(net, net.terminals(), o1, &s1);
    NueOptions o2 = o1;
    o2.backtracking = false;
    route_nue(net, net.terminals(), o2, &s2);
    with_bt += s1.fallbacks;
    without_bt += s2.fallbacks;
  }
  EXPECT_LE(with_bt, without_bt);
}

TEST(Nue, MoreVlsImproveBalance) {
  // Section 5.1's headline trend: with more virtual lanes the maximum edge
  // forwarding index drops (or at least never grows much).
  Rng rng(3);
  RandomSpec spec{25, 80, 4};
  Network net = make_random(spec, rng);
  NueOptions o1;
  o1.num_vls = 1;
  const auto g1 = summarize_forwarding_index(
      net, edge_forwarding_index(net, route_nue(net, net.terminals(), o1)));
  NueOptions o8;
  o8.num_vls = 8;
  const auto g8 = summarize_forwarding_index(
      net, edge_forwarding_index(net, route_nue(net, net.terminals(), o8)));
  EXPECT_LT(g8.max, 1.3 * g1.max);
}

TEST(Nue, PathLengthsBoundedVsShortest) {
  // Nue's routes may exceed shortest paths (escape detours) but must stay
  // within a small factor on healthy topologies (§5.1: worst 7-10 vs 6).
  TorusSpec spec{{4, 4, 3}, 2, 1};
  Network net = make_torus(spec);
  for (std::uint32_t k : {1u, 4u}) {
    NueOptions opt;
    opt.num_vls = k;
    const auto rr = route_nue(net, net.terminals(), opt);
    const auto pl = path_length_stats(net, rr);
    EXPECT_LE(pl.avg, 2.0 * pl.avg_shortest) << "k=" << k;
    EXPECT_LE(pl.max, pl.max_shortest + 6) << "k=" << k;
  }
}

TEST(Nue, EscapeRootIsCentral) {
  // On a line the convex hull's betweenness peak is the middle.
  Network net = test::make_line(7, 1);
  const NodeId root = select_escape_root(net, net.terminals());
  EXPECT_EQ(root, 3u);
}

TEST(Nue, DestinationSubsetRouting) {
  // Routing only a subset of terminals (the per-layer situation) works and
  // routes from ALL nodes to those destinations.
  Network net = make_ring(6);
  std::vector<NodeId> dests{net.terminals()[0], net.terminals()[3]};
  NueOptions opt;
  const auto rr = route_nue(net, dests, opt);
  for (NodeId d : dests) {
    for (NodeId s : net.terminals()) {
      if (s == d) continue;
      EXPECT_NO_THROW(rr.trace(net, s, d));
    }
  }
}

TEST(Nue, StatsAreReported) {
  TorusSpec spec{{4, 4}, 2, 1};
  Network net = make_torus(spec);
  NueStats stats;
  NueOptions opt;
  opt.num_vls = 2;
  route_nue(net, net.terminals(), opt, &stats);
  EXPECT_EQ(stats.roots.size(), 2u);
  EXPECT_GT(stats.fast_accepts + stats.cycle_searches, 0u);
}

TEST(Nue, DeterministicForFixedSeed) {
  Rng rng(42);
  RandomSpec spec{15, 40, 2};
  Network net = make_random(spec, rng);
  NueOptions opt;
  opt.num_vls = 3;
  opt.seed = 99;
  const auto r1 = route_nue(net, net.terminals(), opt);
  const auto r2 = route_nue(net, net.terminals(), opt);
  for (std::size_t di = 0; di < r1.destinations().size(); ++di) {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      ASSERT_EQ(r1.next(v, static_cast<std::uint32_t>(di)),
                r2.next(v, static_cast<std::uint32_t>(di)));
    }
  }
}

}  // namespace
}  // namespace nue
