// Property tests for the baseline routing engines: every engine must
// produce connected, destination-based, cycle-free and (where claimed)
// deadlock-free tables on a spread of topologies.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "metrics/metrics.hpp"
#include "routing/dfsssp.hpp"
#include "routing/fattree_routing.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_paper_ring_with_terminals;
using test::make_ring;

TEST(MinHop, ShortestPathsButDeadlocksOnRing) {
  Network net = make_ring(6);
  const auto rr = route_minhop(net, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.connected);
  EXPECT_TRUE(rep.cycle_free);
  EXPECT_FALSE(rep.deadlock_free);  // the ring CDG is cyclic
  const auto pl = path_length_stats(net, rr);
  EXPECT_DOUBLE_EQ(pl.avg, pl.avg_shortest);  // truly shortest paths
}

TEST(MinHop, BalancesOverParallelPaths) {
  // 2x4 torus-ish mesh has path diversity; the balanced SSSP should not
  // exceed ~2x the ideal max forwarding index.
  TorusSpec spec{{4, 4}, 2, 1};
  Network net = make_torus(spec);
  const auto rr = route_minhop(net, net.terminals());
  const auto gamma = edge_forwarding_index(net, rr);
  const auto sum = summarize_forwarding_index(net, gamma);
  EXPECT_GT(sum.min, 0.0);
  EXPECT_LT(sum.max, 6.0 * sum.avg);
}

TEST(UpDown, ValidOnEveryTopologyFamily) {
  std::vector<Network> nets;
  nets.push_back(make_ring(8));
  {
    TorusSpec t{{4, 4, 3}, 2, 1};
    nets.push_back(make_torus(t));
  }
  {
    Rng rng(2);
    RandomSpec r{30, 90, 3};
    nets.push_back(make_random(r, rng));
  }
  {
    KautzSpec k{3, 2, 2, 1};
    nets.push_back(make_kautz(k));
  }
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const auto& net = nets[i];
    const auto rr = route_updown(net, net.terminals());
    const auto rep = validate_routing(net, rr);
    EXPECT_TRUE(rep.ok()) << "net " << i << ": " << rep.detail;
    EXPECT_EQ(rr.num_vls(), 1u);  // Up*/Down* never needs extra VLs
  }
}

TEST(UpDown, NoDownUpTurnOnAnyPath) {
  Rng rng(5);
  RandomSpec spec{20, 50, 2};
  Network net = make_random(spec, rng);
  const NodeId root = pseudo_center(net);
  const auto level = bfs_distances(net, root);
  const auto rr = route_updown(net, net.terminals(), {root});
  auto is_up = [&](ChannelId c) {
    const NodeId u = net.src(c), v = net.dst(c);
    return level[v] < level[u] || (level[v] == level[u] && v < u);
  };
  for (NodeId d : net.terminals()) {
    for (NodeId s : net.terminals()) {
      if (s == d) continue;
      bool went_down = false;
      for (ChannelId c : rr.trace(net, s, d)) {
        if (is_up(c)) {
          EXPECT_FALSE(went_down)
              << "down->up turn on " << s << "->" << d;
        } else {
          went_down = true;
        }
      }
    }
  }
}

TEST(Dfsssp, DeadlockFreeOnTorusWithinVlBudget) {
  TorusSpec spec{{4, 4, 3}, 2, 1};
  Network net = make_torus(spec);
  DfssspStats stats;
  const auto rr = route_dfsssp(net, net.terminals(), {.max_vls = 8}, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_GE(stats.vls_needed, 2u);  // a torus needs more than one layer
  EXPECT_LE(stats.vls_needed, 8u);
  // Shortest paths preserved (layering never lengthens routes).
  const auto pl = path_length_stats(net, rr);
  EXPECT_DOUBLE_EQ(pl.avg, pl.avg_shortest);
}

TEST(Dfsssp, RandomTopologiesNeedFewLayers) {
  // Section 5.1: DFSSSP needs ~4-5 VLs on the 125-switch random
  // topologies. On smaller random fabrics the demand is lower; we check
  // the reporting machinery and deadlock-freedom across seeds.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng rng(seed);
    RandomSpec spec{25, 70, 2};
    Network net = make_random(spec, rng);
    DfssspStats stats;
    const auto rr = route_dfsssp(net, net.terminals(),
                                 {.max_vls = 8, .allow_exceed = true},
                                 &stats);
    const auto rep = validate_routing(net, rr);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.detail;
    EXPECT_GE(stats.vls_needed, 1u);
    EXPECT_LE(stats.vls_needed, 8u) << "seed " << seed;
  }
}

TEST(Dfsssp, FailsLoudlyWhenVlBudgetTooSmall) {
  TorusSpec spec{{4, 4, 4}, 2, 1};
  Network net = make_torus(spec);
  EXPECT_THROW(route_dfsssp(net, net.terminals(), {.max_vls = 1}),
               RoutingFailure);
}

TEST(Lash, DeadlockFreeAndShortestOnTorus) {
  TorusSpec spec{{3, 3, 3}, 2, 1};
  Network net = make_torus(spec);
  LashStats stats;
  const auto rr = route_lash(net, net.terminals(), {.max_vls = 8}, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_GE(stats.vls_needed, 2u);
  EXPECT_LE(stats.vls_needed, 8u);
  const auto pl = path_length_stats(net, rr);
  EXPECT_DOUBLE_EQ(pl.avg, pl.avg_shortest);
}

TEST(Lash, UsesFewerLayersThanDfssspTypically) {
  // The paper (5.1): LASH's VC requirement (2-4) is lower than DFSSSP's
  // (4-5) on the random topologies. Verify the trend on a mid-size fabric.
  Rng rng(9);
  RandomSpec spec{40, 120, 2};
  Network net = make_random(spec, rng);
  DfssspStats ds;
  LashStats ls;
  route_dfsssp(net, net.terminals(), {.max_vls = 16, .allow_exceed = true},
               &ds);
  route_lash(net, net.terminals(), {.max_vls = 16, .allow_exceed = true},
             &ls);
  EXPECT_LE(ls.vls_needed, ds.vls_needed + 1);
}

TEST(TorusQos, HealthyTorusUsesTwoVls) {
  TorusSpec spec{{4, 4, 3}, 2, 1};
  Network net = make_torus(spec);
  const auto rr = route_torus_qos(net, spec, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_EQ(rr.num_vls(), 2u);
  const auto pl = path_length_stats(net, rr);
  EXPECT_DOUBLE_EQ(pl.avg, pl.avg_shortest);  // DOR is minimal on a torus
}

TEST(TorusQos, SurvivesSingleSwitchFailure) {
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  Rng rng(13);
  ASSERT_EQ(inject_switch_failures(net, 1, rng), 1u);
  const auto rr = route_torus_qos(net, spec, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
}

TEST(TorusQos, SurvivesSingleLinkFailurePerRing) {
  TorusSpec spec{{5, 5}, 2, 1};
  Network net = make_torus(spec);
  // Break one link in one x-ring.
  NodeId a = spec.switch_at({0, 0});
  NodeId b = spec.switch_at({0, 1});
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) {
      net.remove_link(c);
      break;
    }
  }
  const auto rr = route_torus_qos(net, spec, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
}

TEST(TorusQos, FailsOnTwoFailuresInOneRing) {
  // Two dead switches in the same x-ring cut it in two: DOR cannot route
  // within that ring anymore — the engine must refuse, like Torus-2QoS.
  TorusSpec spec{{5, 4}, 1, 1};
  Network net = make_torus(spec);
  // Kill switches (1,0) and (3,0): the x-ring at y=0 is split.
  for (auto coord : {std::vector<std::uint32_t>{1, 0}, {3, 0}}) {
    const NodeId sw = spec.switch_at(coord);
    std::vector<NodeId> orphans;
    for (ChannelId c : net.out(sw)) {
      if (net.is_terminal(net.dst(c))) orphans.push_back(net.dst(c));
    }
    net.remove_node(sw);
    for (NodeId t : orphans) net.remove_node(t);
  }
  ASSERT_TRUE(is_connected(net));  // still connected via other rings
  EXPECT_THROW(route_torus_qos(net, spec, net.terminals()),
               RoutingFailure);
}

TEST(TorusQos, RedundantChannelsSpreadByDestination) {
  TorusSpec spec{{4, 3}, 2, 4};  // r = 4 parallel links
  Network net = make_torus(spec);
  const auto rr = route_torus_qos(net, spec, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  // Different destinations should use different parallel channels: more
  // distinct switch-to-switch channels must carry load than a redundancy-1
  // torus even has.
  const auto gamma = edge_forwarding_index(net, rr);
  std::size_t loaded = 0;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (gamma[c] > 0 && net.is_switch(net.src(c)) &&
        net.is_switch(net.dst(c))) {
      ++loaded;
    }
  }
  const std::size_t r1_channels = 2 * 2 * 12;  // 2 dims * 12 switches, duplex
  EXPECT_GT(loaded, r1_channels);
}

TEST(FatTreeRouting, ValidAndMinimalOnKaryNtree) {
  FatTreeSpec spec{4, 3, 4, 0};
  Network net = make_kary_ntree(spec);
  const auto rr = route_fattree(net, spec, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_EQ(rr.num_vls(), 1u);
  const auto pl = path_length_stats(net, rr);
  EXPECT_DOUBLE_EQ(pl.avg, pl.avg_shortest);
}

TEST(FatTreeRouting, SpreadsUpwardLoad) {
  FatTreeSpec spec{4, 2, 4, 0};
  Network net = make_kary_ntree(spec);
  const auto rr = route_fattree(net, spec, net.terminals());
  const auto gamma = edge_forwarding_index(net, rr);
  const auto sum = summarize_forwarding_index(net, gamma);
  EXPECT_GT(sum.min, 0.0);
  EXPECT_LT(sum.max, 4.0 * sum.avg);
}

TEST(Baselines, PaperRingAllValid) {
  Network net = make_paper_ring_with_terminals();
  const auto dests = net.terminals();
  {
    const auto rep = validate_routing(net, route_updown(net, dests));
    EXPECT_TRUE(rep.ok()) << "updown: " << rep.detail;
  }
  {
    DfssspStats st;
    const auto rep = validate_routing(
        net, route_dfsssp(net, dests, {.max_vls = 4}, &st));
    EXPECT_TRUE(rep.ok()) << "dfsssp: " << rep.detail;
  }
  {
    const auto rep = validate_routing(net, route_lash(net, dests));
    EXPECT_TRUE(rep.ok()) << "lash: " << rep.detail;
  }
}

}  // namespace
}  // namespace nue

namespace nue {
namespace updn_dfs {

TEST(UpDownDfs, ValidAcrossTopologies) {
  // The UD_DFS variant [28] must satisfy the same contract as classic
  // Up*/Down*: valid, deadlock-free, one VL.
  std::vector<Network> nets;
  nets.push_back(nue::test::make_ring(8));
  {
    TorusSpec t{{4, 4}, 2, 1};
    nets.push_back(make_torus(t));
  }
  {
    Rng rng(8);
    RandomSpec r{25, 70, 2};
    nets.push_back(make_random(r, rng));
  }
  for (std::size_t i = 0; i < nets.size(); ++i) {
    UpDownOptions opt;
    opt.dfs_tree = true;
    const auto rr = route_updown(nets[i], nets[i].terminals(), opt);
    const auto rep = validate_routing(nets[i], rr);
    EXPECT_TRUE(rep.ok()) << "net " << i << ": " << rep.detail;
    EXPECT_EQ(rr.num_vls(), 1u);
  }
}

TEST(UpDownDfs, DiffersFromBfsVariant) {
  Rng rng(15);
  RandomSpec spec{20, 60, 2};
  Network net = make_random(spec, rng);
  const NodeId root = pseudo_center(net);
  const auto bfs = route_updown(net, net.terminals(), {root, false});
  const auto dfs = route_updown(net, net.terminals(), {root, true});
  bool any_difference = false;
  for (std::size_t di = 0; di < bfs.destinations().size(); ++di) {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      any_difference |= bfs.next(v, static_cast<std::uint32_t>(di)) !=
                        dfs.next(v, static_cast<std::uint32_t>(di));
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace updn_dfs
}  // namespace nue
