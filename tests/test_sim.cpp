// Flit-level simulator tests: delivery, flow control, throughput ordering,
// and the deadlock watchdog (the end-to-end demonstration of Theorem 1:
// cyclic-CDG routing really deadlocks, acyclic routing really completes).
#include <gtest/gtest.h>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "test_helpers.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_line;
using test::make_ring;

SimConfig quick_config() {
  SimConfig cfg;
  cfg.deadlock_cycles = 5000;
  cfg.max_cycles = 2'000'000;
  return cfg;
}

TEST(Sim, DeliversSingleMessage) {
  Network net = make_line(3);
  const auto rr = route_minhop(net, net.terminals());
  const std::vector<Message> msgs{{net.terminals()[0], net.terminals()[2],
                                   2048}};
  const auto res = simulate(net, rr, msgs, quick_config());
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.deadlocked);
  EXPECT_EQ(res.delivered_packets, 1u);
  // 33 flits (header + 32 payload), 4 hops each (t -> s0 -> s1 -> s2 -> t).
  EXPECT_EQ(res.flit_hops, 33u * 4u);
  // Pipeline: ~flits + hops cycles, plus per-hop arbitration slack.
  EXPECT_GE(res.cycles, 36u);
  EXPECT_LE(res.cycles, 80u);
}

TEST(Sim, P99InterpolatesOnSmallSamples) {
  // Regression: p99 used the floor index size()*99/100, which for any
  // sample count below 100 degenerates to the maximum. With two packets
  // of different latency the interpolating percentile must land strictly
  // between the mean and the maximum.
  Network net = make_line(3);
  const auto rr = route_minhop(net, net.terminals());
  const auto t = net.terminals();
  // 3 hops (t0 -> s0 -> s1 -> t1) vs 4 hops (t2 -> s2 -> s1 -> s0 -> t0):
  // two delivered packets with distinct latencies.
  const std::vector<Message> msgs{{t[0], t[1], 128}, {t[2], t[0], 128}};
  const auto res = simulate(net, rr, msgs, quick_config());
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.delivered_packets, 2u);
  EXPECT_LT(res.p99_packet_latency,
            static_cast<double>(res.max_packet_latency));
  EXPECT_GT(res.p99_packet_latency, res.avg_packet_latency);
}

TEST(Sim, SelfMessageLessNetworkStillCompletes) {
  Network net = make_line(2);
  const auto rr = route_minhop(net, net.terminals());
  const auto res = simulate(net, rr, {}, quick_config());
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.cycles, 0u);
}

TEST(Sim, AllToAllOnLineCompletes) {
  Network net = make_line(4, 2);
  const auto rr = route_minhop(net, net.terminals());
  const auto msgs = alltoall_shift_messages(net, 512);
  const auto res = simulate(net, rr, msgs, quick_config());
  EXPECT_TRUE(res.completed) << "cycles=" << res.cycles;
  EXPECT_EQ(res.delivered_packets, msgs.size());
  EXPECT_GT(res.normalized_throughput, 0.0);
  EXPECT_LE(res.normalized_throughput, 1.0);
}

TEST(Sim, DeadlocksWithCyclicRoutingOnRing) {
  // MinHop on a ring has a cyclic CDG; saturating all-to-all traffic with
  // small buffers must deadlock — the watchdog reports it.
  Network net = make_ring(6, 2);
  const auto rr = route_minhop(net, net.terminals());
  ASSERT_FALSE(validate_routing(net, rr).deadlock_free);
  auto cfg = quick_config();
  cfg.buffer_flits = 2;
  const auto msgs = alltoall_shift_messages(net, 4096);
  const auto res = simulate(net, rr, msgs, cfg);
  EXPECT_TRUE(res.deadlocked);
  EXPECT_FALSE(res.completed);
}

TEST(Sim, NueNeverDeadlocksWhereMinhopDoes) {
  Network net = make_ring(6, 2);
  auto cfg = quick_config();
  cfg.buffer_flits = 2;
  const auto msgs = alltoall_shift_messages(net, 4096);
  for (std::uint32_t k : {1u, 2u}) {
    NueOptions opt;
    opt.num_vls = k;
    const auto rr = route_nue(net, net.terminals(), opt);
    const auto res = simulate(net, rr, msgs, cfg);
    EXPECT_TRUE(res.completed) << "k=" << k << " cycles=" << res.cycles;
    EXPECT_FALSE(res.deadlocked);
  }
}

TEST(Sim, DfssspCompletesOnTorus) {
  TorusSpec spec{{3, 3}, 2, 1};
  Network net = make_torus(spec);
  const auto rr = route_dfsssp(net, net.terminals(), {.max_vls = 4});
  auto cfg = quick_config();
  cfg.buffer_flits = 2;
  const auto res =
      simulate(net, rr, alltoall_shift_messages(net, 2048), cfg);
  EXPECT_TRUE(res.completed);
}

TEST(Sim, ThroughputOrderingStarVsLine) {
  // All-to-all over a line saturates the middle link; a star (everything
  // one hop from a hub)… a hub also serializes. Compare a line of 8
  // switches against a 2-ary fat structure: simpler: line vs ring — the
  // ring has twice the bisection, so all-to-all must finish faster.
  const auto msgs_for = [](const Network& net) {
    return alltoall_shift_messages(net, 4096);
  };
  Network line = make_line(10, 2);
  Network ring = make_ring(10, 2);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr_line = route_nue(line, line.terminals(), opt);
  const auto rr_ring = route_nue(ring, ring.terminals(), opt);
  const auto res_line = simulate(line, rr_line, msgs_for(line), quick_config());
  const auto res_ring = simulate(ring, rr_ring, msgs_for(ring), quick_config());
  ASSERT_TRUE(res_line.completed);
  ASSERT_TRUE(res_ring.completed);
  EXPECT_LT(res_ring.cycles, res_line.cycles);
}

TEST(Sim, CreditBackpressureLimitsInFlightFlits) {
  // With buffer_flits = 1 a long wormhole packet stretches across the
  // line; delivery still completes (no drops in lossless networks).
  Network net = make_line(6, 1);
  const auto rr = route_minhop(net, net.terminals());
  auto cfg = quick_config();
  cfg.buffer_flits = 1;
  const std::vector<Message> msgs{{net.terminals()[0], net.terminals()[5],
                                   8192}};
  const auto res = simulate(net, rr, msgs, cfg);
  EXPECT_TRUE(res.completed);
}

TEST(Sim, UniformRandomTrafficCompletes) {
  TorusSpec spec{{3, 3}, 2, 1};
  Network net = make_torus(spec);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr = route_nue(net, net.terminals(), opt);
  Rng rng(5);
  const auto msgs = uniform_random_messages(net, 200, 1024, rng);
  const auto res = simulate(net, rr, msgs, quick_config());
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.delivered_packets, 200u);
}

TEST(Sim, ShiftSamplingReducesMessageCount) {
  Network net = make_ring(5, 2);  // 10 terminals
  const auto full = alltoall_shift_messages(net, 512);
  const auto sampled = alltoall_shift_messages(net, 512, 3);
  EXPECT_EQ(full.size(), 10u * 9u);
  EXPECT_EQ(sampled.size(), 10u * 3u);
}

TEST(Sim, MoreVlsRaiseThroughputOnRing) {
  // The paper's first trend (Fig. 10): more VLs for Nue -> higher
  // throughput. On a ring with k=1 Nue's escape tree concentrates load;
  // k=2 allows better spreading. Allow equality (small network).
  Network net = make_ring(8, 2);
  auto cfg = quick_config();
  const auto msgs = alltoall_shift_messages(net, 1024);
  NueOptions o1;
  o1.num_vls = 1;
  NueOptions o4;
  o4.num_vls = 4;
  const auto r1 = simulate(net, route_nue(net, net.terminals(), o1), msgs, cfg);
  const auto r4 = simulate(net, route_nue(net, net.terminals(), o4), msgs, cfg);
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r4.completed);
  EXPECT_LE(r4.cycles, r1.cycles * 11 / 10);
}

}  // namespace
}  // namespace nue
