// Fabric-manager daemon integration tests (ISSUE 7 tentpole,
// docs/SERVICE.md): the JSON wire format, the request dispatcher, and
// the full daemon loop — a SocketServer on a temp Unix socket, two
// fabric shards, concurrent route queries during a fault/repair storm —
// asserting every response comes from a validated committed epoch and
// that the daemon's final tables are byte-identical to an offline
// ResilienceManager replay of the same event sequence (which is what
// one-shot `nue_route --fault-trace` runs).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "routing/dump.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "topology/faults.hpp"
#include "topology/generate.hpp"

namespace nue {
namespace {

using service::Client;
using service::Json;
using service::ManagerService;
using service::SocketServer;

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"op":"route","fabric":"a","src":16,"dst":31,"deep":[1,2.5,true,)"
      R"(null,{"k":"v"}],"esc":"a\"b\\c\ndA"})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.str("op"), "route");
  EXPECT_EQ(j.num("src"), 16.0);
  EXPECT_EQ(j.str("esc"), "a\"b\\c\ndA");
  const Json* deep = j.find("deep");
  ASSERT_NE(deep, nullptr);
  ASSERT_EQ(deep->items().size(), 5u);
  EXPECT_TRUE(deep->items()[3].is_null());
  // dump() -> parse() is the identity on structure.
  const Json again = Json::parse(j.dump());
  EXPECT_EQ(again.dump(), j.dump());
}

TEST(Json, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "1 2",
        "\"unterminated", "{\"a\":1,}"}) {
    EXPECT_THROW(Json::parse(bad), std::runtime_error) << bad;
  }
}

TEST(Json, NumbersAndSetSemantics) {
  Json j = Json::object();
  j.set("n", std::uint64_t{1} << 40);
  j.set("f", Json(2.5));
  j.set("n", 7);  // overwrite keeps position
  EXPECT_EQ(j.dump(), "{\"n\":7,\"f\":2.5}");
}

TEST(ManagerServiceDispatch, ErrorsAreEnvelopedNotThrown) {
  ManagerService svc;
  EXPECT_FALSE(svc.handle(Json::parse("[1]")).boolean("ok"));
  EXPECT_FALSE(svc.handle(Json::parse("{}")).boolean("ok"));
  EXPECT_FALSE(svc.handle(Json::parse(R"({"op":"warp"})")).boolean("ok"));
  const Json missing =
      svc.handle(Json::parse(R"({"op":"route","fabric":"nope"})"));
  EXPECT_FALSE(missing.boolean("ok"));
  EXPECT_NE(missing.str("error").find("not loaded"), std::string::npos);
  const Json badload = svc.handle(
      Json::parse(R"({"op":"load","fabric":"x","generate":"warp:3"})"));
  EXPECT_FALSE(badload.boolean("ok"));
  // req_id correlation survives the error path.
  const Json echoed =
      svc.handle(Json::parse(R"({"op":"warp","req_id":42})"));
  ASSERT_NE(echoed.find("req_id"), nullptr);
  EXPECT_EQ(echoed.find("req_id")->as_number(), 42.0);
}

TEST(ManagerServiceDispatch, LoadRouteEventUnload) {
  ManagerService svc;
  ASSERT_TRUE(svc.handle(Json::parse(
                      R"({"op":"load","fabric":"t","generate":"torus:3x3:1",)"
                      R"("engine":"nue","vls":2,"seed":5})"))
                  .boolean("ok"));
  EXPECT_FALSE(svc.handle(Json::parse(
                       R"({"op":"load","fabric":"t","generate":"torus:3x3:1"})"))
                   .boolean("ok"))
      << "duplicate names must be rejected";
  const Json r = svc.handle(
      Json::parse(R"({"op":"route","fabric":"t","src":9,"dst":17})"));
  ASSERT_TRUE(r.boolean("ok")) << r.str("error");
  EXPECT_EQ(r.num("epoch"), 1.0);
  const auto& nodes = r.find("nodes")->items();
  ASSERT_GE(nodes.size(), 2u);
  EXPECT_EQ(nodes.front().as_number(), 9.0);
  EXPECT_EQ(nodes.back().as_number(), 17.0);
  const Json ev = svc.handle(Json::parse(
      R"({"op":"event","fabric":"t","kind":"link-down","id":0})"));
  ASSERT_TRUE(ev.boolean("ok")) << ev.str("error");
  EXPECT_EQ(ev.num("epoch"), 2.0);
  const Json log =
      svc.handle(Json::parse(R"({"op":"reconfig-log","fabric":"t"})"));
  ASSERT_TRUE(log.boolean("ok"));
  // The embedded ReconfigLog is itself valid JSON with both transitions.
  const Json parsed_log = Json::parse(log.str("log"));
  EXPECT_EQ(parsed_log.find("records")->items().size(), 2u);
  ASSERT_TRUE(
      svc.handle(Json::parse(R"({"op":"unload","fabric":"t"})")).boolean("ok"));
  EXPECT_FALSE(
      svc.handle(Json::parse(R"({"op":"route","fabric":"t","src":9,"dst":17})"))
          .boolean("ok"));
}

std::string temp_socket_path(const char* tag) {
  return "/tmp/nue_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

// The acceptance scenario: two shards, a fault/repair storm applied over
// the protocol, route queries hammering both shards concurrently, and a
// byte-identical cross-check against the offline replay path.
TEST(Daemon, ConcurrentQueriesDuringFaultStormMatchOfflineReplay) {
  // Fabric a deliberately uses the churn configuration that is known to
  // force union-gate failures (see test_waves.cpp): the storm drives the
  // manager through multi-epoch wave chains while clients are mid-query,
  // so the monotone-epoch assertions below cover intermediate wave
  // commits, not just ordinary swaps.
  const std::string spec_a = "torus:3x3:1";
  const std::string spec_b = "random:20:50:2";
  resilience::RepairPolicy pol_a;
  pol_a.engine = resilience::Engine::kNue;
  pol_a.vls = 2;
  pol_a.max_vls = 4;
  pol_a.seed = 29;
  pol_a.num_threads = 1;
  pol_a.log_max_records = 64;
  resilience::RepairPolicy pol_b = pol_a;
  pol_b.engine = resilience::Engine::kDfsssp;
  pol_b.vls = 4;
  pol_b.max_vls = 8;

  // The event storm, drawn offline so the daemon and the reference
  // replay consume the identical sequence.
  const FaultTrace storm = draw_fault_trace(generate_topology(spec_a).net,
                                            spec_a, 29, 300, 0.5);
  ASSERT_GE(storm.events.size(), 150u);

  ManagerService svc;
  svc.load("a", spec_a, pol_a);
  svc.load("b", spec_b, pol_b);
  const std::string path = temp_socket_path("daemon");
  SocketServer server(path, svc);
  std::thread serve_thread([&server] { server.serve(); });

  // Query workers: one connection each, alternating shards, recording
  // per-connection epochs (which must be monotone — table snapshots can
  // only move forward) and validating every successful path's shape.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok_routes{0};
  std::atomic<std::uint64_t> dead_dest_routes{0};
  std::atomic<bool> failed{false};
  const auto worker = [&](std::uint32_t salt) {
    try {
      Client client(path);
      std::uint64_t last_epoch_a = 0;
      std::uint64_t iter = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ++iter;
        const bool on_a = (iter + salt) % 3 != 0;
        // Fabric a: terminals are nodes 9..17; fabric b: 20..59.
        const std::uint32_t lo = on_a ? 9 : 20;
        const std::uint32_t n = on_a ? 9 : 40;
        const auto src = static_cast<std::uint32_t>(
            lo + (iter * 7 + salt) % n);
        auto dst =
            static_cast<std::uint32_t>(lo + (iter * 13 + salt * 5) % n);
        if (dst == src) dst = lo + (dst + 1 - lo) % n;
        Json req = Json::object();
        req.set("op", "route");
        req.set("fabric", on_a ? "a" : "b");
        req.set("src", src);
        req.set("dst", dst);
        const Json resp = client.request(req);
        const auto epoch = static_cast<std::uint64_t>(resp.num("epoch"));
        if (resp.boolean("ok")) {
          ok_routes.fetch_add(1, std::memory_order_relaxed);
          const auto& nodes = resp.find("nodes")->items();
          if (nodes.front().as_number() != src ||
              nodes.back().as_number() != dst ||
              resp.num("hops") + 1 != static_cast<double>(nodes.size())) {
            ADD_FAILURE() << "malformed path: " << resp.dump();
            failed.store(true);
            return;
          }
        } else {
          // Legal only while the destination (or a hop) is dead mid-storm;
          // still must carry a committed epoch.
          dead_dest_routes.fetch_add(1, std::memory_order_relaxed);
        }
        if (epoch < 1) {
          ADD_FAILURE() << "response from uncommitted epoch: " << resp.dump();
          failed.store(true);
          return;
        }
        if (on_a) {
          if (epoch < last_epoch_a) {
            ADD_FAILURE() << "epoch went backwards: " << epoch << " < "
                          << last_epoch_a;
            failed.store(true);
            return;
          }
          last_epoch_a = epoch;
        }
      }
    } catch (const std::exception& e) {
      ADD_FAILURE() << "query worker died: " << e.what();
      failed.store(true);
    }
  };
  std::vector<std::thread> workers;
  for (std::uint32_t i = 0; i < 4; ++i) workers.emplace_back(worker, i);

  // The storm, over the wire, while the workers hammer both shards. Wave
  // chains surface in the event response: a chain's "epoch" is its final
  // committed epoch and "waves" its chain length, so the daemon-side
  // epoch must advance by exactly the chain length — the intermediates
  // were committed (and were visible to the query workers), never
  // skipped.
  std::uint64_t wave_chains = 0, wave_epochs = 0;
  {
    Client events(path);
    std::uint64_t last_epoch = 1;
    for (const FaultEvent& e : storm.events) {
      Json req = Json::object();
      req.set("op", "event");
      req.set("fabric", "a");
      req.set("kind", fault_event_name(e.kind));
      req.set("id", e.id);
      const Json resp = events.request(req);
      ASSERT_TRUE(resp.boolean("ok")) << resp.str("error");
      const auto epoch = static_cast<std::uint64_t>(resp.num("epoch"));
      const auto waves = static_cast<std::uint64_t>(resp.num("waves"));
      if (waves > 0) {
        ++wave_chains;
        wave_epochs += waves;
        ASSERT_GE(waves, 2u) << resp.dump();
        ASSERT_EQ(epoch, last_epoch + waves) << resp.dump();
        ASSERT_FALSE(resp.boolean("drained")) << resp.dump();
      } else {
        ASSERT_LE(epoch, last_epoch + 1) << resp.dump();
      }
      last_epoch = epoch;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  ASSERT_FALSE(failed.load());
  EXPECT_GT(ok_routes.load(), 0u) << "storm never saw a successful query";
  EXPECT_GT(wave_chains, 0u)
      << "storm no longer exercises mid-wave daemon reads";

  // The per-shard status op reports the same wave history the event
  // responses accumulated — the operator-visible zero-drain evidence.
  {
    Client client(path);
    const Json status = client.request(Json::parse(R"({"op":"status"})"));
    ASSERT_TRUE(status.boolean("ok"));
    for (const Json& fab : status.find("fabrics")->items()) {
      if (fab.str("fabric") != "a") continue;
      EXPECT_EQ(static_cast<std::uint64_t>(fab.num("zero_drain_saves")),
                wave_chains);
      EXPECT_EQ(static_cast<std::uint64_t>(fab.num("waves")), wave_epochs);
      EXPECT_EQ(fab.num("drained"), 0.0) << fab.dump();
      const Json* rungs = fab.find("rungs");
      ASSERT_NE(rungs, nullptr);
      EXPECT_EQ(static_cast<std::uint64_t>(rungs->num("wave")),
                wave_epochs - wave_chains)
          << "one intermediate 'wave' rung per non-final chain epoch";
    }
  }

  // Offline reference: same fabric, same policy, same events — the
  // daemon's final table must be byte-identical to the one-shot replay.
  resilience::ResilienceManager offline(generate_topology(spec_a).net, pol_a);
  for (const FaultEvent& e : storm.events) offline.apply(e);
  std::ostringstream expected;
  write_forwarding_tables(expected, offline.net(), *offline.table());

  Client client(path);
  Json treq = Json::object();
  treq.set("op", "tables");
  treq.set("fabric", "a");
  const Json tables = client.request(treq);
  ASSERT_TRUE(tables.boolean("ok")) << tables.str("error");
  EXPECT_EQ(static_cast<std::uint64_t>(tables.num("epoch")),
            offline.epoch());
  EXPECT_EQ(tables.str("dump"), expected.str())
      << "daemon tables diverged from the offline replay";

  // Shard b was pristine throughout: its dump must equal a fresh route.
  resilience::ResilienceManager offline_b(generate_topology(spec_b).net,
                                          pol_b);
  std::ostringstream expected_b;
  write_forwarding_tables(expected_b, offline_b.net(), *offline_b.table());
  Json breq = Json::object();
  breq.set("op", "tables");
  breq.set("fabric", "b");
  const Json tables_b = client.request(breq);
  ASSERT_TRUE(tables_b.boolean("ok"));
  EXPECT_EQ(tables_b.str("dump"), expected_b.str());

  // Graceful shutdown over the protocol: serve() drains and returns.
  Json shutdown = Json::object();
  shutdown.set("op", "shutdown");
  EXPECT_TRUE(client.request(shutdown).boolean("ok"));
  serve_thread.join();
  EXPECT_TRUE(svc.shutdown_requested());
}

TEST(Daemon, StormOpAndStatusCounters) {
  ManagerService svc;
  resilience::RepairPolicy pol;
  pol.engine = resilience::Engine::kNue;
  pol.vls = 2;
  pol.seed = 9;
  pol.num_threads = 1;
  pol.log_max_records = 32;
  svc.load("t", "torus:3x3:1", pol);
  const std::string path = temp_socket_path("storm");
  SocketServer server(path, svc);
  std::thread serve_thread([&server] { server.serve(); });
  {
    Client client(path);
    const Json storm = client.request(Json::parse(
        R"({"op":"storm","fabric":"t","events":20,"seed":4,"req_id":"s1"})"));
    ASSERT_TRUE(storm.boolean("ok")) << storm.str("error");
    EXPECT_EQ(storm.str("req_id"), "s1");
    EXPECT_EQ(storm.num("events"), 20.0);
    EXPECT_EQ(storm.num("transitions") + storm.num("noops"), 20.0);
    const Json status = client.request(Json::parse(R"({"op":"status"})"));
    ASSERT_TRUE(status.boolean("ok"));
    const auto& fabrics = status.find("fabrics")->items();
    ASSERT_EQ(fabrics.size(), 1u);
    EXPECT_EQ(fabrics[0].num("events"), 20.0);
    EXPECT_EQ(fabrics[0].str("engine"), "nue");
    EXPECT_GE(fabrics[0].num("epoch"), 1.0);
  }
  server.stop();
  serve_thread.join();
}

}  // namespace
}  // namespace nue
