#include <gtest/gtest.h>

#include <sstream>

#include "topology/fabric_io.hpp"
#include "topology/torus.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

TEST(FabricIo, ParsesBasicFabric) {
  std::istringstream in(R"(# tiny fabric
switch a
switch b
terminal t0
terminal t1
link a b 2
link t0 a
link t1 b
)");
  Network net = read_fabric(in);
  EXPECT_EQ(net.num_alive_switches(), 2u);
  EXPECT_EQ(net.num_alive_terminals(), 2u);
  EXPECT_EQ(net.num_alive_channels(), 8u);  // 4 duplex links
  EXPECT_EQ(net.degree(0), 3u);             // 2 parallel to b + terminal
}

TEST(FabricIo, RejectsUnknownNode) {
  std::istringstream in("switch a\nlink a b\n");
  EXPECT_THROW(read_fabric(in), std::logic_error);
}

TEST(FabricIo, RejectsDuplicateName) {
  std::istringstream in("switch a\nswitch a\n");
  EXPECT_THROW(read_fabric(in), std::logic_error);
}

TEST(FabricIo, RejectsUnknownKeyword) {
  std::istringstream in("router a\n");
  EXPECT_THROW(read_fabric(in), std::logic_error);
}

TEST(FabricIo, RejectsMultiLinkTerminal) {
  std::istringstream in(R"(switch a
switch b
terminal t
link t a
link t b
)");
  EXPECT_THROW(read_fabric(in), std::logic_error);
}

TEST(FabricIo, RoundTripPreservesStructure) {
  TorusSpec spec{{3, 4}, 2, 2};
  Network orig = make_torus(spec);
  std::ostringstream out;
  write_fabric(out, orig);
  std::istringstream in(out.str());
  Network back = read_fabric(in);
  EXPECT_EQ(back.num_alive_switches(), orig.num_alive_switches());
  EXPECT_EQ(back.num_alive_terminals(), orig.num_alive_terminals());
  EXPECT_EQ(back.num_alive_channels(), orig.num_alive_channels());
  // Degree multiset must match.
  auto degrees = [](const Network& n) {
    std::vector<std::size_t> d;
    for (NodeId v = 0; v < n.num_nodes(); ++v) {
      if (n.node_alive(v)) d.push_back(n.degree(v));
    }
    std::sort(d.begin(), d.end());
    return d;
  };
  EXPECT_EQ(degrees(back), degrees(orig));
}

TEST(FabricIo, RoundTripAfterFailures) {
  Network orig = test::make_ring(6, 2);
  // Kill switch 0 and its now-orphaned terminals (as fault injection does).
  std::vector<NodeId> orphans;
  for (ChannelId c : orig.out(0)) {
    if (orig.is_terminal(orig.dst(c))) orphans.push_back(orig.dst(c));
  }
  orig.remove_node(0);
  for (NodeId t : orphans) orig.remove_node(t);
  std::ostringstream out;
  write_fabric(out, orig);
  std::istringstream in(out.str());
  Network back = read_fabric(in);
  // Dead nodes and their links are simply absent from the file.
  EXPECT_EQ(back.num_alive_switches(), 5u);
  EXPECT_EQ(back.num_alive_terminals(), 10u);
}

}  // namespace
}  // namespace nue
