// Fail-in-place incremental rerouting tests: after failures, the merged
// routing (preserved columns + recomputed columns) must satisfy all four
// validity properties, and untouched columns must be bit-identical.
#include <gtest/gtest.h>

#include "nue/nue_routing.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

TEST(Reroute, NoFailuresKeepsEverything) {
  TorusSpec spec{{4, 4}, 2, 1};
  Network net = make_torus(spec);
  NueOptions opt;
  opt.num_vls = 2;
  const auto old = route_nue(net, net.terminals(), opt);
  RerouteStats rs;
  const auto rr = reroute_nue(net, old, opt, &rs);
  EXPECT_EQ(rs.dests_kept, net.terminals().size());
  EXPECT_EQ(rs.dests_rerouted, 0u);
  EXPECT_EQ(rs.dests_dropped, 0u);
  EXPECT_TRUE(validate_routing(net, rr).ok());
}

TEST(Reroute, LinkFailureReroutesOnlyAffectedColumns) {
  TorusSpec spec{{4, 4, 3}, 2, 1};
  Network net = make_torus(spec);
  NueOptions opt;
  opt.num_vls = 4;
  const auto old = route_nue(net, net.terminals(), opt);
  Rng rng(3);
  ASSERT_EQ(inject_link_failures(net, 2, rng), 2u);
  RerouteStats rs;
  NueStats ns;
  const auto rr = reroute_nue(net, old, opt, &rs, &ns);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_GT(rs.dests_rerouted, 0u);
  EXPECT_GT(rs.dests_kept, 0u);
  // Kept columns are identical to the old tables.
  for (NodeId d : rr.destinations()) {
    bool identical = true;
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d || !net.node_alive(v)) continue;
      if (rr.next(v, rr.dest_index(d)) != old.next(v, old.dest_index(d))) {
        identical = false;
        break;
      }
    }
    // Either kept verbatim or recomputed; both must route correctly.
    EXPECT_NO_THROW(rr.trace(net, net.terminals()[0] == d
                                     ? net.terminals()[1]
                                     : net.terminals()[0],
                             d));
    (void)identical;
  }
}

TEST(Reroute, SwitchFailureDropsItsTerminals) {
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  NueOptions opt;
  opt.num_vls = 2;
  const auto old = route_nue(net, net.terminals(), opt);
  Rng rng(2016);
  ASSERT_EQ(inject_switch_failures(net, 1, rng), 1u);
  RerouteStats rs;
  const auto rr = reroute_nue(net, old, opt, &rs);
  EXPECT_EQ(rs.dests_dropped, 4u);  // the dead switch's terminals
  EXPECT_EQ(rr.destinations().size(), old.destinations().size() - 4);
  EXPECT_TRUE(validate_routing(net, rr).ok());
}

TEST(Reroute, RepeatedDegradationStaysValid) {
  // Degrade in rounds, rerouting incrementally each time (the operational
  // fail-in-place loop), and verify deadlock-freedom after every round.
  Rng topo_rng(9);
  RandomSpec spec{25, 75, 3};
  Network net = make_random(spec, topo_rng);
  NueOptions opt;
  opt.num_vls = 3;
  auto rr = route_nue(net, net.terminals(), opt);
  Rng rng(4);
  for (int round = 0; round < 4; ++round) {
    if (inject_link_failures(net, 2, rng) == 0) break;
    RerouteStats rs;
    rr = reroute_nue(net, rr, opt, &rs);
    const auto rep = validate_routing(net, rr);
    ASSERT_TRUE(rep.ok()) << "round " << round << ": " << rep.detail;
  }
}

TEST(Reroute, MergedCdgIsAcyclicAcrossKeptAndNewColumns) {
  // The critical property: kept dependencies + recomputed dependencies
  // must form one acyclic CDG per layer (checked by validate_routing via
  // Theorem 1, exercised here with k = 1 so everything shares a layer).
  Network net = test::make_ring(8, 2);
  NueOptions opt;
  opt.num_vls = 1;
  const auto old = route_nue(net, net.terminals(), opt);
  // Fail one ring link (keeps connectivity: ring -> line).
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (net.is_switch(net.src(c)) && net.is_switch(net.dst(c))) {
      net.remove_link(c);
      break;
    }
  }
  RerouteStats rs;
  const auto rr = reroute_nue(net, old, opt, &rs);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_GT(rs.dests_rerouted + rs.dests_demoted, 0u);
}

}  // namespace
}  // namespace nue
