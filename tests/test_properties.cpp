// Large parameterized property sweeps: every routing engine must uphold
// its contract across topology families, VL budgets and seeds. These are
// the "Nue never fails" (Lemmas 1-3) and Theorem-1 guarantees exercised at
// breadth.
#include <gtest/gtest.h>

#include <tuple>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/lash.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

enum class Family { kRandom, kTorus, kFatTree, kKautz, kDragonfly, kFaulty };

const char* family_name(Family f) {
  switch (f) {
    case Family::kRandom: return "Random";
    case Family::kTorus: return "Torus";
    case Family::kFatTree: return "FatTree";
    case Family::kKautz: return "Kautz";
    case Family::kDragonfly: return "Dragonfly";
    default: return "FaultyTorus";
  }
}

Network build(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::kRandom: {
      Rng rng(seed);
      RandomSpec spec{18, 50, 2};
      return make_random(spec, rng);
    }
    case Family::kTorus: {
      TorusSpec spec{{3, 3, 3}, 2, 1};
      return make_torus(spec);
    }
    case Family::kFatTree: {
      FatTreeSpec spec{3, 3, 3, 0};
      return make_kary_ntree(spec);
    }
    case Family::kKautz: {
      KautzSpec spec{3, 2, 2, 1};
      return make_kautz(spec);
    }
    case Family::kDragonfly: {
      DragonflySpec spec{4, 2, 2, 5};
      return make_dragonfly(spec);
    }
    case Family::kFaulty: {
      TorusSpec spec{{4, 4}, 2, 2};
      Network net = make_torus(spec);
      Rng rng(seed);
      inject_link_failures(net, 3, rng);
      return net;
    }
  }
  NUE_CHECK(false);
  return Network{};
}

// ---------------------------------------------------------------------------

using NueSweepParam = std::tuple<Family, std::uint32_t /*k*/,
                                 std::uint64_t /*seed*/>;

class NueSweep : public ::testing::TestWithParam<NueSweepParam> {};

TEST_P(NueSweep, AlwaysValidAndDeadlockFree) {
  const auto [family, k, seed] = GetParam();
  Network net = build(family, seed);
  NueOptions opt;
  opt.num_vls = k;
  opt.seed = seed;
  NueStats stats;
  const auto rr = route_nue(net, net.terminals(), opt, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << family_name(family) << " k=" << k
                        << " seed=" << seed << ": " << rep.detail;
  // Every destination's VL respects the budget.
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    for (NodeId s : net.terminals()) {
      EXPECT_LT(rr.vl(s, s, static_cast<std::uint32_t>(di)), k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NueSweep,
    ::testing::Combine(::testing::Values(Family::kRandom, Family::kTorus,
                                         Family::kFatTree, Family::kKautz,
                                         Family::kDragonfly, Family::kFaulty),
                       ::testing::Values(1u, 2u, 3u, 5u, 8u),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------

using BaselineParam = std::tuple<Family, std::uint64_t>;

class UpDownSweep : public ::testing::TestWithParam<BaselineParam> {};

TEST_P(UpDownSweep, ValidWithOneVl) {
  const auto [family, seed] = GetParam();
  Network net = build(family, seed);
  const auto rr = route_updown(net, net.terminals());
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << family_name(family) << ": " << rep.detail;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UpDownSweep,
    ::testing::Combine(::testing::Values(Family::kRandom, Family::kTorus,
                                         Family::kFatTree, Family::kKautz,
                                         Family::kDragonfly, Family::kFaulty),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class DfssspSweep : public ::testing::TestWithParam<BaselineParam> {};

TEST_P(DfssspSweep, ValidWithinReportedDemand) {
  const auto [family, seed] = GetParam();
  Network net = build(family, seed);
  DfssspStats stats;
  const auto rr = route_dfsssp(
      net, net.terminals(), {.max_vls = 32, .allow_exceed = true}, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << family_name(family) << ": " << rep.detail;
  EXPECT_GE(stats.vls_needed, 1u);
  // Every path VL lies below the reported demand... after balancing the
  // spread may use more layers, but never above the table size.
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    for (NodeId s : net.terminals()) {
      EXPECT_LT(rr.vl(s, s, static_cast<std::uint32_t>(di)), rr.num_vls());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DfssspSweep,
    ::testing::Combine(::testing::Values(Family::kRandom, Family::kTorus,
                                         Family::kFatTree, Family::kKautz,
                                         Family::kDragonfly, Family::kFaulty),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class LashSweep : public ::testing::TestWithParam<BaselineParam> {};

TEST_P(LashSweep, ValidWithinReportedDemand) {
  const auto [family, seed] = GetParam();
  Network net = build(family, seed);
  LashStats stats;
  const auto rr = route_lash(net, net.terminals(),
                             {.max_vls = 32, .allow_exceed = true}, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << family_name(family) << ": " << rep.detail;
  EXPECT_GE(stats.vls_needed, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LashSweep,
    ::testing::Combine(::testing::Values(Family::kRandom, Family::kTorus,
                                         Family::kFatTree, Family::kKautz,
                                         Family::kDragonfly, Family::kFaulty),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const auto& info) {
      return std::string(family_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nue
