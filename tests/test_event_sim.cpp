// The discrete-event engine's own contract: event accounting, instant
// deadlock detection, timed/incremental injection, idle-time skipping,
// and the wall-clock budget. Cross-engine equivalence lives in
// test_sim_parity.cpp.
#include <gtest/gtest.h>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/validate.hpp"
#include "sim/event_sim.hpp"
#include "sim/traffic.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

using test::make_line;
using test::make_ring;

SimConfig quick_config() {
  SimConfig cfg;
  cfg.deadlock_cycles = 5000;
  cfg.max_cycles = 2'000'000;
  return cfg;
}

TEST(EventSim, ReportsEventAccounting) {
  Network net = make_ring(6, 2);
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  const auto msgs = alltoall_shift_messages(net, 1024);
  const auto res = simulate(net, rr, msgs, quick_config());
  ASSERT_TRUE(res.completed);
  // Every flit movement is at least one work event, plus arrivals.
  EXPECT_GE(res.events_processed, res.flit_hops);
  EXPECT_GT(res.queue_peak, 0u);
}

TEST(EventSim, DetectsDeadlockInstantly) {
  // MinHop on a ring has a cyclic CDG; the cycle engine needs its
  // deadlock_cycles watchdog to expire before it can report the hang. The
  // event engine's queue drains the moment the cyclic wait closes, so the
  // reported cycle count stays far below the watchdog horizon.
  Network net = make_ring(6, 2);
  const auto rr = route_minhop(net, net.terminals());
  ASSERT_FALSE(validate_routing(net, rr).deadlock_free);
  auto cfg = quick_config();
  cfg.buffer_flits = 2;
  const auto msgs = alltoall_shift_messages(net, 4096);
  const auto event = simulate(net, rr, msgs, cfg);
  ASSERT_TRUE(event.deadlocked);
  EXPECT_LT(event.cycles, cfg.deadlock_cycles);
  const auto cycle = simulate_cycle(net, rr, msgs, cfg);
  ASSERT_TRUE(cycle.deadlocked);
  EXPECT_GE(cycle.cycles, cfg.deadlock_cycles);
}

TEST(EventSim, SkipsIdleStretches) {
  // One short message scheduled far in the future: simulated time must
  // cover the gap while the event count stays at the cost of the flits
  // actually moved (a cycle engine would pay ~100k idle scans).
  Network net = make_line(3);
  const auto rr = route_minhop(net, net.terminals());
  EventSimulator sim(net, rr, quick_config());
  sim.inject({net.terminals()[0], net.terminals()[2], 128}, 100'000);
  ASSERT_EQ(sim.run(), SimRunStatus::kCompleted);
  const auto res = sim.result();
  EXPECT_TRUE(res.completed);
  EXPECT_GE(res.cycles, 100'000u);
  EXPECT_LT(res.events_processed, 200u);
}

TEST(EventSim, IncrementalInjectionAcrossRuns) {
  Network net = make_ring(6, 2);
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  const auto t = net.terminals();
  EventSimulator sim(net, rr, quick_config());
  sim.inject({t[0], t[5], 2048}, 1);
  ASSERT_EQ(sim.run(), SimRunStatus::kCompleted);
  const std::uint64_t first_done = sim.now();
  EXPECT_EQ(sim.delivered_packets(), 1u);
  // A second wave after quiescence: the clock keeps advancing.
  sim.inject({t[5], t[0], 2048}, sim.now() + 50);
  sim.inject({t[2], t[7], 2048}, sim.now() + 50);
  ASSERT_EQ(sim.run(), SimRunStatus::kCompleted);
  EXPECT_EQ(sim.delivered_packets(), 3u);
  EXPECT_GT(sim.now(), first_done + 49);
  const auto res = sim.result();
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.delivered_bytes, 3u * 2048u);
}

TEST(EventSim, InjectionTimeBeforeNowIsClamped) {
  Network net = make_line(3);
  const auto rr = route_minhop(net, net.terminals());
  EventSimulator sim(net, rr, quick_config());
  sim.inject({net.terminals()[0], net.terminals()[2], 256}, 1);
  ASSERT_EQ(sim.run(), SimRunStatus::kCompleted);
  sim.inject({net.terminals()[2], net.terminals()[0], 256}, 0);  // the past
  ASSERT_EQ(sim.run(), SimRunStatus::kCompleted);
  EXPECT_EQ(sim.delivered_packets(), 2u);
}

TEST(EventSim, WallBudgetAborts) {
  Network net = make_ring(8, 2);
  const auto rr = route_nue(net, net.terminals(), NueOptions{});
  auto cfg = quick_config();
  cfg.max_wall_ms = 1e-7;  // expires on the first budget check
  const auto msgs = alltoall_shift_messages(net, 8192);
  const auto res = simulate(net, rr, msgs, cfg);
  EXPECT_TRUE(res.hit_wall_budget);
  EXPECT_FALSE(res.completed);
  EXPECT_FALSE(res.deadlocked);
}

TEST(EventSim, AdaptiveRunsOnEventEngine) {
  // simulate_adaptive is served by the event engine too: completes on a
  // deadlock-prone fabric thanks to the escape lane, and reports events.
  Network net = make_ring(6, 2);
  const auto escape = route_nue(net, net.terminals(), NueOptions{});
  ASSERT_EQ(escape.num_vls(), 1u);
  auto cfg = quick_config();
  cfg.buffer_flits = 2;
  const auto msgs = alltoall_shift_messages(net, 4096);
  const auto res = simulate_adaptive(net, escape, 2, msgs, cfg);
  EXPECT_TRUE(res.completed) << "cycles=" << res.cycles;
  EXPECT_GE(res.events_processed, res.flit_hops);
}

}  // namespace
}  // namespace nue
