// Live resilience manager tests (docs/RESILIENCE.md): runtime repair
// primitives, the replayable fault-trace format, and the manager's
// event -> repair -> gate -> swap loop, including the repair ladder's
// descent and the union-CDG transition gate on real event streams.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "resilience/resilience.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

bool same_liveness(const Network& a, const Network& b) {
  if (a.num_nodes() != b.num_nodes() || a.num_channels() != b.num_channels())
    return false;
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    if (a.node_alive(v) != b.node_alive(v)) return false;
  }
  for (ChannelId c = 0; c < a.num_channels(); ++c) {
    if (a.channel_alive(c) != b.channel_alive(c)) return false;
  }
  return true;
}

// --- runtime repair primitives ----------------------------------------------

TEST(FaultRepair, RestoreLinkRoundTrip) {
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const Network pristine = net;
  Rng rng(7);
  ASSERT_EQ(inject_link_failures(net, 3, rng), 3u);
  EXPECT_FALSE(same_liveness(net, pristine));
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (!net.channel_alive(c)) restore_link(net, c);
  }
  EXPECT_TRUE(same_liveness(net, pristine));
}

TEST(FaultRepair, RestoreSwitchRevivesLinksAndTerminals) {
  TorusSpec spec{{3, 3}, 2, 1};
  Network net = make_torus(spec);
  const Network pristine = net;
  Rng rng(5);
  ASSERT_EQ(inject_switch_failures(net, 1, rng), 1u);
  NodeId dead = kInvalidNode;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (net.is_switch(v) && !net.node_alive(v)) dead = v;
  }
  ASSERT_NE(dead, kInvalidNode);
  EXPECT_GT(restore_switch(net, dead), 0u);
  EXPECT_TRUE(same_liveness(net, pristine));
}

TEST(FaultRepair, IllegalRestoresThrow) {
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  // Restoring an alive link / switch is a contract violation, not a noop.
  EXPECT_THROW(restore_link(net, 0), std::logic_error);
  EXPECT_THROW(restore_switch(net, net.switches().front()),
               std::logic_error);
}

// --- replayable fault traces ------------------------------------------------

TEST(FaultTraceIo, RoundTripsByteForByte) {
  TorusSpec spec{{3, 3, 3}, 2, 1};
  Network net = make_torus(spec);
  const FaultTrace t = draw_fault_trace(net, "torus:3x3x3:2", 11, 12, 0.4);
  ASSERT_FALSE(t.events.empty());
  std::ostringstream first;
  write_fault_trace(first, t);
  std::istringstream in(first.str());
  const FaultTrace u = read_fault_trace(in);
  std::ostringstream second;
  write_fault_trace(second, u);
  EXPECT_EQ(first.str(), second.str());
  ASSERT_EQ(t.events.size(), u.events.size());
  for (std::size_t i = 0; i < t.events.size(); ++i) {
    EXPECT_EQ(t.events[i].kind, u.events[i].kind);
    EXPECT_EQ(t.events[i].id, u.events[i].id);
  }
  EXPECT_EQ(t.generate, u.generate);
  EXPECT_EQ(t.seed, u.seed);
}

TEST(FaultTraceIo, DrawnTracesAreReplayable) {
  // Every drawn event must be legal when applied in order — that is the
  // trace format's whole contract.
  TorusSpec spec{{3, 3}, 1, 1};
  Network net = make_torus(spec);
  const FaultTrace t = draw_fault_trace(net, "torus:3x3:1", 3, 10, 0.5);
  for (const FaultEvent& e : t.events) {
    EXPECT_NO_THROW(apply_fault_event(net, e)) << e.label();
  }
}

// --- the manager's event loop -----------------------------------------------

TEST(ResilienceManager, EventStreamKeepsValidatedTableUp) {
  TorusSpec spec{{3, 3, 3}, 1, 1};
  const FaultTrace trace =
      draw_fault_trace(make_torus(spec), "torus:3x3x3:1", 5, 12, 0.4);
  ASSERT_FALSE(trace.events.empty());

  resilience::RepairPolicy policy;
  policy.vls = 4;
  resilience::ResilienceManager mgr(make_torus(spec), policy);
  EXPECT_EQ(mgr.epoch(), 1u);
  ASSERT_EQ(mgr.log().records().size(), 1u);
  EXPECT_TRUE(validate_routing(mgr.net(), *mgr.table()).ok());

  // The reconfiguration oracle: every committed epoch re-validates on the
  // post-event fabric — except intermediate wave epochs, whose design is
  // bounded staleness and whose safety claim is the pairwise union with
  // their predecessor (re-proved for every commit that claims hitless).
  std::size_t commits = 0;
  mgr.set_commit_hook([&](const Network& n, const RoutingResult* old,
                          const RoutingResult& rr,
                          const TransitionRecord& rec) {
    ++commits;
    const bool intermediate =
        rec.wave_count > 0 && rec.wave_index < rec.wave_count;
    if (!intermediate) {
      const auto rep = validate_routing(n, rr);
      EXPECT_TRUE(rep.ok()) << rec.event << ": " << rep.detail;
    }
    if (rec.hitless) {
      ASSERT_NE(old, nullptr);
      EXPECT_TRUE(union_cdg_acyclic(n, *old, rr)) << rec.event;
    }
  });

  const std::shared_ptr<const RoutingResult> snapshot = mgr.table();
  const auto records = mgr.replay(trace);
  ASSERT_EQ(records.size(), trace.events.size());

  std::size_t noops = 0, swaps = 0, wave_intermediates = 0;
  for (const TransitionRecord& r : records) {
    if (r.committed_step == "noop") {
      ++noops;
      EXPECT_FALSE(r.union_gate_checked);
      continue;
    }
    ++swaps;
    if (r.wave_count > 0) {
      // apply() returns a chain's final record; the intermediates were
      // committed and logged on the way.
      EXPECT_EQ(r.wave_index, r.wave_count);
      wave_intermediates += r.wave_count - 1;
    }
    // Every non-noop transition went through the gate and was resolved
    // one way or the other — never silently skipped.
    EXPECT_TRUE(r.union_gate_checked) << r.event;
    EXPECT_TRUE(r.hitless || r.drained) << r.event;
    EXPECT_FALSE(r.verdicts.empty());
  }
  EXPECT_EQ(commits, swaps + wave_intermediates);
  EXPECT_EQ(mgr.epoch(), 1u + swaps + wave_intermediates);
  EXPECT_EQ(mgr.log().records().size(),
            1u + trace.events.size() + wave_intermediates);
  EXPECT_EQ(mgr.log().summarize().noops, noops);
  if (swaps > 0) {
    // Double buffering: the pre-replay snapshot is untouched; readers
    // holding it kept routing on a complete table throughout.
    EXPECT_NE(mgr.table().get(), snapshot.get());
    EXPECT_TRUE(validate_routing(mgr.net(), *mgr.table()).ok());
  }
}

TEST(ResilienceManager, IllegalEventThrowsAndLeavesStateIntact) {
  resilience::RepairPolicy policy;
  policy.vls = 2;
  TorusSpec spec{{3, 3}, 1, 1};
  resilience::ResilienceManager mgr(make_torus(spec), policy);
  const auto table_before = mgr.table();
  FaultEvent restore_alive;
  restore_alive.kind = FaultEventKind::kLinkRestore;
  restore_alive.id = 0;  // channel 0 is alive — restoring it is illegal
  EXPECT_THROW(mgr.apply(restore_alive), std::logic_error);
  EXPECT_EQ(mgr.epoch(), 1u);
  EXPECT_EQ(mgr.table().get(), table_before.get());
  EXPECT_EQ(mgr.log().records().size(), 1u);
}

TEST(ResilienceManager, HitlessRepairTouchesOnlyAffectedColumns) {
  TorusSpec spec{{3, 3, 3}, 1, 1};
  resilience::RepairPolicy policy;
  policy.vls = 4;
  resilience::ResilienceManager mgr(make_torus(spec), policy);
  const FaultTrace trace =
      draw_fault_trace(mgr.net(), "torus:3x3x3:1", 9, 6, 0.0);
  const std::shared_ptr<const RoutingResult> old = mgr.table();
  for (const FaultEvent& e : trace.events) {
    const TransitionRecord rec = mgr.apply(e);
    if (rec.committed_step != "incremental" || !rec.hitless) continue;
    // An incremental hitless repair must be a real diff: some columns
    // kept, and the kept ones spliced bit-for-bit from the old epoch.
    EXPECT_LT(rec.affected_dests, rec.total_dests) << rec.event;
    const auto now = mgr.table();
    std::vector<NodeId> affected = affected_destinations(mgr.net(), *old);
    std::size_t kept_identical = 0;
    for (NodeId d : now->destinations()) {
      if (!old->is_destination(d)) continue;
      if (std::find(affected.begin(), affected.end(), d) != affected.end())
        continue;
      bool identical = true;
      for (NodeId v = 0; v < mgr.net().num_nodes(); ++v) {
        if (v == d || !mgr.net().node_alive(v)) continue;
        if (now->next(v, now->dest_index(d)) !=
            old->next(v, old->dest_index(d))) {
          identical = false;
          break;
        }
      }
      if (identical) ++kept_identical;
    }
    EXPECT_GT(kept_identical, 0u) << rec.event;
    return;  // one verified hitless incremental repair is enough
  }
  GTEST_SKIP() << "no hitless incremental repair in this trace";
}

TEST(ResilienceManager, LadderDescendsWhenTheEngineCannotDeliver) {
  // DF-SSSP with a single VL cannot break the ring's dependency cycle, and
  // with max_vls == vls there is no more-vls rung: the initial commit must
  // descend to the Nue fallback (which Lemma 3 guarantees for k = 1), and
  // the failed rung's verdict must be on record.
  resilience::RepairPolicy policy;
  policy.engine = resilience::Engine::kDfsssp;
  policy.vls = 1;
  policy.max_vls = 1;
  resilience::ResilienceManager mgr(test::make_ring(6), policy);
  const TransitionRecord& rec = mgr.log().records().front();
  EXPECT_EQ(rec.committed_step, "nue-fallback");
  ASSERT_GE(rec.verdicts.size(), 2u);
  EXPECT_NE(rec.verdicts.front().find("full-recompute"), std::string::npos);
  EXPECT_TRUE(validate_routing(mgr.net(), *mgr.table()).ok());
}

TEST(ResilienceManager, EngineNamesRoundTrip) {
  using resilience::Engine;
  for (Engine e : {Engine::kNue, Engine::kDfsssp, Engine::kLash,
                   Engine::kUpDown}) {
    const auto back = resilience::engine_from_name(engine_name(e));
    ASSERT_TRUE(back.has_value()) << engine_name(e);
    EXPECT_EQ(*back, e);
  }
  EXPECT_FALSE(resilience::engine_from_name("minhop").has_value());
}

}  // namespace
}  // namespace nue
