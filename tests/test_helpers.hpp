// Shared fixtures: small hand-built networks used across the test suite,
// including the paper's running example (5-node ring with shortcut,
// Fig. 2a) and the binary-tree impasse network (Fig. 7a).
#pragma once

#include <vector>

#include "graph/network.hpp"

namespace nue::test {

/// Ring of n switches with one terminal each.
inline Network make_ring(std::uint32_t n, std::uint32_t terminals = 1) {
  Network net;
  for (std::uint32_t i = 0; i < n; ++i) net.add_switch();
  for (std::uint32_t i = 0; i < n; ++i) net.add_link(i, (i + 1) % n);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t t = 0; t < terminals; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, i);
    }
  }
  return net;
}

/// Path (line) of n switches with one terminal each.
inline Network make_line(std::uint32_t n, std::uint32_t terminals = 1) {
  Network net;
  for (std::uint32_t i = 0; i < n; ++i) net.add_switch();
  for (std::uint32_t i = 0; i + 1 < n; ++i) net.add_link(i, i + 1);
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t t = 0; t < terminals; ++t) {
      const NodeId term = net.add_terminal();
      net.add_link(term, i);
    }
  }
  return net;
}

/// The paper's Fig. 2a: 5-node ring n1..n5 with a shortcut n3–n5.
/// Node ids: n1 = 0, ..., n5 = 4 (switch-only network).
inline Network make_paper_ring() {
  Network net;
  for (int i = 0; i < 5; ++i) net.add_switch();
  net.add_link(0, 1);  // n1 - n2
  net.add_link(1, 2);  // n2 - n3
  net.add_link(2, 3);  // n3 - n4
  net.add_link(3, 4);  // n4 - n5
  net.add_link(4, 0);  // n5 - n1
  net.add_link(2, 4);  // n3 - n5 shortcut
  return net;
}

/// Same topology with one terminal per switch (for routing tests that
/// need terminal destinations).
inline Network make_paper_ring_with_terminals() {
  Network net = make_paper_ring();
  for (NodeId sw = 0; sw < 5; ++sw) {
    const NodeId t = net.add_terminal();
    net.add_link(t, sw);
  }
  return net;
}

}  // namespace nue::test
