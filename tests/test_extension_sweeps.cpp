// Parameterized sweeps over the extension subsystems: incremental
// rerouting, the compiled InfiniBand tables, and the adaptive escape-lane
// simulator — each across topology families and seeds.
#include <gtest/gtest.h>

#include <tuple>

#include "nue/nue_routing.hpp"
#include "routing/ib_tables.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

enum class Fam { kRandom, kTorus, kFatTree, kHyperX, kDragonfly };

const char* fam_name(Fam f) {
  switch (f) {
    case Fam::kRandom: return "Random";
    case Fam::kTorus: return "Torus";
    case Fam::kFatTree: return "FatTree";
    case Fam::kHyperX: return "HyperX";
    default: return "Dragonfly";
  }
}

Network build_fam(Fam f, std::uint64_t seed) {
  switch (f) {
    case Fam::kRandom: {
      Rng rng(seed);
      RandomSpec spec{20, 55, 2};
      return make_random(spec, rng);
    }
    case Fam::kTorus: {
      TorusSpec spec{{3, 3, 3}, 2, 1};
      return make_torus(spec);
    }
    case Fam::kFatTree: {
      FatTreeSpec spec{3, 3, 3, 0};
      return make_kary_ntree(spec);
    }
    case Fam::kHyperX: {
      HyperXSpec spec;
      spec.shape = {3, 3};
      spec.terminals_per_switch = 2;
      return make_hyperx(spec);
    }
    case Fam::kDragonfly: {
      DragonflySpec spec{4, 2, 2, 5};
      return make_dragonfly(spec);
    }
  }
  NUE_CHECK(false);
  return Network{};
}

using SweepParam = std::tuple<Fam, std::uint64_t>;

class RerouteSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RerouteSweep, IncrementalRerouteStaysDeadlockFree) {
  const auto [fam, seed] = GetParam();
  Network net = build_fam(fam, seed);
  NueOptions opt;
  opt.num_vls = 2;
  opt.seed = seed;
  auto rr = route_nue(net, net.terminals(), opt);
  Rng rng(seed + 50);
  for (int round = 0; round < 3; ++round) {
    if (inject_link_failures(net, 1, rng) == 0) break;
    RerouteStats rs;
    rr = reroute_nue(net, rr, opt, &rs);
    const auto rep = validate_routing(net, rr);
    ASSERT_TRUE(rep.ok())
        << fam_name(fam) << " seed " << seed << " round " << round << ": "
        << rep.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RerouteSweep,
    ::testing::Combine(::testing::Values(Fam::kRandom, Fam::kTorus,
                                         Fam::kFatTree, Fam::kHyperX,
                                         Fam::kDragonfly),
                       ::testing::Values(1ull, 2ull, 3ull)),
    [](const auto& info) {
      return std::string(fam_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class IbTableSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(IbTableSweep, CompilationFaithfulForNue) {
  const auto [fam, seed] = GetParam();
  Network net = build_fam(fam, seed);
  for (std::uint32_t k : {1u, 3u}) {
    NueOptions opt;
    opt.num_vls = k;
    opt.seed = seed;
    const auto rr = route_nue(net, net.terminals(), opt);
    EXPECT_TRUE(verify_compiled(net, rr, compile_ib_tables(net, rr)))
        << fam_name(fam) << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IbTableSweep,
    ::testing::Combine(::testing::Values(Fam::kRandom, Fam::kTorus,
                                         Fam::kFatTree, Fam::kHyperX,
                                         Fam::kDragonfly),
                       ::testing::Values(4ull, 5ull)),
    [](const auto& info) {
      return std::string(fam_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

class AdaptiveSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(AdaptiveSweep, EscapeLaneGuaranteesCompletion) {
  const auto [fam, seed] = GetParam();
  Network net = build_fam(fam, seed);
  const auto escape = route_updown(net, net.terminals());
  ASSERT_TRUE(validate_routing(net, escape).ok());
  SimConfig cfg;
  cfg.buffer_flits = 2;
  cfg.deadlock_cycles = 20000;
  const auto msgs = alltoall_shift_messages(net, 1024, 6);
  const auto res = simulate_adaptive(net, escape, 2, msgs, cfg);
  EXPECT_TRUE(res.completed) << fam_name(fam) << " seed " << seed;
  EXPECT_EQ(res.delivered_packets, msgs.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdaptiveSweep,
    ::testing::Combine(::testing::Values(Fam::kRandom, Fam::kTorus,
                                         Fam::kFatTree, Fam::kHyperX,
                                         Fam::kDragonfly),
                       ::testing::Values(7ull, 8ull)),
    [](const auto& info) {
      return std::string(fam_name(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// --- simulator conservation / determinism properties ------------------------

TEST(SimProperties, DeterministicAcrossRuns) {
  Network net = build_fam(Fam::kTorus, 0);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto msgs = alltoall_shift_messages(net, 1024, 4);
  const auto r1 = simulate(net, rr, msgs, SimConfig{});
  const auto r2 = simulate(net, rr, msgs, SimConfig{});
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.flit_hops, r2.flit_hops);
  EXPECT_EQ(r1.delivered_bytes, r2.delivered_bytes);
}

TEST(SimProperties, ByteConservationAcrossConfigs) {
  Network net = build_fam(Fam::kRandom, 2);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto msgs = alltoall_shift_messages(net, 1500, 5);
  std::uint64_t expect = 0;
  for (const auto& m : msgs) expect += m.bytes;
  for (std::uint32_t buf : {1u, 4u, 16u}) {
    SimConfig cfg;
    cfg.buffer_flits = buf;
    const auto res = simulate(net, rr, msgs, cfg);
    ASSERT_TRUE(res.completed) << "buffer " << buf;
    EXPECT_EQ(res.delivered_bytes, expect) << "buffer " << buf;
  }
}

TEST(SimProperties, SmallerBuffersNeverSpeedThingsUp) {
  Network net = build_fam(Fam::kHyperX, 3);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto msgs = alltoall_shift_messages(net, 2048, 8);
  SimConfig small;
  small.buffer_flits = 1;
  SimConfig big;
  big.buffer_flits = 32;
  const auto rs = simulate(net, rr, msgs, small);
  const auto rb = simulate(net, rr, msgs, big);
  ASSERT_TRUE(rs.completed && rb.completed);
  EXPECT_GE(rs.cycles, rb.cycles);
}

TEST(SimProperties, UtilizationBoundsAreSane) {
  Network net = build_fam(Fam::kTorus, 4);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto res =
      simulate(net, rr, alltoall_shift_messages(net, 2048, 8), SimConfig{});
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.max_link_utilization, 0.0);
  EXPECT_LE(res.max_link_utilization, 1.0);
  EXPECT_LE(res.avg_link_utilization, res.max_link_utilization);
}

}  // namespace
}  // namespace nue
