#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/network.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_line;
using test::make_paper_ring;
using test::make_ring;

TEST(Network, ChannelPairsAreReverses) {
  Network net;
  const NodeId a = net.add_switch();
  const NodeId b = net.add_switch();
  const ChannelId c = net.add_link(a, b);
  EXPECT_EQ(net.src(c), a);
  EXPECT_EQ(net.dst(c), b);
  EXPECT_EQ(net.src(reverse(c)), b);
  EXPECT_EQ(net.dst(reverse(c)), a);
  EXPECT_EQ(reverse(reverse(c)), c);
}

TEST(Network, TerminalAndSwitchClassification) {
  Network net = make_ring(4);
  EXPECT_EQ(net.num_alive_terminals(), 4u);
  EXPECT_EQ(net.num_alive_switches(), 4u);
  for (NodeId t : net.terminals()) {
    EXPECT_TRUE(net.is_terminal(t));
    EXPECT_EQ(net.degree(t), 1u);
    EXPECT_TRUE(net.is_switch(net.terminal_switch(t)));
  }
}

TEST(Network, MultigraphParallelLinks) {
  Network net;
  net.add_switch();
  net.add_switch();
  net.add_link(0, 1);
  net.add_link(0, 1);
  EXPECT_EQ(net.degree(0), 2u);
  EXPECT_EQ(net.num_channels(), 4u);
}

TEST(Network, SelfLoopRejected) {
  Network net;
  net.add_switch();
  EXPECT_THROW(net.add_link(0, 0), std::logic_error);
}

TEST(Network, RemoveLinkUpdatesAdjacency) {
  Network net = make_ring(4, 0);
  const std::size_t before = net.num_alive_channels();
  net.remove_link(net.out(0)[0]);
  EXPECT_EQ(net.num_alive_channels(), before - 2);
  for (ChannelId c : net.out(0)) EXPECT_TRUE(net.channel_alive(c));
  EXPECT_TRUE(is_connected(net));  // ring minus one link is a line
}

TEST(Network, RemoveNodeKillsAllItsChannels) {
  Network net = make_ring(5);
  const auto before_nodes = net.num_alive_nodes();
  net.remove_node(0);
  EXPECT_EQ(net.num_alive_nodes(), before_nodes - 1);
  EXPECT_FALSE(net.node_alive(0));
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (net.channel_alive(c)) {
      EXPECT_NE(net.src(c), 0u);
      EXPECT_NE(net.dst(c), 0u);
    }
  }
}

TEST(Bfs, DistancesOnRing) {
  Network net = make_ring(6, 0);
  const auto d = bfs_distances(net, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[3], 3u);
  EXPECT_EQ(d[5], 1u);
}

TEST(Bfs, TreePointsTowardRoot) {
  Network net = make_line(5, 0);
  const auto tree = bfs_tree(net, 0);
  EXPECT_EQ(tree[0], kInvalidChannel);
  for (NodeId v = 1; v < 5; ++v) {
    ASSERT_NE(tree[v], kInvalidChannel);
    EXPECT_EQ(net.src(tree[v]), v);
    EXPECT_EQ(net.dst(tree[v]), v - 1);
  }
}

TEST(Bfs, UnreachableAfterSplit) {
  Network net = make_line(4, 0);
  net.remove_link(net.out(1)[1]);  // split between 1 and 2
  EXPECT_FALSE(is_connected(net));
  const auto d = bfs_distances(net, 0);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Dijkstra, PrefersLightChannels) {
  // Triangle 0-1-2 where direct 0->2 is expensive.
  Network net;
  for (int i = 0; i < 3; ++i) net.add_switch();
  const ChannelId c01 = net.add_link(0, 1);
  const ChannelId c12 = net.add_link(1, 2);
  const ChannelId c02 = net.add_link(0, 2);
  std::vector<double> w(net.num_channels(), 1.0);
  w[c02] = 10.0;
  w[reverse(c02)] = 10.0;
  const auto r = dijkstra(net, 0, w);
  EXPECT_DOUBLE_EQ(r.distance[2], 2.0);
  EXPECT_EQ(r.used_channel[1], c01);
  EXPECT_EQ(r.used_channel[2], c12);
}

TEST(Dijkstra, MultigraphPicksCheapParallel) {
  Network net;
  net.add_switch();
  net.add_switch();
  const ChannelId a = net.add_link(0, 1);
  const ChannelId b = net.add_link(0, 1);
  std::vector<double> w(net.num_channels(), 1.0);
  w[a] = 5.0;
  const auto r = dijkstra(net, 0, w);
  EXPECT_EQ(r.used_channel[1], b);
  EXPECT_DOUBLE_EQ(r.distance[1], 1.0);
}

/// Brute-force betweenness for verification: enumerate shortest paths by
/// BFS σ-counting (same definition, independent implementation).
std::vector<double> brute_betweenness(const Network& net) {
  const std::size_t n = net.num_nodes();
  std::vector<double> cb(n, 0.0);
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto ds = bfs_distances(net, s);
      const auto dt = bfs_distances(net, t);
      if (ds[t] == kUnreachable) continue;
      // sigma via DP over distance levels.
      std::vector<double> sigma(n, 0.0);
      sigma[s] = 1.0;
      // process nodes by increasing ds
      std::vector<NodeId> order;
      for (NodeId v = 0; v < n; ++v) {
        if (ds[v] != kUnreachable) order.push_back(v);
      }
      std::sort(order.begin(), order.end(),
                [&](NodeId a, NodeId b) { return ds[a] < ds[b]; });
      for (NodeId v : order) {
        for (ChannelId c : net.out(v)) {
          const NodeId w = net.dst(c);
          if (ds[w] == ds[v] + 1) sigma[w] += sigma[v];
        }
      }
      std::vector<double> sigma_t(n, 0.0);
      sigma_t[t] = 1.0;
      std::sort(order.begin(), order.end(),
                [&](NodeId a, NodeId b) { return dt[a] < dt[b]; });
      for (NodeId v : order) {
        for (ChannelId c : net.out(v)) {
          const NodeId w = net.dst(c);
          if (dt[w] == dt[v] + 1) sigma_t[w] += sigma_t[v];
        }
      }
      for (NodeId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (ds[v] + dt[v] == ds[t]) {
          cb[v] += sigma[v] * sigma_t[v] / sigma[t];
        }
      }
    }
  }
  return cb;
}

TEST(Betweenness, MatchesBruteForceOnPaperRing) {
  Network net = make_paper_ring();
  const auto fast = betweenness_centrality(net);
  const auto brute = brute_betweenness(net);
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_NEAR(fast[v], brute[v], 1e-9) << "node " << v;
  }
}

TEST(Betweenness, MatchesBruteForceOnRandomGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Network net;
    const std::uint32_t n = 8 + trial;
    for (std::uint32_t i = 0; i < n; ++i) net.add_switch();
    for (std::uint32_t i = 1; i < n; ++i) {
      net.add_link(i, static_cast<NodeId>(rng.next_below(i)));
    }
    for (int e = 0; e < 6; ++e) {
      const auto a = static_cast<NodeId>(rng.next_below(n));
      const auto b = static_cast<NodeId>(rng.next_below(n));
      if (a != b) net.add_link(a, b);
    }
    const auto fast = betweenness_centrality(net);
    const auto brute = brute_betweenness(net);
    for (NodeId v = 0; v < n; ++v) {
      ASSERT_NEAR(fast[v], brute[v], 1e-9) << "trial " << trial;
    }
  }
}

TEST(Betweenness, CenterOfLineDominates) {
  Network net = make_line(5, 0);
  const auto cb = betweenness_centrality(net);
  for (NodeId v = 0; v < 5; ++v) {
    if (v != 2) {
      EXPECT_GT(cb[2], cb[v]);
    }
  }
}

TEST(Betweenness, MaskRestrictsSubgraph) {
  Network net = make_line(5, 0);
  std::vector<std::uint8_t> mask(net.num_nodes(), 0);
  mask[0] = mask[1] = mask[2] = 1;
  const auto cb = betweenness_centrality(net, mask);
  EXPECT_GT(cb[1], 0.0);
  EXPECT_EQ(cb[3], 0.0);
  EXPECT_EQ(cb[4], 0.0);
}

TEST(ConvexSubgraph, LineSegmentBetweenDests) {
  Network net = make_line(6, 0);
  const auto hull = convex_subgraph(net, {1, 4});
  EXPECT_FALSE(hull[0]);
  EXPECT_TRUE(hull[1]);
  EXPECT_TRUE(hull[2]);
  EXPECT_TRUE(hull[3]);
  EXPECT_TRUE(hull[4]);
  EXPECT_FALSE(hull[5]);
}

TEST(ConvexSubgraph, IncludesAllShortestPathBranches) {
  // 4-ring: two shortest paths between opposite corners.
  Network net = make_ring(4, 0);
  const auto hull = convex_subgraph(net, {0, 2});
  EXPECT_TRUE(hull[0]);
  EXPECT_TRUE(hull[1]);
  EXPECT_TRUE(hull[2]);
  EXPECT_TRUE(hull[3]);
}

TEST(ConvexSubgraph, PaperExampleSubsetN1N2N3) {
  // Fig. 5: destinations {n1, n2, n3} = ids {0, 1, 2}. The convex hull is
  // just the chain n1-n2-n3; n4 and n5 lie on no shortest path between
  // destination pairs (n1-n3 via n2 has length 2; via n5 it is 2 as well:
  // n1-n5-n3 uses the shortcut!). So n5 is included, n4 is not.
  Network net = make_paper_ring();
  const auto hull = convex_subgraph(net, {0, 1, 2});
  EXPECT_TRUE(hull[0]);
  EXPECT_TRUE(hull[1]);
  EXPECT_TRUE(hull[2]);
  EXPECT_FALSE(hull[3]);  // n4
  EXPECT_TRUE(hull[4]);   // n5 (on n1-n5-n3, also length 2)
}

}  // namespace
}  // namespace nue
