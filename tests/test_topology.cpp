#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

/// Switch-to-switch duplex link count (what Table 1 reports as "Channels").
std::size_t switch_links(const Network& net) {
  std::size_t n = 0;
  for (ChannelId c = 0; c < net.num_channels(); c += 2) {
    if (net.channel_alive(c) && net.is_switch(net.src(c)) &&
        net.is_switch(net.dst(c))) {
      ++n;
    }
  }
  return n;
}

TEST(Torus, Fig1Configuration) {
  // 4x4x3 torus, 4 terminals per switch (Fig. 1's network, pre-failure).
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  EXPECT_EQ(net.num_alive_switches(), 48u);
  EXPECT_EQ(net.num_alive_terminals(), 192u);
  EXPECT_TRUE(is_connected(net));
  // 3D torus: 3 links per switch-dim, dims {4,4,3} all >= 3 -> 3*48 links.
  EXPECT_EQ(switch_links(net), 3u * 48u);
}

TEST(Torus, Table1TorusWithRedundancy) {
  TorusSpec spec{{6, 5, 5}, 7, 4};
  Network net = make_torus(spec);
  EXPECT_EQ(net.num_alive_switches(), 150u);
  EXPECT_EQ(switch_links(net), 1800u);  // Table 1
  EXPECT_TRUE(is_connected(net));
}

TEST(Torus, DimensionOfSizeTwoGetsSingleLink) {
  TorusSpec spec{{2, 2, 2}, 1, 1};
  Network net = make_torus(spec);
  EXPECT_EQ(net.num_alive_switches(), 8u);
  EXPECT_EQ(switch_links(net), 12u);  // cube, no doubled wrap links
  EXPECT_TRUE(is_connected(net));
}

TEST(Torus, CoordinateRoundTrip) {
  TorusSpec spec{{4, 4, 3}, 0, 1};
  make_torus(spec);
  for (NodeId sw = 0; sw < spec.num_switches(); ++sw) {
    EXPECT_EQ(spec.switch_at(spec.coord_of(sw)), sw);
  }
}

TEST(Torus, NeighborsDifferInOneCoordinate) {
  TorusSpec spec{{3, 3, 3}, 0, 1};
  Network net = make_torus(spec);
  for (NodeId sw = 0; sw < spec.num_switches(); ++sw) {
    const auto c = spec.coord_of(sw);
    for (ChannelId ch : net.out(sw)) {
      const auto d = spec.coord_of(net.dst(ch));
      int diffs = 0;
      for (std::size_t i = 0; i < 3; ++i) diffs += c[i] != d[i];
      EXPECT_EQ(diffs, 1);
    }
  }
}

TEST(FatTree, Tenary3TreeMatchesTable1) {
  FatTreeSpec spec{10, 3, 11, 0};
  Network net = make_kary_ntree(spec);
  EXPECT_EQ(net.num_alive_switches(), 300u);   // 3 * 10^2
  EXPECT_EQ(net.num_alive_terminals(), 1100u);  // Table 1
  EXPECT_EQ(switch_links(net), 2000u);          // Table 1
  EXPECT_TRUE(is_connected(net));
}

TEST(FatTree, SmallTreeStructure) {
  FatTreeSpec spec{2, 3, 2, 0};
  Network net = make_kary_ntree(spec);
  EXPECT_EQ(net.num_alive_switches(), 12u);  // 3 levels * 4
  EXPECT_TRUE(is_connected(net));
  // Leaf switches carry terminals; top stage none.
  for (NodeId t : net.terminals()) {
    EXPECT_EQ(spec.level_of(net.terminal_switch(t)), spec.n - 1);
  }
}

TEST(Kautz, MatchesTable1Counts) {
  KautzSpec spec;  // d=5, k=3, 7 terminals, r=2
  Network net = make_kautz(spec);
  EXPECT_EQ(net.num_alive_switches(), 150u);
  EXPECT_EQ(net.num_alive_terminals(), 1050u);
  EXPECT_TRUE(is_connected(net));
  // ~750 arcs deduplicated to undirected links, times redundancy 2.
  EXPECT_NEAR(static_cast<double>(switch_links(net)), 1500.0, 30.0);
}

TEST(Dragonfly, MatchesTable1Counts) {
  DragonflySpec spec;  // a=12, p=6, h=6, g=15
  Network net = make_dragonfly(spec);
  EXPECT_EQ(net.num_alive_switches(), 180u);
  EXPECT_EQ(net.num_alive_terminals(), 1080u);
  EXPECT_EQ(switch_links(net), 1515u);  // 990 local + 525 global
  EXPECT_TRUE(is_connected(net));
}

TEST(Dragonfly, GroupsAreFullyConnectedInternally) {
  DragonflySpec spec{4, 1, 2, 3};
  Network net = make_dragonfly(spec);
  for (std::uint32_t g = 0; g < spec.g; ++g) {
    for (std::uint32_t i = 0; i < spec.a; ++i) {
      for (std::uint32_t j = i + 1; j < spec.a; ++j) {
        const NodeId a = g * spec.a + i, b = g * spec.a + j;
        bool linked = false;
        for (ChannelId c : net.out(a)) linked |= net.dst(c) == b;
        EXPECT_TRUE(linked) << "group " << g;
      }
    }
  }
}

TEST(Cascade, MatchesTable1Counts) {
  CascadeSpec spec;
  Network net = make_cascade(spec);
  EXPECT_EQ(net.num_alive_switches(), 192u);
  EXPECT_EQ(net.num_alive_terminals(), 1536u);
  EXPECT_EQ(switch_links(net), 3072u);  // 2*1440 intra + 192 global
  EXPECT_TRUE(is_connected(net));
}

TEST(Tsubame, ApproximatesTable1Counts) {
  ClosSpec spec;
  Network net = make_tsubame25_like(spec);
  EXPECT_EQ(net.num_alive_switches(), 243u);
  EXPECT_EQ(net.num_alive_terminals(), 1407u);
  EXPECT_NEAR(static_cast<double>(switch_links(net)), 3384.0, 40.0);
  EXPECT_TRUE(is_connected(net));
}

TEST(RandomTopology, MatchesSection51Configuration) {
  Rng rng(17);
  RandomSpec spec;  // 125 switches, 1000 links, 8 terminals
  Network net = make_random(spec, rng);
  EXPECT_EQ(net.num_alive_switches(), 125u);
  EXPECT_EQ(net.num_alive_terminals(), 1000u);
  EXPECT_EQ(switch_links(net), 1000u);
  EXPECT_TRUE(is_connected(net));
}

TEST(RandomTopology, SeedDeterminism) {
  RandomSpec spec{20, 60, 2};
  Rng r1(5), r2(5);
  Network a = make_random(spec, r1);
  Network b = make_random(spec, r2);
  ASSERT_EQ(a.num_channels(), b.num_channels());
  for (ChannelId c = 0; c < a.num_channels(); ++c) {
    EXPECT_EQ(a.src(c), b.src(c));
    EXPECT_EQ(a.dst(c), b.dst(c));
  }
}

TEST(RandomTopology, AlwaysConnectedAcrossSeeds) {
  RandomSpec spec{30, 45, 1};
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    Network net = make_random(spec, rng);
    EXPECT_TRUE(is_connected(net)) << "seed " << seed;
  }
}

TEST(Faults, LinkFailuresKeepConnectivity) {
  TorusSpec spec{{4, 4, 3}, 2, 1};
  Network net = make_torus(spec);
  Rng rng(3);
  const std::size_t removed = inject_link_failures(net, 10, rng);
  EXPECT_EQ(removed, 10u);
  EXPECT_TRUE(is_connected(net));
}

TEST(Faults, LinkFailuresNeverTouchTerminalLinks) {
  TorusSpec spec{{3, 3, 3}, 2, 1};
  Network net = make_torus(spec);
  const std::size_t terminals = net.num_alive_terminals();
  Rng rng(4);
  inject_link_failures(net, 15, rng);
  EXPECT_EQ(net.num_alive_terminals(), terminals);
  for (NodeId t : net.terminals()) EXPECT_EQ(net.degree(t), 1u);
}

TEST(Faults, SwitchFailureRemovesOrphanedTerminals) {
  TorusSpec spec{{4, 4, 3}, 4, 1};
  Network net = make_torus(spec);
  Rng rng(7);
  const std::size_t removed = inject_switch_failures(net, 1, rng);
  EXPECT_EQ(removed, 1u);
  // Fig. 1's network: 47 switches and 188 terminals remain.
  EXPECT_EQ(net.num_alive_switches(), 47u);
  EXPECT_EQ(net.num_alive_terminals(), 188u);
  EXPECT_TRUE(is_connected(net));
}

TEST(Faults, RefusesToDisconnect) {
  // A line: every interior link is a bridge, so no removal is safe.
  Network net;
  for (int i = 0; i < 4; ++i) net.add_switch();
  for (int i = 0; i < 3; ++i) net.add_link(i, i + 1);
  Rng rng(1);
  EXPECT_EQ(inject_link_failures(net, 2, rng), 0u);
  EXPECT_TRUE(is_connected(net));
}

}  // namespace
}  // namespace nue

namespace nue {
namespace hyperx_tests {

TEST(HyperX, StructureAndDegrees) {
  HyperXSpec spec;
  spec.shape = {3, 4};
  spec.terminals_per_switch = 1;
  Network net = make_hyperx(spec);
  EXPECT_EQ(net.num_alive_switches(), 12u);
  EXPECT_TRUE(is_connected(net));
  // Each switch: (3-1) + (4-1) line neighbors + 1 terminal.
  for (NodeId sw : net.switches()) {
    EXPECT_EQ(net.degree(sw), 2u + 3u + 1u);
  }
}

TEST(HyperX, DiameterEqualsDimensionCount) {
  HyperXSpec spec;
  spec.shape = {4, 4, 4};
  spec.terminals_per_switch = 0;
  Network net = make_hyperx(spec);
  // One hop fixes a whole coordinate: diameter = #dims = 3.
  const auto d = bfs_distances(net, 0);
  std::uint32_t maxd = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) maxd = std::max(maxd, d[v]);
  EXPECT_EQ(maxd, 3u);
}

TEST(HyperX, HypercubeIsTwoAryHyperX) {
  Network net = make_hypercube(4, 1);  // 4-cube
  EXPECT_EQ(net.num_alive_switches(), 16u);
  for (NodeId sw : net.switches()) {
    EXPECT_EQ(net.degree(sw), 4u + 1u);  // 4 cube links + terminal
  }
  EXPECT_TRUE(is_connected(net));
}

TEST(HyperX, RedundancyMultipliesLinks) {
  HyperXSpec one;
  one.shape = {3, 3};
  one.terminals_per_switch = 0;
  HyperXSpec two = one;
  two.redundancy = 2;
  EXPECT_EQ(make_hyperx(two).num_channels(), 2 * make_hyperx(one).num_channels());
}

}  // namespace hyperx_tests
}  // namespace nue
