// Compiled InfiniBand-style state: LFT/SL/SL2VL compilation must be a
// faithful encoding of every routing engine's function.
#include <gtest/gtest.h>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/ib_tables.hpp"
#include "routing/lash.hpp"
#include "routing/torus_qos.hpp"
#include "routing/updown.hpp"
#include "test_helpers.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

TEST(IbTables, LidAssignmentDenseAndOneBased) {
  Network net = test::make_ring(4, 2);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto t = compile_ib_tables(net, rr);
  EXPECT_EQ(t.node_of_lid.size(), net.num_alive_nodes() + 1);
  EXPECT_EQ(t.node_of_lid[0], kInvalidNode);  // LID 0 reserved
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) continue;
    const Lid lid = t.lid_of_node[v];
    ASSERT_NE(lid, kInvalidLid);
    EXPECT_EQ(t.node_of_lid[lid], v);
  }
}

TEST(IbTables, DeadNodesGetNoLid) {
  Network net = test::make_ring(5, 1);
  net.remove_node(net.terminals()[0]);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto t = compile_ib_tables(net, rr);
  bool any_invalid = false;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    if (!net.node_alive(v)) any_invalid |= t.lid_of_node[v] == kInvalidLid;
  }
  EXPECT_TRUE(any_invalid);
}

TEST(IbTables, CompiledStateMatchesNue) {
  Rng rng(3);
  RandomSpec spec{20, 55, 2};
  Network net = make_random(spec, rng);
  for (std::uint32_t k : {1u, 4u}) {
    NueOptions opt;
    opt.num_vls = k;
    const auto rr = route_nue(net, net.terminals(), opt);
    const auto t = compile_ib_tables(net, rr);
    EXPECT_TRUE(verify_compiled(net, rr, t)) << "k=" << k;
  }
}

TEST(IbTables, CompiledStateMatchesPerSourceEngines) {
  Rng rng(4);
  RandomSpec spec{18, 50, 2};
  Network net = make_random(spec, rng);
  {
    const auto rr = route_dfsssp(net, net.terminals(), {.max_vls = 8});
    EXPECT_TRUE(verify_compiled(net, rr, compile_ib_tables(net, rr)));
  }
  {
    const auto rr = route_lash(net, net.terminals(), {.max_vls = 8});
    EXPECT_TRUE(verify_compiled(net, rr, compile_ib_tables(net, rr)));
  }
  {
    const auto rr = route_updown(net, net.terminals());
    EXPECT_TRUE(verify_compiled(net, rr, compile_ib_tables(net, rr)));
  }
}

TEST(IbTables, CompiledStateMatchesPerHopTorusScheme) {
  TorusSpec spec{{4, 4}, 2, 1};
  Network net = make_torus(spec);
  const auto rr = route_torus_qos(net, spec, net.terminals());
  const auto t = compile_ib_tables(net, rr);
  EXPECT_FALSE(t.vl_by_dest.empty());  // per-hop scheme uses the helper
  EXPECT_TRUE(verify_compiled(net, rr, t));
}

TEST(IbTables, WalkDetectsLftHole) {
  Network net = test::make_line(3, 1);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  auto t = compile_ib_tables(net, rr);
  // Punch a hole: switch 1's entry toward the last terminal.
  const Lid dlid = t.lid_of_node[net.terminals()[2]];
  t.lft[1][dlid] = kInvalidPort;
  EXPECT_THROW(ib_walk(net, t, net.terminals()[0], net.terminals()[2]),
               std::logic_error);
}

TEST(IbTables, FootprintAccountsAllSwitchEntries) {
  Network net = test::make_ring(6, 2);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto t = compile_ib_tables(net, rr);
  // 6 switches x (18 alive nodes + reserved LID 0).
  EXPECT_EQ(t.total_lft_entries(), 6u * 19u);
}

}  // namespace
}  // namespace nue
