#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/rss.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nue {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.next_below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextRangeInclusive) {
  Rng r(9);
  bool lo = false, hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.next_range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    lo |= v == -3;
    hi |= v == 3;
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, ForkIndependent) {
  Rng a(3);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Stats, WelfordMatchesClosedForm) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic population-sd example
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, EmptyIsSafe) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row() << "alpha" << 1;
  t.row() << "b" << 2.5;
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(Flags, ParsesAllStyles) {
  const char* argv[] = {"prog", "--count", "5", "--rate=2.5", "--name",
                        "xy",   "--flag"};
  Flags f(7, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("count", 1, "c"), 5);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 1.0, "r"), 2.5);
  EXPECT_EQ(f.get_string("name", "d", "n"), "xy");
  EXPECT_TRUE(f.get_bool("flag", false, "f"));
  EXPECT_EQ(f.get_int("missing", 7, "m"), 7);
  EXPECT_TRUE(f.finish());
}

TEST(Flags, UnknownFlagFailsFinish) {
  const char* argv[] = {"prog", "--nope", "1"};
  Flags f(3, const_cast<char**>(argv));
  (void)f.get_int("count", 1, "c");
  EXPECT_FALSE(f.finish());
}

// Satellite regression (ISSUE 7): a /proc/self/status without VmHWM —
// stripped by some kernels and sandboxes — must read as "unavailable"
// (nullopt), never as a garbage number or a fake 0 in a report.
TEST(Rss, ParsesWellFormedVmHwm) {
  std::istringstream status(
      "Name:\tnue_route\nVmPeak:\t  123456 kB\nVmHWM:\t    2048 kB\n"
      "VmRSS:\t    1024 kB\n");
  const auto mb = peak_rss_mb_from_status(status);
  ASSERT_TRUE(mb.has_value());
  EXPECT_DOUBLE_EQ(*mb, 2.0);
}

TEST(Rss, MissingVmHwmIsUnavailable) {
  std::istringstream status(
      "Name:\tnue_route\nVmPeak:\t  123456 kB\nVmRSS:\t    1024 kB\n");
  EXPECT_FALSE(peak_rss_mb_from_status(status).has_value());
}

TEST(Rss, EmptyStatusIsUnavailable) {
  std::istringstream status("");
  EXPECT_FALSE(peak_rss_mb_from_status(status).has_value());
}

TEST(Rss, MalformedVmHwmIsUnavailableNotGarbage) {
  for (const char* line :
       {"VmHWM:\n", "VmHWM:\tgarbage kB\n", "VmHWM:\t12 pages\n",
        "VmHWM:\t-4 kB\n", "VmHWM:\t kB\n"}) {
    std::istringstream status(std::string("Name:\tx\n") + line);
    EXPECT_FALSE(peak_rss_mb_from_status(status).has_value()) << line;
  }
}

TEST(Rss, LiveProcessValueIsSaneWhenPresent) {
  // On Linux CI this is present and positive; elsewhere nullopt is the
  // contract. Either way it must never be a denormal zero stand-in.
  const auto mb = peak_rss_mb();
  if (mb) {
    EXPECT_GT(*mb, 0.0);
  }
}

TEST(Check, ThrowsWithMessage) {
  try {
    NUE_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace nue
