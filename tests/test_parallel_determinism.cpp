// Parallel determinism: every engine must produce bit-identical results at
// any thread count. Nue draws all randomness in a sequential prologue and
// routes its independent layers concurrently; the baselines parallelize
// within a weight-update epoch; Brandes reduces per-source vectors in
// source order. None of it may leak scheduling into the output
// (docs/PARALLELISM.md).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/dump.hpp"
#include "routing/lash.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"
#include "topology/faults.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace nue {
namespace {

constexpr std::uint32_t kThreadCounts[] = {1, 2, 8};

std::string tables_of(const Network& net, const RoutingResult& rr) {
  std::ostringstream os;
  write_forwarding_tables(os, net, rr);
  return os.str();
}

Network torus_4x4() {
  TorusSpec spec{{4, 4}, 2, 1};
  return make_torus(spec);
}

Network fat_tree_3level() {
  FatTreeSpec spec;
  spec.k = 2;
  spec.n = 3;
  spec.terminals_per_leaf = 2;
  return make_kary_ntree(spec);
}

void expect_stats_eq(const NueStats& a, const NueStats& b) {
  EXPECT_EQ(a.fallbacks, b.fallbacks);
  EXPECT_EQ(a.islands_resolved, b.islands_resolved);
  EXPECT_EQ(a.islands_unresolved, b.islands_unresolved);
  EXPECT_EQ(a.backtrack_option1, b.backtrack_option1);
  EXPECT_EQ(a.backtrack_option2, b.backtrack_option2);
  EXPECT_EQ(a.shortcuts_taken, b.shortcuts_taken);
  EXPECT_EQ(a.cycle_searches, b.cycle_searches);
  EXPECT_EQ(a.cycle_search_steps, b.cycle_search_steps);
  EXPECT_EQ(a.fast_accepts, b.fast_accepts);
  EXPECT_EQ(a.roots, b.roots);
}

void check_nue(const Network& net, std::uint32_t num_vls) {
  NueOptions opt;
  opt.num_vls = num_vls;
  opt.num_threads = 1;
  NueStats base_stats;
  const auto base = route_nue(net, net.terminals(), opt, &base_stats);
  ASSERT_TRUE(validate_routing(net, base).ok());
  const std::string base_tables = tables_of(net, base);
  for (std::uint32_t t : kThreadCounts) {
    opt.num_threads = t;
    NueStats st;
    const auto rr = route_nue(net, net.terminals(), opt, &st);
    EXPECT_EQ(tables_of(net, rr), base_tables) << "threads=" << t;
    expect_stats_eq(st, base_stats);
  }
}

TEST(ParallelDeterminism, NueTorus) { check_nue(torus_4x4(), 4); }

TEST(ParallelDeterminism, NueFatTree) { check_nue(fat_tree_3level(), 4); }

TEST(ParallelDeterminism, RerouteNue) {
  for (const bool fat_tree : {false, true}) {
    Network net = fat_tree ? fat_tree_3level() : torus_4x4();
    NueOptions opt;
    opt.num_vls = 4;
    const auto old = route_nue(net, net.terminals(), opt);
    Rng rng(7);
    ASSERT_GE(inject_link_failures(net, 2, rng), 1u);

    opt.num_threads = 1;
    RerouteStats base_rs;
    NueStats base_stats;
    const auto base = reroute_nue(net, old, opt, &base_rs, &base_stats);
    ASSERT_TRUE(validate_routing(net, base).ok());
    const std::string base_tables = tables_of(net, base);
    for (std::uint32_t t : kThreadCounts) {
      opt.num_threads = t;
      RerouteStats rs;
      NueStats st;
      const auto rr = reroute_nue(net, old, opt, &rs, &st);
      EXPECT_EQ(tables_of(net, rr), base_tables)
          << "threads=" << t << " fat_tree=" << fat_tree;
      expect_stats_eq(st, base_stats);
      EXPECT_EQ(rs.dests_kept, base_rs.dests_kept);
      EXPECT_EQ(rs.dests_rerouted, base_rs.dests_rerouted);
      EXPECT_EQ(rs.dests_dropped, base_rs.dests_dropped);
      EXPECT_EQ(rs.dests_demoted, base_rs.dests_demoted);
    }
  }
}

void check_dfsssp(const Network& net, std::uint32_t epoch) {
  DfssspOptions opt;
  opt.sssp_epoch = epoch;
  opt.num_threads = 1;
  DfssspStats base_stats;
  const auto base = route_dfsssp(net, net.terminals(), opt, &base_stats);
  const std::string base_tables = tables_of(net, base);
  for (std::uint32_t t : kThreadCounts) {
    opt.num_threads = t;
    DfssspStats st;
    const auto rr = route_dfsssp(net, net.terminals(), opt, &st);
    EXPECT_EQ(tables_of(net, rr), base_tables)
        << "threads=" << t << " epoch=" << epoch;
    EXPECT_EQ(st.vls_needed, base_stats.vls_needed);
    EXPECT_EQ(st.paths_moved, base_stats.paths_moved);
  }
}

TEST(ParallelDeterminism, DfssspTorus) { check_dfsssp(torus_4x4(), 1); }

TEST(ParallelDeterminism, DfssspFatTree) {
  check_dfsssp(fat_tree_3level(), 1);
}

// Larger epochs change the balance feedback (legitimately, like a solver
// knob) but still may not depend on the thread count.
TEST(ParallelDeterminism, DfssspEpochedSweep) {
  check_dfsssp(torus_4x4(), 4);
}

TEST(ParallelDeterminism, Lash) {
  for (const bool fat_tree : {false, true}) {
    const Network net = fat_tree ? fat_tree_3level() : torus_4x4();
    LashOptions opt;
    opt.num_threads = 1;
    LashStats base_stats;
    const auto base = route_lash(net, net.terminals(), opt, &base_stats);
    const std::string base_tables = tables_of(net, base);
    for (std::uint32_t t : kThreadCounts) {
      opt.num_threads = t;
      LashStats st;
      const auto rr = route_lash(net, net.terminals(), opt, &st);
      EXPECT_EQ(tables_of(net, rr), base_tables)
          << "threads=" << t << " fat_tree=" << fat_tree;
      EXPECT_EQ(st.vls_needed, base_stats.vls_needed);
    }
  }
}

TEST(ParallelDeterminism, Betweenness) {
  for (const bool fat_tree : {false, true}) {
    const Network net = fat_tree ? fat_tree_3level() : torus_4x4();
    const auto base = betweenness_centrality(net, {}, 1);
    for (std::uint32_t t : kThreadCounts) {
      const auto cb = betweenness_centrality(net, {}, t);
      ASSERT_EQ(cb.size(), base.size());
      for (std::size_t i = 0; i < cb.size(); ++i) {
        // Bit-exact, not approximate: the reduction order is fixed.
        EXPECT_EQ(cb[i], base[i]) << "node " << i << " threads=" << t;
      }
    }
  }
}

TEST(ParallelDeterminism, NestedParallelForCompletes) {
  // Regression: a parallel region opened from inside a pool worker used to
  // wait for its queued helper tasks to *run*; with every worker blocked in
  // such a wait the helpers could never be scheduled and the process hung
  // with zero CPU (found by `route_fuzz --threads 8`, whose batch loop runs
  // oracle BFS sweeps on pool workers). Nested regions must degrade to the
  // calling thread plus whatever workers happen to be free.
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 128;
  std::vector<std::uint64_t> sums(kOuter, 0);
  parallel_for(8, kOuter, [&](std::size_t i) {
    std::vector<std::uint32_t> hits(kInner, 0);
    parallel_for(8, kInner, [&](std::size_t j) { ++hits[j]; });
    std::uint64_t s = 0;
    for (std::size_t j = 0; j < kInner; ++j) {
      s += hits[j] * (j + 1);  // every inner index exactly once
    }
    sums[i] = s;
  });
  for (std::size_t i = 0; i < kOuter; ++i) {
    EXPECT_EQ(sums[i], kInner * (kInner + 1) / 2) << i;
  }
}

}  // namespace
}  // namespace nue
