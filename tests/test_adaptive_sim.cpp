// Duato-style adaptive routing with escape channels (§4.2's background
// concept): the adaptive lanes may develop cyclic dependencies, but the
// acyclic escape lane guarantees forward progress — verified end to end.
#include <gtest/gtest.h>

#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "sim/traffic.hpp"
#include "test_helpers.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_ring;

SimConfig tight_config() {
  SimConfig cfg;
  cfg.buffer_flits = 2;
  cfg.deadlock_cycles = 10000;
  return cfg;
}

TEST(AdaptiveSim, CompletesOnRingWhereMinimalDeterministicDeadlocks) {
  Network net = make_ring(6, 2);
  // Control: deterministic minimal routing deadlocks under this load.
  const auto minhop = route_minhop(net, net.terminals());
  const auto msgs = alltoall_shift_messages(net, 4096);
  ASSERT_TRUE(simulate(net, minhop, msgs, tight_config()).deadlocked);
  // Adaptive minimal + Up*/Down* escape lane completes.
  const auto escape = route_updown(net, net.terminals());
  const auto res = simulate_adaptive(net, escape, 2, msgs, tight_config());
  EXPECT_TRUE(res.completed) << "cycles=" << res.cycles;
  EXPECT_FALSE(res.deadlocked);
}

TEST(AdaptiveSim, CompletesOnTorusUnderAdversarialTraffic) {
  TorusSpec spec{{4, 4}, 2, 1};
  Network net = make_torus(spec);
  const auto escape = route_updown(net, net.terminals());
  const auto msgs = pattern_messages(net, TrafficPattern::kTornado, 2048, 8);
  const auto res = simulate_adaptive(net, escape, 2, msgs, tight_config());
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.delivered_packets, msgs.size());
}

TEST(AdaptiveSim, DeliversEveryByteOnRandomFabric) {
  Rng rng(6);
  RandomSpec spec{16, 40, 2};
  Network net = make_random(spec, rng);
  const auto escape = route_updown(net, net.terminals());
  Rng trng(7);
  const auto msgs = uniform_random_messages(net, 600, 1024, trng);
  const auto res = simulate_adaptive(net, escape, 3, msgs, tight_config());
  EXPECT_TRUE(res.completed);
  std::uint64_t expect_bytes = 0;
  for (const auto& m : msgs) expect_bytes += m.bytes;
  EXPECT_EQ(res.delivered_bytes, expect_bytes);
}

TEST(AdaptiveSim, BeatsPureEscapeRoutingOnPathDiverseFabric) {
  // With path diversity, adaptivity should outperform the deterministic
  // escape routing run alone (that is its purpose).
  TorusSpec spec{{4, 4}, 2, 1};
  Network net = make_torus(spec);
  const auto escape = route_updown(net, net.terminals());
  const auto msgs = alltoall_shift_messages(net, 2048);
  SimConfig cfg;  // roomy buffers: throughput comparison, not deadlock
  const auto det = simulate(net, escape, msgs, cfg);
  const auto ada = simulate_adaptive(net, escape, 2, msgs, cfg);
  ASSERT_TRUE(det.completed);
  ASSERT_TRUE(ada.completed);
  EXPECT_LT(ada.cycles, det.cycles);
}

TEST(AdaptiveSim, SingleAdaptiveLaneWorks) {
  Network net = make_ring(5, 1);
  const auto escape = route_updown(net, net.terminals());
  const auto msgs = alltoall_shift_messages(net, 1024);
  const auto res = simulate_adaptive(net, escape, 1, msgs, tight_config());
  EXPECT_TRUE(res.completed);
}

TEST(AdaptiveSim, RejectsMultiVlEscape) {
  Network net = make_ring(5, 1);
  NueOptions opt;
  opt.num_vls = 2;
  const auto nue2 = route_nue(net, net.terminals(), opt);
  EXPECT_THROW(
      simulate_adaptive(net, nue2, 2, alltoall_shift_messages(net, 512),
                        SimConfig{}),
      std::logic_error);
}

}  // namespace
}  // namespace nue
