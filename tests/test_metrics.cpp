#include <gtest/gtest.h>

#include "metrics/metrics.hpp"
#include "routing/dfsssp.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

using test::make_line;
using test::make_ring;

TEST(ForwardingIndex, MiddleLinkOfLineCarriesMost) {
  Network net = make_line(4, 2);  // 8 terminals
  const auto rr = route_minhop(net, net.terminals());
  const auto gamma = edge_forwarding_index(net, rr);
  // Channel (1 -> 2) carries all 4x4 = 16 left-to-right routes.
  ChannelId mid = kInvalidChannel;
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    if (net.src(c) == 1 && net.dst(c) == 2) mid = c;
  }
  ASSERT_NE(mid, kInvalidChannel);
  EXPECT_EQ(gamma[mid], 16u);
  for (ChannelId c = 0; c < net.num_channels(); ++c) {
    EXPECT_LE(gamma[c], gamma[mid]);
  }
}

TEST(ForwardingIndex, SummaryExcludesTerminalChannels) {
  Network net = make_line(3, 3);
  const auto rr = route_minhop(net, net.terminals());
  const auto gamma = edge_forwarding_index(net, rr);
  const auto sum = summarize_forwarding_index(net, gamma);
  // 4 inter-switch channels only; each terminal channel carries 8 routes
  // but must not enter the summary: max = 3*6 = 18 (edge to middle).
  EXPECT_EQ(sum.max, 18.0);
  EXPECT_EQ(sum.min, 18.0);
  EXPECT_EQ(sum.sd, 0.0);
}

TEST(PathStats, MinhopMatchesBfsBound) {
  Network net = make_ring(6, 2);
  const auto rr = route_minhop(net, net.terminals());
  const auto pl = path_length_stats(net, rr);
  EXPECT_DOUBLE_EQ(pl.avg, pl.avg_shortest);
  EXPECT_EQ(pl.max, pl.max_shortest);
  EXPECT_GE(pl.max, 5u);  // 2 access hops + up to 3 ring hops
}

}  // namespace
}  // namespace nue
