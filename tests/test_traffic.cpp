#include <gtest/gtest.h>

#include <set>

#include "nue/nue_routing.hpp"
#include "sim/traffic.hpp"
#include "test_helpers.hpp"
#include "topology/torus.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

using test::make_ring;

TEST(Traffic, NeighborPattern) {
  Network net = make_ring(4, 2);  // 8 terminals
  const auto msgs = pattern_messages(net, TrafficPattern::kNeighbor, 256);
  ASSERT_EQ(msgs.size(), 8u);
  const auto terminals = net.terminals();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(msgs[i].src, terminals[i]);
    EXPECT_EQ(msgs[i].dst, terminals[(i + 1) % 8]);
  }
}

TEST(Traffic, BitComplementIsAnInvolutionOnPow2) {
  Network net = make_ring(8, 2);  // 16 terminals (power of two)
  const auto msgs =
      pattern_messages(net, TrafficPattern::kBitComplement, 256);
  EXPECT_EQ(msgs.size(), 16u);
  // Every terminal appears exactly once as src and once as dst.
  std::set<NodeId> srcs, dsts;
  for (const auto& m : msgs) {
    EXPECT_TRUE(srcs.insert(m.src).second);
    EXPECT_TRUE(dsts.insert(m.dst).second);
  }
}

TEST(Traffic, TornadoOffset) {
  Network net = make_ring(10, 1);  // 10 terminals
  const auto msgs = pattern_messages(net, TrafficPattern::kTornado, 256);
  const auto terminals = net.terminals();
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(msgs[i].dst, terminals[(i + 4) % 10]);  // ceil(T/2) - 1 = 4
  }
}

/// Tornado must shift by ceil(T/2) - 1 on every terminal count — the old
/// T/2 - 1 integer form collapsed odd T (T=5 gave offset 1, near-neighbor
/// traffic instead of the adversarial near-half-way shift).
class TornadoParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TornadoParam, OffsetIsCeilHalfMinusOne) {
  const std::uint32_t t = GetParam();
  Network net = make_ring(t, 1);
  PatternStats st;
  const auto msgs =
      pattern_messages(net, TrafficPattern::kTornado, 64, 1, &st);
  const auto terminals = net.terminals();
  const std::uint32_t offset = (t + 1) / 2 - 1;
  EXPECT_EQ(st.requested, t);
  EXPECT_EQ(st.dropped_out_of_range, 0u);
  if (offset == 0) {
    // T = 2: tornado degenerates to self-traffic, all dropped (reported).
    EXPECT_EQ(st.generated, 0u);
    EXPECT_EQ(st.dropped_self, t);
  } else {
    EXPECT_EQ(st.generated, t);
    EXPECT_EQ(st.dropped_self, 0u);
    ASSERT_EQ(msgs.size(), t);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      EXPECT_EQ(msgs[i].src, terminals[i]);
      EXPECT_EQ(msgs[i].dst, terminals[(i + offset) % t]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(OddEvenSmall, TornadoParam,
                         ::testing::Values(2u, 3u, 4u, 5u, 7u, 10u, 16u));

TEST(Traffic, ReversePatternBijectiveOnPow2) {
  Network net = make_ring(8, 2);  // 16 terminals
  const auto msgs = pattern_messages(net, TrafficPattern::kReverse, 128);
  std::set<NodeId> dsts;
  for (const auto& m : msgs) dsts.insert(m.dst);
  // Bit reversal is a bijection; self-targets (palindromes) are dropped.
  EXPECT_EQ(dsts.size(), msgs.size());
}

TEST(Traffic, RepetitionsMultiplyMessageCount) {
  Network net = make_ring(4, 1);
  const auto one = pattern_messages(net, TrafficPattern::kNeighbor, 64, 1);
  const auto three = pattern_messages(net, TrafficPattern::kNeighbor, 64, 3);
  EXPECT_EQ(three.size(), 3 * one.size());
}

TEST(Traffic, HotspotConcentratesOnHotTerminal) {
  Network net = make_ring(6, 2);
  Rng rng(5);
  const auto msgs = hotspot_messages(net, 2000, 64, 0.5, 0, rng);
  const NodeId hot = net.terminals()[0];
  std::size_t to_hot = 0;
  for (const auto& m : msgs) to_hot += m.dst == hot;
  // ~50% redirected + ~1/12 uniform: expect far above uniform share.
  EXPECT_GT(to_hot, msgs.size() / 3);
  EXPECT_LT(to_hot, 2 * msgs.size() / 3);
}

TEST(Traffic, HotspotExactCountAtHighFraction) {
  Network net = make_ring(6, 2);  // 12 terminals
  Rng rng(7);
  const std::size_t count = 400;
  // At hot_fraction 0.95 the old skip-on-collision generator undercounted
  // badly (every hot draw whose random source landed on the hot terminal
  // vanished); the redraw contract delivers exactly `count` messages.
  const auto msgs = hotspot_messages(net, count, 64, 0.95, 3, rng);
  ASSERT_EQ(msgs.size(), count);
  const NodeId hot = net.terminals()[3];
  std::size_t to_hot = 0;
  for (const auto& m : msgs) {
    EXPECT_NE(m.src, m.dst);
    to_hot += m.dst == hot;
  }
  EXPECT_GT(to_hot, count * 85 / 100);
}

TEST(Traffic, UniformRandomExactCount) {
  Network net = make_ring(3, 1);  // 3 terminals: 1-in-3 self-draw chance
  Rng rng(11);
  const auto msgs = uniform_random_messages(net, 300, 64, rng);
  ASSERT_EQ(msgs.size(), 300u);
  for (const auto& m : msgs) EXPECT_NE(m.src, m.dst);
}

TEST(Traffic, PatternStatsReportDropsOnNonPow2) {
  Network net = make_ring(12, 1);  // 12 terminals, index space is 16
  PatternStats st;
  const auto msgs =
      pattern_messages(net, TrafficPattern::kBitComplement, 64, 2, &st);
  EXPECT_EQ(st.requested, 24u);
  EXPECT_EQ(st.generated, msgs.size());
  EXPECT_GT(st.dropped_out_of_range, 0u);
  EXPECT_EQ(st.generated + st.dropped_out_of_range + st.dropped_self,
            st.requested);
}

TEST(Traffic, PatternStatsNoRangeDropsOnPow2) {
  Network net = make_ring(8, 2);  // 16 terminals
  PatternStats st;
  pattern_messages(net, TrafficPattern::kReverse, 64, 1, &st);
  EXPECT_EQ(st.dropped_out_of_range, 0u);
  EXPECT_EQ(st.generated + st.dropped_self, st.requested);
}

TEST(Traffic, PatternsSimulateToCompletion) {
  TorusSpec spec{{3, 3}, 2, 1};
  Network net = make_torus(spec);
  NueOptions opt;
  opt.num_vls = 2;
  const auto rr = route_nue(net, net.terminals(), opt);
  SimConfig cfg;
  cfg.deadlock_cycles = 5000;
  for (auto p : {TrafficPattern::kBitComplement, TrafficPattern::kTranspose,
                 TrafficPattern::kTornado, TrafficPattern::kNeighbor,
                 TrafficPattern::kReverse}) {
    const auto msgs = pattern_messages(net, p, 1024);
    const auto res = simulate(net, rr, msgs, cfg);
    EXPECT_TRUE(res.completed) << "pattern " << static_cast<int>(p);
    EXPECT_GT(res.avg_packet_latency, 0.0);
    EXPECT_GE(res.max_packet_latency,
              static_cast<std::uint64_t>(res.avg_packet_latency));
  }
}

TEST(Traffic, LatencyStatsOrdering) {
  Network net = make_ring(6, 2);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto msgs = alltoall_shift_messages(net, 2048);
  const auto res = simulate(net, rr, msgs, SimConfig{});
  ASSERT_TRUE(res.completed);
  EXPECT_LE(res.avg_packet_latency,
            static_cast<double>(res.max_packet_latency));
  EXPECT_LE(res.p99_packet_latency,
            static_cast<double>(res.max_packet_latency));
  EXPECT_GE(res.p99_packet_latency, res.avg_packet_latency * 0.5);
}

TEST(Traffic, MtuSegmentationDeliversLargeMessages) {
  Network net = make_ring(4, 1);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  SimConfig cfg;
  cfg.mtu_bytes = 512;
  const std::vector<Message> msgs{
      {net.terminals()[0], net.terminals()[2], 4096}};
  const auto res = simulate(net, rr, msgs, cfg);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.delivered_packets, 8u);  // 4096 / 512
  EXPECT_EQ(res.delivered_bytes, 4096u);
}

}  // namespace
}  // namespace nue
