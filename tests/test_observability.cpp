// Live observability plane contracts (docs/OBSERVABILITY.md "live
// plane"): the bounded event journal and its JSONL mirror, the flight
// recorder, Prometheus exposition, snapshot-consistent histogram reads,
// and — under TSan — client threads hammering `metrics`/`journal`
// against an in-flight fault storm without ever observing a counter
// move backwards or a torn histogram. Plus the acceptance gate that the
// live plane never perturbs results: routing tables are bit-identical
// with it enabled or disabled.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "resilience/resilience.hpp"
#include "routing/dump.hpp"
#include "service/json.hpp"
#include "service/observability.hpp"
#include "service/service.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"
#include "topology/faults.hpp"
#include "topology/generate.hpp"

namespace nue {
namespace {

using service::EventJournal;
using service::FlightRecorder;
using service::Json;
using service::JournalEntry;
using service::ManagerService;
using service::ObservabilityOptions;

JournalEntry entry(const std::string& fabric, const std::string& kind,
                   std::uint64_t epoch) {
  JournalEntry e;
  e.fabric = fabric;
  e.kind = kind;
  e.epoch = epoch;
  return e;
}

resilience::RepairPolicy union_gate_policy(std::uint64_t seed) {
  resilience::RepairPolicy pol;
  pol.engine = resilience::Engine::kNue;
  pol.vls = 2;
  pol.max_vls = 4;
  pol.seed = seed;
  pol.num_threads = 1;
  return pol;
}

/// Clean global telemetry sinks on both sides of every test: the live
/// plane reads the process-wide registry/tracer, and this binary runs
/// many suites against them.
class LivePlane : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }

 private:
  static void reset() {
    telemetry::set_enabled(false);
    telemetry::Tracer::instance().set_buffer_capacity(
        telemetry::Tracer::kDefaultBufferCapacity);
    telemetry::Tracer::instance().set_collected_capacity(0);
    telemetry::reset_all();
  }
};

TEST_F(LivePlane, JournalRingBoundsSeqAndFabricFilter) {
  EventJournal j(4);
  for (int i = 0; i < 10; ++i) {
    j.append(entry(i % 2 == 0 ? "a" : "b", "transition",
                   static_cast<std::uint64_t>(i + 1)));
  }
  EXPECT_EQ(j.total(), 10u);
  EXPECT_EQ(j.evicted(), 6u);

  const auto all = j.tail(100);
  ASSERT_EQ(all.size(), 4u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, all[i - 1].seq + 1) << "seq must be gap-free";
  }
  EXPECT_EQ(all.back().seq, 10u) << "seq is 1-based and counts appends";

  const auto only_a = j.tail(100, "a");
  ASSERT_EQ(only_a.size(), 2u);
  for (const auto& e : only_a) EXPECT_EQ(e.fabric, "a");

  const auto newest = j.tail(1);
  ASSERT_EQ(newest.size(), 1u);
  EXPECT_EQ(newest[0].epoch, 10u);
}

TEST_F(LivePlane, JournalFileMirrorsEveryAppendAndRotates) {
  const std::string path =
      ::testing::TempDir() + "nue_liveplane_journal.jsonl";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");

  EventJournal j(64);
  j.open_file(path, 512);  // tiny budget: force rotation quickly
  for (int i = 0; i < 24; ++i) {
    auto e = entry("a", "transition", static_cast<std::uint64_t>(i + 1));
    e.verdict = "union-gate: acyclic, hitless swap";
    j.append(e);
  }
  EXPECT_GT(j.rotations(), 0u);
  ASSERT_TRUE(std::filesystem::is_regular_file(path));
  ASSERT_TRUE(std::filesystem::is_regular_file(path + ".1"));

  // The mirror keeps one previous generation (FILE.1) plus the current
  // file; every surviving line is a complete JSON journal entry and the
  // retained window is gap-free up to the newest append.
  std::size_t lines = 0;
  std::uint64_t last_seq = 0;
  for (const auto& p : {path + ".1", path}) {
    std::ifstream is(p);
    std::string line;
    while (std::getline(is, line)) {
      const Json e = Json::parse(line);
      EXPECT_EQ(e.str("fabric"), "a");
      if (last_seq != 0) {
        EXPECT_EQ(e.num("seq"), static_cast<double>(last_seq + 1))
            << "retained mirror window must be gap-free";
      }
      last_seq = static_cast<std::uint64_t>(e.num("seq"));
      ++lines;
    }
  }
  EXPECT_GE(lines, 2u);
  EXPECT_EQ(last_seq, 24u) << "the newest append is always in the mirror";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".1");
}

TEST_F(LivePlane, HistogramSnapshotHasInclusiveEdgesAndDerivedCount) {
  telemetry::EnabledScope on(true);
  auto& h = telemetry::histogram("liveplane.h");
  for (std::uint64_t v : {0ull, 1ull, 1ull, 2ull, 3ull, 1000ull}) h.record(v);

  for (const auto& snap : telemetry::Registry::instance().histogram_snapshot()) {
    if (snap.name != "liveplane.h") continue;
    std::uint64_t from_buckets = 0;
    for (const auto& [le, n] : snap.buckets) {
      from_buckets += n;
      if (le == 0) {
        EXPECT_EQ(n, 1u) << "value 0 lands in the le=0 bucket";
      } else if (le == 1) {
        EXPECT_EQ(n, 2u) << "bucket edges are inclusive";
      } else if (le == 3) {
        EXPECT_EQ(n, 2u) << "[2,3] is one power-of-2 bucket";
      }
    }
    EXPECT_EQ(snap.count, from_buckets)
        << "count must be derived from the same bucket loads";
    EXPECT_EQ(snap.count, 6u);
    EXPECT_EQ(snap.sum, 1007u);
    return;
  }
  FAIL() << "liveplane.h not in the registry snapshot";
}

TEST_F(LivePlane, QuantileFromBucketsInterpolatesWithinEdges) {
  EXPECT_EQ(telemetry::quantile_from_buckets({}, 0.5), 0.0);
  // 4 zeros, 4 values in [2,3]: the median straddles nothing — p0 and
  // p25 are in the zero bucket, p75+ inside [2,3].
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets = {
      {0, 4}, {1, 0}, {3, 4}};
  EXPECT_EQ(telemetry::quantile_from_buckets(buckets, 0.0), 0.0);
  EXPECT_EQ(telemetry::quantile_from_buckets(buckets, 0.25), 0.0);
  const double p75 = telemetry::quantile_from_buckets(buckets, 0.75);
  EXPECT_GE(p75, 2.0);
  EXPECT_LE(p75, 3.0);
  EXPECT_EQ(telemetry::quantile_from_buckets(buckets, 1.0), 3.0);
}

TEST_F(LivePlane, PrometheusExpositionIsCumulativeAndSanitized) {
  telemetry::EnabledScope on(true);
  telemetry::counter("liveplane.prom.count").add(7);
  auto& h = telemetry::histogram("liveplane.prom.us");
  for (std::uint64_t v : {0ull, 1ull, 5ull, 5ull}) h.record(v);

  std::ostringstream os;
  telemetry::write_prometheus_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE liveplane_prom_count counter\n"
                      "liveplane_prom_count 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE liveplane_prom_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("liveplane_prom_us_bucket{le=\"0\"} 1"),
            std::string::npos);
  // Cumulative: the [4,7] bucket line counts everything at or below it.
  EXPECT_NE(text.find("liveplane_prom_us_bucket{le=\"7\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("liveplane_prom_us_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("liveplane_prom_us_sum 11"), std::string::npos);
  EXPECT_NE(text.find("liveplane_prom_us_count 4"), std::string::npos);
}

TEST_F(LivePlane, TracerBoundedLogKeepsLifetimeAggregates) {
  telemetry::EnabledScope on(true);
  auto& tracer = telemetry::Tracer::instance();
  tracer.set_collected_capacity(8);
  for (int i = 0; i < 50; ++i) {
    TELEM_SPAN("liveplane.span");
  }
  const auto agg = tracer.aggregate_all();
  const auto it = agg.find("liveplane.span");
  ASSERT_NE(it, agg.end());
  EXPECT_EQ(it->second.count, 50u)
      << "eviction from the bounded central log must not lose totals";
  EXPECT_LE(tracer.snapshot().size(), 8u);
  EXPECT_EQ(tracer.recent_spans(4).size(), 4u);
  EXPECT_EQ(tracer.recent_spans(1000).size(), 8u);
}

// The tentpole concurrency contract, meaningful under TSan (tier-1 runs
// it there): scraper threads reading `metrics` and `journal` race a
// fault storm on the same service. Counters must be monotone from any
// single reader's point of view, histograms must never be torn (count
// != sum of buckets), and journal seq/total must be monotone.
TEST_F(LivePlane, ConcurrentScrapesAreMonotoneAndUntorn) {
  telemetry::EnabledScope on(true);
  ManagerService svc;
  svc.load("a", "torus:3x3:1", union_gate_policy(21));

  std::atomic<bool> storm_done{false};
  std::thread storm([&] {
    const Json resp = svc.handle(Json::parse(
        R"({"op":"storm","fabric":"a","events":60,"seed":7})"));
    EXPECT_TRUE(resp.boolean("ok")) << resp.dump();
    storm_done.store(true, std::memory_order_release);
  });

  const int kScrapers = 3;
  std::vector<std::thread> scrapers;
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&svc, &storm_done] {
      std::map<std::string, double> prev_counters;
      double prev_total = 0;
      int spins = 0;
      while (!storm_done.load(std::memory_order_acquire) || spins < 3) {
        ++spins;
        const Json m = svc.handle(Json::parse(R"({"op":"metrics"})"));
        ASSERT_TRUE(m.boolean("ok")) << m.dump();
        const Json* report = m.find("report");
        ASSERT_NE(report, nullptr);
        const Json* counters = report->find("counters");
        ASSERT_NE(counters, nullptr);
        for (const auto& [name, value] : counters->members()) {
          const auto it = prev_counters.find(name);
          if (it != prev_counters.end()) {
            EXPECT_GE(value.as_number(), it->second)
                << "counter " << name << " went backwards mid-storm";
          }
          prev_counters[name] = value.as_number();
        }
        const Json* hists = report->find("histograms");
        ASSERT_NE(hists, nullptr);
        for (const auto& [name, h] : hists->members()) {
          double from_buckets = 0;
          for (const Json& b : h.find("buckets")->items()) {
            from_buckets += b.num("count");
          }
          EXPECT_EQ(h.num("count"), from_buckets)
              << "torn histogram scrape for " << name;
        }

        const Json j = svc.handle(Json::parse(R"({"op":"journal","n":32})"));
        ASSERT_TRUE(j.boolean("ok")) << j.dump();
        EXPECT_GE(j.num("total"), prev_total);
        prev_total = j.num("total");
        double prev_seq = 0;
        for (const Json& e : j.find("entries")->items()) {
          EXPECT_GT(e.num("seq"), prev_seq);
          prev_seq = e.num("seq");
        }
      }
    });
  }
  storm.join();
  for (auto& t : scrapers) t.join();

  // Quiescent now: the live scrape and the registry must agree exactly
  // (this is the "live counters match shutdown flush totals" gate).
  const Json final_scrape = svc.handle(Json::parse(R"({"op":"metrics"})"));
  const Json* counters = final_scrape.find("report")->find("counters");
  for (const auto& [name, value] :
       telemetry::Registry::instance().counter_snapshot()) {
    EXPECT_EQ(counters->num(name), static_cast<double>(value)) << name;
  }
}

TEST_F(LivePlane, FlightRecorderBundlesTheShippedGateFailure) {
  telemetry::EnabledScope on(true);
  const std::string dir = ::testing::TempDir() + "nue_liveplane_flightrec";
  std::filesystem::remove_all(dir);

  const auto trace = load_fault_trace_file(
      (std::filesystem::path(NUE_TEST_CORPUS_DIR) / "torus-3x3-union-gate.trace")
          .string());
  ASSERT_EQ(trace.generate, "torus:3x3:1");

  ObservabilityOptions obs;
  obs.flightrec_dir = dir;
  ManagerService svc(obs);
  svc.load("t", trace.generate, union_gate_policy(trace.seed));
  for (const FaultEvent& e : trace.events) {
    Json req = Json::object();
    req.set("op", "event");
    req.set("fabric", "t");
    req.set("kind", fault_event_name(e.kind));
    req.set("id", e.id);
    const Json resp = svc.handle(req);
    ASSERT_TRUE(resp.boolean("ok")) << resp.dump();
  }

  // The trace's last event forces the union gate to fail (see
  // test_fuzz_repro.cpp) — the recorder must have written a bundle.
  ASSERT_GE(svc.flight_recorder().bundles(), 1u);
  std::vector<std::string> bundles;
  for (const auto& p : std::filesystem::directory_iterator(dir)) {
    bundles.push_back(p.path().string());
    EXPECT_NE(p.path().filename().string().find("flightrec-t-"),
              std::string::npos);
  }
  ASSERT_FALSE(bundles.empty());

  std::ifstream is(bundles.front());
  std::stringstream buf;
  buf << is.rdbuf();
  const Json bundle = Json::parse(buf.str());
  EXPECT_EQ(bundle.str("reason"), "gate-failure");
  EXPECT_EQ(bundle.str("fabric"), "t");
  bool saw_gate_failure = false;
  for (const Json& e : bundle.find("journal")->items()) {
    if (e.str("kind") == "gate-failure") saw_gate_failure = true;
  }
  EXPECT_TRUE(saw_gate_failure)
      << "bundle journal tail must include the triggering entry";
  EXPECT_FALSE(bundle.find("spans")->items().empty())
      << "bundle must carry the surrounding spans";
  EXPECT_TRUE(bundle.find("counters")->has("service.requests"));

  // The journal itself recorded the failure too.
  bool journaled = false;
  for (const auto& e : svc.journal().tail(1000)) {
    if (e.kind == "gate-failure") journaled = true;
  }
  EXPECT_TRUE(journaled);
  std::filesystem::remove_all(dir);
}

TEST_F(LivePlane, TablesAreBitIdenticalWithLivePlaneOnAndOff) {
  const auto trace = load_fault_trace_file(
      (std::filesystem::path(NUE_TEST_CORPUS_DIR) / "torus-3x3-union-gate.trace")
          .string());

  // Off: plain offline replay, telemetry disabled, no journal.
  resilience::ResilienceManager offline(generate_topology(trace.generate).net,
                                        union_gate_policy(trace.seed));
  offline.replay(trace);
  std::ostringstream off;
  write_forwarding_tables(off, offline.net(), *offline.table());

  // On: the full live plane — telemetry, journal, flight recorder,
  // scrapes interleaved with the events.
  telemetry::EnabledScope on(true);
  ObservabilityOptions obs;
  obs.flightrec_dir = ::testing::TempDir() + "nue_liveplane_identical";
  std::filesystem::remove_all(obs.flightrec_dir);
  ManagerService svc(obs);
  svc.load("t", trace.generate, union_gate_policy(trace.seed));
  for (const FaultEvent& e : trace.events) {
    Json req = Json::object();
    req.set("op", "event");
    req.set("fabric", "t");
    req.set("kind", fault_event_name(e.kind));
    req.set("id", e.id);
    ASSERT_TRUE(svc.handle(req).boolean("ok"));
    ASSERT_TRUE(svc.handle(Json::parse(R"({"op":"metrics"})")).boolean("ok"));
  }
  const Json tables =
      svc.handle(Json::parse(R"({"op":"tables","fabric":"t"})"));
  ASSERT_TRUE(tables.boolean("ok"));
  EXPECT_EQ(tables.str("dump"), off.str())
      << "the live plane must never perturb routing";
  std::filesystem::remove_all(obs.flightrec_dir);
}

TEST_F(LivePlane, StatusCarriesLatencySlosAndRequestHistograms) {
  telemetry::EnabledScope on(true);
  ManagerService svc;
  svc.load("a", "torus:3x3:1", union_gate_policy(3));
  ASSERT_TRUE(svc.handle(Json::parse(
                  R"({"op":"event","fabric":"a","kind":"link-down","id":0})"))
                  .boolean("ok"));

  const Json status = svc.handle(Json::parse(R"({"op":"status"})"));
  ASSERT_TRUE(status.boolean("ok"));
  const auto& fabrics = status.find("fabrics")->items();
  ASSERT_EQ(fabrics.size(), 1u);
  const Json& f = fabrics[0];
  EXPECT_TRUE(f.has("p50_repair_ms"));
  EXPECT_TRUE(f.has("p99_repair_ms"));
  EXPECT_TRUE(f.has("max_repair_ms"));
  EXPECT_GE(f.num("p99_repair_ms"), f.num("p50_repair_ms"));
  EXPECT_GE(f.num("max_repair_ms"), f.num("p99_repair_ms"));
  EXPECT_GE(f.num("epoch_age_ms"), 0.0);

  // Both the per-op and the global request-latency SLO histograms move.
  bool saw_global = false;
  bool saw_event_op = false;
  for (const auto& h : telemetry::Registry::instance().histogram_snapshot()) {
    if (h.name == "service.request_us" && h.count >= 2) saw_global = true;
    if (h.name == "service.request_us.event" && h.count >= 1) {
      saw_event_op = true;
    }
  }
  EXPECT_TRUE(saw_global);
  EXPECT_TRUE(saw_event_op);
}

}  // namespace
}  // namespace nue
