#include <gtest/gtest.h>

#include <sstream>

#include "nue/nue_routing.hpp"
#include "routing/dump.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

using test::make_ring;

TEST(Dump, ForwardingTablesListEveryPairOnce) {
  Network net = make_ring(4);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  std::ostringstream os;
  write_forwarding_tables(os, net, rr);
  const std::string out = os.str();
  // 4 switches, 4 destinations each -> 16 table lines.
  std::size_t lines = 0, pos = 0;
  while ((pos = out.find("dest ", pos)) != std::string::npos) {
    ++lines;
    pos += 5;
  }
  EXPECT_EQ(lines, 16u);
  EXPECT_NE(out.find("switch 0:"), std::string::npos);
  EXPECT_NE(out.find("vl 0"), std::string::npos);
}

TEST(Dump, NetworkDotIsWellFormed) {
  Network net = make_ring(3);
  std::ostringstream os;
  write_network_dot(os, net);
  const std::string out = os.str();
  EXPECT_EQ(out.find("graph fabric {"), 0u);
  EXPECT_NE(out.find("shape=box"), std::string::npos);     // switches
  EXPECT_NE(out.find("shape=circle"), std::string::npos);  // terminals
  EXPECT_NE(out.find("n0 -- n1;"), std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(Dump, CdgDotContainsDependencies) {
  Network net = make_ring(4);
  NueOptions opt;
  const auto rr = route_nue(net, net.terminals(), opt);
  std::ostringstream os;
  write_cdg_dot(os, net, rr);
  const std::string out = os.str();
  EXPECT_EQ(out.find("digraph cdg {"), 0u);
  EXPECT_NE(out.find(" -> "), std::string::npos);
  EXPECT_NE(out.find("_vl0"), std::string::npos);
}

TEST(Dump, DeadNodesExcluded) {
  Network net = make_ring(5);
  net.remove_node(4);
  std::ostringstream os;
  write_network_dot(os, net);
  EXPECT_EQ(os.str().find("n4 ["), std::string::npos);
}

}  // namespace
}  // namespace nue

namespace nue {
namespace serialization_tests {

using test::make_ring;

TEST(RoutingSerialization, RoundTripPerDest) {
  Network net = make_ring(5, 2);
  NueOptions opt;
  opt.num_vls = 3;
  const auto rr = route_nue(net, net.terminals(), opt);
  std::ostringstream out;
  write_routing(out, net, rr);
  std::istringstream in(out.str());
  const auto back = read_routing(in, net);
  ASSERT_EQ(back.destinations(), rr.destinations());
  EXPECT_EQ(back.num_vls(), rr.num_vls());
  for (std::size_t di = 0; di < rr.destinations().size(); ++di) {
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      ASSERT_EQ(back.next(v, static_cast<std::uint32_t>(di)),
                rr.next(v, static_cast<std::uint32_t>(di)));
      ASSERT_EQ(back.vl(v, v, static_cast<std::uint32_t>(di)),
                rr.vl(v, v, static_cast<std::uint32_t>(di)));
    }
  }
}

TEST(RoutingSerialization, RejectsMismatchedFabric) {
  Network a = make_ring(5, 1);
  Network b = make_ring(6, 1);
  NueOptions opt;
  const auto rr = route_nue(a, a.terminals(), opt);
  std::ostringstream out;
  write_routing(out, a, rr);
  std::istringstream in(out.str());
  EXPECT_THROW(read_routing(in, b), std::logic_error);
}

TEST(RoutingSerialization, RejectsGarbage) {
  Network net = make_ring(4, 1);
  std::istringstream in("not a routing file");
  EXPECT_THROW(read_routing(in, net), std::logic_error);
}

}  // namespace serialization_tests
}  // namespace nue
