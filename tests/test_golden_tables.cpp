// Golden routing-table hashes: the committed tables of seven topology
// generators x three engines, bit-for-bit, at every supported thread
// count. These pins hold the strongest promise the engines make — the
// exact forwarding tables, not just their properties — so any refactor
// of the graph core, the CDG machinery or the scratch allocation that
// changes a single next-hop or VL assignment fails here immediately.
// The hashes were captured before the SoA/arena/bitset-omega scaling
// rework (docs/SCALING.md) and must never drift silently: a legitimate
// behavior change (e.g. a new tie-break) must re-capture them in the
// same commit and say why.
//
// A second table pins the Fig.-11-style faulted torus at 8 VLs — the
// largest config the suite routes — for Nue and Up*/Down*. (DFSSSP is
// excluded there: its VL demand exceeds the 8-lane cap on that fabric,
// the paper's expected inapplicability.)
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/network.hpp"
#include "nue/nue_routing.hpp"
#include "routing/dfsssp.hpp"
#include "routing/routing.hpp"
#include "routing/updown.hpp"
#include "topology/faults.hpp"
#include "topology/misc_topologies.hpp"
#include "topology/torus.hpp"
#include "topology/trees.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

/// FNV-1a over the full table contents: VL count and mode, then for every
/// destination its id and each node's next-hop channel and VL assignment.
std::uint64_t table_hash(const RoutingResult& rr) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(rr.num_vls());
  mix(static_cast<std::uint64_t>(rr.vl_mode()));
  for (std::size_t i = 0; i < rr.destinations().size(); ++i) {
    const NodeId d = rr.destinations()[i];
    mix(d);
    for (NodeId v = 0; v < rr.num_nodes(); ++v) {
      mix(rr.next(v, static_cast<std::uint32_t>(i)));
      mix(rr.vl(v, v, static_cast<std::uint32_t>(i)));
    }
  }
  return h;
}

Network make_fabric(const std::string& name) {
  if (name == "torus") {
    TorusSpec t{{4, 4, 3}, 2, 1};
    return make_torus(t);
  }
  if (name == "torus-faulted") {
    TorusSpec t{{4, 4, 3}, 2, 1};
    Network net = make_torus(t);
    Rng rng(7);
    inject_link_failures(net, 6, rng);
    return net;
  }
  if (name == "fattree") {
    FatTreeSpec f{3, 3, 3, 0};
    return make_kary_ntree(f);
  }
  if (name == "kautz") {
    KautzSpec k{3, 3, 2, 1};
    return make_kautz(k);
  }
  if (name == "dragonfly") {
    DragonflySpec d{4, 2, 2, 8};
    return make_dragonfly(d);
  }
  if (name == "hyperx") {
    HyperXSpec h{{3, 3}, 2, 1};
    return make_hyperx(h);
  }
  if (name == "hypercube") {
    return make_hypercube(4, 2);
  }
  if (name == "random") {
    RandomSpec r{20, 50, 2};
    Rng rng(1);
    return make_random(r, rng);
  }
  NUE_CHECK_MSG(false, "unknown fabric " << name);
  return Network{};
}

RoutingResult route(const Network& net, const std::string& engine,
                    std::uint32_t vls, std::uint32_t threads) {
  const auto dests = net.terminals();
  if (engine == "nue") {
    NueOptions opt;
    opt.num_vls = vls;
    opt.num_threads = threads;
    return route_nue(net, dests, opt);
  }
  if (engine == "dfsssp") {
    DfssspOptions opt;
    opt.max_vls = 8;
    opt.num_threads = threads;
    return route_dfsssp(net, dests, opt);
  }
  return route_updown(net, dests);
}

struct Golden {
  const char* fabric;
  const char* engine;
  std::uint64_t hash;
};

// Captured with Nue at 4 VLs, DFSSSP capped at 8 VLs, Up*/Down* default;
// destinations = all terminals. Verified identical at 1/4/8 threads.
constexpr Golden kGolden[] = {
    {"torus", "nue", 0x1173d2034af4bcbcull},
    {"torus", "dfsssp", 0xae88cb403303bd38ull},
    {"torus", "updown", 0x29c975b03ae0fcb1ull},
    {"torus-faulted", "nue", 0xfcde22aa52ce15ebull},
    {"torus-faulted", "dfsssp", 0x8108b3ec6dbc6929ull},
    {"torus-faulted", "updown", 0x3b0182c4ba9cf511ull},
    {"fattree", "nue", 0x8b3b2e1949698f5eull},
    {"fattree", "dfsssp", 0x0046a7d6a27c4aa9ull},
    {"fattree", "updown", 0x21f3e16902559611ull},
    {"kautz", "nue", 0x1b0f569a9fe77c73ull},
    {"kautz", "dfsssp", 0xfbe5492d9c20c293ull},
    {"kautz", "updown", 0x0d9e44e331d2b4dbull},
    {"dragonfly", "nue", 0x817b9c4e0ce46e9dull},
    {"dragonfly", "dfsssp", 0xb675653ec1e1bae7ull},
    {"dragonfly", "updown", 0xfaba504054f81e05ull},
    {"hyperx", "nue", 0x7f0dbc925a787cbdull},
    {"hyperx", "dfsssp", 0xf42ef0b66148f4e1ull},
    {"hyperx", "updown", 0x3ae272cb71c6f1a2ull},
    {"hypercube", "nue", 0x712b56041dd75b01ull},
    {"hypercube", "dfsssp", 0xec46cd3253f03dccull},
    {"hypercube", "updown", 0x64f7cd9164e042b7ull},
    {"random", "nue", 0xf1ab59c889e5f80dull},
    {"random", "dfsssp", 0x8dfae9ff0a8ff26cull},
    {"random", "updown", 0x517f3a0a35ff6ef8ull},
};

class GoldenTables : public ::testing::TestWithParam<Golden> {};

TEST_P(GoldenTables, BitIdenticalAtEveryThreadCount) {
  const Golden g = GetParam();
  for (std::uint32_t threads : {1u, 4u, 8u}) {
    const Network net = make_fabric(g.fabric);
    const auto h = table_hash(route(net, g.engine, 4, threads));
    EXPECT_EQ(h, g.hash) << g.fabric << "/" << g.engine
                         << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFabrics, GoldenTables, ::testing::ValuesIn(kGolden),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string n = std::string(info.param.fabric) + "_" +
                      info.param.engine;
      for (char& c : n) {
        if (c == '-') c = '_';
      }
      return n;
    });

// Fig.-11-style scale config: 6x6x6 torus, 4 terminals per switch, 7
// failed links, Nue at the full 8-VL budget.
Network fig11_fabric() {
  TorusSpec t{{6, 6, 6}, 4, 1};
  Network net = make_torus(t);
  Rng rng(11);
  inject_link_failures(net, 7, rng);
  return net;
}

TEST(GoldenTablesFig11, NueEightVls) {
  for (std::uint32_t threads : {1u, 4u, 8u}) {
    const Network net = fig11_fabric();
    NueOptions opt;
    opt.num_vls = 8;
    opt.num_threads = threads;
    const auto h = table_hash(route_nue(net, net.terminals(), opt));
    EXPECT_EQ(h, 0xf5f17a7dec53bfeaull) << "threads=" << threads;
  }
}

TEST(GoldenTablesFig11, UpDown) {
  const Network net = fig11_fabric();
  const auto h = table_hash(route_updown(net, net.terminals()));
  EXPECT_EQ(h, 0xf3d9c481b2647e2eull);
}

}  // namespace
}  // namespace nue
