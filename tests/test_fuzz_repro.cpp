// Fuzzer pipeline tests: the oracle on clean scenarios, achieved-fault
// accounting, deliberately broken tables being caught -> minimized ->
// serialized -> replayed, and the reproducer corpus shipped with the repo.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "fuzz/fuzz.hpp"
#include "resilience/resilience.hpp"
#include "topology/faults.hpp"
#include "topology/generate.hpp"

namespace nue::fuzz {
namespace {

TEST(FuzzOracle, SmokeSubsetClean) {
  // A spread of the fixed-seed CI corpus (the full corpus runs as the
  // route_fuzz --smoke ctest); every scenario must pass every invariant.
  const auto specs = smoke_corpus(1);
  std::vector<ScenarioSpec> subset;
  for (std::size_t i = 0; i < specs.size(); i += 7) subset.push_back(specs[i]);
  const auto outcomes = run_batch(subset);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.report.ok())
        << o.spec.label() << ": "
        << (o.report.violations.empty() ? "" : o.report.violations.front());
  }
}

TEST(FuzzOracle, RecordsAchievedFaultShortfall) {
  // 5 switches, 4 links = a spanning tree: every switch-to-switch link is
  // a bridge, so no link failure is injectable. The scenario must succeed
  // while reporting achieved < requested rather than pretending the
  // requested fault count happened (the silent-shortfall bugfix).
  ScenarioSpec s;
  s.seed = 5;
  s.generate = "random:5:4:1:7";
  s.engine = Engine::kUpDown;
  s.vls = 1;
  s.fail_links = 3;
  ScenarioBuild b;
  const OracleReport rep = run_scenario(s, {}, {}, &b);
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(b.link_faults, 0u);
  EXPECT_LT(b.link_faults, s.fail_links);
  EXPECT_FALSE(b.degraded);
}

TEST(FuzzOracle, NueFailureIsAViolationButDfssspFailureIsNot) {
  // DFSSSP with a 1-VL budget on a 4x4 torus legally declines
  // (RoutingFailure -> inapplicable); the same outcome from Nue would
  // break its paper contract and must be flagged.
  ScenarioSpec s;
  s.seed = 3;
  s.generate = "torus:4x4:1";
  s.engine = Engine::kDfsssp;
  s.vls = 1;
  const OracleReport rep = run_scenario(s);
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.applicable);
  EXPECT_FALSE(rep.engine_error.empty());
}

TEST(FuzzBatch, ThreadCountInvariant) {
  std::vector<ScenarioSpec> specs;
  for (std::uint64_t i = 0; i < 12; ++i) specs.push_back(draw_scenario(3, i));
  FuzzConfig serial;
  serial.threads = 1;
  FuzzConfig wide;
  wide.threads = 8;
  const auto a = run_batch(specs, serial);
  const auto b = run_batch(specs, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].link_faults, b[i].link_faults) << i;
    EXPECT_EQ(a[i].switch_faults, b[i].switch_faults) << i;
    EXPECT_EQ(violation_kind(a[i].report), violation_kind(b[i].report)) << i;
    EXPECT_EQ(a[i].report.violations.size(), b[i].report.violations.size())
        << i;
  }
}

TEST(FuzzRepro, VlOverflowCaughtMinimizedReplayed) {
  // The acceptance pipeline: a deliberately broken table (VL overflow
  // grafted onto Nue's output) is caught by the oracle, shrunk by the
  // minimizer, serialized, parsed back, and replays to the same verdict.
  ScenarioSpec spec;
  spec.seed = 21;
  spec.generate = "torus:3x3:1";
  spec.engine = Engine::kNue;
  spec.vls = 2;
  spec.mutation = Mutation::kVlOverflow;
  const OracleReport rep = run_scenario(spec);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(violation_kind(rep), "vl-overflow");

  MinimizeConfig mcfg;
  mcfg.max_trials = 200;
  const Reproducer r = minimize_scenario(spec, mcfg);
  EXPECT_EQ(r.expect, "vl-overflow");
  EXPECT_FALSE(r.removals.empty());
  const auto original = build_scenario(spec);
  const auto shrunk = build_scenario(spec, r.removals);
  EXPECT_LT(shrunk.net.num_alive_nodes(), original.net.num_alive_nodes());

  std::stringstream buf;
  write_reproducer(buf, r);
  const Reproducer parsed = read_reproducer(buf);
  EXPECT_EQ(parsed.spec.generate, spec.generate);
  EXPECT_EQ(parsed.spec.seed, spec.seed);
  EXPECT_EQ(parsed.spec.mutation, spec.mutation);
  EXPECT_EQ(parsed.removals.size(), r.removals.size());
  const ReplayResult res = replay(parsed);
  EXPECT_TRUE(res.reproduced)
      << "expected " << parsed.expect << ", got "
      << violation_kind(res.report);
  EXPECT_TRUE(res.fabric_matches);
}

TEST(FuzzRepro, DropEntryCaughtMinimizedReplayed) {
  ScenarioSpec spec;
  spec.seed = 8;
  spec.generate = "hyperx:3x3:1";
  spec.engine = Engine::kUpDown;
  spec.vls = 1;
  spec.mutation = Mutation::kDropEntry;
  const OracleReport rep = run_scenario(spec);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(violation_kind(rep), "unreachable");

  MinimizeConfig mcfg;
  mcfg.max_trials = 200;
  const Reproducer r = minimize_scenario(spec, mcfg);
  std::stringstream buf;
  write_reproducer(buf, r);
  const ReplayResult res = replay(read_reproducer(buf));
  EXPECT_TRUE(res.reproduced);
  EXPECT_TRUE(res.fabric_matches);
}

TEST(FuzzRepro, ShippedCorpusReplays) {
  // The .repro files committed under tests/corpus/ — regressions caught,
  // minimized, and written by route_fuzz — must keep replaying to their
  // recorded violation kind on the byte-identical regenerated fabric.
  const std::filesystem::path dir = NUE_TEST_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    const Reproducer r = load_reproducer_file(entry.path().string());
    const ReplayResult res = replay(r);
    EXPECT_TRUE(res.reproduced)
        << entry.path() << ": expected " << r.expect << ", got "
        << violation_kind(res.report);
    EXPECT_TRUE(res.fabric_matches) << entry.path();
    ++replayed;
  }
  EXPECT_GE(replayed, 3u);
}

TEST(FuzzRepro, ShippedUnionGateTraceForcesAGateFailure) {
  // The adversarial fault trace committed under tests/corpus/ — the
  // shortest prefix of a churn storm whose last event makes the union CDG
  // of the active and the repaired table cyclic. Replayed here on both
  // sides of the wave scheduler: with waves disabled the gate failure
  // must drain (the trace stays adversarial), with waves enabled the same
  // transition must commit as a zero-drain migration chain.
  const std::filesystem::path path =
      std::filesystem::path(NUE_TEST_CORPUS_DIR) / "torus-3x3-union-gate.trace";
  ASSERT_TRUE(std::filesystem::is_regular_file(path)) << path;
  const FaultTrace trace = load_fault_trace_file(path.string());
  EXPECT_EQ(trace.generate, "torus:3x3:1");
  ASSERT_FALSE(trace.events.empty());

  resilience::RepairPolicy pol;
  pol.engine = resilience::Engine::kNue;
  pol.vls = 2;
  pol.max_vls = 4;
  pol.seed = trace.seed;
  pol.num_threads = 1;

  resilience::RepairPolicy baseline = pol;
  baseline.enable_waves = false;
  resilience::ResilienceManager drained(generate_topology(trace.generate).net,
                                        baseline);
  drained.replay(trace);
  const auto off = drained.log().summarize();
  EXPECT_GT(off.drained, 0u) << "trace no longer forces a gate failure";
  EXPECT_EQ(off.waved, 0u);

  resilience::ResilienceManager waved(generate_topology(trace.generate).net,
                                      pol);
  const auto records = waved.replay(trace);
  const auto on = waved.log().summarize();
  EXPECT_EQ(on.drained, 0u);
  EXPECT_GT(on.waved, 0u);
  EXPECT_GE(on.wave_commits, 2 * on.waved);
  // The harvested prefix ends on the gate-failure event, so the replay's
  // last record is a chain final.
  ASSERT_FALSE(records.empty());
  EXPECT_GT(records.back().wave_count, 0u);
  EXPECT_EQ(records.back().wave_index, records.back().wave_count);
  EXPECT_FALSE(records.back().drained);
}

TEST(FuzzRepro, RejectsMalformedFiles) {
  std::stringstream not_a_repro("fabric v0\n");
  EXPECT_THROW(read_reproducer(not_a_repro), std::logic_error);
  std::stringstream bad_engine(
      "route_fuzz-repro v1\nseed 1\ngenerate torus:2x2:1\nengine warp\n"
      "expect vl-overflow\n");
  EXPECT_THROW(read_reproducer(bad_engine), std::logic_error);
}

TEST(FuzzScenario, UnsafeRemovalsThrow) {
  ScenarioSpec s;
  s.seed = 1;
  s.generate = "torus:2x2:1";
  s.engine = Engine::kMinHop;
  s.vls = 1;
  const auto base = build_scenario(s);
  // Removing a terminal access link is never a legal shrink step.
  ChannelId access = kInvalidChannel;
  for (ChannelId c = 0; c < base.net.num_channels(); c += 2) {
    if (base.net.is_terminal(base.net.src(c)) ||
        base.net.is_terminal(base.net.dst(c))) {
      access = c;
      break;
    }
  }
  ASSERT_NE(access, kInvalidChannel);
  EXPECT_THROW(build_scenario(s, {{false, access}}), std::logic_error);
  // A dead id is rejected, not silently skipped.
  EXPECT_THROW(build_scenario(s, {{true, 0}, {true, 0}}), std::logic_error);
}

}  // namespace
}  // namespace nue::fuzz
