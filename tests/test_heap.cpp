#include <gtest/gtest.h>

#include <map>
#include <queue>

#include "heap/dary_heap.hpp"
#include "heap/fibonacci_heap.hpp"
#include "util/rng.hpp"

namespace nue {
namespace {

template <typename T>
class AddressableHeapTest : public ::testing::Test {};

using HeapTypes = ::testing::Types<FibonacciHeap<double>, DaryHeap<double>>;
TYPED_TEST_SUITE(AddressableHeapTest, HeapTypes);

TYPED_TEST(AddressableHeapTest, BasicOrdering) {
  TypeParam h(16);
  h.insert(3, 3.0);
  h.insert(1, 1.0);
  h.insert(2, 2.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.extract_min(), 1u);
  EXPECT_EQ(h.extract_min(), 2u);
  EXPECT_EQ(h.extract_min(), 3u);
  EXPECT_TRUE(h.empty());
}

TYPED_TEST(AddressableHeapTest, DecreaseKeyReordersItems) {
  TypeParam h(8);
  for (std::uint32_t i = 0; i < 8; ++i) h.insert(i, 10.0 + i);
  h.decrease_key(7, 1.0);
  h.decrease_key(5, 0.5);
  EXPECT_EQ(h.extract_min(), 5u);
  EXPECT_EQ(h.extract_min(), 7u);
  EXPECT_EQ(h.extract_min(), 0u);
}

TYPED_TEST(AddressableHeapTest, ContainsTracksMembership) {
  TypeParam h(4);
  EXPECT_FALSE(h.contains(2));
  h.insert(2, 5.0);
  EXPECT_TRUE(h.contains(2));
  EXPECT_EQ(h.key(2), 5.0);
  h.extract_min();
  EXPECT_FALSE(h.contains(2));
}

TYPED_TEST(AddressableHeapTest, ReinsertAfterExtract) {
  TypeParam h(4);
  h.insert(0, 1.0);
  EXPECT_EQ(h.extract_min(), 0u);
  h.insert(0, 2.0);  // non-monotone reinsert (Nue shortcut path)
  EXPECT_TRUE(h.contains(0));
  EXPECT_EQ(h.extract_min(), 0u);
}

TYPED_TEST(AddressableHeapTest, InsertOrDecrease) {
  TypeParam h(4);
  EXPECT_TRUE(h.insert_or_decrease(1, 5.0));
  EXPECT_FALSE(h.insert_or_decrease(1, 9.0));  // larger: no change
  EXPECT_EQ(h.key(1), 5.0);
  EXPECT_TRUE(h.insert_or_decrease(1, 2.0));
  EXPECT_EQ(h.key(1), 2.0);
}

TYPED_TEST(AddressableHeapTest, DuplicateInsertThrows) {
  TypeParam h(4);
  h.insert(1, 1.0);
  EXPECT_THROW(h.insert(1, 2.0), std::logic_error);
}

TYPED_TEST(AddressableHeapTest, IncreaseViaDecreaseKeyThrows) {
  TypeParam h(4);
  h.insert(1, 1.0);
  EXPECT_THROW(h.decrease_key(1, 5.0), std::logic_error);
}

TYPED_TEST(AddressableHeapTest, ClearEmptiesHeap) {
  TypeParam h(8);
  for (std::uint32_t i = 0; i < 8; ++i) h.insert(i, double(i));
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(3));
  h.insert(3, 1.0);  // reusable after clear
  EXPECT_EQ(h.extract_min(), 3u);
}

/// Randomized differential test against a reference model.
TYPED_TEST(AddressableHeapTest, MatchesReferenceModelUnderRandomOps) {
  constexpr std::uint32_t kIds = 200;
  TypeParam h(kIds);
  std::map<std::uint32_t, double> model;  // id -> key
  Rng rng(1234);
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.next_below(10);
    if (op < 4) {  // insert
      const auto id = static_cast<std::uint32_t>(rng.next_below(kIds));
      if (!model.count(id)) {
        const double key = static_cast<double>(rng.next_below(100000));
        h.insert(id, key);
        model[id] = key;
      }
    } else if (op < 7) {  // decrease-key
      if (model.empty()) continue;
      auto it = model.begin();
      std::advance(it, rng.next_below(model.size()));
      const double nk = it->second * rng.next_double();
      h.decrease_key(it->first, nk);
      it->second = nk;
    } else {  // extract-min
      if (model.empty()) continue;
      double best = model.begin()->second;
      for (const auto& [id, k] : model) best = std::min(best, k);
      const auto got = h.extract_min();
      ASSERT_DOUBLE_EQ(model.at(got), best) << "step " << step;
      model.erase(got);
    }
    ASSERT_EQ(h.size(), model.size());
  }
  // Drain fully in order.
  double last = -1.0;
  while (!h.empty()) {
    const auto id = h.extract_min();
    ASSERT_GE(model.at(id), last);
    last = model.at(id);
    model.erase(id);
  }
  EXPECT_TRUE(model.empty());
}

}  // namespace
}  // namespace nue
