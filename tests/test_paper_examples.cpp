// Reproduction of the paper's didactic examples (Figs. 2-8) on the 5-node
// ring with shortcut and the binary-tree impasse network.
#include <gtest/gtest.h>

#include "nue/nue_routing.hpp"
#include "routing/routing.hpp"
#include "routing/validate.hpp"
#include "sim/flit_sim.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

using test::make_paper_ring;
using test::make_paper_ring_with_terminals;

ChannelId chan(const Network& net, NodeId a, NodeId b) {
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) return c;
  }
  ADD_FAILURE() << "no channel " << a << "->" << b;
  return kInvalidChannel;
}

/// Fig. 2: a ring-following routing (all traffic circles one way around
/// the 5-ring) induces a cyclic channel dependency graph — the "potential
/// deadlock" of Fig. 2b.
TEST(PaperFig2, RingRoutingInducesCyclicCdg) {
  Network net = make_paper_ring();
  const auto dests = net.alive_nodes();
  RoutingResult rr(net.num_nodes(), dests, 1, VlMode::kPerDest);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    for (NodeId v = 0; v < 5; ++v) {
      if (v == d) continue;
      rr.set_next(v, static_cast<std::uint32_t>(di),
                  chan(net, v, (v + 1) % 5));  // always around the ring
    }
  }
  const auto rep = validate_routing(net, rr, net.alive_nodes());
  EXPECT_TRUE(rep.connected);
  EXPECT_FALSE(rep.deadlock_free);  // Theorem 1: cyclic CDG
}

/// Fig. 3 is covered structurally in test_cdg.cpp (12 vertices, 18 edges).
/// Here: the complete CDG admits an acyclic routing too — Nue with k = 1
/// routes this network (Figs. 4 and 6 walk through exactly this process).
TEST(PaperFig4and6, NueRoutesTheRingWithOneVl) {
  Network net = make_paper_ring_with_terminals();
  NueOptions opt;
  opt.num_vls = 1;
  NueStats stats;
  const auto rr = route_nue(net, net.terminals(), opt, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_EQ(stats.roots.size(), 1u);
}

/// Fig. 5: the initial escape-path dependencies for destination subset
/// {n1, n2, n3} depend on the root: the central root n2 induces four
/// dependencies, fewer than the eccentric root n5.
TEST(PaperFig5, CentralRootInducesFewerDependencies) {
  Network net = make_paper_ring();
  const std::vector<NodeId> subset{0, 1, 2};  // n1, n2, n3
  const std::size_t deps_n2 = count_escape_dependencies(net, 1, subset);
  const std::size_t deps_n5 = count_escape_dependencies(net, 4, subset);
  EXPECT_EQ(deps_n2, 4u);  // the paper's count for root n2
  EXPECT_LT(deps_n2, deps_n5);
}

/// §4.3: with the full node set as destinations the escape root choice
/// still matters; count_escape_dependencies is monotone enough that the
/// betweenness-selected root is never worse than the worst node.
TEST(PaperSec43, SelectedRootNotWorst) {
  Network net = make_paper_ring();
  const std::vector<NodeId> all{0, 1, 2, 3, 4};
  const NodeId chosen = select_escape_root(net, all);
  std::size_t worst = 0, chosen_deps = 0;
  for (NodeId r = 0; r < 5; ++r) {
    const std::size_t deps = count_escape_dependencies(net, r, all);
    worst = std::max(worst, deps);
    if (r == chosen) chosen_deps = deps;
  }
  EXPECT_LE(chosen_deps, worst);
}

/// Fig. 7: the binary-tree impasse. We reproduce the *situation* — a
/// destination whose natural shortest paths are blocked by prior routing
/// restrictions — by routing the full network with k = 1 and checking
/// that backtracking/escape fallbacks keep every destination reachable
/// (Lemma 3), even on networks engineered to create islands.
TEST(PaperFig7, ImpassesNeverBreakConnectivity) {
  // Binary tree hanging off a ring (the "large network I" of Fig. 7a).
  Network net;
  for (int i = 0; i < 12; ++i) net.add_switch();
  for (int i = 0; i < 8; ++i) net.add_link(i, (i + 1) % 8);  // ring body
  // Tree: 8 is n1 (attached to ring), children 9 (n3) and the rest per
  // Fig. 7a's shape: n1 -> n3 -> n4, n5; n5 -> n7-ish chain.
  net.add_link(0, 8);
  net.add_link(8, 9);
  net.add_link(9, 10);
  net.add_link(10, 11);
  net.add_link(11, 4);  // reconnect to the ring: multiple path choices
  std::vector<NodeId> terms;
  for (NodeId sw = 0; sw < 12; ++sw) {
    const NodeId t = net.add_terminal();
    net.add_link(t, sw);
  }
  NueOptions opt;
  opt.num_vls = 1;
  NueStats stats;
  const auto rr = route_nue(net, net.terminals(), opt, &stats);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
}

/// Theorem 1 end-to-end: on the paper's ring, a cyclic-CDG routing
/// deadlocks in the flit simulator while Nue's acyclic routing completes.
TEST(PaperTheorem1, SimulatorConfirmsDeadlockDichotomy) {
  Network net = make_paper_ring_with_terminals();
  SimConfig cfg;
  cfg.buffer_flits = 2;
  cfg.deadlock_cycles = 5000;
  const auto msgs = alltoall_shift_messages(net, 4096);

  // Cyclic control: everything circles the ring.
  const auto dests = net.terminals();
  RoutingResult cyclic(net.num_nodes(), dests, 1, VlMode::kPerDest);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        cyclic.set_next(v, static_cast<std::uint32_t>(di), net.out(v)[0]);
      } else if (v == dsw) {
        cyclic.set_next(v, static_cast<std::uint32_t>(di), chan(net, v, d));
      } else {
        cyclic.set_next(v, static_cast<std::uint32_t>(di),
                        chan(net, v, (v + 1) % 5));
      }
    }
  }
  const auto res_cyclic = simulate(net, cyclic, msgs, cfg);
  EXPECT_TRUE(res_cyclic.deadlocked);

  NueOptions opt;
  opt.num_vls = 1;
  const auto rr = route_nue(net, net.terminals(), opt);
  const auto res_nue = simulate(net, rr, msgs, cfg);
  EXPECT_TRUE(res_nue.completed);
  EXPECT_FALSE(res_nue.deadlocked);
}

}  // namespace
}  // namespace nue
