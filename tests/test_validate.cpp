#include <gtest/gtest.h>

#include <algorithm>

#include "routing/routing.hpp"
#include "routing/validate.hpp"
#include "test_helpers.hpp"

namespace nue {
namespace {

using test::make_line;
using test::make_ring;

ChannelId chan(const Network& net, NodeId a, NodeId b) {
  for (ChannelId c : net.out(a)) {
    if (net.dst(c) == b) return c;
  }
  ADD_FAILURE() << "no channel " << a << "->" << b;
  return kInvalidChannel;
}

TEST(IsAcyclic, Basics) {
  EXPECT_TRUE(is_acyclic({}));
  EXPECT_TRUE(is_acyclic({{1}, {2}, {}}));
  EXPECT_FALSE(is_acyclic({{1}, {2}, {0}}));
  EXPECT_FALSE(is_acyclic({{0}}));  // self loop
  EXPECT_TRUE(is_acyclic({{1, 2}, {3}, {3}, {}}));  // diamond
}

/// Hand-build a routing on a 3-switch line (terminals 3,4,5 on switches
/// 0,1,2) that routes everything along the line.
RoutingResult line_routing(const Network& net) {
  std::vector<NodeId> dests = net.terminals();
  RoutingResult rr(net.num_nodes(), dests, 1, VlMode::kPerDest);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, di, net.out(v)[0]);
      } else if (v == dsw) {
        rr.set_next(v, di, chan(net, v, d));
      } else {
        const NodeId toward = v < dsw ? v + 1 : v - 1;
        rr.set_next(v, di, chan(net, v, toward));
      }
    }
  }
  return rr;
}

TEST(Validate, AcceptsCorrectLineRouting) {
  Network net = make_line(3);
  const auto rr = line_routing(net);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_TRUE(rep.connected);
  EXPECT_TRUE(rep.deadlock_free);
  EXPECT_EQ(rep.num_paths, 6u);  // 3 terminals * 2 peers
  EXPECT_EQ(rep.max_path_length, 4u);
}

TEST(Validate, DetectsHole) {
  Network net = make_line(3);
  auto rr = line_routing(net);
  rr.set_next(1, 0, kInvalidChannel);  // punch a hole
  const auto rep = validate_routing(net, rr);
  EXPECT_FALSE(rep.connected);
  EXPECT_FALSE(rep.ok());
}

TEST(Validate, DetectsForwardingLoop) {
  Network net = make_line(3);
  auto rr = line_routing(net);
  // Destination terminal of switch 2; make switches 0 and 1 ping-pong.
  const std::uint32_t di = rr.dest_index(net.terminals()[2]);
  rr.set_next(0, di, chan(net, 0, 1));
  rr.set_next(1, di, chan(net, 1, 0));
  const auto rep = validate_routing(net, rr);
  EXPECT_FALSE(rep.connected);  // the walk never completes
}

TEST(Validate, DetectsCyclicCdgOnRing) {
  // Clockwise-only routing on a 4-ring: connected & cycle-free paths but
  // the CDG is the full directed ring -> not deadlock-free (Theorem 1).
  Network net = make_ring(4);
  std::vector<NodeId> dests = net.terminals();
  RoutingResult rr(net.num_nodes(), dests, 1, VlMode::kPerDest);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, di, net.out(v)[0]);
      } else if (v == dsw) {
        rr.set_next(v, di, chan(net, v, d));
      } else {
        rr.set_next(v, di, chan(net, v, (v + 1) % 4));  // always clockwise
      }
    }
  }
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.connected);
  EXPECT_TRUE(rep.cycle_free);
  EXPECT_FALSE(rep.deadlock_free);
  EXPECT_FALSE(rep.ok());
}

TEST(Validate, VlSplitBreaksRingCycle) {
  // Same clockwise ring, but odd destinations use VL 1: each VL's CDG is
  // only half the dependencies... still cyclic per VL unless the split is
  // chosen well. Use the dateline rule instead: paths crossing edge 3->0
  // get VL 1 — we emulate with per-hop VLs and expect acyclicity.
  Network net = make_ring(4);
  std::vector<NodeId> dests = net.terminals();
  RoutingResult rr(net.num_nodes(), dests, 2, VlMode::kPerHop);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, di, net.out(v)[0]);
        rr.set_hop_vl(v, di, 0);
      } else if (v == dsw) {
        rr.set_next(v, di, chan(net, v, d));
        rr.set_hop_vl(v, di, 0);
      } else {
        rr.set_next(v, di, chan(net, v, (v + 1) % 4));
        // Remaining clockwise path v -> dsw crosses boundary 3->0 iff
        // v > dsw; VL0 before crossing, VL1 after.
        rr.set_hop_vl(v, di, v > dsw ? 0 : 1);
      }
    }
  }
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.connected);
  EXPECT_TRUE(rep.deadlock_free) << rep.detail;
}

TEST(Validate, ReportsVlOutOfRange) {
  Network net = make_line(3);
  auto rr = line_routing(net);
  // num_vls is 1; force an out-of-range VL via dest_vl.
  rr.set_dest_vl(0, 3);
  const auto rep = validate_routing(net, rr);
  EXPECT_FALSE(rep.vl_in_range);
}

/// Clockwise ring routing with an explicit VL per destination (dest_vls
/// indexed like net.terminals(), values may exceed num_vls on purpose).
RoutingResult ring_routing_with_vls(const Network& net,
                                    const std::vector<std::uint8_t>& dest_vls,
                                    std::uint32_t num_vls) {
  const std::vector<NodeId> dests = net.terminals();
  const auto n = static_cast<NodeId>(net.num_nodes() - dests.size());
  RoutingResult rr(net.num_nodes(), dests, num_vls, VlMode::kPerDest);
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    rr.set_dest_vl(static_cast<std::uint32_t>(di), dest_vls[di]);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, di, net.out(v)[0]);
      } else if (v == dsw) {
        rr.set_next(v, di, chan(net, v, d));
      } else {
        rr.set_next(v, di, chan(net, v, (v + 1) % n));
      }
    }
  }
  return rr;
}

TEST(Validate, OutOfRangeVlDoesNotFabricateCycle) {
  // Regression: induced_cdg used to clamp out-of-range VLs onto the top
  // legal layer. On this clockwise 4-ring, destination 3's bogus VL 5
  // would alias onto VL 1 and close the ring cycle among the legitimate
  // VL-1 dependencies — reporting a deadlock the real VL assignment does
  // not have. With dedicated overflow vertices the verdict stays acyclic;
  // the out-of-range VL is still reported via vl_in_range.
  Network net = make_ring(4);
  const auto rr = ring_routing_with_vls(net, {1, 1, 0, 5}, 2);
  const auto rep = validate_routing(net, rr);
  EXPECT_TRUE(rep.connected);
  EXPECT_FALSE(rep.vl_in_range);
  EXPECT_TRUE(rep.deadlock_free) << rep.detail;
  EXPECT_FALSE(rep.ok());
}

TEST(Validate, OutOfRangeVlCycleIsStillDetected) {
  // All four destinations on the same bogus VL: their dependencies meet
  // on the per-channel overflow vertices and form the full ring cycle
  // there — out-of-range hops keep participating in deadlock analysis,
  // they just cannot alias onto legal layers.
  Network net = make_ring(4);
  const auto rr = ring_routing_with_vls(net, {7, 7, 7, 7}, 2);
  const auto rep = validate_routing(net, rr);
  EXPECT_FALSE(rep.vl_in_range);
  EXPECT_FALSE(rep.deadlock_free);
}

TEST(InducedCdg, LineHasChainDependencies) {
  Network net = make_line(3);
  const auto rr = line_routing(net);
  const auto adj = induced_cdg(net, rr, net.terminals());
  EXPECT_TRUE(is_acyclic(adj));
  std::size_t edges = 0;
  for (const auto& a : adj) edges += a.size();
  EXPECT_GT(edges, 0u);
}

// --- stale-table hardening (docs/RESILIENCE.md) -----------------------------

TEST(Validate, StaleDeadChannelFailsLiveElements) {
  // A runtime link failure without a repair: the table still forwards
  // over the dead channel. The walk must flag the stale entry instead of
  // silently traversing a resource that no longer exists.
  Network net = make_line(3);
  const auto rr = line_routing(net);
  net.remove_link(chan(net, 0, 1) & ~ChannelId{1});
  const auto rep = validate_routing(net, rr);
  EXPECT_FALSE(rep.live_elements);
  EXPECT_FALSE(rep.ok());
}

TEST(Validate, DeadDestinationFailsLiveElements) {
  // A destination removed from the fabric (its switch died) while the
  // table still carries its column.
  Network net = make_line(3);
  const auto rr = line_routing(net);
  net.remove_node(net.terminals()[2]);
  const auto rep = validate_routing(net, rr);
  EXPECT_FALSE(rep.live_elements);
  EXPECT_FALSE(rep.ok());
}

TEST(ValidateColumns, WalksOnlyRequestedColumns) {
  Network net = make_line(3);
  auto rr = line_routing(net);
  const NodeId d0 = net.terminals()[0];
  const NodeId d2 = net.terminals()[2];
  rr.set_next(1, rr.dest_index(d0), kInvalidChannel);  // hole in d0's column
  // The broken column is caught when asked for...
  EXPECT_FALSE(validate_columns(net, rr, {d0}).ok());
  // ...and invisible when only d2's column is checked — the point of the
  // subset API is that its cost (and scope) is proportional to the
  // columns an event touched, not to the whole table.
  const auto rep = validate_columns(net, rr, {d2});
  EXPECT_TRUE(rep.ok()) << rep.detail;
  EXPECT_GT(rep.num_paths, 0u);
}

TEST(ValidateColumns, MissingColumnIsDisconnected) {
  Network net = make_line(3);
  const auto rr = line_routing(net);
  // Switch 0 is not a destination of the table: asking for its column
  // must fail as disconnected, not be skipped.
  const auto rep = validate_columns(net, rr, {NodeId{0}});
  EXPECT_FALSE(rep.connected);
  EXPECT_FALSE(rep.ok());
}

TEST(AffectedDestinations, FlagsExactlyTheColumnsUsingADeadLink) {
  // Clockwise ring: the column of switch 0's terminal never crosses the
  // 0->1 channel (its tree is 1->2->3->0), every other column does.
  Network net = make_ring(4);
  const auto rr = ring_routing_with_vls(net, {0, 0, 0, 0}, 1);
  EXPECT_TRUE(affected_destinations(net, rr).empty());
  net.remove_link(chan(net, 0, 1) & ~ChannelId{1});
  const auto affected = affected_destinations(net, rr);
  EXPECT_EQ(affected.size(), 3u);
  for (NodeId d : affected) EXPECT_NE(d, net.terminals()[0]);
}

TEST(AffectedDestinations, DeadDestinationIsAffected) {
  Network net = make_ring(4);
  const auto rr = ring_routing_with_vls(net, {0, 0, 0, 0}, 1);
  const NodeId d = net.terminals()[1];
  net.remove_node(d);
  const auto affected = affected_destinations(net, rr);
  EXPECT_NE(std::find(affected.begin(), affected.end(), d), affected.end());
}

// --- union-CDG transition gate ----------------------------------------------

/// Clockwise per-hop routing on a ring with a 2-VL dateline: hops use VL 0
/// until the path crosses the ring edge (rot-1) -> rot, VL 1 after. Every
/// placement is deadlock-free on its own — the dateline cuts the ring
/// cycle on both layers (rot = 0 is exactly VlSplitBreaksRingCycle above).
RoutingResult ring_dateline_routing(const Network& net, NodeId rot) {
  const std::vector<NodeId> dests = net.terminals();
  const auto n = static_cast<NodeId>(net.num_nodes() - dests.size());
  RoutingResult rr(net.num_nodes(), dests, 2, VlMode::kPerHop);
  const auto turn = [&](NodeId v) { return (v + n - rot) % n; };
  for (std::size_t di = 0; di < dests.size(); ++di) {
    const NodeId d = dests[di];
    const NodeId dsw = net.terminal_switch(d);
    for (NodeId v = 0; v < net.num_nodes(); ++v) {
      if (v == d) continue;
      if (net.is_terminal(v)) {
        rr.set_next(v, di, net.out(v)[0]);
        rr.set_hop_vl(v, di, 0);
      } else if (v == dsw) {
        rr.set_next(v, di, chan(net, v, d));
        rr.set_hop_vl(v, di, 0);
      } else {
        rr.set_next(v, di, chan(net, v, (v + 1) % n));
        rr.set_hop_vl(v, di, turn(v) > turn(dsw) ? 0 : 1);
      }
    }
  }
  return rr;
}

TEST(UnionCdgGate, AcceptsTableAgainstItself) {
  Network net = make_ring(4);
  const auto rr = ring_dateline_routing(net, 0);
  ASSERT_TRUE(validate_routing(net, rr).ok());
  EXPECT_TRUE(union_cdg_acyclic(net, rr, rr));
}

TEST(UnionCdgGate, RejectsDatelineShift) {
  // The textbook reconfiguration deadlock: moving a ring's VL dateline.
  // Each placement is deadlock-free on its own, but on VL 0 the old table
  // covers every ring dependency except the one at its dateline and the
  // new table covers every one except the one at *its* dateline — the
  // union closes the full ring cycle, so in-flight old-table packets and
  // new injections could deadlock mid-swap. The gate must reject exactly
  // this, even though per-table validation passes for both.
  Network net = make_ring(4);
  const auto old_rr = ring_dateline_routing(net, 0);
  const auto new_rr = ring_dateline_routing(net, 2);
  ASSERT_TRUE(validate_routing(net, old_rr).ok());
  ASSERT_TRUE(validate_routing(net, new_rr).ok());
  EXPECT_FALSE(union_cdg_acyclic(net, old_rr, new_rr));
}

}  // namespace
}  // namespace nue
